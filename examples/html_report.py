#!/usr/bin/env python3
"""Generate a self-contained HTML report of the paper's headline figures
(convergence, blast radius, control overhead, packet loss) from live
experiment runs — charts plus data tables, no external dependencies.

Run:  python examples/html_report.py [--out report.html] [--pods 2]
"""

import argparse
from pathlib import Path

from repro.harness.experiments import (
    StackKind,
    run_failure_experiment,
    run_packet_loss_experiment,
)
from repro.harness.htmlreport import (
    SeriesSet,
    dot_plot_log,
    grouped_bar_chart,
    render_report,
)
from repro.topology.clos import ClosParams

CASES = ("TC1", "TC2", "TC3", "TC4")
STACKS = (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("report.html"))
    parser.add_argument("--pods", type=int, default=2)
    args = parser.parse_args()
    params = ClosParams(num_pods=args.pods)

    failure = {
        (kind, case): run_failure_experiment(params, kind, case)
        for kind in STACKS for case in CASES
    }
    loss_near = {
        (kind, case): run_packet_loss_experiment(params, kind, case,
                                                 direction="near")
        for kind in STACKS for case in CASES
    }

    names = [k.value for k in STACKS]

    def series(metric):
        return [[metric(failure[(kind, case)]) for case in CASES]
                for kind in STACKS]

    blocks = [
        dot_plot_log(
            "Fig. 4 — convergence time after an interface failure",
            SeriesSet(CASES, names,
                      [[max(v, 0.01) for v in row]
                       for row in series(lambda r: r.convergence_ms)]),
            unit="ms",
            note="TC1/TC3: the far end detects via its dead/hold timer; "
                 "TC2/TC4: the failing router detects locally and "
                 "converges faster than detection.",
        ),
        grouped_bar_chart(
            "Fig. 5 — blast radius (routers that updated tables)",
            SeriesSet(CASES, names, series(lambda r: r.blast_radius)),
            unit="routers",
        ),
        grouped_bar_chart(
            "Fig. 6 — control overhead (bytes of update messages)",
            SeriesSet(CASES, names, series(lambda r: r.control_bytes)),
            unit="bytes",
            note="MR-MTP's cascade costs ~123 B in the 2-PoD "
                 "(paper: 120 B); BGP's is several times larger.",
        ),
        grouped_bar_chart(
            "Fig. 7 — packets lost, sender near the failure (1000 pps)",
            SeriesSet(CASES, names,
                      [[loss_near[(kind, case)].lost for case in CASES]
                       for kind in STACKS]),
            unit="packets",
            note="Loss is one failure-detection window of the flow: "
                 "100 ms (MR-MTP), ~300 ms (BFD) or the ~3 s hold time "
                 "(plain BGP).",
        ),
    ]
    out = render_report(
        f"MR-MTP vs BGP/ECMP/BFD — {args.pods}-PoD folded-Clos",
        "Reproduction of 'New Techniques to Route in Folded-Clos Topology "
        "Data Center Networks' (SC 2024); simulated fabric, paper timers "
        "(BGP 1 s/3 s, BFD 100 ms x3, MR-MTP 50 ms/100 ms).",
        blocks, args.out,
    )
    print(f"wrote {out} ({out.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
