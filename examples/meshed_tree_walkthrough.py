#!/usr/bin/env python3
"""Meshed-tree walkthrough: watch the trees grow message by message
(the paper's section III / Fig. 2 narrative) and see a data packet
forwarded by VIDs, with Wireshark-style dissection of the frames.

Run:  python examples/meshed_tree_walkthrough.py
"""

from repro.core.messages import MtpData, MtpKeepalive
from repro.harness.convergence import converge_from_cold
from repro.harness.deploy import deploy_mtp
from repro.net.capture import Capture
from repro.net.dissect import dissect, dissect_capture
from repro.net.world import World
from repro.sim.units import SECOND
from repro.stack.ethernet import ETHERTYPE_MTP
from repro.topology.clos import build_folded_clos, two_pod_params
from repro.traffic.generator import ReceiverAnalyzer, TrafficSender


def main() -> None:
    world = World(seed=7)
    topo = build_folded_clos(two_pod_params(), world=world)
    deployment = deploy_mtp(topo)

    # capture all MR-MTP control traffic on the first ToR's uplink
    tor = topo.tors[0][0][0]
    agg = topo.aggs[0][0][0]
    link = world.find_link(tor, agg)
    control_cap = Capture(
        frame_filter=lambda f: f.ethertype == ETHERTYPE_MTP
        and not isinstance(f.payload, (MtpKeepalive, MtpData)))
    control_cap.attach((link.end_a, link.end_b))

    deployment.start()
    converge_from_cold(world, deployment, deployment.trees_complete)

    print(f"=== tree construction on the {tor} <-> {agg} link ===")
    print(dissect_capture(
        (r for r in control_cap.records if r.direction.value == "tx"),
        limit=12))
    print()

    print(f"=== the resulting meshed-tree state ===")
    print(f"{tor} is the root of its tree with ToR VID "
          f"{deployment.mtp_nodes[tor].own_root}")
    print(f"\n{agg}'s VID table (one child VID per pod ToR):")
    print(deployment.mtp_nodes[agg].table.render())
    top = topo.tops[0][0][0]
    print(f"\n{top}'s VID table (the trees of all four ToRs mesh here):")
    print(deployment.mtp_nodes[top].table.render())
    print()

    # one data packet, dissected at the ToR uplink
    print("=== an encapsulated IP packet on the wire (section III.D) ===")
    from repro.harness.pathtrace import find_crossing_flow

    data_cap = Capture(frame_filter=lambda f: isinstance(f.payload, MtpData))
    data_cap.attach((link.end_a, link.end_b))
    src = topo.first_server_of(tor)
    dst = topo.first_server_of(topo.tors[0][1][1])
    analyzer = ReceiverAnalyzer(deployment.servers[dst].udp)
    # pick a flow that the ECMP hash sends over the captured uplink
    src_port = find_crossing_flow(deployment, src, dst, tor, agg)
    sender = TrafficSender(deployment.servers[src].udp,
                           topo.server_address(dst), gap_us=1000,
                           src_port=src_port)
    sender.start(count=8)
    world.run_for(1 * SECOND)
    if data_cap.records:
        print(dissect(data_cap.records[0].frame))
    else:
        print("(this flow hashed onto the other uplink — both are valid)")
    print()
    print(f"delivered: {analyzer.report(sender)}")

    # and the famous 1-byte keepalive (Fig. 10)
    print()
    print("=== the 1-byte keepalive (Fig. 10) ===")
    ka_cap = Capture(frame_filter=lambda f: isinstance(f.payload, MtpKeepalive))
    ka_cap.attach((link.end_a,))
    world.run_for(200_000)
    print(dissect(ka_cap.records[0].frame))


if __name__ == "__main__":
    main()
