#!/usr/bin/env python3
"""Scalability study (the paper's future work, section IX): grow the
fabric beyond the FABRIC testbed's 4-PoD limit and add a fourth tier,
tracking how MR-MTP's and BGP's failure-handling costs scale.

Run:  python examples/scalability_study.py [--max-pods 8]
"""

import argparse

from repro.harness.experiments import (
    StackKind,
    build_and_converge,
    run_failure_experiment,
)
from repro.harness.report import render_table
from repro.topology.clos import ClosParams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-pods", type=int, default=8)
    args = parser.parse_args()

    pods_sweep = [p for p in (2, 4, 6, 8, 12, 16) if p <= args.max_pods]
    rows = []
    for pods in pods_sweep:
        params = ClosParams(num_pods=pods)
        for kind in (StackKind.MTP, StackKind.BGP):
            r = run_failure_experiment(params, kind, "TC1")
            rows.append([pods, params.num_routers, kind.value,
                         f"{r.convergence_ms:.2f}", r.control_bytes,
                         r.blast_radius])
    print(render_table(
        "TC1 failure handling vs fabric size (3 tiers)",
        ["pods", "routers", "stack", "conv ms", "ctrl B", "blast"],
        rows,
        note="MR-MTP's convergence is dead-timer-flat; its control "
             "overhead grows with the ToR count but stays a small "
             "fraction of BGP's.",
    ))

    print()
    print("=== four tiers: two zones stitched by super-spines ===")
    params = ClosParams(num_pods=2, zones=2, supers_per_group=2)
    rows = []
    for kind in (StackKind.MTP, StackKind.BGP):
        world, topo, dep = build_and_converge(params, kind,
                                              max_converge_us=120_000_000)
        if kind is StackKind.MTP:
            sup = topo.all_supers()[0]
            table = dep.mtp_nodes[sup].table
            state = f"{table.entry_count()} VIDs, depth 4"
        else:
            sup = topo.all_supers()[0]
            state = f"{len(dep.stacks[sup].table)} routes"
        r = run_failure_experiment(params, kind, "TC1")
        rows.append([kind.value, len(topo.routers()), state,
                     f"{r.convergence_ms:.2f}", r.control_bytes])
    print(render_table(
        "4-tier fabric (2 zones x 2 PoDs + super-spines)",
        ["stack", "routers", "super-spine state", "conv ms", "ctrl B"],
        rows,
        note="VIDs simply grow one component per tier "
             "(root.torport.aggport.topport) — the auto-addressing "
             "scheme 'can easily scale to any number of spine tiers' "
             "(paper section III.B).",
    ))


if __name__ == "__main__":
    main()
