#!/usr/bin/env python3
"""Quickstart: build the paper's 2-PoD folded-Clos, run MR-MTP on it,
send traffic between racks, and look at the state the protocol built.

Run:  python examples/quickstart.py
"""

from repro.harness.convergence import converge_from_cold
from repro.harness.deploy import deploy_mtp
from repro.net.world import World
from repro.sim.units import SECOND
from repro.topology.clos import build_folded_clos, two_pod_params
from repro.topology.validate import validate_topology
from repro.traffic.generator import ReceiverAnalyzer, TrafficSender


def main() -> None:
    # 1. Build the fabric: 2 PoDs x (2 ToRs + 2 aggs) + 4 top spines,
    #    one server per rack, rack subnets 192.168.11-14.0/24.
    world = World(seed=42)
    topo = build_folded_clos(two_pod_params(), world=world)
    validate_topology(topo)
    print(topo.describe())
    print()

    # 2. Deploy MR-MTP everywhere (one JSON document configures the DCN)
    deployment = deploy_mtp(topo)
    print("MR-MTP configuration for the whole fabric (Listing 2):")
    print(deployment.config.render_json())
    print()

    # 3. Converge from cold: trees grow from every ToR and mesh at the
    #    spines.
    deployment.start()
    converge_from_cold(world, deployment, deployment.trees_complete)
    print(f"converged at t = {world.sim.now / 1e6:.3f} s (simulated)")
    print()

    # 4. Inspect the meshed-tree state.
    for tor in topo.all_tors():
        mtp = deployment.mtp_nodes[tor]
        print(f"{tor}: ToR VID {mtp.own_root} "
              f"(derived from {topo.rack_subnet[tor]})")
    print()
    top = topo.tops[0][0][0]
    print(f"VID table at top spine {top} (Listing 5 shape):")
    print(deployment.mtp_nodes[top].table.render())
    print()

    # 5. Send traffic between the first and last racks.
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[0][1][1])
    sender = TrafficSender(deployment.servers[src].udp,
                           topo.server_address(dst), gap_us=1000)
    analyzer = ReceiverAnalyzer(deployment.servers[dst].udp)
    sender.start(count=1000)
    world.run_for(2 * SECOND)
    print(f"traffic {src} -> {dst}: {analyzer.report(sender)}")


if __name__ == "__main__":
    main()
