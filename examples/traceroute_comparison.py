#!/usr/bin/env python3
"""Ping and traceroute through both fabrics.

Shows a qualitative difference the paper implies but never draws: under
BGP the fabric is a chain of IP routers (traceroute reveals five hops);
under MR-MTP the fabric forwards encapsulated frames without touching
the inner IP header — one logical hop, like the VXLAN overlay the paper
assumes for inter-rack VM traffic (section III.A).

Run:  python examples/traceroute_comparison.py
"""

from repro.harness.experiments import StackKind, build_and_converge
from repro.iputil.probes import Pinger, Traceroute
from repro.sim.units import SECOND
from repro.topology.clos import two_pod_params


def probe(kind: StackKind) -> None:
    print(f"===== {kind.value} =====")
    world, topo, dep = build_and_converge(two_pod_params(), kind)
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[0][1][1])
    dst_ip = topo.server_address(dst)
    stack = dep.servers[src].stack

    ping_done = []
    Pinger(stack, dst_ip, count=5, on_done=ping_done.append).start()
    world.run_for(3 * SECOND)
    result = ping_done[0]
    print(f"ping {dst_ip}: {result.received}/{result.sent} replies, "
          f"avg rtt {result.avg_rtt_us / 1000:.3f} ms")

    trace = Traceroute(stack, dst_ip)
    trace.start()
    world.run_for(15 * SECOND)
    print(trace.render())
    print()


def main() -> None:
    for kind in (StackKind.BGP, StackKind.MTP):
        probe(kind)
    print("note: MR-MTP spines never decrement the inner TTL — the whole")
    print("fabric is one IP hop, which is also why it needs no ARP, no IP")
    print("addressing and no routing protocol between the spines.")


if __name__ == "__main__":
    main()
