#!/usr/bin/env python3
"""The paper's full evaluation in one run: convergence time (Fig. 4),
blast radius (Fig. 5) and control overhead (Fig. 6) for the 2-PoD and
4-PoD fabrics under MR-MTP, BGP/ECMP and BGP/ECMP/BFD, plus the
configuration (Listings 1/2) and table-size (Listings 3/5) comparisons.

Run:  python examples/protocol_comparison.py           (2-PoD, seed 0)
      python examples/protocol_comparison.py --pods 4 --seeds 0 1 2
"""

import argparse

from repro.harness.experiments import (
    StackKind,
    average_failure_runs,
    run_config_cost_experiment,
    run_failure_experiment,
    run_table_size_experiment,
)
from repro.harness.report import render_table
from repro.topology.clos import ClosParams

CASES = ("TC1", "TC2", "TC3", "TC4")
STACKS = (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0])
    args = parser.parse_args()
    params = ClosParams(num_pods=args.pods)

    results = {}
    for kind in STACKS:
        for case in CASES:
            if len(args.seeds) == 1:
                results[(kind, case)] = run_failure_experiment(
                    params, kind, case, seed=args.seeds[0])
            else:
                results[(kind, case)] = average_failure_runs(
                    params, kind, case, seeds=tuple(args.seeds))

    print(render_table(
        f"Fig. 4 — convergence time (ms), {args.pods}-PoD",
        ["stack", *CASES],
        [[k.value] + [f"{results[(k, c)].convergence_ms:.2f}" for c in CASES]
         for k in STACKS],
    ))
    print()
    print(render_table(
        f"Fig. 5 — blast radius (routers updated), {args.pods}-PoD",
        ["stack", *CASES],
        [[k.value] + [results[(k, c)].blast_radius for c in CASES]
         for k in STACKS],
    ))
    print()
    print(render_table(
        f"Fig. 6 — control overhead (bytes), {args.pods}-PoD",
        ["stack", *CASES],
        [[k.value] + [results[(k, c)].control_bytes for c in CASES]
         for k in STACKS],
    ))

    print()
    config_rows = []
    for kind in (StackKind.MTP, StackKind.BGP):
        r = run_config_cost_experiment(params, kind)
        config_rows.append([kind.value, r.routers, r.documents,
                            r.total_lines, f"{r.lines_per_router:.1f}"])
    print(render_table(
        f"Listings 1/2 — configuration cost, {args.pods}-PoD",
        ["stack", "routers", "documents", "total lines", "lines/router"],
        config_rows,
    ))

    print()
    table_rows = []
    for kind in (StackKind.MTP, StackKind.BGP):
        sizes = run_table_size_experiment(params, kind)
        for role in ("agg", "top"):
            r = sizes[role]
            table_rows.append([kind.value, role, r.node, r.entries,
                               r.memory_bytes])
    print(render_table(
        f"Listings 3/5 — forwarding-table sizes, {args.pods}-PoD",
        ["stack", "role", "node", "entries", "bytes"],
        table_rows,
    ))


if __name__ == "__main__":
    main()
