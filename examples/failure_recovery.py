#!/usr/bin/env python3
"""Failure-recovery walkthrough: inject the paper's TC1 interface
failure under each protocol stack and print the event timeline —
detection, update cascade, convergence.

Run:  python examples/failure_recovery.py [TC1|TC2|TC3|TC4]
"""

import sys

from repro.harness.convergence import ConvergenceMonitor
from repro.harness.experiments import (
    StackKind,
    StackTimers,
    build_and_converge,
    detection_bound_us,
)
from repro.harness.failures import FailureInjector
from repro.harness.metrics import blast_radius, snapshot_table_change_counts
from repro.sim.units import SECOND

TIMELINE_CATEGORIES = (
    "fail.inject",
    "iface.down",
    "bgp.session",
    "bgp.bfd",
    "bgp.holdtime",
    "bgp.update.tx",
    "bfd.detect",
    "mtp.neighbor",
    "mtp.update.tx",
    "mtp.table",
)


def run_case(kind: StackKind, case_name: str) -> None:
    print(f"\n===== {kind.value}, failure case {case_name} =====")
    timers = StackTimers()
    world, topo, deployment = build_and_converge(two_pod(), kind,
                                                 timers=timers)
    case = topo.failure_cases()[case_name]
    print(f"failing {case.node}:{case.interface} ({case.description}); "
          f"peer {case.peer_node} must detect via its timers")

    monitor = ConvergenceMonitor(world, deployment.update_categories())
    before = snapshot_table_change_counts(deployment.forwarding_tables())
    injector = FailureInjector(world)
    monitor.arm()
    t0 = world.sim.now
    injector.fail_case(topo, case)
    monitor.run_until_quiet(
        quiet_us=1 * SECOND,
        min_wait_us=detection_bound_us(kind, timers) + SECOND,
    )

    print("\ntimeline (ms after failure):")
    shown = 0
    for rec in world.trace.select(since=t0):
        if rec.category not in TIMELINE_CATEGORIES:
            continue
        shown += 1
        if shown > 30:
            print("    ...")
            break
        extra = f" [{rec.data['bytes']} B]" if "bytes" in rec.data else ""
        print(f"  {(rec.time - t0) / 1000:>10.3f}  {rec.node:<7s} "
              f"{rec.category:<15s} {rec.message}{extra}")

    conv = monitor.convergence_time_us()
    blast = blast_radius(before, deployment.forwarding_tables())
    print(f"\nconvergence time : "
          f"{conv / 1000:.2f} ms" if conv is not None else "no updates seen")
    print(f"control overhead : {monitor.update_bytes} B "
          f"in {monitor.update_count} update messages")
    print(f"blast radius     : {len(blast)} routers updated tables: {blast}")


def two_pod():
    from repro.topology.clos import two_pod_params

    return two_pod_params()


def main() -> None:
    case = sys.argv[1] if len(sys.argv) > 1 else "TC1"
    if case not in ("TC1", "TC2", "TC3", "TC4"):
        raise SystemExit(f"unknown case {case}")
    for kind in (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD):
        run_case(kind, case)


if __name__ == "__main__":
    main()
