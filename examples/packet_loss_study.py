#!/usr/bin/env python3
"""Packet-loss study (the paper's Figs. 7 and 8): a server flow crosses
the failed link while the fabric reconverges; the receiver-side analyzer
counts what the failure cost.

Run:  python examples/packet_loss_study.py [--pods 2] [--rate 1000]
"""

import argparse

from repro.harness.experiments import StackKind, run_packet_loss_experiment
from repro.harness.report import render_table
from repro.topology.clos import ClosParams

CASES = ("TC1", "TC2", "TC3", "TC4")
STACKS = (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pods", type=int, default=2)
    parser.add_argument("--rate", type=int, default=1000,
                        help="packets per second")
    args = parser.parse_args()
    params = ClosParams(num_pods=args.pods)

    for direction, figure in (("near", "Fig. 7"), ("far", "Fig. 8")):
        rows = []
        for kind in STACKS:
            row = [kind.value]
            for case in CASES:
                result = run_packet_loss_experiment(
                    params, kind, case, direction=direction,
                    rate_pps=args.rate)
                row.append(result.lost)
            rows.append(row)
        where = ("sender adjoins the failure" if direction == "near"
                 else "sender far from the failure")
        print(render_table(
            f"{figure} — packets lost ({where}), {args.pods}-PoD, "
            f"{args.rate} pps",
            ["stack", *CASES], rows,
        ))
        print()

    print("Reading the shape (as in the paper):")
    print(" * near sender: TC1/TC3 lose ~nothing (the failure is detected")
    print("   locally and traffic switches instantly); TC2/TC4 lose one")
    print("   dead-timer's worth — 100 ms for MR-MTP, ~300 ms for BGP+BFD,")
    print("   the full ~3 s hold time for plain BGP.")
    print(" * far sender: the lossy cases flip to TC1/TC3, where the")
    print("   down-forwarding routers are unaware until their timers fire.")


if __name__ == "__main__":
    main()
