#!/usr/bin/env python3
"""Multi-seed study with timing noise: the paper averages its plotted
values over multiple runs on a noisy testbed; this example turns on the
simulator's seeded timing jitter (VM-scheduling noise on hello cadence
and update processing) and reports mean ± stdev per stack, plus the
MR-MTP speedup factors.

Run:  python examples/multi_seed_study.py [--seeds 5] [--jitter 0.3]
"""

import argparse

from repro.bgp.config import BgpTimers
from repro.core.config import MtpTimers
from repro.harness.analysis import compare_stacks, speedup
from repro.harness.experiments import StackTimers
from repro.harness.report import render_table
from repro.stacks import get_stack
from repro.topology.clos import two_pod_params


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument("--jitter", type=float, default=0.3,
                        help="timing noise fraction (0..1)")
    args = parser.parse_args()

    timers = StackTimers(
        bgp=BgpTimers(jitter=args.jitter),
        mtp=MtpTimers(jitter=args.jitter),
    )
    params = two_pod_params()
    seeds = range(args.seeds)

    for case in ("TC1", "TC2"):
        studies = compare_stacks(params, case, seeds, timers=timers)
        rows = [
            [get_stack(name).display,
             str(study.convergence_ms),
             str(study.control_bytes),
             str(study.blast_radius)]
            for name, study in studies.items()
        ]
        print(render_table(
            f"{case} over {args.seeds} seeds, jitter {args.jitter:.0%} "
            f"(mean ± stdev)",
            ["stack", "conv ms", "ctrl B", "blast"],
            rows,
        ))
        mtp = studies["mtp"]
        if mtp.convergence_ms.mean > 0:
            print(f"  MR-MTP convergence speedup: "
                  f"{speedup(studies['bgp'].convergence_ms, mtp.convergence_ms):.1f}x vs BGP, "
                  f"{speedup(studies['bgp-bfd'].convergence_ms, mtp.convergence_ms):.1f}x vs BGP+BFD")
        print(f"  MR-MTP overhead advantage : "
              f"{speedup(studies['bgp'].control_bytes, mtp.control_bytes):.1f}x fewer bytes than BGP")
        print()


if __name__ == "__main__":
    main()
