#!/usr/bin/env python3
"""Export real .pcap files from a simulated run — the paper's capture
methodology end to end.  Produces one capture per protocol stack on the
first ToR-agg link (bring-up + steady state + a TC2 failure), openable
directly in Wireshark/tshark.

Run:  python examples/export_pcap.py [--outdir captures]
"""

import argparse
from pathlib import Path

from repro.harness.experiments import StackKind, build_and_converge
from repro.net.capture import Capture
from repro.net.dissect import dissect_capture
from repro.sim.units import SECOND
from repro.topology.clos import two_pod_params
from repro.wire.pcap import write_capture


def capture_run(kind: StackKind, outdir: Path) -> Path:
    world, topo, dep = build_and_converge(two_pod_params(), kind)
    tor, agg = topo.tors[0][0][0], topo.aggs[0][0][0]
    link = world.find_link(tor, agg)
    cap = Capture()
    cap.attach((link.end_a, link.end_b))
    # two seconds of steady state, then the TC2 failure and its recovery
    world.run_for(2 * SECOND)
    case = topo.failure_cases()["TC2"]
    topo.node(case.node).interfaces[case.interface].set_admin(False)
    world.run_for(4 * SECOND)
    name = kind.name.lower().replace("_", "-")
    path = outdir / f"{name}_tor_agg_link.pcap"
    count = write_capture(cap, path)
    print(f"{kind.value}: wrote {count} frames to {path}")
    print(dissect_capture(
        (r for r in cap.records if r.direction.value == "tx"), limit=8))
    print()
    return path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", type=Path, default=Path("captures"))
    args = parser.parse_args()
    args.outdir.mkdir(parents=True, exist_ok=True)
    for kind in (StackKind.MTP, StackKind.BGP, StackKind.BGP_BFD):
        capture_run(kind, args.outdir)
    print(f"open them with: wireshark {args.outdir}/*.pcap")
    print("(MR-MTP frames appear as ethertype 0x8850 raw data — the "
          "keepalives show the single byte 06, as in the paper's Fig. 10)")


if __name__ == "__main__":
    main()
