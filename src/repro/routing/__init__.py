"""IP routing substrate: longest-prefix-match tables with ECMP next-hop
sets and deterministic 5-tuple hashing (the kernel-fib analogue under the
BGP baseline)."""

from repro.routing.table import NextHop, Route, RoutingTable
from repro.routing.ecmp import ecmp_hash, FlowKey

__all__ = ["NextHop", "Route", "RoutingTable", "ecmp_hash", "FlowKey"]
