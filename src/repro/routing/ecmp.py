"""ECMP flow hashing.

Deterministic per-flow next-hop selection over the classic 5-tuple, with a
per-node salt so different routers spread the same flow differently (as
independent hardware hash seeds do).  Both the kernel-style FIB under BGP
and MR-MTP's "hash algorithm to load balance traffic from a downstream
router to upstream routers" use this function, keeping the load-balancing
substrate identical across protocols — the comparison the paper makes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class FlowKey:
    """The hashed 5-tuple.  Ports are 0 for non-TCP/UDP traffic."""

    src: int        # source address (IPv4 int or ToR VID ordinal)
    dst: int
    proto: int = 0
    src_port: int = 0
    dst_port: int = 0

    def pack(self) -> bytes:
        return (
            self.src.to_bytes(8, "little", signed=False)
            + self.dst.to_bytes(8, "little", signed=False)
            + self.proto.to_bytes(2, "little")
            + self.src_port.to_bytes(2, "little")
            + self.dst_port.to_bytes(2, "little")
        )


def ecmp_hash(key: FlowKey, n_choices: int, salt: int = 0) -> int:
    """Map a flow onto one of ``n_choices`` next hops.

    A *keyed* hash (blake2b with the salt as key), not a CRC: linear
    hashes make per-node salts mere XOR offsets of each other, so every
    flow that hashed left at tier N would hash the same way at tier N+1
    — the classic ECMP-polarization pathology, which real switches avoid
    exactly this way (per-device hash seeds feeding a non-linear hash).
    """
    if n_choices <= 0:
        raise ValueError("n_choices must be positive")
    if n_choices == 1:
        return 0
    digest = hashlib.blake2b(
        key.pack(),
        digest_size=8,
        key=salt.to_bytes(8, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little") % n_choices
