"""Longest-prefix-match routing table with ECMP next-hop sets.

This is the "kernel FIB" each node consults on the BGP data path.  It
tracks a change counter and timestamps so the harness can compute the
paper's blast radius ("the number of routers that updated their routing
tables subsequent to a topology change") without instrumenting protocol
internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.stack.addresses import Ipv4Address, Ipv4Network
from repro.routing.ecmp import FlowKey, ecmp_hash


@dataclass(frozen=True)
class NextHop:
    """A forwarding choice: out this interface, optionally via a gateway.

    ``via`` is None for connected routes (deliver on-subnet).
    """

    interface: str
    via: Optional[Ipv4Address] = None

    def __str__(self) -> str:
        if self.via is None:
            return f"dev {self.interface}"
        return f"via {self.via} dev {self.interface}"


@dataclass
class Route:
    prefix: Ipv4Network
    nexthops: tuple[NextHop, ...]
    proto: str = "static"      # "connected" | "static" | "bgp" | ...
    metric: int = 0

    def __post_init__(self) -> None:
        if not self.nexthops:
            raise ValueError(f"route to {self.prefix} with no nexthops")

    def render(self) -> str:
        """`ip route`-style rendering (the paper's Listing 3 format)."""
        head = f"{self.prefix} proto {self.proto} metric {self.metric}"
        if len(self.nexthops) == 1:
            return f"{head} {self.nexthops[0]}"
        lines = [head]
        for nh in self.nexthops:
            lines.append(f"    nexthop {nh} weight 1")
        return "\n".join(lines)


class RoutingTable:
    """LPM table keyed by (prefix).  One route per prefix; ECMP is a
    multi-nexthop route, as in the Linux FIB."""

    def __init__(self, name: str = "", sim=None, salt: int = 0) -> None:
        self.name = name
        self.sim = sim  # optional: timestamps for change tracking
        self.salt = salt
        self._routes: dict[Ipv4Network, Route] = {}
        # ordered prefix lengths present, longest first, for LPM
        self._lengths: list[int] = []
        self.change_count = 0
        self.last_change_time: Optional[int] = None
        # optional gray-failure depreference hook (DESIGN §14): a
        # predicate ``interface name -> bool`` marking next hops to
        # avoid.  ECMP then hashes over the unbiased subset when one
        # exists — the route itself stays installed (no churn).
        self.nexthop_bias: Optional[Callable[[str], bool]] = None

    # ------------------------------------------------------------------
    def _note_change(self) -> None:
        self.change_count += 1
        if self.sim is not None:
            self.last_change_time = self.sim.now

    def _refresh_lengths(self) -> None:
        self._lengths = sorted({p.prefix_len for p in self._routes}, reverse=True)

    # ------------------------------------------------------------------
    def install(self, route: Route) -> None:
        """Insert or replace the route for ``route.prefix``.  A replace
        with identical content is a no-op (no spurious blast-radius hit)."""
        existing = self._routes.get(route.prefix)
        if existing is not None and (
            existing.nexthops == route.nexthops
            and existing.proto == route.proto
            and existing.metric == route.metric
        ):
            return
        self._routes[route.prefix] = route
        self._refresh_lengths()
        self._note_change()

    def withdraw(self, prefix: Ipv4Network) -> bool:
        """Remove the route for ``prefix``; True if something was removed."""
        if prefix in self._routes:
            del self._routes[prefix]
            self._refresh_lengths()
            self._note_change()
            return True
        return False

    def flush_proto(self, proto: str) -> list[Ipv4Network]:
        """Remove every route learned from ``proto`` *in place* (the
        table object survives: a cold boot wipes state, not identity, so
        change counters stay monotonic and holders keep their reference).
        Returns the withdrawn prefixes."""
        doomed = [p for p, r in self._routes.items() if r.proto == proto]
        for prefix in doomed:
            del self._routes[prefix]
        if doomed:
            self._refresh_lengths()
            self._note_change()
        return doomed

    def get(self, prefix: Ipv4Network) -> Optional[Route]:
        return self._routes.get(prefix)

    def routes(self) -> list[Route]:
        return sorted(self._routes.values(), key=lambda r: r.prefix)

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Ipv4Network) -> bool:
        return prefix in self._routes

    # ------------------------------------------------------------------
    def lookup(self, dst: Ipv4Address) -> Optional[Route]:
        """Longest-prefix match."""
        for length in self._lengths:
            candidate = Ipv4Network.of(dst, length)
            route = self._routes.get(candidate)
            if route is not None:
                return route
        return None

    def select_nexthop(self, dst: Ipv4Address, flow: FlowKey) -> Optional[NextHop]:
        """LPM + ECMP hash over the matched route's next hops."""
        route = self.lookup(dst)
        if route is None:
            return None
        nexthops = self.usable_nexthops(route)
        index = ecmp_hash(flow, len(nexthops), salt=self.salt)
        return nexthops[index]

    def usable_nexthops(self, route: Route) -> tuple[NextHop, ...]:
        """The next-hop set ECMP actually hashes over: the installed set
        minus biased-against (degraded) interfaces, unless that would
        empty it — a degraded path still beats no path."""
        if self.nexthop_bias is None or len(route.nexthops) < 2:
            return route.nexthops
        bias = self.nexthop_bias
        preferred = tuple(nh for nh in route.nexthops
                          if not bias(nh.interface))
        if preferred and len(preferred) < len(route.nexthops):
            return preferred
        return route.nexthops

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Full `ip route`-style dump (Listing 3)."""
        return "\n".join(route.render() for route in self.routes())

    def memory_bytes(self) -> int:
        """Rough storage cost: 8 B per prefix + 12 B per next hop — the
        'storage needs' comparison in the paper's section VII.H."""
        return sum(8 + 12 * len(r.nexthops) for r in self._routes.values())
