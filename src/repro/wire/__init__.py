"""Wire serialization and pcap export.

Turns simulated frames into the real octets they model — Ethernet, ARP,
IPv4 (with header checksums), UDP/TCP (with pseudo-header checksums),
BFD, BGP (via :mod:`repro.bgp.encoding`) and MR-MTP — and writes classic
``.pcap`` files, so a simulated capture opens in Wireshark exactly like
the paper's Figs. 9/10 captures do (MR-MTP frames show as ethertype
0x8850 raw data, starting with the famous ``06`` keepalive byte).
"""

from repro.wire.codec import (
    encode_frame,
    decode_frame,
    encode_mtp_message,
    decode_mtp_message,
    encode_bfd,
    decode_bfd,
)
from repro.wire.pcap import PcapWriter, write_capture

__all__ = [
    "encode_frame",
    "decode_frame",
    "encode_mtp_message",
    "decode_mtp_message",
    "encode_bfd",
    "decode_bfd",
    "PcapWriter",
    "write_capture",
]
