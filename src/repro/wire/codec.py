"""Byte-level encoding/decoding of simulated frames.

Encoding is exact: real header layouts, real checksums.  Decoding uses
the same context a dissector would (ethertype, IP protocol, well-known
ports) to rebuild the simulator's typed objects, and round-trips
everything the simulator can send.

Payload bodies the simulator models only by *size* (``RawBytes``,
``SeqPayload``) encode as zero padding (with the sequence number in the
first 8 bytes for ``SeqPayload``), so their lengths — what every byte
count in the paper depends on — are preserved exactly.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.stack.addresses import Ipv4Address, MacAddress
from repro.stack.arp import ArpMessage, ArpOp
from repro.stack.ethernet import (
    ETHERNET_MIN_FRAME_BYTES,
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_MTP,
    EthernetFrame,
)
from repro.stack.icmp import IcmpMessage, IcmpType
from repro.stack.ipv4 import Ipv4Packet, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.stack.payload import Payload, RawBytes
from repro.stack.tcp_segment import (
    TCP_HEADER_BYTES,
    TCP_SYN_HEADER_BYTES,
    TcpFlags,
    TcpSegment,
)
from repro.stack.udp import UdpDatagram
from repro.bfd.messages import BFD_PORT, BFD_VERSION, BfdControlPacket, BfdState
from repro.bgp.encoding import decode_message as decode_bgp
from repro.bgp.encoding import encode_message as encode_bgp
from repro.bgp.messages import BGP_PORT, BgpMessage
from repro.core.messages import (
    MtpAccept,
    MtpAdvertise,
    MtpData,
    MtpFullHello,
    MtpJoin,
    MtpKeepalive,
    MtpMessage,
    MtpOffer,
    MtpRestored,
    MtpRestoredDefault,
    MtpUnreachable,
    MtpUnreachableDefault,
    MtpUpdateLost,
    TYPE_ACCEPT,
    TYPE_ADVERTISE,
    TYPE_DATA,
    TYPE_FULL_HELLO,
    TYPE_JOIN,
    TYPE_KEEPALIVE,
    TYPE_OFFER,
    TYPE_RESTORED,
    TYPE_RESTORED_DEFAULT,
    TYPE_UNREACHABLE,
    TYPE_UNREACHABLE_DEFAULT,
    TYPE_UPDATE_LOST,
)
from repro.core.vid import Vid
from repro.traffic.generator import DEFAULT_TRAFFIC_PORT, SeqPayload


class WireError(ValueError):
    """Encoding/decoding failure."""


# ----------------------------------------------------------------------
# checksums
# ----------------------------------------------------------------------
def internet_checksum(blob: bytes) -> int:
    """RFC 1071 ones'-complement sum."""
    if len(blob) % 2:
        blob += b"\x00"
    total = sum(struct.unpack(f"!{len(blob) // 2}H", blob))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _pseudo_header(src: Ipv4Address, dst: Ipv4Address, proto: int,
                   length: int) -> bytes:
    return struct.pack("!IIBBH", src.value, dst.value, 0, proto, length)


# ----------------------------------------------------------------------
# opaque payloads
# ----------------------------------------------------------------------
def _encode_body(payload: Payload) -> bytes:
    if isinstance(payload, SeqPayload):
        return struct.pack("!Q", payload.seq) + b"\x00" * (payload.size - 8)
    if isinstance(payload, RawBytes):
        return b"\x00" * payload.size
    raise WireError(f"cannot encode payload {payload!r}")


def _decode_body(blob: bytes, dst_port: Optional[int] = None) -> Payload:
    if dst_port == DEFAULT_TRAFFIC_PORT and len(blob) >= 8:
        seq = struct.unpack("!Q", blob[:8])[0]
        return SeqPayload(seq=seq, size=len(blob))
    return RawBytes(len(blob))


# ----------------------------------------------------------------------
# BFD (RFC 5880 section 4.1)
# ----------------------------------------------------------------------
def encode_bfd(packet: BfdControlPacket) -> bytes:
    flags = (packet.poll << 5) | (packet.final << 4)
    byte0 = (BFD_VERSION << 5) | 0  # diag "no diagnostic"
    byte1 = (int(packet.state) << 6) | flags
    return struct.pack(
        "!BBBBIIIII",
        byte0, byte1, packet.detect_mult, 24,
        packet.my_discriminator, packet.your_discriminator,
        packet.desired_min_tx_us, packet.required_min_rx_us, 0,
    )


def decode_bfd(blob: bytes) -> BfdControlPacket:
    if len(blob) < 24:
        raise WireError("short BFD packet")
    byte0, byte1, mult, length, my, your, tx, rx, _echo = struct.unpack(
        "!BBBBIIIII", blob[:24])
    if byte0 >> 5 != BFD_VERSION:
        raise WireError(f"bad BFD version {byte0 >> 5}")
    if length != len(blob):
        raise WireError("BFD length mismatch")
    return BfdControlPacket(
        state=BfdState(byte1 >> 6),
        detect_mult=mult,
        my_discriminator=my,
        your_discriminator=your,
        desired_min_tx_us=tx,
        required_min_rx_us=rx,
        poll=bool(byte1 & 0x20),
        final=bool(byte1 & 0x10),
    )


# ----------------------------------------------------------------------
# MR-MTP
# ----------------------------------------------------------------------
def _encode_vids(vids) -> bytes:
    return bytes([len(vids)]) + b"".join(v.encode() for v in vids)


def _decode_vids(blob: bytes, offset: int) -> tuple[tuple[Vid, ...], int]:
    count = blob[offset]
    offset += 1
    vids = []
    for _ in range(count):
        vid, offset = Vid.decode(blob, offset)
        vids.append(vid)
    return tuple(vids), offset


def _encode_roots(roots) -> bytes:
    out = bytearray([len(roots)])
    for root in roots:
        if root < 255:
            out.append(root)
        else:
            out += bytes([255, root >> 8, root & 0xFF])
    return bytes(out)


def _decode_roots(blob: bytes, offset: int) -> tuple[tuple[int, ...], int]:
    count = blob[offset]
    offset += 1
    roots = []
    for _ in range(count):
        value = blob[offset]
        offset += 1
        if value == 255:
            value = (blob[offset] << 8) | blob[offset + 1]
            offset += 2
        roots.append(value)
    return tuple(roots), offset


_VID_LIST_TYPES = {
    TYPE_ADVERTISE: MtpAdvertise,
    TYPE_JOIN: MtpJoin,
    TYPE_OFFER: MtpOffer,
    TYPE_ACCEPT: MtpAccept,
    TYPE_UPDATE_LOST: MtpUpdateLost,
}
_ROOT_LIST_TYPES = {
    TYPE_UNREACHABLE: MtpUnreachable,
    TYPE_RESTORED: MtpRestored,
}


def encode_mtp_message(message: MtpMessage) -> bytes:
    head = bytes([message.type_code])
    if isinstance(message, (MtpKeepalive, MtpRestoredDefault)):
        return head
    if isinstance(message, MtpFullHello):
        return head + bytes([message.tier, message.gen & 0xFF])
    if isinstance(message, MtpUnreachableDefault):
        return head + _encode_roots(message.except_roots)
    if isinstance(message, tuple(_VID_LIST_TYPES.values())):
        return head + _encode_vids(message.vids)
    if isinstance(message, tuple(_ROOT_LIST_TYPES.values())):
        return head + _encode_roots(message.roots)
    if isinstance(message, MtpData):
        return (head
                + _encode_roots((message.src_root,))
                + _encode_roots((message.dst_root,))
                + encode_ipv4(message.packet))
    raise WireError(f"cannot encode MTP message {message!r}")


def decode_mtp_message(blob: bytes) -> MtpMessage:
    if not blob:
        raise WireError("empty MTP payload")
    type_code = blob[0]
    if type_code == TYPE_KEEPALIVE:
        return MtpKeepalive()
    if type_code == TYPE_RESTORED_DEFAULT:
        return MtpRestoredDefault()
    if type_code == TYPE_UNREACHABLE_DEFAULT:
        roots, _ = _decode_roots(blob, 1)
        return MtpUnreachableDefault(except_roots=roots)
    if type_code == TYPE_FULL_HELLO:
        return MtpFullHello(tier=blob[1], gen=blob[2])
    if type_code in _VID_LIST_TYPES:
        vids, _ = _decode_vids(blob, 1)
        return _VID_LIST_TYPES[type_code](vids=vids)
    if type_code in _ROOT_LIST_TYPES:
        roots, _ = _decode_roots(blob, 1)
        return _ROOT_LIST_TYPES[type_code](roots=roots)
    if type_code == TYPE_DATA:
        (src_root,), offset = _decode_roots(blob, 1)
        (dst_root,), offset = _decode_roots(blob, offset)
        packet = decode_ipv4(blob[offset:])
        return MtpData(src_root=src_root, dst_root=dst_root, packet=packet)
    raise WireError(f"unknown MTP type {type_code:#x}")


# ----------------------------------------------------------------------
# ICMP (RFC 792)
# ----------------------------------------------------------------------
def encode_icmp(message: IcmpMessage) -> bytes:
    body = b"\x00" * (message.quoted_bytes + message.data_bytes)
    header = struct.pack("!BBHHH", int(message.icmp_type), 0, 0,
                         message.identifier, message.sequence)
    checksum = internet_checksum(header + body)
    header = struct.pack("!BBHHH", int(message.icmp_type), 0, checksum,
                         message.identifier, message.sequence)
    return header + body


def decode_icmp(blob: bytes) -> IcmpMessage:
    if len(blob) < 8:
        raise WireError("short ICMP message")
    icmp_type, _code, _checksum, identifier, sequence = struct.unpack(
        "!BBHHH", blob[:8])
    kind = IcmpType(icmp_type)
    rest = len(blob) - 8
    if kind in (IcmpType.ECHO_REQUEST, IcmpType.ECHO_REPLY):
        return IcmpMessage(kind, identifier=identifier, sequence=sequence,
                           data_bytes=rest)
    return IcmpMessage(kind, quoted_bytes=rest)


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
def encode_udp(datagram: UdpDatagram, src: Ipv4Address, dst: Ipv4Address) -> bytes:
    if isinstance(datagram.payload, BfdControlPacket):
        body = encode_bfd(datagram.payload)
    else:
        body = _encode_body(datagram.payload)
    length = 8 + len(body)
    header = struct.pack("!HHHH", datagram.src_port, datagram.dst_port,
                         length, 0)
    checksum = internet_checksum(
        _pseudo_header(src, dst, PROTO_UDP, length) + header + body)
    header = struct.pack("!HHHH", datagram.src_port, datagram.dst_port,
                         length, checksum)
    return header + body


def decode_udp(blob: bytes) -> UdpDatagram:
    src_port, dst_port, length, _checksum = struct.unpack("!HHHH", blob[:8])
    body = blob[8:length]
    if dst_port == BFD_PORT or src_port == BFD_PORT:
        payload: Payload = decode_bfd(body)
    else:
        payload = _decode_body(body, dst_port)
    return UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)


_TS_OPTION = b"\x01\x01\x08\x0a" + b"\x00" * 8  # NOP NOP TS(10 bytes)


def encode_tcp(segment: TcpSegment, src: Ipv4Address, dst: Ipv4Address) -> bytes:
    flags = 0
    if TcpFlags.FIN in segment.flags:
        flags |= 0x01
    if TcpFlags.SYN in segment.flags:
        flags |= 0x02
    if TcpFlags.RST in segment.flags:
        flags |= 0x04
    if TcpFlags.PSH in segment.flags:
        flags |= 0x08
    if TcpFlags.ACK in segment.flags:
        flags |= 0x10
    if TcpFlags.SYN in segment.flags:
        # MSS(4) WS(3) NOP(1) SACK-permitted(2) TS(10) = 20 option bytes
        options = (b"\x02\x04\x05\xb4"      # MSS 1460
                   + b"\x03\x03\x07"          # window scale 7
                   + b"\x01"                  # NOP
                   + b"\x04\x02"              # SACK permitted
                   + b"\x08\x0a" + b"\x00" * 8)  # timestamps
        header_len = TCP_SYN_HEADER_BYTES
    else:
        options = _TS_OPTION
        header_len = TCP_HEADER_BYTES
    if isinstance(segment.payload, BgpMessage):
        body = encode_bgp(segment.payload)
    else:
        body = _encode_body(segment.payload)
    offset_flags = ((header_len // 4) << 12) | flags
    header = struct.pack(
        "!HHIIHHHH", segment.src_port, segment.dst_port,
        segment.seq & 0xFFFFFFFF, segment.ack & 0xFFFFFFFF,
        offset_flags, segment.window, 0, 0,
    ) + options
    blob = header + body
    checksum = internet_checksum(
        _pseudo_header(src, dst, PROTO_TCP, len(blob)) + blob)
    header = struct.pack(
        "!HHIIHHHH", segment.src_port, segment.dst_port,
        segment.seq & 0xFFFFFFFF, segment.ack & 0xFFFFFFFF,
        offset_flags, segment.window, checksum, 0,
    ) + options
    return header + body


def decode_tcp(blob: bytes) -> TcpSegment:
    (src_port, dst_port, seq, ack, offset_flags, window, _checksum,
     _urgent) = struct.unpack("!HHIIHHHH", blob[:20])
    header_len = (offset_flags >> 12) * 4
    raw_flags = offset_flags & 0x3F
    flags = TcpFlags.NONE
    if raw_flags & 0x01:
        flags |= TcpFlags.FIN
    if raw_flags & 0x02:
        flags |= TcpFlags.SYN
    if raw_flags & 0x04:
        flags |= TcpFlags.RST
    if raw_flags & 0x08:
        flags |= TcpFlags.PSH
    if raw_flags & 0x10:
        flags |= TcpFlags.ACK
    body = blob[header_len:]
    payload: Payload
    if body and BGP_PORT in (src_port, dst_port):
        payload = decode_bgp(body)
    else:
        payload = _decode_body(body)
    return TcpSegment(src_port=src_port, dst_port=dst_port, seq=seq,
                      ack=ack, flags=flags, payload=payload, window=window)


# ----------------------------------------------------------------------
# network layer
# ----------------------------------------------------------------------
def encode_ipv4(packet: Ipv4Packet) -> bytes:
    if isinstance(packet.payload, UdpDatagram):
        body = encode_udp(packet.payload, packet.src, packet.dst)
    elif isinstance(packet.payload, TcpSegment):
        body = encode_tcp(packet.payload, packet.src, packet.dst)
    elif isinstance(packet.payload, IcmpMessage):
        body = encode_icmp(packet.payload)
    else:
        body = _encode_body(packet.payload)
    total_len = 20 + len(body)
    header = struct.pack(
        "!BBHHHBBHII", 0x45, 0, total_len, 0, 0,
        packet.ttl, packet.proto, 0, packet.src.value, packet.dst.value,
    )
    checksum = internet_checksum(header)
    header = struct.pack(
        "!BBHHHBBHII", 0x45, 0, total_len, 0, 0,
        packet.ttl, packet.proto, checksum,
        packet.src.value, packet.dst.value,
    )
    return header + body


def decode_ipv4(blob: bytes) -> Ipv4Packet:
    (ver_ihl, _tos, total_len, _ident, _frag, ttl, proto, checksum,
     src, dst) = struct.unpack("!BBHHHBBHII", blob[:20])
    if ver_ihl != 0x45:
        raise WireError(f"unsupported IP header {ver_ihl:#x}")
    if internet_checksum(blob[:20]) != 0:
        raise WireError("bad IPv4 header checksum")
    body = blob[20:total_len]
    payload: Payload
    if proto == PROTO_UDP:
        payload = decode_udp(body)
    elif proto == PROTO_TCP:
        payload = decode_tcp(body)
    elif proto == PROTO_ICMP:
        payload = decode_icmp(body)
    else:
        payload = _decode_body(body)
    return Ipv4Packet(src=Ipv4Address(src), dst=Ipv4Address(dst),
                      proto=proto, payload=payload, ttl=ttl)


def encode_arp(message: ArpMessage) -> bytes:
    target_mac = message.target_mac.value if message.target_mac else 0
    return struct.pack(
        "!HHBBH6sI6sI",
        1, ETHERTYPE_IPV4, 6, 4, message.op.value,
        message.sender_mac.value.to_bytes(6, "big"), message.sender_ip.value,
        target_mac.to_bytes(6, "big"), message.target_ip.value,
    )


def decode_arp(blob: bytes) -> ArpMessage:
    (_htype, _ptype, _hlen, _plen, op, sender_mac, sender_ip, target_mac,
     target_ip) = struct.unpack("!HHBBH6sI6sI", blob[:28])
    target = MacAddress(int.from_bytes(target_mac, "big"))
    return ArpMessage(
        op=ArpOp(op),
        sender_mac=MacAddress(int.from_bytes(sender_mac, "big")),
        sender_ip=Ipv4Address(sender_ip),
        target_ip=Ipv4Address(target_ip),
        target_mac=None if target.value == 0 else target,
    )


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def encode_frame(frame: EthernetFrame, pad_to_min: bool = True) -> bytes:
    if frame.ethertype == ETHERTYPE_IPV4:
        body = encode_ipv4(frame.payload)
    elif frame.ethertype == ETHERTYPE_ARP:
        body = encode_arp(frame.payload)
    elif frame.ethertype == ETHERTYPE_MTP:
        if isinstance(frame.payload, MtpMessage):
            body = encode_mtp_message(frame.payload)
        else:
            body = _encode_body(frame.payload)
    else:
        body = _encode_body(frame.payload)
    blob = (frame.dst.value.to_bytes(6, "big")
            + frame.src.value.to_bytes(6, "big")
            + struct.pack("!H", frame.ethertype)
            + body)
    if pad_to_min and len(blob) < ETHERNET_MIN_FRAME_BYTES:
        blob += b"\x00" * (ETHERNET_MIN_FRAME_BYTES - len(blob))
    return blob


def decode_frame(blob: bytes, payload_len: Optional[int] = None) -> EthernetFrame:
    """Decode an encoded frame.  ``payload_len`` strips min-frame padding
    when the true payload length is known (e.g. from ``frame.wire_size``);
    IPv4 self-describes its length, so padding there is harmless."""
    dst = MacAddress(int.from_bytes(blob[:6], "big"))
    src = MacAddress(int.from_bytes(blob[6:12], "big"))
    ethertype = struct.unpack("!H", blob[12:14])[0]
    body = blob[14:] if payload_len is None else blob[14:14 + payload_len]
    if ethertype == ETHERTYPE_IPV4:
        payload: Payload = decode_ipv4(body)
    elif ethertype == ETHERTYPE_ARP:
        payload = decode_arp(body)
    elif ethertype == ETHERTYPE_MTP:
        payload = decode_mtp_message(body)
    else:
        payload = _decode_body(body)
    return EthernetFrame(dst=dst, src=src, ethertype=ethertype,
                         payload=payload)
