"""Classic pcap (libpcap) file writing.

``write_capture(capture, path)`` turns a simulated :class:`Capture` into
a file Wireshark/tshark opens directly — the closing step of the paper's
methodology ("the files from the remote nodes were downloaded and
parsed").  Timestamps are the simulation clock (microsecond resolution,
which is exactly pcap's native tick).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Optional, Union

from repro.net.capture import Capture, CaptureRecord, Direction
from repro.wire.codec import encode_frame

PCAP_MAGIC = 0xA1B2C3D4          # microsecond-timestamp pcap
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
DEFAULT_SNAPLEN = 65535


class PcapWriter:
    """Streams records into a classic pcap file."""

    def __init__(self, stream: BinaryIO, snaplen: int = DEFAULT_SNAPLEN) -> None:
        self.stream = stream
        self.snaplen = snaplen
        self.records_written = 0
        self._write_global_header()

    def _write_global_header(self) -> None:
        self.stream.write(struct.pack(
            "!IHHiIII",
            PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1],
            0,              # timezone offset
            0,              # sigfigs
            self.snaplen,
            LINKTYPE_ETHERNET,
        ))

    def write(self, timestamp_us: int, frame_bytes: bytes) -> None:
        captured = frame_bytes[: self.snaplen]
        self.stream.write(struct.pack(
            "!IIII",
            timestamp_us // 1_000_000, timestamp_us % 1_000_000,
            len(captured), len(frame_bytes),
        ))
        self.stream.write(captured)
        self.records_written += 1

    def write_record(self, record: CaptureRecord) -> None:
        self.write(record.time, encode_frame(record.frame))


def write_capture(
    capture: Capture,
    path: Union[str, Path],
    direction: Optional[Direction] = Direction.TX,
    since: Optional[int] = None,
    until: Optional[int] = None,
) -> int:
    """Write a capture window to ``path``; returns the record count.

    ``direction=TX`` (default) avoids duplicating frames seen at both
    ends of a tapped link; pass ``None`` to keep both directions.
    """
    path = Path(path)
    count = 0
    with path.open("wb") as stream:
        writer = PcapWriter(stream)
        for record in capture.select(since=since, until=until,
                                     direction=direction):
            writer.write_record(record)
            count += 1
    return count


# ----------------------------------------------------------------------
# reading back (for tests and sanity checks)
# ----------------------------------------------------------------------
def read_pcap(path: Union[str, Path]) -> list[tuple[int, bytes]]:
    """Parse a classic pcap file -> [(timestamp_us, frame_bytes), ...]."""
    blob = Path(path).read_bytes()
    magic, major, minor, _tz, _sig, _snaplen, linktype = struct.unpack(
        "!IHHiIII", blob[:24])
    if magic != PCAP_MAGIC:
        raise ValueError(f"not a (big-endian microsecond) pcap: {magic:#x}")
    if linktype != LINKTYPE_ETHERNET:
        raise ValueError(f"unexpected linktype {linktype}")
    records = []
    offset = 24
    while offset < len(blob):
        sec, usec, incl, orig = struct.unpack("!IIII", blob[offset:offset + 16])
        offset += 16
        records.append((sec * 1_000_000 + usec, blob[offset:offset + incl]))
        offset += incl
    return records
