"""Liveness-layer configuration.

One frozen bundle configures all three mechanisms of the adaptive
liveness layer (DESIGN §14): the link-quality estimator, the adaptive
detection-interval policy, and RFC 2439-style flap damping.  The bundle
is picklable and canonical-JSON-able, so it can ride inside a
:class:`~repro.stacks.base.StackSpec` parameter tuple and key the
result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.sim.units import MILLISECOND, SECOND


@dataclass(frozen=True)
class LivenessConfig:
    """Tuning for the stack-agnostic neighbor-health subsystem.

    Defaults are chosen so that a *clean* link behaves byte-identically
    to the paper's timers once the estimator has warmed up (the
    detection interval tightens back to the configured base), while a
    measured-lossy link widens its detection bound inside the
    ``[base, base * max_scale]`` envelope.
    """

    # -- link-quality estimator -----------------------------------------
    #: EWMA weight for the per-arrival loss estimate.  Each implied miss
    #: folds in as a 1, each arrival as a 0.
    ewma_alpha: float = 0.1
    #: EWMA weight for the arrival-jitter estimate (|gap - k*period|).
    jitter_alpha: float = 0.2
    #: arrivals before the estimator trusts its own numbers; until then
    #: the cautious ``cold_scale`` applies.
    warmup_arrivals: int = 16
    #: hard cap on misses implied by a single gap (a long outage must
    #: not saturate the estimate in one observation).
    max_misses_per_gap: int = 16

    # -- verdict thresholds ---------------------------------------------
    #: measured loss at or above this is a *degraded* (gray) link.
    degrade_threshold: float = 0.01

    # -- adaptive detection envelope ------------------------------------
    #: master switch for detection-interval widening.
    adaptive_timers: bool = True
    #: consecutive losses tolerated even on a measured-clean link.  The
    #: first loss of a fresh gray episode is causally unobservable (the
    #: silence IS the evidence, and the dead timer would fire mid-gap),
    #: so adaptive stacks keep this floor: the detector survives a short
    #: run, the following arrival reveals the gap, and the estimator
    #: widens before a longer run can false-trip.
    clean_misses: int = 2
    #: per-declaration false-positive budget: the widened interval
    #: covers enough consecutive losses that a spurious declaration
    #: needs a loss run of probability below this.
    fp_target: float = 1e-6
    #: interval scale while the estimator is still cold.
    cold_scale: float = 3.0
    #: upper envelope: the detection interval never exceeds
    #: ``base * max_scale`` (the stack's advertised detection bound).
    max_scale: float = 8.0

    # -- RFC 2439-style flap damping ------------------------------------
    #: master switch for suppress/reuse gating.
    damping: bool = True
    #: penalty added per flap (down declaration).
    flap_penalty: float = 1000.0
    #: penalty at or above which the neighbor is suppressed.
    suppress_threshold: float = 2000.0
    #: penalty at or below which a suppressed neighbor is reusable.
    reuse_threshold: float = 750.0
    #: exponential decay half-life of the accumulated penalty.
    half_life_us: int = 2 * SECOND
    #: penalty ceiling, bounding the worst-case hold-down.
    max_penalty: float = 12_000.0

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.jitter_alpha <= 1.0:
            raise ValueError("jitter_alpha must be in (0, 1]")
        if self.warmup_arrivals < 1:
            raise ValueError("warmup_arrivals must be positive")
        if not 0.0 < self.fp_target < 1.0:
            raise ValueError("fp_target must be in (0, 1)")
        if not 0.0 < self.degrade_threshold < 1.0:
            raise ValueError("degrade_threshold must be in (0, 1)")
        if self.cold_scale < 1.0 or self.max_scale < 1.0:
            raise ValueError("interval scales must be >= 1")
        if self.clean_misses < 1:
            raise ValueError("clean_misses must be positive")
        if self.cold_scale > self.max_scale:
            raise ValueError("cold_scale must not exceed max_scale")
        if self.half_life_us <= 0:
            raise ValueError("half_life_us must be positive")
        if not 0.0 < self.reuse_threshold <= self.suppress_threshold:
            raise ValueError("need 0 < reuse_threshold <= suppress_threshold")
        if self.max_penalty < self.suppress_threshold:
            raise ValueError("max_penalty below suppress_threshold")


#: The shipped tuning the ``mtp-adaptive`` / ``bgp-bfd-damped``
#: registrations use (``liveness=True`` resolves to this).
DEFAULT_LIVENESS = LivenessConfig()


LivenessParam = Union[None, bool, Mapping[str, Any], LivenessConfig]


def resolve_liveness(value: LivenessParam) -> Optional[LivenessConfig]:
    """Normalize a stack-parameter value into a config (or None = off).

    Accepts ``True`` (defaults), ``False``/``None`` (disabled), a
    mapping of field overrides, or a ready :class:`LivenessConfig` —
    so registrations stay pure parameter tuples.
    """
    if value is None or value is False:
        return None
    if value is True:
        return DEFAULT_LIVENESS
    if isinstance(value, LivenessConfig):
        return value
    if isinstance(value, Mapping):
        return LivenessConfig(**dict(value))
    raise TypeError(f"cannot interpret liveness parameter {value!r}")
