"""The per-adjacency health monitor: estimator + damper + verdict.

One :class:`NeighborMonitor` rides along each protocol adjacency
(an MR-MTP :class:`~repro.core.neighbor.PortNeighbor`, a BFD session, a
BGP peer).  It owns the link-quality estimator and the flap damper and
derives the two decisions the protocols consume:

* :meth:`detection_interval_us` — the adaptive dead/detection interval:
  the configured base on a measured-clean link, widened on a lossy one
  so that a false declaration needs a consecutive-loss run of
  probability below ``fp_target``, always inside
  ``[base, base * max_scale]``;
* :meth:`verdict` — ``healthy | degraded | dead``: the gray-failure
  classification that lets the control plane *depreference* a degraded
  next hop instead of withdrawing it.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Optional

from repro.liveness.config import LivenessConfig
from repro.liveness.damping import FlapDamper
from repro.liveness.estimator import LinkQualityEstimator


class Verdict(Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"   # alive, but measurably lossy (gray)
    DEAD = "dead"           # the liveness state machine declared it down


class NeighborMonitor:
    """Health state for one adjacency, fed by its liveness frames."""

    def __init__(
        self,
        config: LivenessConfig,
        period_us: int,
        base_detection_us: int,
        now_us: int = 0,
        slack_periods: int = 0,
    ) -> None:
        self.config = config
        self.period_us = int(period_us)
        self.base_detection_us = int(base_detection_us)
        self.estimator = LinkQualityEstimator(period_us, config,
                                              slack_periods=slack_periods)
        self.damper = FlapDamper(config, now_us)
        self.alive = True

    # ------------------------------------------------------------------
    # estimator feed-through
    # ------------------------------------------------------------------
    def observe(self, now_us: int, period_us: Optional[int] = None) -> None:
        self.estimator.observe(now_us, period_us)
        self.alive = True

    def interrupt(self) -> None:
        self.estimator.interrupt()
        self.alive = False

    def record_flap(self, now_us: int) -> None:
        self.damper.record_flap(now_us)

    def suppressed(self, now_us: int) -> bool:
        return (self.config.damping and self.damper.suppressed(now_us))

    def reuse_eta_us(self, now_us: int) -> int:
        return self.damper.reuse_eta_us(now_us)

    def clear_history(self) -> None:
        """Impairment cleared: forget measured loss AND accumulated
        damping penalty, so the repaired link re-converges without a
        stale suppression window."""
        self.estimator.reset()
        self.damper.reset()

    # ------------------------------------------------------------------
    # the two decisions
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        return (self.estimator.warmed_up
                and self.estimator.loss_rate >= self.config.degrade_threshold)

    def verdict(self) -> Verdict:
        if not self.alive:
            return Verdict.DEAD
        return Verdict.DEGRADED if self.degraded else Verdict.HEALTHY

    def detection_interval_us(
        self,
        base_us: Optional[int] = None,
        period_us: Optional[int] = None,
    ) -> int:
        """The adaptive detection interval.

        A declaration fires after this much silence, i.e. after roughly
        ``interval / period`` consecutive losses on a healthy link.  We
        size that run so its probability under the *measured* loss rate
        stays below ``fp_target``: ``m = ceil(ln fp_target / ln loss)``
        misses tolerated, plus a half-period boundary pad and jitter
        margin.  Even measured-clean links tolerate ``clean_misses``
        (the first losses of a fresh gray episode are unobservable until
        the next arrival reveals the gap); cold-and-lossy links get the
        cautious ``cold_scale``; the envelope caps everything at
        ``base * max_scale``.
        """
        cfg = self.config
        base = self.base_detection_us if base_us is None else int(base_us)
        if not cfg.adaptive_timers:
            return base
        period = self.period_us if period_us is None else max(1, int(period_us))
        ceiling = int(base * cfg.max_scale)
        est = self.estimator
        loss = est.loss_rate
        # deterministic clean-link floor: survive clean_misses back-to-
        # back losses (no jitter term — it must not drift with history)
        floor = (cfg.clean_misses + 1) * period + period // 2
        if loss <= 0.0:
            return max(base, min(floor, ceiling))
        if not est.warmed_up:
            # lossy AND too few samples to size the interval: be cautious
            scaled = int(base * cfg.cold_scale)
            return max(base, min(max(scaled, floor), ceiling))
        # tolerate m consecutive misses where loss^m < fp_target
        misses = max(cfg.clean_misses,
                     math.ceil(math.log(cfg.fp_target)
                               / math.log(min(loss, 0.9))))
        needed = (misses + 1) * period + period // 2 + 3 * int(est.jitter_us)
        return max(base, min(needed, ceiling))
