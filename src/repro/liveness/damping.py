"""RFC 2439-style flap damping with exponential penalty decay.

Every flap (a down declaration) adds a fixed penalty; the accumulated
penalty decays exponentially with a configured half-life.  Crossing the
suppress threshold quarantines the neighbor — re-acceptance (MR-MTP) or
session re-establishment (BGP) is withheld — until the penalty decays
to the reuse threshold.  The suppress/reuse gap is the hold-down
hysteresis that keeps a marginal neighbor from oscillating around a
single threshold.

Decay is computed lazily from timestamps (``0.5 ** (dt / half_life)``)
instead of on a timer, so the damper costs nothing while idle and its
arithmetic is a pure function of the flap times — deterministic across
serial and parallel runs.
"""

from __future__ import annotations

import math

from repro.liveness.config import LivenessConfig


class FlapDamper:
    """Penalty accounting and suppress/reuse state for one adjacency."""

    def __init__(self, config: LivenessConfig, now_us: int = 0) -> None:
        self.config = config
        self.penalty = 0.0
        self.flaps = 0
        self.suppressions = 0
        self._stamp = now_us
        self._suppressed = False

    # ------------------------------------------------------------------
    def _decay_to(self, now_us: int) -> None:
        dt = now_us - self._stamp
        if dt > 0 and self.penalty > 0.0:
            self.penalty *= 0.5 ** (dt / self.config.half_life_us)
        self._stamp = max(self._stamp, now_us)

    def current_penalty(self, now_us: int) -> float:
        self._decay_to(now_us)
        return self.penalty

    # ------------------------------------------------------------------
    def record_flap(self, now_us: int) -> None:
        """One down declaration: decay, then add the flap penalty."""
        self._decay_to(now_us)
        self.flaps += 1
        self.penalty = min(self.penalty + self.config.flap_penalty,
                           self.config.max_penalty)
        if not self._suppressed and self.penalty >= self.config.suppress_threshold:
            self._suppressed = True
            self.suppressions += 1

    def suppressed(self, now_us: int) -> bool:
        """Whether the adjacency is currently quarantined.  Hysteresis:
        entered at ``suppress_threshold``, left only once the penalty
        has decayed to ``reuse_threshold``."""
        self._decay_to(now_us)
        if self._suppressed and self.penalty <= self.config.reuse_threshold:
            self._suppressed = False
        return self._suppressed

    def reuse_eta_us(self, now_us: int) -> int:
        """Microseconds until the penalty decays to the reuse threshold
        (0 when not suppressed) — for scheduling a re-check, not for
        deciding: callers re-ask :meth:`suppressed` when the time comes."""
        if not self.suppressed(now_us):
            return 0
        ratio = self.penalty / self.config.reuse_threshold
        return int(math.ceil(math.log2(ratio) * self.config.half_life_us))

    def reset(self) -> None:
        """Forgive everything (the underlying fault was repaired — e.g.
        an impairment was cleared): penalty to zero, suppression lifted."""
        self.penalty = 0.0
        self._suppressed = False
