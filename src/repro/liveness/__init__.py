"""Stack-agnostic adaptive liveness: gray-failure detection, adaptive
hello/dead timers, and RFC 2439-style flap damping (DESIGN §14).

Both routing stacks opt in through one knob: ``liveness=True`` (or a
field-override mapping / :class:`LivenessConfig`) on their deploy
entrypoints.  The layer never originates packets — it observes the
liveness frames the protocols already exchange.
"""

from repro.liveness.config import (
    DEFAULT_LIVENESS,
    LivenessConfig,
    resolve_liveness,
)
from repro.liveness.damping import FlapDamper
from repro.liveness.estimator import LinkQualityEstimator
from repro.liveness.monitor import NeighborMonitor, Verdict

__all__ = [
    "DEFAULT_LIVENESS",
    "FlapDamper",
    "LinkQualityEstimator",
    "LivenessConfig",
    "NeighborMonitor",
    "Verdict",
    "resolve_liveness",
]
