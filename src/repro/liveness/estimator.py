"""Per-neighbor link-quality estimation from hello/keepalive arrival gaps.

The estimator is fed only what a real router can see for free: the
arrival times of frames that already prove liveness (hellos, keepalives,
any protocol frame).  A gap of ``k`` expected periods implies ``k - 1``
lost hellos; folding those misses and the arrival itself into an EWMA
yields a loss-rate estimate, and the deviation of each gap from the
nearest period multiple yields a jitter estimate.  Everything is
integer-time, RNG-free and deterministic — the same arrival sequence
always produces the same estimates, so adaptive timer choices digest
identically serial vs parallel.

Two complementary loss views are kept:

* ``ewma`` — fast, burst-sensitive: a Gilbert-Elliott loss burst spikes
  it immediately, widening detection while the burst lasts;
* ``lifetime`` — total implied misses over total expected slots: stable
  under sparse uniform loss, where an EWMA would decay to zero between
  rare loss events and let the detection interval snap back too early.

``loss_rate`` is the max of the two; duplicated frames arrive with a
zero gap (one period, zero misses) and therefore never inflate it.
"""

from __future__ import annotations

from typing import Optional

from repro.liveness.config import LivenessConfig


class LinkQualityEstimator:
    """EWMA + lifetime loss rate and arrival jitter for one adjacency."""

    def __init__(self, period_us: int, config: LivenessConfig,
                 slack_periods: int = 0) -> None:
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        if slack_periods < 0:
            raise ValueError("slack_periods must be >= 0")
        self.period_us = int(period_us)
        # protocol-legal silent periods per gap that imply NO loss:
        # MR-MTP's keepalive suppression lets a sender stay silent for
        # one full hello interval after any frame, so a 2-period gap is
        # indistinguishable from (and usually is) innocent suppression
        self.slack_periods = int(slack_periods)
        self.config = config
        self.arrivals = 0           # observed frames
        self.implied_misses = 0     # losses implied by oversized gaps
        self._ewma_loss = 0.0
        self._jitter_us = 0.0
        self._last_rx: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def warmed_up(self) -> bool:
        return self.arrivals >= self.config.warmup_arrivals

    @property
    def ewma_loss(self) -> float:
        return self._ewma_loss

    @property
    def lifetime_loss(self) -> float:
        slots = self.arrivals + self.implied_misses
        return self.implied_misses / slots if slots else 0.0

    @property
    def loss_rate(self) -> float:
        """The conservative (larger) of the burst and lifetime views."""
        return max(self._ewma_loss, self.lifetime_loss)

    @property
    def jitter_us(self) -> float:
        return self._jitter_us

    # ------------------------------------------------------------------
    def observe(self, now: int, period_us: Optional[int] = None) -> None:
        """Record one liveness-proving arrival at time ``now``.

        ``period_us`` overrides the expected inter-arrival period for
        this gap (BFD's negotiated rate changes at bring-up; counting a
        slow-rate gap against the fast period would fabricate misses).
        """
        period = self.period_us if period_us is None else max(1, int(period_us))
        last = self._last_rx
        self._last_rx = now
        self.arrivals += 1
        if last is None:
            return
        gap = now - last
        periods = max(1, round(gap / period))
        misses = min(max(0, periods - 1 - self.slack_periods),
                     self.config.max_misses_per_gap)
        alpha = self.config.ewma_alpha
        for _ in range(misses):
            self._ewma_loss += alpha * (1.0 - self._ewma_loss)
        self._ewma_loss *= 1.0 - alpha
        self.implied_misses += misses
        deviation = abs(gap - periods * period)
        ja = self.config.jitter_alpha
        self._jitter_us += ja * (deviation - self._jitter_us)

    def interrupt(self) -> None:
        """Forget the last arrival time (adjacency declared down, local
        port down): the silent interval must not be folded in as loss —
        the detector already accounted for it."""
        self._last_rx = None

    def reset(self) -> None:
        """Discard all learned state (the link was physically repaired —
        an impairment was cleared)."""
        self.arrivals = 0
        self.implied_misses = 0
        self._ewma_loss = 0.0
        self._jitter_us = 0.0
        self._last_rx = None
