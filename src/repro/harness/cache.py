"""On-disk result cache for experiment fan-out.

Each cache entry is one converged experiment task — a sweep point or a
seeded failure run — keyed by a SHA-256 content hash of everything that
determines its outcome: topology parameters, the stack's registry name
and canonical deploy params, the full timer bundle, the failure
point/case, the seed and a schema version.  Because
the simulator is deterministic, a key collision-free hit can be replayed
instead of re-run: repeated sweeps and CI reruns skip converged points.

Layout: ``<root>/<key[:2]>/<key>.json`` — a two-level fan-out so a large
sweep doesn't put thousands of files in one directory.  Every entry
stores its own key and schema version; a mismatch (or unparseable JSON,
or a torn write) is treated as corruption and the entry is dropped and
recomputed, never trusted.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from enum import Enum
from pathlib import Path
from typing import Any, Optional

from repro.harness.digest import canonical_json, payload_digest

# Bump whenever the semantics of cached payloads change (new metric
# fields, different counting rules...): old entries then miss cleanly.
# 2: stack-plugin refactor — keys derive from registry name + canonical
#    params (not the StackKind enum); experiment payloads store "stack".
# 3: topology-plugin refactor — the "params" key component is now a
#    TopologySpec (registry name + canonical params) instead of the raw
#    clos dataclass; schema-2 entries keyed the old way miss cleanly.
# 4: flow-level workload engine — scenario payloads gained the
#    "workload" report (scenario schema 2 -> 3) and WorkloadSpec joined
#    the key space ("workload-run" tasks, workload components on sweep
#    and chaos keys); schema-3 entries miss cleanly.
# 5: adaptive liveness layer — chaos payloads gained suppression / MTTR
#    / availability fields and liveness joined stack parameter tuples;
#    schema-4 entries miss cleanly.
# 6: crash-resilience layer — agent_crash/agent_restart ops (scenario
#    schema 3 -> 4), graceful_restart joined stack parameter tuples,
#    and loaded runs carry invariant-monitor fib_* counters;
#    schema-5 entries miss cleanly.
CACHE_SCHEMA = 6

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _jsonable(value: Any) -> Any:
    """Reduce task-key components to plain JSON-stable values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def task_key(task: str, **components: Any) -> str:
    """Content hash of one experiment task.

    ``task`` names the task family ("sweep-point", "failure-run", ...);
    ``components`` are everything that determines the outcome.  The hash
    is stable across processes and machines: it goes through canonical
    JSON and SHA-256, never ``hash()``.
    """
    body = {"schema": CACHE_SCHEMA, "task": task,
            "components": _jsonable(components)}
    return payload_digest(body)


class ResultCache:
    """Content-addressed store of finished task payloads."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.dropped = 0  # corrupted entries discarded

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or None on miss *or* corruption (the
        corrupted file is removed so the slot recomputes cleanly)."""
        path = self._path(key)
        try:
            raw = path.read_text()
        except (FileNotFoundError, OSError):
            self.misses += 1
            return None
        try:
            entry = json.loads(raw)
            if entry["key"] != key or entry["schema"] != CACHE_SCHEMA:
                raise ValueError("key/schema mismatch")
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError):
            self.dropped += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key`` (write to a temp
        file in the same directory, then rename — a crashed writer leaves
        either nothing or a complete entry, never a torn one)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"schema": CACHE_SCHEMA, "key": key, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(canonical_json(entry))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def checkpointed(self, keys: Any) -> int:
        """How many of ``keys`` already have an entry on disk — the
        resume preview a ``--resume`` run prints before executing (a
        corrupt entry still counts here; it is dropped at ``get`` time
        and the task recomputes)."""
        return sum(1 for key in keys if key in self)

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def describe(self) -> str:
        return (f"cache {self.root}: {self.hits} hits, {self.misses} misses"
                + (f", {self.dropped} corrupted entries dropped"
                   if self.dropped else ""))
