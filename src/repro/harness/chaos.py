"""False-positive chaos suite: detector behaviour on lossy-but-healthy links.

The paper's Quick-to-Detect argument (declare a neighbour dead after ONE
missed 50 ms hello) buys a 3x faster reaction than BFD/keepalive-x-3 —
but aggressive timers have a price that only shows on *gray* links: a
detector that fires on ordinary frame loss false-flags a healthy
neighbour, withdraws good paths, and pays route churn for nothing.
Slow-to-Accept (3 clean hellos before re-accepting) dampens the flapping
but does not prevent the false declaration itself.

This module quantifies that tradeoff as a loss-rate x stack grid.  Each
:class:`ChaosPointSpec` is one independent task: build a fresh fabric,
converge it, impair the first ToR uplink symmetrically at the given loss
rate, and

1. observe a fixed *quiet window* with no offered traffic — every
   timer-based down-declaration in it is a false positive by
   construction (nothing is down; counted via the stack's
   ``classify_liveness`` hook and the injector's empty fault log);
2. then send a probe burst on a flow that crosses the impaired link and
   measure goodput (the quiet window comes first because data frames
   prove liveness for MR-MTP — any MR-MTP frame resets the dead timer —
   so traffic would mask the false-positive measurement).

The suite reports, per stack, the smallest loss rate at which the
detector starts false-flagging — the *false-positive threshold*.  A
clean fabric (loss 0.0) must show zero false positives on every stack;
the CLI treats anything else as a failure.

Chaos points run through the same cache/fan-out machinery as sweeps and
scenario suites: picklable specs, content-addressed keys, SHA-256 run
digests, serial == parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.sim.units import MILLISECOND, SECOND
from repro.topology import TopologySpec, resolve_topology_spec
from repro.stacks import StackSpec, StackTimers, resolve_spec
from repro.net.impairment import ImpairmentProfile
from repro.harness.cache import ResultCache, task_key
from repro.harness.convergence import ConvergenceMonitor
from repro.harness.digest import run_digest
from repro.harness.experiments import build_and_converge
from repro.harness.failures import FailureInjector
from repro.harness.metrics import (
    liveness_stats,
    route_churn,
    snapshot_table_change_counts,
)
from repro.harness.parallel import FanoutReport, execute_tasks
from repro.harness.pathtrace import find_crossing_flow
from repro.harness.supervisor import (
    RetryPolicy,
    SupervisorReport,
    supervise_tasks,
)
from repro.traffic.generator import ReceiverAnalyzer, TrafficSender
from repro.workload.engine import FluidWorkload
from repro.workload.spec import resolve_workload

#: Default loss-rate grid: clean fabric first (the zero-FP guard), then
#: rates spanning "barely gray" to "nearly dead".
DEFAULT_RATES = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3)

DEFAULT_WINDOW_MS = 5000
DEFAULT_TRAFFIC_PPS = 500
DEFAULT_TRAFFIC_COUNT = 1000


@dataclass(frozen=True)
class ChaosPointSpec:
    """One chaos grid point: everything a worker needs (picklable)."""

    params: TopologySpec
    stack: StackSpec
    seed: int
    loss: float
    window_ms: int = DEFAULT_WINDOW_MS
    traffic_pps: int = DEFAULT_TRAFFIC_PPS
    traffic_count: int = DEFAULT_TRAFFIC_COUNT
    #: optional workload (library name, payload, or spec): the point
    #: then runs fluid load across the gray window instead of relying
    #: on the probe burst alone; the report joins result and digest.
    workload: Optional[Any] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params",
                           resolve_topology_spec(self.params))
        if self.workload is not None:
            object.__setattr__(
                self, "workload",
                resolve_workload(self.workload).to_payload())


@dataclass
class ChaosResult:
    """Detector behaviour at one (stack, loss-rate) point."""

    stack: str
    loss: float
    seed: int
    window_ms: int
    impaired_link: tuple[str, str]     # (tor, agg) endpoint names
    detections: int = 0                # timer-based down declarations
    false_positives: int = 0
    flaps: int = 0
    route_churn: int = 0
    sent: int = 0
    received: int = 0
    suppressions: int = 0              # damping suppress events
    suppression_us: int = 0            # total suppressed adjacency-time
    mttr_us: int = -1                  # mean down-to-up latency (-1: none)
    availability: float = 1.0          # uptime of transitioned adjacencies
    fib_loops: int = 0                 # invariant monitor: loop episodes
    fib_loop_us: int = 0               # longest loop episode
    fib_blackholes: int = 0            # invariant monitor: blackhole episodes
    fib_blackhole_us: int = 0          # longest blackhole episode
    workload: Optional[dict] = None    # WorkloadReport payload, if loaded

    @property
    def goodput(self) -> float:
        return self.received / self.sent if self.sent else 1.0


@dataclass
class ChaosOutcome:
    """A chaos point's result plus its determinism fingerprint."""

    result: ChaosResult
    digest: str


# ----------------------------------------------------------------------
# one chaos point = one task (top-level for the process pool)
# ----------------------------------------------------------------------
def _first_tor_uplink(topo):
    """The first ToR's first fabric uplink — the canonical gray link.

    Uses the topology's own ``fabric_ports`` hook, so families that
    redefine "up" (same-tier cross links) still nominate a sane link.
    """
    tor_name = topo.all_tors()[0]
    ports = topo.fabric_ports(tor_name, up=True)
    if not ports:
        raise RuntimeError(f"{tor_name} has no fabric uplink to impair")
    iface = topo.node(tor_name).interfaces[ports[0]]
    return tor_name, iface, iface.peer().node.name


def run_chaos_point(spec: ChaosPointSpec) -> ChaosOutcome:
    world, topo, deployment = build_and_converge(
        spec.params, spec.stack, spec.seed)
    tor_name, uplink, agg_name = _first_tor_uplink(topo)

    injector = FailureInjector(world)
    if spec.loss > 0.0:
        injector.impair_link(tor_name, uplink.name,
                             ImpairmentProfile(loss=spec.loss),
                             direction="both")

    monitor = ConvergenceMonitor(world, deployment.update_categories())
    before = snapshot_table_change_counts(deployment.forwarding_tables())
    monitor.arm()
    start = world.sim.now

    # phase 1 — quiet window: no offered traffic, so every timer-based
    # down-declaration is a false positive by construction.  A fluid
    # workload is flow-level (no frames on the wire), so it can overlap
    # the quiet window without proving liveness to the detectors.
    engine = None
    inv_monitor = None
    if spec.workload is not None:
        # loaded points run the invariant monitor: its checks ride the
        # engine's route-change epochs (probe-only points stay
        # monitor-free, keeping their payloads and digests unchanged)
        from repro.resilience.invariants import InvariantMonitor

        inv_monitor = InvariantMonitor(topo, deployment)
        engine = FluidWorkload(resolve_workload(spec.workload), topo,
                               deployment, monitor=inv_monitor)
        engine.start()
    monitor.observe_for(spec.window_ms * MILLISECOND)
    stats = liveness_stats(
        world.trace, deployment.classify_liveness, injector.events,
        since=start, until=world.sim.now,
        detection_bound_us=deployment.detection_bound_us())

    # phase 2 — goodput probe: a flow that crosses the impaired link
    result = ChaosResult(
        stack=spec.stack.name, loss=spec.loss, seed=spec.seed,
        window_ms=spec.window_ms, impaired_link=(tor_name, agg_name),
        detections=stats.detections,
        false_positives=stats.false_positives, flaps=stats.flaps,
        suppressions=stats.suppressions,
        suppression_us=stats.suppression_us,
        mttr_us=stats.mttr_us, availability=stats.availability)
    if spec.traffic_count > 0:
        src = topo.first_server_of(tor_name)
        dst = topo.first_server_of(topo.all_tors()[-1])
        port = find_crossing_flow(deployment, src, dst, tor_name, agg_name)
        if port is None:
            port = 40000  # churned away from the link; probe anyway
        gap_us = max(SECOND // spec.traffic_pps, 1)
        sender = TrafficSender(udp=deployment.servers[src].udp,
                               dst=topo.server_address(dst),
                               src_port=port, gap_us=gap_us)
        analyzer = ReceiverAnalyzer(deployment.servers[dst].udp)
        sender.start(count=spec.traffic_count, at=world.sim.now)
        world.run_for(spec.traffic_count * gap_us
                      + deployment.detection_bound_us()
                      + 500 * MILLISECOND)
        result.sent = sender.sent
        result.received = analyzer.received
        analyzer.close()
    if engine is not None:
        result.workload = engine.finish().to_payload()
    if inv_monitor is not None:
        inv_monitor.check()
        inv_monitor.finalize()
        result.fib_loops = inv_monitor.loops
        result.fib_loop_us = inv_monitor.loop_us
        result.fib_blackholes = inv_monitor.blackholes
        result.fib_blackhole_us = inv_monitor.blackhole_us
    monitor.detach()
    result.route_churn = route_churn(before, deployment.forwarding_tables())
    digest = run_digest(world.trace, _result_payload(result))
    return ChaosOutcome(result=result, digest=digest)


# ----------------------------------------------------------------------
# cache plumbing
# ----------------------------------------------------------------------
def chaos_point_key(spec: ChaosPointSpec) -> str:
    return task_key(
        "chaos-point",
        params=spec.params,
        stack=spec.stack.name,
        stack_params=spec.stack.params,
        timers=spec.stack.timers,
        seed=spec.seed,
        loss=spec.loss,
        window_ms=spec.window_ms,
        traffic_pps=spec.traffic_pps,
        traffic_count=spec.traffic_count,
        # loaded points key differently; probe-only entries keep their
        # cache identity (the component is omitted when None)
        **({"workload": spec.workload} if spec.workload is not None
           else {}),
    )


def _result_payload(result: ChaosResult) -> dict:
    return {
        "stack": result.stack,
        "loss": result.loss,
        "seed": result.seed,
        "window_ms": result.window_ms,
        "impaired_link": list(result.impaired_link),
        "detections": result.detections,
        "false_positives": result.false_positives,
        "flaps": result.flaps,
        "route_churn": result.route_churn,
        "sent": result.sent,
        "received": result.received,
        "suppressions": result.suppressions,
        "suppression_us": result.suppression_us,
        "mttr_us": result.mttr_us,
        "availability": result.availability,
        # invariant-monitor counters appear only when nonzero, so
        # unmonitored (and anomaly-free) payloads stay byte-identical
        **{k: getattr(result, k)
           for k in ("fib_loops", "fib_loop_us", "fib_blackholes",
                     "fib_blackhole_us")
           if getattr(result, k)},
        **({"workload": result.workload} if result.workload is not None
           else {}),
    }


def encode_chaos_outcome(outcome: ChaosOutcome) -> dict:
    return {**_result_payload(outcome.result), "digest": outcome.digest}


def decode_chaos_outcome(payload: dict) -> ChaosOutcome:
    result = ChaosResult(
        stack=payload["stack"],
        loss=payload["loss"],
        seed=payload["seed"],
        window_ms=payload["window_ms"],
        impaired_link=tuple(payload["impaired_link"]),
        detections=payload["detections"],
        false_positives=payload["false_positives"],
        flaps=payload["flaps"],
        route_churn=payload["route_churn"],
        sent=payload["sent"],
        received=payload["received"],
        suppressions=payload["suppressions"],
        suppression_us=payload["suppression_us"],
        mttr_us=payload["mttr_us"],
        availability=payload["availability"],
        fib_loops=payload.get("fib_loops", 0),
        fib_loop_us=payload.get("fib_loop_us", 0),
        fib_blackholes=payload.get("fib_blackholes", 0),
        fib_blackhole_us=payload.get("fib_blackhole_us", 0),
        workload=payload.get("workload"),
    )
    return ChaosOutcome(result=result, digest=payload["digest"])


# ----------------------------------------------------------------------
# the grid driver
# ----------------------------------------------------------------------
def chaos_specs(
    params,
    stacks: Sequence,
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    window_ms: int = DEFAULT_WINDOW_MS,
    traffic_pps: int = DEFAULT_TRAFFIC_PPS,
    traffic_count: int = DEFAULT_TRAFFIC_COUNT,
    workload: Optional[Any] = None,
) -> list[ChaosPointSpec]:
    """Expand the loss-rate x stack grid, stack-major."""
    return [
        ChaosPointSpec(params=params, stack=resolve_spec(stack, timers),
                       seed=seed, loss=float(rate), window_ms=window_ms,
                       traffic_pps=traffic_pps,
                       traffic_count=traffic_count, workload=workload)
        for stack in stacks
        for rate in rates
    ]


def chaos_point_label(spec: ChaosPointSpec) -> str:
    """Human task label for supervisor records and quarantine tables."""
    return f"{spec.stack.name} loss={spec.loss:.2f} seed={spec.seed}"


def run_chaos_suite(
    params,
    stacks: Sequence,
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    window_ms: int = DEFAULT_WINDOW_MS,
    traffic_pps: int = DEFAULT_TRAFFIC_PPS,
    traffic_count: int = DEFAULT_TRAFFIC_COUNT,
    workload: Optional[Any] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    report: Optional[FanoutReport] = None,
    policy: Optional[RetryPolicy] = None,
    supervisor: Optional[SupervisorReport] = None,
) -> list[Optional[ChaosOutcome]]:
    """Run the full grid through the cache/fan-out machinery.

    With a ``policy`` (or ``supervisor`` report) the grid runs under the
    fault-tolerant supervisor: quarantined points come back ``None``,
    the rest of the grid completes.
    """
    specs = chaos_specs(params, stacks, rates, seed, timers, window_ms,
                        traffic_pps, traffic_count, workload)
    if policy is not None or supervisor is not None:
        return supervise_tasks(
            specs, run_chaos_point, jobs=jobs, policy=policy, cache=cache,
            key_fn=chaos_point_key, encode=encode_chaos_outcome,
            decode=decode_chaos_outcome, label_fn=chaos_point_label,
            report=supervisor,
        )
    return execute_tasks(
        specs, run_chaos_point, jobs=jobs, cache=cache,
        key_fn=chaos_point_key, encode=encode_chaos_outcome,
        decode=decode_chaos_outcome, report=report,
    )


# ----------------------------------------------------------------------
# analysis
# ----------------------------------------------------------------------
def false_positive_thresholds(
    results: Sequence[ChaosResult],
) -> dict[str, Optional[float]]:
    """Per stack, the smallest loss rate with >= 1 false positive (None
    if the detector never false-flagged on the tested grid)."""
    thresholds: dict[str, Optional[float]] = {}
    for result in results:
        thresholds.setdefault(result.stack, None)
        if result.false_positives > 0:
            current = thresholds[result.stack]
            if current is None or result.loss < current:
                thresholds[result.stack] = result.loss
    return thresholds


def clean_fabric_violations(
    results: Sequence[ChaosResult],
) -> list[ChaosResult]:
    """Grid points at loss 0.0 that still reported false positives —
    always a bug (a healthy fabric must never false-flag)."""
    return [r for r in results if r.loss == 0.0 and r.false_positives > 0]


def summarize(results: Sequence[ChaosResult]) -> str:
    """The false-positive-vs-loss-rate table plus per-stack thresholds."""
    from repro.harness.report import render_table

    rows = [[f"{r.loss:.2f}", r.stack, str(r.false_positives),
             str(r.flaps), str(r.suppressions),
             ("-" if r.mttr_us < 0 else f"{r.mttr_us / 1000:.0f}"),
             f"{r.availability:.4f}",
             str(r.route_churn), f"{r.goodput:.3f}"]
            for r in sorted(results, key=lambda r: (r.stack, r.loss))]
    table = render_table(
        "chaos: false positives vs loss rate",
        ["loss", "stack", "false-pos", "flaps", "suppr", "mttr-ms",
         "avail", "churn", "goodput"],
        rows,
        note="false-pos = timer-based down declarations with no fault "
             "injected; the link is lossy, never down",
    )
    lines = [table, ""]
    for stack, threshold in sorted(false_positive_thresholds(results).items()):
        if threshold is None:
            lines.append(f"{stack}: no false positives on this grid")
        else:
            lines.append(f"{stack}: false-positive threshold at loss "
                         f">= {threshold:.2f}")
    return "\n".join(lines)
