"""Experiment drivers: one call = one paper measurement.

Each run builds a fresh :class:`World` (the "reserve a new slice"
analogue), deploys a registered protocol stack, converges from cold,
injects a TC failure, and computes the section-V metrics.  Multi-seed
batches average the results as the paper averages over runs.

Stacks are selected through :mod:`repro.stacks` — a registry name
(``"mtp"``, ``"bgp-bfd"``, ``"mtp-spray"``...), a prepared
:class:`~repro.stacks.StackSpec`, or the legacy ``StackKind`` enum all
work; nothing in this module branches on which stack is running, so
registering a new stack makes every driver here handle it.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional

from repro.sim.units import MILLISECOND, SECOND
from repro.net.world import World
from repro.topology import TopologySpec, build_topology, resolve_topology_spec
from repro.stacks import (
    StackKind,
    StackSpec,
    StackTimers,
    get_stack,
    resolve_spec,
)
from repro.harness.convergence import ConvergenceMonitor, converge_from_cold
from repro.harness.failures import FailureInjector
from repro.harness.metrics import (
    KeepaliveBreakdown,
    blast_radius,
    keepalive_overhead,
    snapshot_table_change_counts,
)
from repro.harness.pathtrace import find_crossing_flow
from repro.net.capture import Capture
from repro.traffic.generator import ReceiverAnalyzer, TrafficSender

__all__ = [
    "StackKind",  # legacy re-export; the enum itself lives in repro.stacks
    "StackSpec",
    "StackTimers",
    "ExperimentResult",
    "ExperimentSpec",
    "ExperimentOutcome",
    "PacketLossResult",
    "ConfigCostResult",
    "TableSizeResult",
    "build_and_converge",
    "detection_bound_us",
    "run_failure_experiment",
    "run_experiment_batch",
    "run_experiment_task",
    "run_packet_loss_experiment",
    "run_keepalive_experiment",
    "run_config_cost_experiment",
    "run_table_size_experiment",
    "average_failure_runs",
    "experiment_task_key",
    "encode_experiment_outcome",
    "decode_experiment_outcome",
]


def build_and_converge(
    params,
    stack,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    trace_enabled: bool = True,
    max_converge_us: int = 60 * SECOND,
):
    """Fresh world + topology + converged deployment of any registered
    stack (name, spec, definition, or legacy enum).

    ``params`` selects the fabric in any spelling the topology registry
    resolves — a :class:`~repro.topology.TopologySpec`, a registry name,
    a legacy params dataclass, or ``None`` for the default folded-Clos.
    """
    spec = resolve_spec(stack, timers)
    definition = get_stack(spec.name)
    world = World(seed=seed, trace_enabled=trace_enabled)
    topo = build_topology(params, world=world)
    deployment = definition.build(topo, spec)
    deployment.start()
    converge_from_cold(world, deployment, deployment.ready,
                       max_time_us=max_converge_us)
    return world, topo, deployment


def detection_bound_us(stack, timers: Optional[StackTimers] = None) -> int:
    """Upper bound on failure-detection latency: the far end of a
    one-sided failure reacts only after this long."""
    spec = resolve_spec(stack, timers)
    return get_stack(spec.name).detection_bound_us(spec.timers)


# ----------------------------------------------------------------------
# failure experiment: convergence time, control overhead, blast radius
# ----------------------------------------------------------------------
@dataclass
class ExperimentResult:
    stack: str  # registry name
    case: str
    seed: int
    convergence_us: int
    control_bytes: int
    update_count: int
    blast_routers: list[str]

    @property
    def blast_radius(self) -> int:
        return len(self.blast_routers)

    @property
    def convergence_ms(self) -> float:
        return self.convergence_us / MILLISECOND

    @property
    def display(self) -> str:
        """The stack's human-readable name (e.g. ``MR-MTP``)."""
        return get_stack(self.stack).display


def run_failure_experiment(
    params,
    stack,
    case_name: str,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    quiet_us: int = 1 * SECOND,
    max_wait_us: int = 30 * SECOND,
    settle_us: Optional[int] = None,
    return_world: bool = False,
):
    """One failure run: inject the TC, watch updates quiesce, report.

    ``settle_us`` lets the converged fabric idle before the failure.
    The default draws it per seed from [0, 2 x keepalive interval]: the
    failure then lands at an arbitrary phase of the keepalive/hello
    cycle, exactly as on the paper's testbed — which is what makes the
    remote-detection convergence times vary across runs (the hold/dead
    timer runs from the *last received* keepalive).
    """
    spec = resolve_spec(stack, timers)
    world, topo, deployment = build_and_converge(params, spec, seed)
    if settle_us is None:
        phase_rng = world.rng.stream("experiment-settle")
        period = deployment.keepalive_period_us()
        settle_us = int(phase_rng.uniform(0, 2 * period))
    world.run_for(settle_us)
    case = topo.failure_cases()[case_name]
    monitor = ConvergenceMonitor(world, deployment.update_categories())
    before = snapshot_table_change_counts(deployment.forwarding_tables())
    injector = FailureInjector(world)
    monitor.arm()
    injector.fail_case(topo, case)
    monitor.run_until_quiet(
        quiet_us=quiet_us,
        max_wait_us=max_wait_us,
        min_wait_us=deployment.detection_bound_us() + quiet_us,
    )
    convergence = monitor.convergence_time_us()
    blast = blast_radius(before, deployment.forwarding_tables())
    result = ExperimentResult(
        stack=spec.name,
        case=case_name,
        seed=seed,
        convergence_us=convergence if convergence is not None else 0,
        control_bytes=monitor.update_bytes,
        update_count=monitor.update_count,
        blast_routers=blast,
    )
    if return_world:
        return result, world
    return result


# ----------------------------------------------------------------------
# multi-seed batches: one picklable spec per (case, seed) task so the
# batch can fan out over worker processes and hit the result cache
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec:
    """One failure run as an independent, picklable task.

    ``params`` normalizes to a :class:`~repro.topology.TopologySpec` on
    construction, so legacy call sites passing a concrete params
    dataclass still build the same cache key as registry-first callers.
    """

    params: TopologySpec
    stack: StackSpec
    case_name: str
    seed: int
    quiet_us: int = 1 * SECOND
    max_wait_us: int = 30 * SECOND

    def __post_init__(self) -> None:
        object.__setattr__(self, "params",
                           resolve_topology_spec(self.params))


@dataclass
class ExperimentOutcome:
    """A failure run's metrics plus its determinism fingerprint."""

    result: ExperimentResult
    digest: str


def run_experiment_task(spec: ExperimentSpec) -> ExperimentOutcome:
    """The parallel worker (top-level so the process pool can pickle it)."""
    from repro.harness.digest import run_digest

    result, world = run_failure_experiment(
        spec.params, spec.stack, spec.case_name, spec.seed,
        quiet_us=spec.quiet_us, max_wait_us=spec.max_wait_us,
        return_world=True,
    )
    digest = run_digest(world.trace, _experiment_payload(result))
    return ExperimentOutcome(result=result, digest=digest)


def _experiment_payload(result: ExperimentResult) -> dict:
    return {
        "stack": result.stack,
        "case": result.case,
        "seed": result.seed,
        "convergence_us": result.convergence_us,
        "control_bytes": result.control_bytes,
        "update_count": result.update_count,
        "blast_routers": list(result.blast_routers),
    }


def experiment_task_key(spec: ExperimentSpec) -> str:
    from repro.harness.cache import task_key

    return task_key(
        "failure-run",
        params=spec.params,
        stack=spec.stack.name,
        stack_params=spec.stack.params,
        timers=spec.stack.timers,
        case=spec.case_name,
        seed=spec.seed,
        quiet_us=spec.quiet_us,
        max_wait_us=spec.max_wait_us,
    )


def encode_experiment_outcome(outcome: ExperimentOutcome) -> dict:
    return {**_experiment_payload(outcome.result), "digest": outcome.digest}


def decode_experiment_outcome(payload: dict) -> ExperimentOutcome:
    result = ExperimentResult(
        stack=payload["stack"],
        case=payload["case"],
        seed=payload["seed"],
        convergence_us=payload["convergence_us"],
        control_bytes=payload["control_bytes"],
        update_count=payload["update_count"],
        blast_routers=list(payload["blast_routers"]),
    )
    return ExperimentOutcome(result=result, digest=payload["digest"])


def run_experiment_batch(
    params,
    stack,
    case_name: str,
    seeds: Optional[tuple[int, ...]] = None,
    timers: Optional[StackTimers] = None,
    n_runs: Optional[int] = None,
    base_seed: int = 0,
    jobs: int = 1,
    cache=None,
    report=None,
) -> list[ExperimentResult]:
    """Multi-seed batch of one failure case, fanned out over ``jobs``
    worker processes.

    Seeds come either explicitly via ``seeds`` (the paper's (0, 1, 2))
    or are derived per task from ``base_seed`` when only ``n_runs`` is
    given — :func:`repro.harness.digest.stable_seed` keeps the derived
    seeds identical across processes and interpreter restarts.
    """
    from repro.harness.digest import stable_seed
    from repro.harness.parallel import execute_tasks

    spec = resolve_spec(stack, timers)
    if seeds is None:
        if n_runs is None:
            seeds = (0, 1, 2)
        else:
            seeds = tuple(stable_seed("failure-batch", base_seed, i)
                          for i in range(n_runs))
    specs = [
        ExperimentSpec(params=params, stack=spec, case_name=case_name,
                       seed=seed)
        for seed in seeds
    ]
    outcomes = execute_tasks(
        specs, run_experiment_task, jobs=jobs, cache=cache,
        key_fn=experiment_task_key, encode=encode_experiment_outcome,
        decode=decode_experiment_outcome, report=report,
    )
    return [o.result for o in outcomes]


def average_failure_runs(
    params,
    stack,
    case_name: str,
    seeds: tuple[int, ...] = (0, 1, 2),
    timers: Optional[StackTimers] = None,
    jobs: int = 1,
    cache=None,
) -> ExperimentResult:
    """Multi-run average, as the paper's plotted values are."""
    spec = resolve_spec(stack, timers)
    runs = run_experiment_batch(params, spec, case_name, seeds,
                                jobs=jobs, cache=cache)
    return ExperimentResult(
        stack=spec.name,
        case=case_name,
        seed=-1,
        convergence_us=round(statistics.mean(r.convergence_us for r in runs)),
        control_bytes=round(statistics.mean(r.control_bytes for r in runs)),
        update_count=round(statistics.mean(r.update_count for r in runs)),
        blast_routers=max((r.blast_routers for r in runs), key=len),
    )


# ----------------------------------------------------------------------
# packet-loss experiment (Figs. 7 and 8)
# ----------------------------------------------------------------------
@dataclass
class PacketLossResult:
    stack: str
    case: str
    direction: str
    seed: int
    sent: int
    received: int
    duplicated: int
    out_of_order: int
    src_port: int

    @property
    def lost(self) -> int:
        return self.sent - self.received


def run_packet_loss_experiment(
    params,
    stack,
    case_name: str,
    direction: str = "near",
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    rate_pps: int = 1000,
    lead_us: int = 500 * MILLISECOND,
    tail_us: int = 5 * SECOND,
    drain_us: int = 1 * SECOND,
) -> PacketLossResult:
    """Traffic between the paper's first and last racks with a failure
    mid-flow.  ``near``: the sender's rack adjoins the failure (Fig. 7);
    ``far``: the sender is at the far end (Fig. 8)."""
    if direction not in ("near", "far"):
        raise ValueError(f"direction must be near/far, got {direction!r}")
    spec = resolve_spec(stack, timers)
    world, topo, deployment = build_and_converge(params, spec, seed)
    case = topo.failure_cases()[case_name]

    near_tor = topo.tors[0][0][0]
    far_tor = topo.tors[0][-1][-1]  # last pod's last ToR, e.g. VID 14 in 2-PoD
    src_tor, dst_tor = (near_tor, far_tor) if direction == "near" else (far_tor, near_tor)
    src_host = topo.first_server_of(src_tor)
    dst_host = topo.first_server_of(dst_tor)

    src_port = find_crossing_flow(
        deployment, src_host, dst_host, case.node, case.peer_node
    )
    if src_port is None:
        raise RuntimeError(
            f"no flow from {src_host} to {dst_host} crosses "
            f"{case.node}<->{case.peer_node}"
        )

    gap_us = SECOND // rate_pps
    count = (lead_us + tail_us) // gap_us
    sender = TrafficSender(
        udp=deployment.servers[src_host].udp,
        dst=topo.server_address(dst_host),
        src_port=src_port,
        gap_us=gap_us,
    )
    analyzer = ReceiverAnalyzer(deployment.servers[dst_host].udp)
    injector = FailureInjector(world)
    start_at = world.sim.now
    sender.start(count=int(count))
    injector.fail_case(topo, case, at=start_at + lead_us)
    world.run(until=start_at + lead_us + tail_us + drain_us)
    report = analyzer.report(sender)
    return PacketLossResult(
        stack=spec.name,
        case=case_name,
        direction=direction,
        seed=seed,
        sent=report.sent,
        received=report.received,
        duplicated=report.duplicated,
        out_of_order=report.out_of_order,
        src_port=src_port,
    )


# ----------------------------------------------------------------------
# keepalive overhead (Figs. 9 and 10)
# ----------------------------------------------------------------------
def run_keepalive_experiment(
    params,
    stack,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    window_us: int = 5 * SECOND,
) -> KeepaliveBreakdown:
    """Steady-state liveness traffic on the first ToR-agg link: a
    converged, idle fabric observed through a capture for ``window_us``
    (the paper's Wireshark methodology in section VII.F)."""
    world, topo, deployment = build_and_converge(params, stack, seed, timers)
    link = world.find_link(topo.tors[0][0][0], topo.aggs[0][0][0])
    capture = Capture()
    capture.attach((link.end_a, link.end_b))
    since = world.sim.now
    world.run_for(window_us)
    return keepalive_overhead(capture, since=since, until=world.sim.now)


# ----------------------------------------------------------------------
# configuration cost (Listings 1 and 2)
# ----------------------------------------------------------------------
@dataclass
class ConfigCostResult:
    stack: str
    routers: int
    total_lines: int
    documents: int  # config artifacts an operator maintains

    @property
    def lines_per_router(self) -> float:
        return self.total_lines / self.routers if self.routers else 0.0


def run_config_cost_experiment(
    params,
    stack,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
) -> ConfigCostResult:
    """Count the configuration an operator writes: per-router FRR configs
    for BGP (Listing 1) vs one fabric-wide JSON for MR-MTP (Listing 2)."""
    spec = resolve_spec(stack, timers)
    world, topo, deployment = build_and_converge(
        params, spec, seed, trace_enabled=False,
        max_converge_us=120 * SECOND,
    )
    cost = deployment.config_cost()
    return ConfigCostResult(stack=spec.name, routers=len(topo.routers()),
                            total_lines=cost.total_lines,
                            documents=cost.documents)


# ----------------------------------------------------------------------
# routing-table size (Listings 3 and 5)
# ----------------------------------------------------------------------
@dataclass
class TableSizeResult:
    stack: str
    node: str
    entries: int
    memory_bytes: int
    rendered: str


def run_table_size_experiment(
    params,
    stack,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
) -> dict[str, TableSizeResult]:
    """Converged forwarding state at one agg and one top spine — the
    comparison behind the paper's Listings 3 and 5."""
    spec = resolve_spec(stack, timers)
    world, topo, deployment = build_and_converge(params, spec, seed)
    results = {}
    roles = [("agg", topo.aggs[0][0][0])]
    if topo.all_tops():  # recursively-defined fabrics have no top tier
        roles.append(("top", topo.tops[0][0][0]))
    roles.append(("tor", topo.tors[0][0][0]))
    for role, node_name in roles:
        stats = deployment.table_stats(node_name)
        results[role] = TableSizeResult(
            stack=spec.name, node=node_name, entries=stats.entries,
            memory_bytes=stats.memory_bytes, rendered=stats.rendered,
        )
    return results
