"""Experiment harness.

The simulator-side equivalent of the paper's FABRIC automation suite
[29]: deploy a protocol stack onto a built topology, converge it, inject
interface failures at the paper's test points, monitor update traffic for
convergence, and compute the performance metrics of section V.
"""

from repro.harness.deploy import (
    BgpDeployment,
    MtpDeployment,
    deploy_bgp,
    deploy_mtp,
    deploy_servers,
)
from repro.harness.convergence import ConvergenceMonitor, converge_from_cold
from repro.harness.failures import FailureInjector
from repro.harness.metrics import (
    blast_radius,
    control_overhead_bytes,
    keepalive_overhead,
    snapshot_table_change_counts,
)
from repro.harness.experiments import (
    ExperimentResult,
    StackKind,
    StackSpec,
    StackTimers,
    run_experiment_batch,
    run_failure_experiment,
    run_packet_loss_experiment,
)
from repro.stacks import (
    Deployment,
    StackDefinition,
    available_stacks,
    get_stack,
    register_stack,
    resolve_spec,
)
from repro.harness.cache import ResultCache, default_cache_root, task_key
from repro.harness.digest import run_digest, stable_seed, trace_digest
from repro.harness.parallel import (
    DeterminismError,
    FanoutReport,
    assert_fanout_deterministic,
    execute_tasks,
    resolve_jobs,
)

__all__ = [
    "BgpDeployment",
    "MtpDeployment",
    "deploy_bgp",
    "deploy_mtp",
    "deploy_servers",
    "ConvergenceMonitor",
    "converge_from_cold",
    "FailureInjector",
    "blast_radius",
    "control_overhead_bytes",
    "keepalive_overhead",
    "snapshot_table_change_counts",
    "ExperimentResult",
    "StackKind",
    "StackSpec",
    "StackTimers",
    "Deployment",
    "StackDefinition",
    "available_stacks",
    "get_stack",
    "register_stack",
    "resolve_spec",
    "run_experiment_batch",
    "run_failure_experiment",
    "run_packet_loss_experiment",
    "ResultCache",
    "default_cache_root",
    "task_key",
    "run_digest",
    "stable_seed",
    "trace_digest",
    "DeterminismError",
    "FanoutReport",
    "assert_fanout_deterministic",
    "execute_tasks",
    "resolve_jobs",
]
