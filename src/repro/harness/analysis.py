"""Multi-seed statistics.

The paper's plotted values "were averaged over multiple runs"; with the
timing-noise knob (``jitter`` in the timer bundles) each seed produces a
distinct run, and this module aggregates them: mean, standard deviation,
extrema, and stack-vs-stack ratios for any numeric field of the
experiment results.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.stacks import StackTimers, resolve_spec
from repro.harness.experiments import (
    ExperimentResult,
    run_failure_experiment,
)


@dataclass(frozen=True)
class Aggregate:
    """Summary statistics of one metric over seeds."""

    mean: float
    stdev: float
    minimum: float
    maximum: float
    n: int

    @classmethod
    def of(cls, values: Sequence[float]) -> "Aggregate":
        if not values:
            raise ValueError("no values to aggregate")
        return cls(
            mean=statistics.fmean(values),
            stdev=statistics.stdev(values) if len(values) > 1 else 0.0,
            minimum=min(values),
            maximum=max(values),
            n=len(values),
        )

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.stdev:.2f} (n={self.n})"


@dataclass
class FailureStudy:
    """Aggregated failure-experiment metrics for one (stack, case)."""

    stack: str
    case: str
    convergence_ms: Aggregate
    control_bytes: Aggregate
    blast_radius: Aggregate
    runs: list[ExperimentResult]


def failure_study(
    params,
    stack,
    case: str,
    seeds: Iterable[int],
    timers: Optional[StackTimers] = None,
) -> FailureStudy:
    """Run the failure experiment once per seed and aggregate."""
    spec = resolve_spec(stack, timers)
    runs = [
        run_failure_experiment(params, spec, case, seed=seed)
        for seed in seeds
    ]
    return FailureStudy(
        stack=spec.name,
        case=case,
        convergence_ms=Aggregate.of([r.convergence_ms for r in runs]),
        control_bytes=Aggregate.of([float(r.control_bytes) for r in runs]),
        blast_radius=Aggregate.of([float(r.blast_radius) for r in runs]),
        runs=runs,
    )


def speedup(numerator: Aggregate, denominator: Aggregate) -> float:
    """Mean-over-mean ratio (e.g. BGP convergence / MR-MTP convergence)."""
    if denominator.mean == 0:
        raise ZeroDivisionError("denominator aggregate has zero mean")
    return numerator.mean / denominator.mean


def compare_stacks(
    params,
    case: str,
    seeds: Iterable[int],
    stacks: Sequence = ("mtp", "bgp", "bgp-bfd"),
    timers: Optional[StackTimers] = None,
) -> dict:
    """One :func:`failure_study` per stack, keyed by the caller's own
    handles (names, specs, or legacy enum members all work)."""
    seeds = list(seeds)
    return {
        stack: failure_study(params, stack, case, seeds, timers)
        for stack in stacks
    }
