"""Protocol deployment onto any built topology.

The analogue of the paper's "scripts ... to deploy the software (such as
BGP, BFD, MR-MTP) at the DCN routers": wires the full per-node service
stacks (IP/TCP/UDP/BFD/BGP on the baseline; MR-MTP plus a thin rack-side
IP shim on the proposal) and the server hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.stack.addresses import Ipv4Address, Ipv4Network
from repro.routing.ecmp import FlowKey
from repro.routing.table import NextHop, Route
from repro.iputil.stack import IpStack
from repro.iputil.tcp import TcpService
from repro.iputil.udp_service import UdpService
from repro.bfd.session import BfdManager, BfdTimers
from repro.bgp.config import BgpConfig, BgpNeighborConfig, BgpTimers, rfc7938_asn_plan
from repro.bgp.speaker import BgpSpeaker
from repro.core.config import MtpGlobalConfig, MtpTimers
from repro.core.protocol import MtpNode
from repro.core.vid import WideDerivation
from repro.liveness import LivenessConfig, resolve_liveness
from repro.stacks.base import ConfigCost, TableStats
from repro.topology import TIER_SERVER, Topology

MAX_TRACE_HOPS = 32


@dataclass
class ServerHost:
    stack: IpStack
    udp: UdpService


def deploy_servers(topo: Topology) -> dict[str, ServerHost]:
    """IP stacks + default routes on every server."""
    hosts: dict[str, ServerHost] = {}
    for tor, servers in topo.servers.items():
        for name in servers:
            node = topo.node(name)
            stack = IpStack(node, forwarding=False)
            stack.install_connected_routes()
            gateway = topo.server_gateway[name]
            stack.table.install(Route(
                prefix=Ipv4Network.parse("0.0.0.0/0"),
                nexthops=(NextHop(interface="eth1", via=gateway),),
                proto="static",
            ))
            hosts[name] = ServerHost(stack=stack, udp=UdpService(stack))
    return hosts


def _server_facing_ports(topo: Topology, router: str) -> list[str]:
    node = topo.node(router)
    return [
        iface.name
        for iface in node.interfaces.values()
        if iface.peer() is not None and iface.peer().node.tier == TIER_SERVER
    ]


def _install_rack_host_routes(topo: Topology, tor: str, stack: IpStack) -> None:
    """/32 host routes toward each server (routed-rack design), so racks
    with several servers forward correctly past the shared /24."""
    node = topo.node(tor)
    for iface in node.interfaces.values():
        peer = iface.peer()
        if peer is None or peer.node.tier != TIER_SERVER or peer.address is None:
            continue
        stack.table.install(Route(
            prefix=Ipv4Network.of(peer.address, 32),
            nexthops=(NextHop(interface=iface.name),),
            proto="connected",
        ))


# ----------------------------------------------------------------------
# BGP / ECMP (/ BFD)
# ----------------------------------------------------------------------
@dataclass
class BgpDeployment:
    topo: Topology
    speakers: dict[str, BgpSpeaker]
    stacks: dict[str, IpStack]
    servers: dict[str, ServerHost]
    uses_bfd: bool
    timers: BgpTimers = field(default_factory=BgpTimers)
    liveness: Optional[LivenessConfig] = None
    graceful_restart: bool = False

    def start(self) -> None:
        for speaker in self.speakers.values():
            speaker.start()

    def crash_agent(self, node: str) -> None:
        """Kill the node's bgpd: sessions drop silently, the FIB keeps
        forwarding headless on frozen state."""
        self.speakers[node].crash()

    def restart_agent(self, node: str, cold: Optional[bool] = None) -> None:
        """Bring bgpd back.  ``cold`` defaults to the stack's configured
        restart mode; a whole-node restore forces ``cold=True``."""
        if cold is None:
            cold = not self.graceful_restart
        self.speakers[node].restart(cold=cold)

    def ready(self) -> bool:
        return (self.all_established() and self.fib_complete()
                and self.all_bfd_up())

    def all_established(self) -> bool:
        return all(s.all_established() for s in self.speakers.values())

    def all_bfd_up(self) -> bool:
        """Every configured BFD session is Up (vacuously true without BFD)."""
        if not self.uses_bfd:
            return True
        for speaker in self.speakers.values():
            for peer in speaker.peers.values():
                if peer.bfd_session is not None and not peer.bfd_session.up:
                    return False
        return True

    def forwarding_tables(self) -> dict[str, object]:
        """name -> object with .change_count / .last_change_time."""
        return {name: stack.table for name, stack in self.stacks.items()}

    def route_generation(self) -> int:
        """Version counter over everything the data plane consults: the
        FIBs plus admin port state (a crashed bgpd leaves the FIB
        forwarding headless, so session state itself is not an input)."""
        gen = sum(stack.table.change_count for stack in self.stacks.values())
        return gen + sum(
            1 for name in self.stacks
            for iface in self.topo.node(name).interfaces.values()
            if not iface.admin_up)

    def update_categories(self) -> tuple[str, ...]:
        return ("bgp.update.tx",)

    def fib_complete(self) -> bool:
        """Every router can route every rack subnet."""
        racks = list(self.topo.rack_subnet.values())
        for name, stack in self.stacks.items():
            for prefix in racks:
                if stack.table.lookup(prefix.host(1)) is None:
                    return False
        return True

    def keepalive_period_us(self) -> int:
        return self.timers.keepalive_us

    def detection_bound_us(self) -> int:
        # the hold timer bounds detection even with BFD enabled (BFD
        # merely usually beats it)
        return self.timers.hold_us

    def classify_liveness(self, record) -> Optional[str]:
        """bgp.session transitions: hold-timer / BFD / TCP-give-up downs
        are timer detections, interface-down is the local admin event.
        bgp.damping carries the flap-damping suppress/reuse edges."""
        if record.category == "bgp.damping":
            return "suppress" if " suppress " in record.message else "reuse"
        if record.category != "bgp.session":
            return None
        message = record.message
        if message.endswith(" up"):
            return "up"
        if ("(hold-timer)" in message or "(bfd)" in message
                or "(tcp:retransmit-timeout)" in message):
            return "down-detected"
        if "(interface-down)" in message:
            return "down-admin"
        return None  # notifications, sympathetic tcp teardowns, ...

    def table_stats(self, node: str) -> TableStats:
        table = self.stacks[node].table
        return TableStats(entries=len(table),
                          memory_bytes=table.memory_bytes(),
                          rendered=table.render())

    def config_cost(self) -> ConfigCost:
        total = sum(len(speaker.config.config_lines())
                    for speaker in self.speakers.values())
        return ConfigCost(total_lines=total, documents=len(self.speakers))

    def describe_node(self, node: str) -> str:
        return (self.speakers[node].summary() + "\nFIB:\n"
                + self.stacks[node].table.render())

    def fluid_candidates(self, node: str, dst_tor: str,
                         ingress_port: Optional[str]
                         ) -> tuple[int, bool, tuple[str, ...]]:
        """(salt, spray, egress ports) for rack ``dst_tor`` at ``node``,
        exactly the set :meth:`RoutingTable.select_nexthop` hashes over:
        the matched route's next hops in route order, hashed with the
        table's salt.  BGP ignores the ingress port."""
        table = self.stacks[node].table
        route = table.lookup(self.topo.rack_subnet[dst_tor].host(1))
        if route is None:
            return (table.salt, False, ())
        return (table.salt, False,
                tuple(nh.interface for nh in table.usable_nexthops(route)))

    def trace_fabric_path(self, path: list[str], dst_ip: Ipv4Address,
                          dst_host: str, flow: FlowKey) -> list[str]:
        current = path[-1]
        for _ in range(MAX_TRACE_HOPS):
            stack = self.stacks[current]
            nexthop = stack.table.select_nexthop(dst_ip, flow)
            if nexthop is None:
                raise RuntimeError(f"path dead-ends at {current} (no route)")
            iface = self.topo.node(current).interfaces[nexthop.interface]
            peer = iface.peer()
            if peer is None:
                raise RuntimeError(f"{current}:{nexthop.interface} uncabled")
            path.append(peer.node.name)
            if peer.node.name == dst_host:
                return path
            current = peer.node.name
        raise RuntimeError(f"path exceeds {MAX_TRACE_HOPS} hops: {path}")


def deploy_bgp(
    topo: Topology,
    bfd: bool = False,
    timers: Optional[BgpTimers] = None,
    bfd_timers: Optional[BfdTimers] = None,
    multipath: bool = True,
    liveness=None,
    graceful_restart: bool = False,
) -> BgpDeployment:
    """Deploy RFC 7938 eBGP (+ECMP, optionally +BFD) on every router."""
    if timers is None:
        timers = BgpTimers()
    if bfd_timers is None:
        bfd_timers = BfdTimers()
    liveness_cfg = resolve_liveness(liveness)
    plan = rfc7938_asn_plan(topo)
    speakers: dict[str, BgpSpeaker] = {}
    stacks: dict[str, IpStack] = {}
    for index, name in enumerate(topo.routers()):
        node = topo.node(name)
        stack = IpStack(node, forwarding=True, salt=index + 1)
        stack.install_connected_routes()
        if name in topo.rack_subnet:
            _install_rack_host_routes(topo, name, stack)
        stacks[name] = stack
        udp = UdpService(stack)
        tcp = TcpService(stack)
        bfd_mgr = (
            BfdManager(udp, rng=topo.world.rng.stream(f"bfd-{name}"))
            if bfd else None
        )
        neighbors = []
        for iface in node.interfaces.values():
            peer = iface.peer()
            if peer is None or peer.node.tier == TIER_SERVER:
                continue
            if peer.address is None:
                continue
            neighbors.append(BgpNeighborConfig(
                peer_ip=peer.address,
                peer_asn=plan[peer.node.name],
                interface=iface.name,
                bfd=bfd,
            ))
        networks = [topo.rack_subnet[name]] if name in topo.rack_subnet else []
        router_id = next(
            iface.address for iface in node.interfaces.values()
            if iface.address is not None
        )
        config = BgpConfig(
            asn=plan[name], router_id=router_id, neighbors=neighbors,
            networks=networks, multipath=multipath,
            graceful_restart=graceful_restart, timers=timers,
            bfd_timers=bfd_timers, liveness=liveness_cfg,
        )
        speaker = BgpSpeaker(
            node, config, stack, tcp, bfd_mgr,
            rng=topo.world.rng.stream(f"bgp-{name}"),
        )
        speakers[name] = speaker
        if liveness_cfg is not None and bfd:
            # gray-failure depreference: ECMP avoids next hops whose BFD
            # monitor measures degrade-level loss (route stays installed)
            stack.table.nexthop_bias = speaker.iface_link_degraded
    servers = deploy_servers(topo)
    return BgpDeployment(topo=topo, speakers=speakers, stacks=stacks,
                         servers=servers, uses_bfd=bfd, timers=timers,
                         liveness=liveness_cfg,
                         graceful_restart=graceful_restart)


# ----------------------------------------------------------------------
# MR-MTP
# ----------------------------------------------------------------------
@dataclass
class MtpDeployment:
    topo: Topology
    mtp_nodes: dict[str, MtpNode]
    tor_stacks: dict[str, IpStack]
    servers: dict[str, ServerHost]
    config: MtpGlobalConfig
    timers: MtpTimers = field(default_factory=MtpTimers)
    liveness: Optional[LivenessConfig] = None
    graceful_restart: bool = False

    def start(self) -> None:
        for mtp in self.mtp_nodes.values():
            mtp.start()

    def crash_agent(self, node: str) -> None:
        """Kill the node's MR-MTP agent: control goes dark, the VID
        table keeps forwarding headless on frozen state."""
        self.mtp_nodes[node].crash()

    def restart_agent(self, node: str, cold: Optional[bool] = None) -> None:
        """Bring the agent back.  ``cold`` defaults to the stack's
        configured restart mode; a whole-node restore forces True."""
        if cold is None:
            cold = not self.graceful_restart
        self.mtp_nodes[node].restart(cold=cold)

    def ready(self) -> bool:
        return self.trees_complete()

    def forwarding_tables(self) -> dict[str, object]:
        return {name: mtp.table for name, mtp in self.mtp_nodes.items()}

    def route_generation(self) -> int:
        """Version counter over everything the data plane consults: VID
        tables plus neighbor usability (``fib_gen``) plus admin port
        state.  Graceful restart changes forwarding behavior without a
        table write, so table change-counts alone under-sample."""
        gen = sum(mtp.table.change_count + mtp.fib_gen
                  for mtp in self.mtp_nodes.values())
        return gen + sum(
            1 for name in self.mtp_nodes
            for iface in self.topo.node(name).interfaces.values()
            if not iface.admin_up)

    def update_categories(self) -> tuple[str, ...]:
        return ("mtp.update.tx",)

    def trees_complete(self) -> bool:
        """Every top-tier device holds a VID from every ToR root (the
        meshed-tree invariant of paper section III.B)."""
        all_roots = set(self.topo.tor_vid_seed.values())
        uppermost = self.topo.all_supers() or self.topo.all_tops()
        for name in uppermost:
            if self.mtp_nodes[name].table.roots() != all_roots:
                return False
        # each ToR derived its VID
        return all(
            self.mtp_nodes[t].own_root is not None for t in self.topo.all_tors()
        )

    def keepalive_period_us(self) -> int:
        return self.timers.hello_us

    def detection_bound_us(self) -> int:
        if self.liveness is not None and self.liveness.adaptive_timers:
            # adaptive widening: detection can legitimately take up to
            # the envelope ceiling on a measured-lossy link
            return int(self.timers.dead_us * self.liveness.max_scale)
        return self.timers.dead_us

    def classify_liveness(self, record) -> Optional[str]:
        """mtp.neighbor transitions: dead-timer downs are the
        Quick-to-Detect declarations, local-port-down the admin event.
        mtp.damping carries the flap-damping suppress/reuse edges."""
        if record.category == "mtp.damping":
            return "suppress" if " suppress " in record.message else "reuse"
        if record.category != "mtp.neighbor":
            return None
        message = record.message
        if " up (" in message:
            return "up"
        if message.endswith("(dead-timer)"):
            return "down-detected"
        if message.endswith("(local-port-down)"):
            return "down-admin"
        return None

    def table_stats(self, node: str) -> TableStats:
        table = self.mtp_nodes[node].table
        return TableStats(entries=table.entry_count(),
                          memory_bytes=table.memory_bytes(),
                          rendered=table.render())

    def config_cost(self) -> ConfigCost:
        # one fabric-wide JSON document configures every router
        return ConfigCost(total_lines=len(self.config.config_lines()),
                          documents=1)

    def describe_node(self, node: str) -> str:
        return self.mtp_nodes[node].summary()

    def fluid_candidates(self, node: str, dst_tor: str,
                         ingress_port: Optional[str]
                         ) -> tuple[int, bool, tuple[str, ...]]:
        """(salt, spray, egress ports) for rack ``dst_tor`` at ``node``:
        the candidate set :meth:`MtpNode.decide_data_port` balances over
        right now — VID-table down-ports when the node holds the
        destination root, else alive unmarked up-ports, ingress
        excluded."""
        mtp = self.mtp_nodes[node]
        dst_root = self.topo.tor_vid_seed[dst_tor]
        return (mtp.salt, mtp.per_packet_spray,
                tuple(mtp.candidate_data_ports(dst_root, ingress_port)))

    def trace_fabric_path(self, path: list[str], dst_ip: Ipv4Address,
                          dst_host: str, flow: FlowKey) -> list[str]:
        # at the source ToR the packet is locally encapsulated (no MTP
        # ingress port), matching MtpNode._intercept_ip
        ingress: Optional[str] = None
        current = path[-1]
        dst_root = self.mtp_nodes[current].derivation.root_for_address(dst_ip)
        for _ in range(MAX_TRACE_HOPS):
            mtp = self.mtp_nodes[current]
            if mtp.tier == 1 and mtp.own_root == dst_root:
                # destination ToR: rack delivery
                path.append(dst_host)
                return path
            egress = mtp.decide_data_port(dst_root, flow, ingress_port=ingress)
            if egress is None:
                raise RuntimeError(f"path dead-ends at {current} (no VID path)")
            peer = self.topo.node(current).interfaces[egress].peer()
            if peer is None:
                raise RuntimeError(f"{current}:{egress} uncabled")
            path.append(peer.node.name)
            current = peer.node.name
            ingress = peer.name
        raise RuntimeError(f"path exceeds {MAX_TRACE_HOPS} hops: {path}")


def deploy_mtp(
    topo: Topology,
    timers: Optional[MtpTimers] = None,
    per_packet_spray: bool = False,
    liveness=None,
    graceful_restart: bool = False,
    stale_hold_us: Optional[int] = None,
) -> MtpDeployment:
    """Deploy MR-MTP on every router (ToRs keep a rack-side IP shim)."""
    if timers is None:
        timers = MtpTimers()
    liveness_cfg = resolve_liveness(liveness)
    config = MtpGlobalConfig.from_topology(topo, timers)
    derivation = WideDerivation()
    mtp_nodes: dict[str, MtpNode] = {}
    tor_stacks: dict[str, IpStack] = {}
    for index, name in enumerate(topo.routers()):
        node = topo.node(name)
        stack = None
        if node.tier == 1:
            stack = IpStack(node, forwarding=False, salt=index + 1)
            stack.install_connected_routes()
            _install_rack_host_routes(topo, name, stack)
            tor_stacks[name] = stack
        mtp_nodes[name] = MtpNode(
            node,
            config.for_node(name),
            timers=timers,
            derivation=derivation,
            stack=stack,
            exclude_interfaces=_server_facing_ports(topo, name),
            salt=index + 1,
            rng=topo.world.rng.stream(f"mtp-{name}"),
            per_packet_spray=per_packet_spray,
            liveness=liveness_cfg,
            graceful_restart=graceful_restart,
            stale_hold_us=stale_hold_us,
        )
    servers = deploy_servers(topo)
    return MtpDeployment(topo=topo, mtp_nodes=mtp_nodes,
                         tor_stacks=tor_stacks, servers=servers,
                         config=config, timers=timers,
                         liveness=liveness_cfg,
                         graceful_restart=graceful_restart)
