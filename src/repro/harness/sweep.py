"""Exhaustive single-failure robustness sweep.

For every fabric interface: build a fresh fabric, converge, fail that
one interface, let the protocol reconverge, then verify by path-tracing
that every rack can still reach every other rack (a folded-Clos with
redundancy >= 2 keeps physical connectivity under any single interface
failure, so any unreachable pair is a protocol bug — a blackhole the
paper's four hand-picked TCs would never catch).

Each failure point is an independent task (its own World, its own seed),
so the sweep fans out across worker processes via
:mod:`repro.harness.parallel` and converged points are replayed from the
on-disk :mod:`result cache <repro.harness.cache>`.  Every point carries a
run digest; serial and parallel execution produce byte-identical results.

The sweep is stack-agnostic: any stack registered with
:mod:`repro.stacks` sweeps without changes here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.sim.units import SECOND
from repro.topology import (
    TIER_SERVER,
    Topology,
    TopologySpec,
    resolve_topology_spec,
)
from repro.stacks import StackSpec, StackTimers, resolve_spec
from repro.net.impairment import ImpairmentProfile
from repro.harness.cache import ResultCache, task_key
from repro.harness.digest import run_digest
from repro.harness.experiments import build_and_converge
from repro.harness.failures import FailureInjector
from repro.harness.parallel import FanoutReport, execute_tasks
from repro.harness.pathtrace import trace_path
from repro.harness.supervisor import (
    RetryPolicy,
    SupervisorReport,
    supervise_tasks,
)
from repro.workload.engine import FluidWorkload
from repro.workload.spec import resolve_workload


@dataclass(frozen=True)
class FailurePoint:
    node: str
    interface: str
    peer: str


@dataclass
class SweepResult:
    point: FailurePoint
    pairs_checked: int
    unreachable: list[tuple[str, str, str]] = field(default_factory=list)
    workload: Optional[dict] = None  # WorkloadReport payload, if loaded

    @property
    def ok(self) -> bool:
        return not self.unreachable


@dataclass(frozen=True)
class SweepPointSpec:
    """One sweep task: everything a worker process needs (picklable)."""

    params: TopologySpec
    stack: StackSpec
    seed: int
    point: FailurePoint
    reconverge_margin_us: int
    #: background loss rate applied to every fabric link while the hard
    #: failure plays out — sweeping under gray noise instead of a
    #: pristine fabric.  0.0 (the default) keeps the classic sweep.
    ambient_loss: float = 0.0
    #: optional workload (library name, payload, or spec): each point
    #: then runs the fluid workload across the failure window, and its
    #: aggregate report joins the result and the digest.  None (the
    #: default) keeps the classic probe-only sweep.
    workload: Optional[Any] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params",
                           resolve_topology_spec(self.params))
        if self.workload is not None:
            object.__setattr__(
                self, "workload",
                resolve_workload(self.workload).to_payload())


@dataclass
class SweepOutcome:
    """A sweep point's result plus its determinism fingerprint."""

    result: SweepResult
    digest: str


def fabric_failure_points(topo: Topology) -> list[FailurePoint]:
    """Every router-to-router interface in the fabric."""
    points = []
    for name in topo.routers():
        node = topo.node(name)
        for iface in node.interfaces.values():
            peer = iface.peer()
            if peer is None or peer.node.tier == TIER_SERVER:
                continue
            points.append(FailurePoint(name, iface.name, peer.node.name))
    return points


def _rack_pairs(topo: Topology) -> list[tuple[str, str]]:
    tors = topo.all_tors()
    return [(a, b) for a in tors for b in tors if a != b]


def check_all_pairs(
    deployment,
    topo: Topology,
    probe_ports: Iterable[int] = (40000, 40001, 40002, 40003),
) -> tuple[int, list[tuple[str, str, str]]]:
    """Trace several flows between every rack pair; collect failures."""
    unreachable = []
    checked = 0
    for src_tor, dst_tor in _rack_pairs(topo):
        src = topo.first_server_of(src_tor)
        dst = topo.first_server_of(dst_tor)
        checked += 1
        for port in probe_ports:
            try:
                trace_path(deployment, src, dst, src_port=port)
            except RuntimeError as exc:
                unreachable.append((src_tor, dst_tor, str(exc)))
                break
    return checked, unreachable


# ----------------------------------------------------------------------
# one sweep point = one task (the parallel worker; must stay top-level
# so ProcessPoolExecutor can pickle it)
# ----------------------------------------------------------------------
def run_sweep_point(spec: SweepPointSpec) -> SweepOutcome:
    """Build a fresh world, fail one interface, verify all-pairs
    reachability, and fingerprint the run."""
    world, topo, deployment = build_and_converge(
        spec.params, spec.stack, spec.seed)
    point = spec.point
    if spec.ambient_loss > 0.0:
        injector = FailureInjector(world)
        profile = ImpairmentProfile(loss=spec.ambient_loss)
        for p in fabric_failure_points(topo):
            # per-direction: each fabric interface impairs its tx side
            # once, so every link ends up lossy both ways
            injector.impair_link(p.node, p.interface, profile,
                                 direction="tx")
    engine = None
    if spec.workload is not None:
        engine = FluidWorkload(resolve_workload(spec.workload), topo,
                               deployment)
        engine.start()
    topo.node(point.node).interfaces[point.interface].set_admin(False)
    if engine is not None:
        engine.mark_epoch()  # capture the just-failed forwarding state
    world.run_for(deployment.detection_bound_us()
                  + spec.reconverge_margin_us)
    checked, unreachable = check_all_pairs(deployment, topo)
    result = SweepResult(point=point, pairs_checked=checked,
                         unreachable=unreachable)
    if engine is not None:
        result.workload = engine.finish().to_payload()
    digest = run_digest(world.trace, _result_payload(result))
    return SweepOutcome(result=result, digest=digest)


def _result_payload(result: SweepResult) -> dict:
    payload = {
        "point": [result.point.node, result.point.interface,
                  result.point.peer],
        "pairs_checked": result.pairs_checked,
        "unreachable": [list(u) for u in result.unreachable],
    }
    if result.workload is not None:
        payload["workload"] = result.workload
    return payload


def sweep_point_key(spec: SweepPointSpec) -> str:
    """Cache key: the full content of the task, nothing ambient — the
    stack enters as registry name + canonical params, never an enum."""
    extra = {}
    if spec.ambient_loss:
        # only a non-zero rate enters the key: classic (pristine) sweep
        # entries keep their pre-impairment cache identity
        extra["ambient_loss"] = spec.ambient_loss
    if spec.workload is not None:
        # likewise: the workload payload joins the key only for loaded
        # sweeps, so probe-only entries keep their cache identity
        extra["workload"] = spec.workload
    return task_key(
        "sweep-point",
        params=spec.params,
        stack=spec.stack.name,
        stack_params=spec.stack.params,
        timers=spec.stack.timers,
        seed=spec.seed,
        point=spec.point,
        reconverge_margin_us=spec.reconverge_margin_us,
        **extra,
    )


def encode_sweep_outcome(outcome: SweepOutcome) -> dict:
    return {**_result_payload(outcome.result), "digest": outcome.digest}


def decode_sweep_outcome(payload: dict) -> SweepOutcome:
    result = SweepResult(
        point=FailurePoint(*payload["point"]),
        pairs_checked=payload["pairs_checked"],
        unreachable=[tuple(u) for u in payload["unreachable"]],
        workload=payload.get("workload"),
    )
    return SweepOutcome(result=result, digest=payload["digest"])


# ----------------------------------------------------------------------
# the sweep driver
# ----------------------------------------------------------------------
def sweep_specs(
    params,
    stack,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    points: Optional[list[FailurePoint]] = None,
    reconverge_margin_us: int = 1 * SECOND,
    ambient_loss: float = 0.0,
    workload: Optional[Any] = None,
) -> list[SweepPointSpec]:
    """Expand a sweep into its independent per-point tasks."""
    spec = resolve_spec(stack, timers)
    if points is None:
        # probe build to enumerate the failure points
        world, topo, _ = build_and_converge(params, spec, seed)
        points = fabric_failure_points(topo)
    return [
        SweepPointSpec(params=params, stack=spec, seed=seed,
                       point=point,
                       reconverge_margin_us=reconverge_margin_us,
                       ambient_loss=ambient_loss, workload=workload)
        for point in points
    ]


def sweep_point_label(spec: SweepPointSpec) -> str:
    """Human task label for supervisor records and quarantine tables."""
    return (f"{spec.stack.name} {spec.point.node}:{spec.point.interface} "
            f"seed={spec.seed}")


def single_failure_sweep_outcomes(
    params,
    stack,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    points: Optional[list[FailurePoint]] = None,
    reconverge_margin_us: int = 1 * SECOND,
    ambient_loss: float = 0.0,
    workload: Optional[Any] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    report: Optional[FanoutReport] = None,
    policy: Optional[RetryPolicy] = None,
    supervisor: Optional[SupervisorReport] = None,
) -> list[Optional[SweepOutcome]]:
    """The sweep with digests: fan out over ``jobs`` worker processes,
    replaying already-converged points from ``cache`` when given.

    With a ``policy`` (or an attached ``supervisor`` report) the sweep
    runs under :mod:`repro.harness.supervisor`: hung points are killed
    by the watchdog, failing points retry with backoff, and a point that
    exhausts its attempts is quarantined — its slot comes back ``None``
    and the rest of the sweep still completes.
    """
    specs = sweep_specs(params, stack, seed, timers, points,
                        reconverge_margin_us, ambient_loss, workload)
    if policy is not None or supervisor is not None:
        return supervise_tasks(
            specs, run_sweep_point, jobs=jobs, policy=policy, cache=cache,
            key_fn=sweep_point_key, encode=encode_sweep_outcome,
            decode=decode_sweep_outcome, label_fn=sweep_point_label,
            report=supervisor,
        )
    return execute_tasks(
        specs, run_sweep_point, jobs=jobs, cache=cache,
        key_fn=sweep_point_key, encode=encode_sweep_outcome,
        decode=decode_sweep_outcome, report=report,
    )


def single_failure_sweep(
    params,
    stack,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    points: Optional[list[FailurePoint]] = None,
    reconverge_margin_us: int = 1 * SECOND,
    ambient_loss: float = 0.0,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> list[SweepResult]:
    """Run the sweep; one fresh world per failure point."""
    outcomes = single_failure_sweep_outcomes(
        params, stack, seed, timers, points, reconverge_margin_us,
        ambient_loss, jobs=jobs, cache=cache,
    )
    return [o.result for o in outcomes]


def summarize(results: list[SweepResult]) -> str:
    bad = [r for r in results if not r.ok]
    lines = [
        f"sweep: {len(results)} failure points, "
        f"{sum(r.pairs_checked for r in results)} pair checks, "
        f"{len(bad)} points with blackholes",
    ]
    for r in bad:
        lines.append(f"  FAIL {r.point.node}:{r.point.interface} "
                     f"(peer {r.point.peer}): {r.unreachable[:3]}")
    return "\n".join(lines)
