"""Exhaustive single-failure robustness sweep.

For every fabric interface: build a fresh fabric, converge, fail that
one interface, let the protocol reconverge, then verify by path-tracing
that every rack can still reach every other rack (a folded-Clos with
redundancy >= 2 keeps physical connectivity under any single interface
failure, so any unreachable pair is a protocol bug — a blackhole the
paper's four hand-picked TCs would never catch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.units import SECOND
from repro.topology.clos import ClosParams, ClosTopology, TIER_SERVER
from repro.harness.experiments import (
    StackKind,
    StackTimers,
    build_and_converge,
    detection_bound_us,
)
from repro.harness.pathtrace import trace_path


@dataclass(frozen=True)
class FailurePoint:
    node: str
    interface: str
    peer: str


@dataclass
class SweepResult:
    point: FailurePoint
    pairs_checked: int
    unreachable: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.unreachable


def fabric_failure_points(topo: ClosTopology) -> list[FailurePoint]:
    """Every router-to-router interface in the fabric."""
    points = []
    for name in topo.routers():
        node = topo.node(name)
        for iface in node.interfaces.values():
            peer = iface.peer()
            if peer is None or peer.node.tier == TIER_SERVER:
                continue
            points.append(FailurePoint(name, iface.name, peer.node.name))
    return points


def _rack_pairs(topo: ClosTopology) -> list[tuple[str, str]]:
    tors = topo.all_tors()
    return [(a, b) for a in tors for b in tors if a != b]


def check_all_pairs(
    deployment,
    topo: ClosTopology,
    probe_ports: Iterable[int] = (40000, 40001, 40002, 40003),
) -> tuple[int, list[tuple[str, str, str]]]:
    """Trace several flows between every rack pair; collect failures."""
    unreachable = []
    checked = 0
    for src_tor, dst_tor in _rack_pairs(topo):
        src = topo.first_server_of(src_tor)
        dst = topo.first_server_of(dst_tor)
        checked += 1
        for port in probe_ports:
            try:
                trace_path(deployment, src, dst, src_port=port)
            except RuntimeError as exc:
                unreachable.append((src_tor, dst_tor, str(exc)))
                break
    return checked, unreachable


def single_failure_sweep(
    params: ClosParams,
    kind: StackKind,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    points: Optional[list[FailurePoint]] = None,
    reconverge_margin_us: int = 1 * SECOND,
) -> list[SweepResult]:
    """Run the sweep; one fresh world per failure point."""
    if timers is None:
        timers = StackTimers()
    results = []
    if points is None:
        # probe build to enumerate the failure points
        world, topo, _ = build_and_converge(params, kind, seed, timers)
        points = fabric_failure_points(topo)
    for point in points:
        world, topo, deployment = build_and_converge(params, kind, seed,
                                                     timers)
        topo.node(point.node).interfaces[point.interface].set_admin(False)
        world.run_for(detection_bound_us(kind, timers) + reconverge_margin_us)
        checked, unreachable = check_all_pairs(deployment, topo)
        results.append(SweepResult(point=point, pairs_checked=checked,
                                   unreachable=unreachable))
    return results


def summarize(results: list[SweepResult]) -> str:
    bad = [r for r in results if not r.ok]
    lines = [
        f"sweep: {len(results)} failure points, "
        f"{sum(r.pairs_checked for r in results)} pair checks, "
        f"{len(bad)} points with blackholes",
    ]
    for r in bad:
        lines.append(f"  FAIL {r.point.node}:{r.point.interface} "
                     f"(peer {r.point.peer}): {r.unreachable[:3]}")
    return "\n".join(lines)
