"""Plain-text result tables.

Benchmarks render the paper's figures as aligned text tables and persist
them under ``benchmarks/results/`` so a run leaves the regenerated
rows/series on disk next to the expectations in EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> str:
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()

    out = [title, "=" * len(title), line(columns),
           line(["-" * w for w in widths])]
    out += [line(row) for row in str_rows]
    if note:
        out += ["", note]
    return "\n".join(out)


#: Every InterfaceCounters field, in display order — the drop columns
#: (down / uncabled / queue / corrupt / duplicate) tell congestion,
#: cabling and gray-link damage apart at a glance.
COUNTER_COLUMNS = (
    ("tx_frames", "tx"),
    ("rx_frames", "rx"),
    ("tx_dropped_down", "txd-down"),
    ("rx_dropped_down", "rxd-down"),
    ("tx_dropped_uncabled", "txd-uncab"),
    ("tx_dropped_queue", "txd-queue"),
    ("rx_dropped_corrupt", "rxd-corrupt"),
    ("rx_duplicate", "rx-dup"),
)


def render_interface_counters(
    title: str,
    interfaces: Iterable[object],
    note: str = "",
) -> str:
    """One row per interface, every counter (drops included) a column."""
    rows = [
        [f"{iface.node.name}:{iface.name}"]
        + [getattr(iface.counters, field) for field, _ in COUNTER_COLUMNS]
        for iface in interfaces
    ]
    columns = ["interface"] + [header for _, header in COUNTER_COLUMNS]
    return render_table(title, columns, rows, note=note)


#: Quarantine-table columns shared by the text and HTML renderings, so
#: the two report formats can never drift apart.
QUARANTINE_COLUMNS = ("task", "key", "attempts", "failure class", "reason")


def quarantine_rows(records: Iterable[object]) -> list[list[str]]:
    """One row per quarantined :class:`TaskRecord` (duck-typed to avoid
    a report → supervisor import cycle)."""
    rows = []
    for record in records:
        if getattr(record, "state", None) != "quarantined":
            continue
        rows.append([
            record.label,
            record.key[:12],
            str(len(record.attempts)),
            record.failure_class,
            record.quarantine_reason,
        ])
    return rows


def render_quarantine_table(records: Iterable[object]) -> str:
    """The supervisor's quarantine report: which tasks the campaign gave
    up on, and why — empty string when nothing was quarantined."""
    rows = quarantine_rows(records)
    if not rows:
        return ""
    return render_table(
        "quarantined tasks (infra failures, not experiment findings)",
        QUARANTINE_COLUMNS,
        rows,
        note="quarantined = killed by the watchdog / failed "
             "deterministically / exhausted retries; the rest of the "
             "campaign completed without them",
    )


def save_result(results_dir: Path, name: str, text: str) -> Path:
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    return path
