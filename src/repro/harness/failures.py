"""Failure injection.

The analogue of the paper's remote bash script that "would bring down an
interface and record the time of this event at the node" — the recorded
time is the convergence-calculation start (section VI.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.impairment import (
    DIRECTIONS,
    ImpairmentProfile,
    rng_stream_name,
)
from repro.net.world import World
from repro.topology import FailureCase, Topology


class UnknownTargetError(KeyError):
    """A failure/restore names a node or interface that does not exist.

    Raised up front, at scheduling time — a bare ``KeyError`` escaping
    from :class:`World` mid-simulation would otherwise surface long
    after the bad call, with no hint which injection caused it.
    Subclasses ``KeyError`` so existing callers that caught the raw
    lookup error keep working.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message


@dataclass(frozen=True)
class InjectedFailure:
    node: str
    interface: str
    time: int
    kind: str  # "down" | "up" | "impair" | "clear"


class FailureInjector:
    def __init__(self, world: World, deployment=None) -> None:
        self.world = world
        self.deployment = deployment
        self.events: list[InjectedFailure] = []
        self._crashed_agents: set[str] = set()
        self._down_nodes: set[str] = set()

    # ------------------------------------------------------------------
    def _checked_node(self, node_name: str):
        node = self.world.nodes.get(node_name)
        if node is None:
            raise UnknownTargetError(
                f"unknown node {node_name!r}; the world has: "
                f"{', '.join(sorted(self.world.nodes)) or '(none)'}")
        return node

    def _check_target(self, node_name: str, iface_name: str) -> None:
        node = self._checked_node(node_name)
        if iface_name not in node.interfaces:
            raise UnknownTargetError(
                f"node {node_name} has no interface {iface_name!r}; "
                f"has: {', '.join(node.interfaces) or '(none)'}")

    # ------------------------------------------------------------------
    def fail_interface(self, node_name: str, iface_name: str,
                       at: Optional[int] = None) -> None:
        """Bring the interface down now or at absolute time ``at``."""
        self._check_target(node_name, iface_name)
        if at is None:
            self._do(node_name, iface_name, False)
        else:
            self.world.sim.schedule_at(at, self._do, node_name, iface_name, False)

    def restore_interface(self, node_name: str, iface_name: str,
                          at: Optional[int] = None) -> None:
        self._check_target(node_name, iface_name)
        if at is None:
            self._do(node_name, iface_name, True)
        else:
            self.world.sim.schedule_at(at, self._do, node_name, iface_name, True)

    def fail_case(self, topo: Topology, case: FailureCase,
                  at: Optional[int] = None) -> None:
        self.fail_interface(case.node, case.interface, at)

    def flap_interface(self, node_name: str, iface_name: str,
                       period_us: int, count: int,
                       start_at: Optional[int] = None,
                       up_period_us: Optional[int] = None) -> None:
        """Toggle an interface down/up ``count`` times — the flapping
        workload for the Slow-to-Accept ablation.  ``period_us`` is the
        down-window; ``up_period_us`` (default: the same) the up-window."""
        base = self.world.sim.now if start_at is None else start_at
        up_period = period_us if up_period_us is None else up_period_us
        cycle = period_us + up_period
        for i in range(count):
            self.fail_interface(node_name, iface_name, at=base + i * cycle)
            self.restore_interface(node_name, iface_name,
                                   at=base + i * cycle + period_us)

    # ------------------------------------------------------------------
    # gray failures — see repro.net.impairment
    # ------------------------------------------------------------------
    def _checked_cabled(self, node_name: str, iface_name: str):
        self._check_target(node_name, iface_name)
        iface = self.world.nodes[node_name].interfaces[iface_name]
        if iface.link is None:
            raise UnknownTargetError(
                f"{node_name}:{iface_name} is not cabled; cannot impair "
                f"an unconnected interface")
        return iface

    @staticmethod
    def _checked_direction(direction: str) -> None:
        if direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {', '.join(DIRECTIONS)}, "
                f"got {direction!r}")

    def impair_link(self, node_name: str, iface_name: str,
                    profile: ImpairmentProfile, direction: str = "both",
                    at: Optional[int] = None) -> None:
        """Attach an impairment profile to the link behind
        ``node:iface``.  ``direction`` is from that interface's point of
        view: ``"tx"`` degrades frames it sends, ``"rx"`` frames it
        receives, ``"both"`` a symmetric gray link.  Each impaired
        direction draws from its own named RNG stream
        (``impair:<sender>``), so injection order never perturbs any
        other stream."""
        self._checked_cabled(node_name, iface_name)
        self._checked_direction(direction)
        if at is None:
            self._do_impair(node_name, iface_name, profile, direction)
        else:
            self.world.sim.schedule_at(at, self._do_impair, node_name,
                                       iface_name, profile, direction)

    def clear_impairment(self, node_name: str, iface_name: str,
                         direction: str = "both",
                         at: Optional[int] = None) -> None:
        self._checked_cabled(node_name, iface_name)
        self._checked_direction(direction)
        if at is None:
            self._do_clear(node_name, iface_name, direction)
        else:
            self.world.sim.schedule_at(at, self._do_clear, node_name,
                                       iface_name, direction)

    def _senders(self, node_name: str, iface_name: str, direction: str):
        iface = self.world.nodes[node_name].interfaces[iface_name]
        peer = iface.link.other_end(iface)
        if direction == "tx":
            return [iface]
        if direction == "rx":
            return [peer]
        return [iface, peer]

    def _do_impair(self, node_name: str, iface_name: str,
                   profile: ImpairmentProfile, direction: str) -> None:
        for sender in self._senders(node_name, iface_name, direction):
            rng = self.world.rng.stream(rng_stream_name(sender.full_name))
            sender.link.set_impairment(sender, profile, rng)
        self.events.append(InjectedFailure(
            node=node_name, interface=iface_name,
            time=self.world.sim.now, kind="impair"))
        self.world.trace.emit(node_name, "fail.impair",
                              f"{iface_name} impaired ({direction})",
                              **profile.to_payload())

    def _do_clear(self, node_name: str, iface_name: str,
                  direction: str) -> None:
        for sender in self._senders(node_name, iface_name, direction):
            sender.link.clear_impairment(sender)
        self.events.append(InjectedFailure(
            node=node_name, interface=iface_name,
            time=self.world.sim.now, kind="clear"))
        self.world.trace.emit(node_name, "fail.impair",
                              f"{iface_name} cleared ({direction})")
        # tell both endpoints the link is repaired, whichever direction
        # was impaired: liveness layers drop damping penalties built up
        # against the fault so the link re-converges without a stale
        # suppression window
        iface = self.world.nodes[node_name].interfaces[iface_name]
        peer = iface.link.other_end(iface)
        iface.node.impairment_cleared(iface)
        peer.node.impairment_cleared(peer)

    # ------------------------------------------------------------------
    # agent lifecycle (control-plane crash / restart)
    # ------------------------------------------------------------------
    def _require_deployment(self) -> None:
        if self.deployment is None:
            raise ValueError(
                "agent crash/restart requires a FailureInjector bound to "
                "a deployment: FailureInjector(world, deployment)")

    def crash_agent(self, node_name: str, at: Optional[int] = None) -> None:
        """Kill the node's routing agent.  The data plane keeps
        forwarding on the frozen tables (headless forwarding); peers
        find out through their own liveness timers."""
        self._checked_node(node_name)
        self._require_deployment()
        if at is None:
            self._do_agent(node_name, False)
        else:
            self.world.sim.schedule_at(at, self._do_agent, node_name, False)

    def restart_agent(self, node_name: str, at: Optional[int] = None,
                      cold: Optional[bool] = None) -> None:
        """Bring the agent back.  ``cold=None`` follows the stack's
        configured restart mode (graceful when the stack supports it)."""
        self._checked_node(node_name)
        self._require_deployment()
        if at is None:
            self._do_agent(node_name, True, cold)
        else:
            self.world.sim.schedule_at(at, self._do_agent, node_name,
                                       True, cold)

    def _do_agent(self, node_name: str, up: bool,
                  cold: Optional[bool] = None) -> None:
        crashed = node_name in self._crashed_agents
        if up != crashed:
            # validated no-op: restarting a healthy agent or crashing an
            # already-dead one must not double-drive protocol state
            self.world.trace.emit(
                node_name, "fail.agent",
                f"{'restart' if up else 'crash'} no-op")
            return
        self.events.append(InjectedFailure(
            node=node_name, interface="agent",
            time=self.world.sim.now, kind="up" if up else "down"))
        if up:
            self._crashed_agents.discard(node_name)
            self.world.trace.emit(node_name, "fail.agent", "restart")
            self.deployment.restart_agent(node_name, cold=cold)
        else:
            self._crashed_agents.add(node_name)
            self.world.trace.emit(node_name, "fail.agent", "crash")
            self.deployment.crash_agent(node_name)

    # ------------------------------------------------------------------
    # extended failure cases (paper section IX future work)
    # ------------------------------------------------------------------
    def fail_node(self, node_name: str, at: Optional[int] = None) -> None:
        """Whole-device power loss: the routing agent dies with the
        power, then every interface drops at once.  One ``fail.node``
        trace record covers the outage (not N per-link episodes); the
        per-interface ``InjectedFailure`` events still feed the
        fault-window accounting."""
        self._checked_node(node_name)
        if at is None:
            self._do_node(node_name, False)
        else:
            self.world.sim.schedule_at(at, self._do_node, node_name, False)

    def restore_node(self, node_name: str, at: Optional[int] = None) -> None:
        """Power the device back on: interfaces come up, then the agent
        cold-boots — protocol *and* forwarding state start empty."""
        self._checked_node(node_name)
        if at is None:
            self._do_node(node_name, True)
        else:
            self.world.sim.schedule_at(at, self._do_node, node_name, True)

    def _do_node(self, node_name: str, up: bool) -> None:
        is_down = node_name in self._down_nodes
        if up != is_down:
            self.world.trace.emit(
                node_name, "fail.node" if not up else "restore.node",
                "no-op")
            return
        node = self.world.nodes[node_name]
        now = self.world.sim.now
        kind = "up" if up else "down"
        if not up:
            self._down_nodes.add(node_name)
            # the agent goes first: interface-down handlers must see a
            # dead control plane, exactly as a power cut would order it
            if (self.deployment is not None
                    and node_name not in self._crashed_agents):
                self._crashed_agents.add(node_name)
                self.events.append(InjectedFailure(
                    node=node_name, interface="agent", time=now, kind="down"))
                self.deployment.crash_agent(node_name)
            self.world.trace.emit(node_name, "fail.node",
                                  f"down ({len(node.interfaces)} interfaces)")
            for iface_name in list(node.interfaces):
                self.events.append(InjectedFailure(
                    node=node_name, interface=iface_name, time=now,
                    kind=kind))
                node.interfaces[iface_name].set_admin(False)
        else:
            self._down_nodes.discard(node_name)
            self.world.trace.emit(node_name, "restore.node",
                                  f"up ({len(node.interfaces)} interfaces)")
            for iface_name in list(node.interfaces):
                self.events.append(InjectedFailure(
                    node=node_name, interface=iface_name, time=now,
                    kind=kind))
                node.interfaces[iface_name].set_admin(True)
            # cold boot after the ports are up: a power-cycled device
            # keeps nothing
            if (self.deployment is not None
                    and node_name in self._crashed_agents):
                self._crashed_agents.discard(node_name)
                self.events.append(InjectedFailure(
                    node=node_name, interface="agent", time=now, kind="up"))
                self.deployment.restart_agent(node_name, cold=True)

    def cut_link(self, node_a: str, node_b: str,
                 at: Optional[int] = None) -> None:
        """Bidirectional link cut: both ends lose their interface (a
        fiber cut rather than the paper's one-sided admin-down)."""
        link = self.world.find_link(node_a, node_b)
        if link is None:
            raise ValueError(f"no link between {node_a} and {node_b}")
        self.fail_interface(node_a, link.end_a.name
                            if link.end_a.node.name == node_a
                            else link.end_b.name, at=at)
        self.fail_interface(node_b, link.end_b.name
                            if link.end_b.node.name == node_b
                            else link.end_a.name, at=at)

    def restore_link(self, node_a: str, node_b: str,
                     at: Optional[int] = None) -> None:
        link = self.world.find_link(node_a, node_b)
        if link is None:
            raise ValueError(f"no link between {node_a} and {node_b}")
        for end in (link.end_a, link.end_b):
            self.restore_interface(end.node.name, end.name, at=at)

    # ------------------------------------------------------------------
    def _do(self, node_name: str, iface_name: str, up: bool) -> None:
        node = self.world.nodes[node_name]
        event = InjectedFailure(node=node_name, interface=iface_name,
                                time=self.world.sim.now,
                                kind="up" if up else "down")
        self.events.append(event)
        self.world.trace.emit(node_name, "fail.inject",
                              f"{iface_name} {'up' if up else 'down'}")
        node.interfaces[iface_name].set_admin(up)

    def last_failure_time(self) -> int:
        downs = [e.time for e in self.events if e.kind == "down"]
        if not downs:
            raise ValueError("no failure injected yet")
        return downs[-1]
