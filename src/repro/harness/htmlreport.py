"""Self-contained HTML report with inline-SVG charts.

Renders the reproduction's headline figures as dependency-free HTML: a
log-axis dot plot for convergence times (four orders of magnitude) and
grouped bar charts for the linear metrics, plus a data table under every
chart.  Visual rules follow the repo's charting method: a fixed,
CVD-validated categorical order (MR-MTP blue, BGP aqua, BGP+BFD yellow
— validated for both light and dark surfaces), thin marks with rounded
data ends and surface gaps, recessive hairline grid, direct value
labels in text ink (never series-colored text), a legend for the three
series, native hover tooltips, and an expandable table view.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence, Union

# categorical slots, fixed order (validated light & dark)
LIGHT_SERIES = ("#2a78d6", "#1baf7a", "#eda100")
DARK_SERIES = ("#3987e5", "#199e70", "#c98500")

CSS = """
:root {
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e4e3df;
  --series-1: #2a78d6;
  --series-2: #1baf7a;
  --series-3: #eda100;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #33322f;
    --series-1: #3987e5;
    --series-2: #199e70;
    --series-3: #c98500;
  }
}
body {
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  max-width: 880px; margin: 2rem auto; padding: 0 1rem;
}
h1 { font-size: 22px; }
h2 { font-size: 16px; margin: 2.2rem 0 0.2rem; }
.note { color: var(--text-secondary); font-size: 12.5px; margin: 0 0 0.6rem; }
.legend { display: flex; gap: 1.2rem; margin: 0.4rem 0 0.2rem; font-size: 12.5px;
          color: var(--text-secondary); }
.legend .key { display: inline-flex; align-items: center; gap: 0.4rem; }
.legend .swatch { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
svg text { fill: var(--text-primary); font: 11px system-ui, sans-serif; }
svg .tick { fill: var(--text-secondary); }
svg .gridline { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--grid); stroke-width: 1; }
svg .mark:hover { opacity: 0.8; }
details { margin: 0.4rem 0 1rem; }
summary { color: var(--text-secondary); font-size: 12.5px; cursor: pointer; }
table { border-collapse: collapse; font-size: 12.5px; margin-top: 0.4rem; }
td, th { padding: 2px 12px 2px 0; text-align: right;
         font-variant-numeric: tabular-nums; }
th:first-child, td:first-child { text-align: left; }
thead th { color: var(--text-secondary); font-weight: 500; }
"""


@dataclass
class SeriesSet:
    """One chart's data: categories x named series."""

    categories: Sequence[str]
    names: Sequence[str]
    values: Sequence[Sequence[float]]  # values[series][category]

    def __post_init__(self) -> None:
        if len(self.names) != len(self.values):
            raise ValueError("one value row per series name")
        if len(self.names) > 3:
            raise ValueError("the report's fixed palette carries 3 series")
        for row in self.values:
            if len(row) != len(self.categories):
                raise ValueError("each row needs one value per category")


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2g}"
    return f"{value:.2f}"


def _nice_max(value: float) -> float:
    """Round up to 1/2/5 x 10^k for a clean axis top."""
    if value <= 0:
        return 1.0
    import math

    exp = math.floor(math.log10(value))
    for mult in (1, 2, 5, 10):
        candidate = mult * 10 ** exp
        if candidate >= value:
            return candidate
    return 10 ** (exp + 1)


def _legend(names: Sequence[str]) -> str:
    keys = []
    for i, name in enumerate(names):
        keys.append(
            f'<span class="key"><span class="swatch" '
            f'style="background:var(--series-{i + 1})"></span>'
            f'{html.escape(name)}</span>'
        )
    return f'<div class="legend">{"".join(keys)}</div>'


def _table(data: SeriesSet, unit: str) -> str:
    head = "".join(f"<th>{html.escape(c)}</th>" for c in data.categories)
    rows = []
    for name, row in zip(data.names, data.values):
        cells = "".join(f"<td>{_fmt(v)}</td>" for v in row)
        rows.append(f"<tr><td>{html.escape(name)}</td>{cells}</tr>")
    return (
        f"<details><summary>data table ({html.escape(unit)})</summary>"
        f"<table><thead><tr><th></th>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table></details>"
    )


def _rounded_bar(x: float, y: float, w: float, h: float, r: float = 4) -> str:
    """Bar path: rounded at the data end (top), square at the baseline."""
    r = min(r, w / 2, h)
    return (
        f"M {x:.1f} {y + h:.1f} L {x:.1f} {y + r:.1f} "
        f"Q {x:.1f} {y:.1f} {x + r:.1f} {y:.1f} "
        f"L {x + w - r:.1f} {y:.1f} "
        f"Q {x + w:.1f} {y:.1f} {x + w:.1f} {y + r:.1f} "
        f"L {x + w:.1f} {y + h:.1f} Z"
    )


def grouped_bar_chart(title: str, data: SeriesSet, unit: str,
                      note: str = "") -> str:
    """Linear-scale grouped bars with value labels at the caps."""
    width, height = 760, 300
    left, right, top, bottom = 56, 12, 18, 34
    plot_w = width - left - right
    plot_h = height - top - bottom
    peak = max(max(row) for row in data.values)
    axis_max = _nice_max(peak * 1.12)

    def y_of(value: float) -> float:
        return top + plot_h * (1 - value / axis_max)

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="{html.escape(title)}">']
    # gridlines + ticks at 0, 1/4 ... axis_max
    for frac in (0, 0.25, 0.5, 0.75, 1.0):
        value = axis_max * frac
        y = y_of(value)
        parts.append(f'<line class="gridline" x1="{left}" y1="{y:.1f}" '
                     f'x2="{width - right}" y2="{y:.1f}"/>')
        parts.append(f'<text class="tick" x="{left - 6}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{_fmt(value)}</text>')
    # bars
    n_cat, n_series = len(data.categories), len(data.names)
    band = plot_w / n_cat
    gap = 2
    bar_w = min(24.0, (band * 0.6 - gap * (n_series - 1)) / n_series)
    group_w = bar_w * n_series + gap * (n_series - 1)
    for ci, category in enumerate(data.categories):
        x0 = left + band * ci + (band - group_w) / 2
        for si, name in enumerate(data.names):
            value = data.values[si][ci]
            x = x0 + si * (bar_w + gap)
            y = y_of(value)
            h = top + plot_h - y
            tooltip = f"{name}, {category}: {_fmt(value)} {unit}"
            parts.append(
                f'<path class="mark" d="{_rounded_bar(x, y, bar_w, max(h, 1))}" '
                f'fill="var(--series-{si + 1})">'
                f'<title>{html.escape(tooltip)}</title></path>'
            )
            # direct value label on the cap, in text ink
            parts.append(
                f'<text x="{x + bar_w / 2:.1f}" y="{y - 4:.1f}" '
                f'text-anchor="middle">{_fmt(value)}</text>'
            )
        parts.append(
            f'<text class="tick" x="{left + band * ci + band / 2:.1f}" '
            f'y="{height - 12}" text-anchor="middle">'
            f'{html.escape(category)}</text>'
        )
    parts.append(f'<line class="axis" x1="{left}" y1="{top + plot_h}" '
                 f'x2="{width - right}" y2="{top + plot_h}"/>')
    parts.append("</svg>")
    return _chart_block(title, data, unit, note, "".join(parts))


def dot_plot_log(title: str, data: SeriesSet, unit: str,
                 note: str = "") -> str:
    """Horizontal dot plot on a log axis — position (not bar length)
    encodes the value, which is why a log scale is legitimate here."""
    import math

    width = 760
    row_h = 34
    left, right, top = 56, 40, 26
    height = top + row_h * len(data.categories) + 36
    plot_w = width - left - right
    positives = [v for row in data.values for v in row if v > 0]
    lo = 10 ** math.floor(math.log10(min(positives)))
    hi = 10 ** math.ceil(math.log10(max(positives)))

    def x_of(value: float) -> float:
        value = max(value, lo)
        return left + plot_w * (math.log10(value) - math.log10(lo)) \
            / (math.log10(hi) - math.log10(lo))

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="{html.escape(title)}">']
    decade = lo
    while decade <= hi:
        x = x_of(decade)
        parts.append(f'<line class="gridline" x1="{x:.1f}" y1="{top - 8}" '
                     f'x2="{x:.1f}" y2="{height - 28}"/>')
        parts.append(f'<text class="tick" x="{x:.1f}" y="{height - 12}" '
                     f'text-anchor="middle">{_fmt(decade)}</text>')
        decade *= 10
    for ci, category in enumerate(data.categories):
        y = top + row_h * ci + row_h / 2
        parts.append(f'<line class="gridline" x1="{left}" y1="{y:.1f}" '
                     f'x2="{width - right}" y2="{y:.1f}"/>')
        parts.append(f'<text class="tick" x="{left - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{html.escape(category)}</text>')
        for si, name in enumerate(data.names):
            value = data.values[si][ci]
            x = x_of(value)
            tooltip = f"{name}, {category}: {_fmt(value)} {unit}"
            # 2px surface ring under each >=8px marker
            parts.append(
                f'<circle class="mark" cx="{x:.1f}" cy="{y:.1f}" r="7" '
                f'fill="var(--surface-1)"/>'
                f'<circle class="mark" cx="{x:.1f}" cy="{y:.1f}" r="5" '
                f'fill="var(--series-{si + 1})">'
                f'<title>{html.escape(tooltip)}</title></circle>'
            )
    parts.append(f'<text class="tick" x="{width - right}" y="{height - 12}" '
                 f'text-anchor="end">{html.escape(unit)}, log scale</text>')
    parts.append("</svg>")
    return _chart_block(title, data, unit, note, "".join(parts))


def _chart_block(title: str, data: SeriesSet, unit: str, note: str,
                 svg: str) -> str:
    block = [f"<h2>{html.escape(title)}</h2>"]
    if note:
        block.append(f'<p class="note">{html.escape(note)}</p>')
    block.append(_legend(data.names))
    block.append(svg)
    block.append(_table(data, unit))
    return "".join(block)


def table_block(title: str, columns: Sequence[str],
                rows: Sequence[Sequence[object]], note: str = "") -> str:
    """A plain (always-visible) table block — quarantine lists, sweep
    summaries and other tabular sections that are not charts."""
    block = [f"<h2>{html.escape(title)}</h2>"]
    if note:
        block.append(f'<p class="note">{html.escape(note)}</p>')
    head = "".join(f"<th>{html.escape(str(c))}</th>" for c in columns)
    body = []
    for row in rows:
        cells = "".join(f"<td>{html.escape(str(cell))}</td>" for cell in row)
        body.append(f"<tr>{cells}</tr>")
    block.append(
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )
    return "".join(block)


def render_report(title: str, intro: str, blocks: Sequence[str],
                  out_path: Union[str, Path]) -> Path:
    """Assemble chart blocks into one self-contained HTML file."""
    out_path = Path(out_path)
    body = "".join(blocks)
    out_path.write_text(
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{CSS}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p class='note'>{html.escape(intro)}</p>"
        f"{body}</body></html>"
    )
    return out_path
