"""Static path tracing through a converged deployment.

Replays each hop's forwarding decision (BGP: FIB lookup + ECMP hash;
MR-MTP: VID-table / hashed-up decision) without sending packets.  The
packet-loss experiments use this to pick a flow (source port) whose path
crosses the link under test — the paper's test cases presuppose the
failure sits on the measured traffic's path.

Stack-agnostic: the per-hop decision replay lives on the deployment
(:meth:`repro.stacks.Deployment.trace_fabric_path`), so any registered
stack traces without changes here.
"""

from __future__ import annotations

from typing import Optional

from repro.stack.addresses import Ipv4Address
from repro.stack.ipv4 import PROTO_UDP
from repro.routing.ecmp import FlowKey

MAX_HOPS = 32


def _flow(src_ip: Ipv4Address, dst_ip: Ipv4Address,
          src_port: int, dst_port: int) -> FlowKey:
    return FlowKey(src=src_ip.value, dst=dst_ip.value, proto=PROTO_UDP,
                   src_port=src_port, dst_port=dst_port)


def access_uplink(topo, host: str):
    """A server's access hop as ``(host interface, ToR interface)`` —
    the one wired path every flow to or from ``host`` crosses.  Shared
    by the per-packet tracer below and the fluid workload engine, so
    both resolve the rack edge identically."""
    host_iface = topo.node(host).interfaces["eth1"]
    return host_iface, host_iface.peer()


def trace_path(
    deployment,
    src_host: str,
    dst_host: str,
    src_port: int,
    dst_port: int = 7777,
) -> list[str]:
    """Node names visited from the source server to the destination
    server (inclusive).  Raises if the path dead-ends or loops."""
    topo = deployment.topo
    src_ip = topo.server_address(src_host)
    dst_ip = topo.server_address(dst_host)
    flow = _flow(src_ip, dst_ip, src_port, dst_port)
    # server -> its ToR
    _, tor_iface = access_uplink(topo, src_host)
    path = [src_host, tor_iface.node.name]
    return deployment.trace_fabric_path(path, dst_ip, dst_host, flow)


def path_crosses_link(path: list[str], node_a: str, node_b: str) -> bool:
    """True when the path traverses the (node_a, node_b) link."""
    for here, there in zip(path, path[1:]):
        if {here, there} == {node_a, node_b}:
            return True
    return False


def find_crossing_flow(
    deployment,
    src_host: str,
    dst_host: str,
    link_a: str,
    link_b: str,
    dst_port: int = 7777,
    port_range: range = range(40000, 40256),
) -> Optional[int]:
    """A source port whose flow crosses the given link, or None.

    A flow whose forwarding state dead-ends (a blackholed pair — e.g.
    MR-MTP cross-cell traffic on a recursive fabric) cannot cross the
    link, so the search skips it; callers that need a path to *exist*
    use :func:`trace_path` directly and get the loud failure."""
    for src_port in port_range:
        try:
            path = trace_path(deployment, src_host, dst_host,
                              src_port, dst_port)
        except RuntimeError:
            continue
        if path_crosses_link(path, link_a, link_b):
            return src_port
    return None
