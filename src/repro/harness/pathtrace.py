"""Static path tracing through a converged deployment.

Replays each hop's forwarding decision (BGP: FIB lookup + ECMP hash;
MR-MTP: VID-table / hashed-up decision) without sending packets.  The
packet-loss experiments use this to pick a flow (source port) whose path
crosses the link under test — the paper's test cases presuppose the
failure sits on the measured traffic's path.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.stack.addresses import Ipv4Address
from repro.stack.ipv4 import PROTO_UDP
from repro.routing.ecmp import FlowKey
from repro.topology.clos import ClosTopology
from repro.harness.deploy import BgpDeployment, MtpDeployment

MAX_HOPS = 32


def _flow(src_ip: Ipv4Address, dst_ip: Ipv4Address,
          src_port: int, dst_port: int) -> FlowKey:
    return FlowKey(src=src_ip.value, dst=dst_ip.value, proto=PROTO_UDP,
                   src_port=src_port, dst_port=dst_port)


def trace_path(
    deployment: Union[BgpDeployment, MtpDeployment],
    src_host: str,
    dst_host: str,
    src_port: int,
    dst_port: int = 7777,
) -> list[str]:
    """Node names visited from the source server to the destination
    server (inclusive).  Raises if the path dead-ends or loops."""
    topo = deployment.topo
    src_ip = topo.server_address(src_host)
    dst_ip = topo.server_address(dst_host)
    flow = _flow(src_ip, dst_ip, src_port, dst_port)
    # server -> its ToR
    server = topo.node(src_host)
    tor_iface = server.interfaces["eth1"].peer()
    path = [src_host, tor_iface.node.name]
    if isinstance(deployment, BgpDeployment):
        return _trace_bgp(deployment, path, dst_ip, dst_host, flow)
    # at the source ToR the packet is locally encapsulated (no MTP
    # ingress port), matching MtpNode._intercept_ip
    return _trace_mtp(deployment, path, dst_ip, dst_host, flow, ingress=None)


def _trace_bgp(deployment: BgpDeployment, path: list[str],
               dst_ip: Ipv4Address, dst_host: str, flow: FlowKey) -> list[str]:
    topo = deployment.topo
    current = path[-1]
    for _ in range(MAX_HOPS):
        stack = deployment.stacks[current]
        nexthop = stack.table.select_nexthop(dst_ip, flow)
        if nexthop is None:
            raise RuntimeError(f"path dead-ends at {current} (no route)")
        iface = topo.node(current).interfaces[nexthop.interface]
        peer = iface.peer()
        if peer is None:
            raise RuntimeError(f"{current}:{nexthop.interface} uncabled")
        path.append(peer.node.name)
        if peer.node.name == dst_host:
            return path
        current = peer.node.name
    raise RuntimeError(f"path exceeds {MAX_HOPS} hops: {path}")


def _trace_mtp(deployment: MtpDeployment, path: list[str],
               dst_ip: Ipv4Address, dst_host: str, flow: FlowKey,
               ingress: str) -> list[str]:
    topo = deployment.topo
    current = path[-1]
    first = deployment.mtp_nodes[current]
    dst_root = first.derivation.root_for_address(dst_ip)
    for _ in range(MAX_HOPS):
        mtp = deployment.mtp_nodes[current]
        if mtp.tier == 1 and mtp.own_root == dst_root:
            # destination ToR: rack delivery
            path.append(dst_host)
            return path
        egress = mtp.decide_data_port(dst_root, flow, ingress_port=ingress)
        if egress is None:
            raise RuntimeError(f"path dead-ends at {current} (no VID path)")
        peer = topo.node(current).interfaces[egress].peer()
        if peer is None:
            raise RuntimeError(f"{current}:{egress} uncabled")
        path.append(peer.node.name)
        current = peer.node.name
        ingress = peer.name
    raise RuntimeError(f"path exceeds {MAX_HOPS} hops: {path}")


def path_crosses_link(path: list[str], node_a: str, node_b: str) -> bool:
    """True when the path traverses the (node_a, node_b) link."""
    for here, there in zip(path, path[1:]):
        if {here, there} == {node_a, node_b}:
            return True
    return False


def find_crossing_flow(
    deployment,
    src_host: str,
    dst_host: str,
    link_a: str,
    link_b: str,
    dst_port: int = 7777,
    port_range: range = range(40000, 40256),
) -> Optional[int]:
    """A source port whose flow crosses the given link, or None."""
    for src_port in port_range:
        path = trace_path(deployment, src_host, dst_host, src_port, dst_port)
        if path_crosses_link(path, link_a, link_b):
            return src_port
    return None
