"""Run digests: a content fingerprint of one experiment run.

The engine is bit-for-bit deterministic for a fixed seed (events are
ordered by (time, priority, sequence)), so two runs of the same task must
produce the *identical* trace and metrics.  A digest turns that property
into something checkable across process boundaries: the parallel runner
hashes each run's trace log plus its result payload and the determinism
guard asserts serial and fanned-out execution agree byte for byte.

Digests use SHA-256 over a canonical rendering — never Python's builtin
``hash()``, which is salted per process (PYTHONHASHSEED) and would make
cross-process comparison meaningless.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable

from repro.sim.trace import TraceLog, TraceRecord

# Bump when the canonical rendering changes; embedded in every digest so
# stale cache entries from an older scheme can never compare equal.
DIGEST_SCHEMA = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering: sorted keys, no whitespace noise,
    ``repr`` fallback for non-JSON values (enums, dataclasses...)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=repr)


def _record_line(rec: TraceRecord) -> bytes:
    data = canonical_json(rec.data) if rec.data else ""
    return f"{rec.time}|{rec.node}|{rec.category}|{rec.message}|{data}\n".encode()


def trace_digest(trace: TraceLog | Iterable[TraceRecord]) -> str:
    """SHA-256 over the full trace log in emission order."""
    records = trace.records if isinstance(trace, TraceLog) else trace
    h = hashlib.sha256(f"trace:v{DIGEST_SCHEMA}\n".encode())
    for rec in records:
        h.update(_record_line(rec))
    return h.hexdigest()


def payload_digest(payload: Any) -> str:
    """SHA-256 of a canonical JSON rendering of a result payload."""
    h = hashlib.sha256(f"payload:v{DIGEST_SCHEMA}\n".encode())
    h.update(canonical_json(payload).encode())
    return h.hexdigest()


def run_digest(trace: TraceLog | Iterable[TraceRecord], payload: Any) -> str:
    """The per-run fingerprint: trace digest + metrics digest combined.

    This is what the determinism guard compares between the serial and
    parallel paths and what the result cache stores alongside payloads.
    """
    h = hashlib.sha256(f"run:v{DIGEST_SCHEMA}\n".encode())
    h.update(trace_digest(trace).encode())
    h.update(b"|")
    h.update(payload_digest(payload).encode())
    return h.hexdigest()


def stable_seed(*components: Any) -> int:
    """Derive a 63-bit task seed from arbitrary components, stably across
    processes and interpreter restarts (unlike ``hash()``)."""
    h = hashlib.sha256(canonical_json(list(components)).encode())
    return int.from_bytes(h.digest()[:8], "big") >> 1
