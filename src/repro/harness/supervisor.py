"""Fault-tolerant run supervisor: watchdog, retry, quarantine, resume.

The fabric protocols are Quick-to-Detect (declare a neighbour dead after
one missed 50 ms hello) and Slow-to-Accept (require 3 clean hellos
before re-admitting it).  This module applies the same discipline to the
machinery that *runs* them: large campaigns — chaos grids, scenario
suites, robustness sweeps — must survive a hung ``run_until_quiet``, an
OOM-killed worker, or a Ctrl-C without losing everything computed so
far.

Every task runs in its own worker process under a wall-clock deadline
enforced by the supervisor's watchdog: a hung worker is *killed*, never
awaited.  Failed attempts retry with seeded exponential backoff, but a
task that fails identically twice (same exception class, same traceback
digest) is a deterministic bug, not flake — it is quarantined
immediately, without burning a third attempt.  Timeouts and worker
crashes, which can be environmental, retry up to the attempt bound.
Every outcome is recorded as a structured :class:`TaskRecord`
(state machine: pending → running → retrying → done | quarantined).

Completed results are checkpointed through the content-addressed
:class:`~repro.harness.cache.ResultCache` the moment they finish, so an
interrupted campaign resumes exactly where it stopped: re-running the
same command replays the checkpointed tasks and executes only the rest.
Because each attempt is an isolated process building its own
:class:`~repro.net.world.World`, failed attempts can never contaminate
results — an interrupted-then-resumed campaign and a campaign with
injected crashes/hangs both produce digests byte-identical to a clean
uninterrupted run.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import os
import random
import re
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.harness.cache import ResultCache
from repro.harness.digest import payload_digest, stable_seed
from repro.harness.parallel import FanoutReport, resolve_jobs

# task states (the supervisor state machine)
PENDING = "pending"
RUNNING = "running"
RETRYING = "retrying"
DONE = "done"
QUARANTINED = "quarantined"
CACHED = "cached"

# attempt outcomes
OK = "ok"
ERROR = "error"       # the task raised a Python exception
TIMEOUT = "timeout"   # the watchdog killed a worker past its deadline
CRASH = "crash"       # the worker died without reporting (OOM, segfault)


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor treats a failing task.

    ``deadline_s`` is the per-attempt wall-clock budget (None disables
    the watchdog).  Backoff is exponential with deterministic per-key
    jitter — the schedule is a pure function of (policy seed, task key,
    attempt), so reruns back off identically.
    """

    deadline_s: Optional[float] = None
    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {self.max_attempts}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, "
                             f"got {self.deadline_s}")


def backoff_schedule(policy: RetryPolicy, key: str) -> list[float]:
    """Delays (seconds) before attempts 2..max_attempts for one task.

    Exponential with a cap, jittered into [cap/2, cap] by an RNG seeded
    from the task key — deterministic per key (the property the tests
    pin down), decorrelated across keys so a failing grid does not
    retry in lockstep.
    """
    delays = []
    for attempt in range(1, policy.max_attempts):
        cap = min(policy.backoff_cap_s,
                  policy.backoff_base_s * (2 ** (attempt - 1)))
        rng = random.Random(stable_seed("supervisor-backoff", policy.seed,
                                        key, attempt))
        delays.append(cap * (0.5 + 0.5 * rng.random()))
    return delays


@dataclass
class Attempt:
    """One execution attempt of one task."""

    number: int
    outcome: str                 # ok | error | timeout | crash
    duration_s: float
    exception: str = ""          # exception class (or WorkerCrash/...)
    traceback_digest: str = ""   # normalized-traceback fingerprint
    detail: str = ""             # first line of the exception / context


@dataclass
class TaskRecord:
    """The supervisor's structured account of one task."""

    index: int
    key: str
    label: str
    state: str = PENDING
    attempts: list[Attempt] = field(default_factory=list)
    backoff_s: list[float] = field(default_factory=list)
    quarantine_reason: str = ""

    @property
    def failure_class(self) -> str:
        """The exception class of the last failed attempt, if any."""
        for attempt in reversed(self.attempts):
            if attempt.outcome != OK:
                return attempt.exception or attempt.outcome
        return ""

    def describe(self) -> str:
        tail = f": {self.quarantine_reason}" if self.quarantine_reason else ""
        return (f"{self.label} [{self.state}] "
                f"{len(self.attempts)} attempt(s){tail}")


@dataclass
class SupervisorReport:
    """Everything one :func:`supervise_tasks` call did."""

    fanout: FanoutReport = field(default_factory=FanoutReport)
    records: list[TaskRecord] = field(default_factory=list)

    @property
    def quarantined(self) -> list[TaskRecord]:
        return [r for r in self.records if r.state == QUARANTINED]

    @property
    def retried(self) -> list[TaskRecord]:
        return [r for r in self.records if len(r.attempts) > 1]

    def describe(self) -> str:
        line = self.fanout.describe()
        if self.retried:
            line += f", {len(self.retried)} retried"
        if self.quarantined:
            line += f", {len(self.quarantined)} quarantined"
        return line


class SupervisorInterrupted(KeyboardInterrupt):
    """Ctrl-C during a supervised campaign.  Completed tasks were
    already checkpointed to the cache; the exception carries the salvage
    accounting so the CLI can print the resume command."""

    def __init__(self, done: int, total: int, salvaged: int,
                 report: Optional[SupervisorReport] = None) -> None:
        super().__init__(f"interrupted: {done}/{total} tasks done "
                         f"({salvaged} checkpointed this run)")
        self.done = done
        self.total = total
        self.salvaged = salvaged
        self.report = report


# ----------------------------------------------------------------------
# the worker side (child process)
# ----------------------------------------------------------------------
_HEX_ADDR = re.compile(r"0x[0-9a-fA-F]+")


def _traceback_digest(exc: BaseException) -> str:
    """Fingerprint of an exception's traceback, stable across runs:
    memory addresses are masked so two identical failures hash equal."""
    text = "".join(traceback.format_exception(type(exc), exc,
                                              exc.__traceback__))
    return payload_digest(_HEX_ADDR.sub("0x~", text))[:16]


def _attempt_child(worker: Callable[[Any], Any], spec: Any, conn) -> None:
    """Run one attempt and report through the pipe.  Any exception —
    including a failure to pickle the result — comes back as a
    structured error tuple, never a silent death."""
    try:
        outcome = worker(spec)
    except BaseException as exc:  # noqa: BLE001 — the whole point
        conn.send((ERROR, type(exc).__name__, _traceback_digest(exc),
                   str(exc).splitlines()[0][:200] if str(exc) else ""))
        conn.close()
        return
    try:
        conn.send((OK, outcome))
    except BaseException as exc:  # unpicklable result
        conn.send((ERROR, type(exc).__name__, _traceback_digest(exc),
                   f"result not picklable: {exc}"[:200]))
    conn.close()


# ----------------------------------------------------------------------
# the supervisor (parent process)
# ----------------------------------------------------------------------
@dataclass
class _Running:
    index: int
    attempt: int
    proc: Any
    conn: Any
    started: float
    deadline: Optional[float]


def _kill(run: _Running) -> None:
    try:
        run.proc.kill()
        run.proc.join(timeout=5)
    finally:
        run.conn.close()


def supervise_tasks(
    specs: Sequence[Any],
    worker: Callable[[Any], Any],
    *,
    jobs: int = 1,
    policy: Optional[RetryPolicy] = None,
    cache: Optional[ResultCache] = None,
    key_fn: Optional[Callable[[Any], str]] = None,
    encode: Optional[Callable[[Any], dict]] = None,
    decode: Optional[Callable[[dict], Any]] = None,
    label_fn: Optional[Callable[[Any], str]] = None,
    report: Optional[SupervisorReport] = None,
) -> list[Optional[Any]]:
    """Run ``worker`` over ``specs`` under the supervisor.

    Results come back in spec order, exactly like
    :func:`~repro.harness.parallel.execute_tasks`; a quarantined task's
    slot is ``None`` (degrade, don't abort — the rest of the grid
    completes).  Cached tasks are replayed without spawning a worker.

    Unlike the plain fan-out, *every* attempt runs in its own child
    process — also at ``jobs=1`` — so the watchdog can kill a hung
    worker in serial campaigns too.  ``worker`` and each spec must be
    picklable, and results travel back through a pipe, so anything
    cacheable is supervisable.
    """
    if cache is not None and (key_fn is None or encode is None
                              or decode is None):
        raise ValueError("cache requires key_fn, encode and decode")
    policy = policy or RetryPolicy()
    jobs = resolve_jobs(jobs)
    if report is None:
        report = SupervisorReport()
    fanout = report.fanout
    if jobs > 1:
        cores = os.cpu_count() or 1
        if cores <= jobs:
            # same footgun as the plain fan-out: concurrent children on a
            # saturated host are slower than one at a time (each attempt
            # still gets its own watched child process either way)
            fanout.notes.append(
                f"supervisor concurrency clamped to 1: {jobs} jobs would "
                f"oversubscribe {cores} core(s)")
            jobs = 1
    fanout.total += len(specs)
    fanout.jobs = jobs

    outcomes: list[Optional[Any]] = [None] * len(specs)
    records: list[TaskRecord] = []
    ready: list[tuple[float, int, int]] = []  # (not_before, index, attempt)
    for i, spec in enumerate(specs):
        key = key_fn(spec) if key_fn is not None else f"task-{i}"
        label = label_fn(spec) if label_fn is not None else f"task {i}"
        record = TaskRecord(index=i, key=key, label=label)
        records.append(record)
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                outcomes[i] = decode(hit)
                record.state = CACHED
                fanout.cached += 1
                continue
        heapq.heappush(ready, (0.0, i, 1))
    report.records.extend(records)

    ctx = mp.get_context()
    running: dict[int, _Running] = {}

    def launch(index: int, attempt: int) -> None:
        record = records[index]
        record.state = RUNNING
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_attempt_child,
                           args=(worker, specs[index], child_conn),
                           daemon=True)
        proc.start()
        child_conn.close()
        now = time.monotonic()
        deadline = (now + policy.deadline_s
                    if policy.deadline_s is not None else None)
        running[index] = _Running(index=index, attempt=attempt, proc=proc,
                                  conn=parent_conn, started=now,
                                  deadline=deadline)

    def quarantine(record: TaskRecord, reason: str) -> None:
        record.state = QUARANTINED
        record.quarantine_reason = reason

    def settle_failure(record: TaskRecord, attempt: Attempt) -> None:
        """Retry-or-quarantine after a failed attempt (already appended)."""
        previous = record.attempts[-2] if len(record.attempts) > 1 else None
        if (attempt.outcome == ERROR and previous is not None
                and previous.outcome == ERROR
                and previous.exception == attempt.exception
                and previous.traceback_digest == attempt.traceback_digest):
            quarantine(record,
                       f"deterministic failure: {attempt.exception} "
                       f"twice with identical traceback "
                       f"({attempt.detail})".strip())
            return
        if attempt.number >= policy.max_attempts:
            quarantine(record,
                       f"exhausted {policy.max_attempts} attempt(s); "
                       f"last: {attempt.outcome} "
                       f"({attempt.exception}: {attempt.detail})".strip())
            return
        delay = backoff_schedule(policy, record.key)[attempt.number - 1]
        record.backoff_s.append(delay)
        record.state = RETRYING
        heapq.heappush(ready, (time.monotonic() + delay, record.index,
                               attempt.number + 1))

    def finish_ok(run: _Running, outcome: Any) -> None:
        record = records[run.index]
        record.attempts.append(Attempt(
            number=run.attempt, outcome=OK,
            duration_s=time.monotonic() - run.started))
        record.state = DONE
        outcomes[run.index] = outcome
        fanout.executed += 1
        if cache is not None:
            # checkpoint immediately: this is what makes an interrupted
            # campaign resumable at task granularity
            cache.put(record.key, encode(outcome))
            fanout.cache_stored += 1

    def finish_failed(run: _Running, outcome: str, exception: str,
                      digest: str, detail: str) -> None:
        record = records[run.index]
        attempt = Attempt(number=run.attempt, outcome=outcome,
                          duration_s=time.monotonic() - run.started,
                          exception=exception, traceback_digest=digest,
                          detail=detail)
        record.attempts.append(attempt)
        settle_failure(record, attempt)

    try:
        while ready or running:
            now = time.monotonic()
            while ready and len(running) < jobs and ready[0][0] <= now:
                _, index, attempt = heapq.heappop(ready)
                launch(index, attempt)

            # how long may we sleep? until the next watchdog deadline or
            # the next backoff expiry, whichever comes first
            waits = [run.deadline - now for run in running.values()
                     if run.deadline is not None]
            if ready and len(running) < jobs:
                waits.append(ready[0][0] - now)
            timeout = max(0.0, min(waits)) if waits else None

            if running:
                conns = [run.conn for run in running.values()]
                mp.connection.wait(conns, timeout=timeout)
            elif timeout:
                time.sleep(timeout)

            now = time.monotonic()
            for run in list(running.values()):
                message = None
                if run.conn.poll():
                    try:
                        message = run.conn.recv()
                    except EOFError:
                        message = None  # died mid-send: treat as crash
                if message is not None:
                    del running[run.index]
                    run.proc.join(timeout=5)
                    run.conn.close()
                    if message[0] == OK:
                        finish_ok(run, message[1])
                    else:
                        finish_failed(run, *message)
                elif not run.proc.is_alive():
                    del running[run.index]
                    run.conn.close()
                    finish_failed(
                        run, CRASH, "WorkerCrash", "",
                        f"worker exited with code {run.proc.exitcode} "
                        f"without reporting")
                elif run.deadline is not None and now >= run.deadline:
                    del running[run.index]
                    _kill(run)
                    finish_failed(
                        run, TIMEOUT, "WatchdogTimeout", "",
                        f"killed after {now - run.started:.1f}s "
                        f"(deadline {policy.deadline_s:.1f}s)")
    except KeyboardInterrupt:
        for run in running.values():
            _kill(run)
        done = sum(1 for r in records if r.state in (DONE, CACHED))
        raise SupervisorInterrupted(done=done, total=len(specs),
                                    salvaged=fanout.cache_stored,
                                    report=report) from None
    return outcomes
