"""Metric computation (paper section V).

Blast radius, control overhead and keepalive overhead, computed from the
forwarding-table change counters, the trace log and packet captures — the
same data sources (logs + tshark) the paper's scripts parse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.harness.failures import InjectedFailure
from repro.sim.trace import TraceLog, TraceRecord
from repro.sim.units import SECOND
from repro.net.capture import Capture
from repro.stack.ethernet import ETHERTYPE_IPV4, ETHERTYPE_MTP, EthernetFrame
from repro.stack.ipv4 import Ipv4Packet, PROTO_TCP, PROTO_UDP
from repro.stack.tcp_segment import TcpSegment
from repro.stack.udp import UdpDatagram
from repro.bfd.messages import BFD_PORT
from repro.bgp.messages import BGP_PORT
from repro.core.messages import MtpKeepalive


# ----------------------------------------------------------------------
# order statistics
# ----------------------------------------------------------------------
def nearest_rank_percentile(sorted_values, pct: float) -> int:
    """Nearest-rank percentile of an ascending sequence (an int, -1 when
    empty).  Nearest-rank — not interpolated — so the reported value is
    always one that actually occurred, and tiny float drift in the
    inputs cannot move the digest."""
    n = len(sorted_values)
    if n == 0:
        return -1
    rank = max(1, min(n, -(-int(pct * n) // 100)))  # ceil(pct*n/100)
    return int(sorted_values[rank - 1])


# ----------------------------------------------------------------------
# blast radius
# ----------------------------------------------------------------------
def snapshot_table_change_counts(tables: dict[str, object]) -> dict[str, int]:
    """Capture each router's forwarding-table change counter."""
    return {name: table.change_count for name, table in tables.items()}


def blast_radius(
    before: dict[str, int],
    tables: dict[str, object],
    exclude: Iterable[str] = (),
) -> list[str]:
    """Routers whose forwarding tables changed since ``before`` — "the
    number of routers that updated their routing tables subsequent to a
    topology change" (section VII.B).  ``exclude`` typically removes the
    node whose interface was administratively downed."""
    excluded = set(exclude)
    return sorted(
        name
        for name, table in tables.items()
        if name not in excluded and table.change_count > before.get(name, 0)
    )


def route_churn(before: dict[str, int], tables: dict[str, object]) -> int:
    """Total forwarding-table changes since ``before``, summed over all
    routers — the stability score for gray-failure runs.  Blast radius
    asks *how many* routers moved; churn asks *how much* they moved (a
    detector flapping on a lossy-but-healthy link keeps re-announcing
    and the count climbs even though the router set stays small)."""
    return sum(max(0, table.change_count - before.get(name, 0))
               for name, table in tables.items())


# ----------------------------------------------------------------------
# liveness classification / false positives
# ----------------------------------------------------------------------
# classify_liveness hook values (see repro.stacks.base.Deployment):
LIVENESS_DETECTED = "down-detected"   # a liveness timer declared the peer dead
LIVENESS_ADMIN = "down-admin"         # local link-down event (real fault)
LIVENESS_UP = "up"                    # adjacency/session (re-)established
LIVENESS_SUPPRESS = "suppress"        # flap damping quarantined the adjacency
LIVENESS_REUSE = "reuse"              # flap damping released the adjacency


@dataclass
class LivenessStats:
    """Detector behaviour over an observation window.

    ``false_positives`` counts timer-based down-declarations that no
    injected *hard* fault (admin-down / crash / cut) explains — the
    detector fired on a healthy-but-lossy neighbour.  ``flaps`` counts
    up-transitions after the window opened: every one of them is a
    down/up cycle the control plane paid reconvergence for.

    Per-adjacency down and suppression episodes are paired up by
    ``(node, adjacency)`` so the window also yields repair economics:
    ``mttr_us`` (mean down-to-up latency of *recovered* episodes),
    ``availability`` (uptime fraction of the adjacencies that
    transitioned during the window — idle adjacencies are neither
    penalized nor credited), and ``suppression_us`` (total time flap
    damping held adjacencies out of service).
    """

    detections: int = 0        # timer-based down declarations
    admin_downs: int = 0       # local link-down declarations
    ups: int = 0               # (re-)establishments
    false_positives: int = 0
    suppressions: int = 0      # damping suppress events
    reuses: int = 0            # damping reuse (release) events
    suppression_us: int = 0    # total suppressed adjacency-time
    downtime_us: int = 0       # total down adjacency-time
    recovered: int = 0         # down episodes that re-established
    recovery_us: int = 0       # summed down-to-up latency of those
    adjacencies: int = 0       # distinct (node, adjacency) keys seen
    window_us: int = 0         # observation span (0 = open-ended)

    @property
    def flaps(self) -> int:
        return self.ups

    @property
    def mttr_us(self) -> int:
        """Mean time to recovery over recovered episodes (-1 if none)."""
        return self.recovery_us // self.recovered if self.recovered else -1

    @property
    def availability(self) -> float:
        """Uptime fraction of the adjacencies that transitioned."""
        span = self.window_us * self.adjacencies
        if span <= 0:
            return 1.0
        return max(0.0, 1.0 - self.downtime_us / span)


def fault_windows(events: Iterable[InjectedFailure]) -> list[tuple[int, int]]:
    """Merge injected down/up events into [down, up) wall-time windows
    (an unrestored fault yields an open-ended window).  Impair/clear
    events are deliberately ignored: an impaired link is not down."""
    windows: list[tuple[int, int]] = []
    open_since: Optional[int] = None
    depth = 0
    for event in sorted(events, key=lambda e: e.time):
        if event.kind == "down":
            if depth == 0:
                open_since = event.time
            depth += 1
        elif event.kind == "up":
            depth = max(0, depth - 1)
            if depth == 0 and open_since is not None:
                windows.append((open_since, event.time))
                open_since = None
    if open_since is not None:
        windows.append((open_since, -1))  # open-ended
    return windows


def liveness_stats(
    trace: TraceLog,
    classify: Callable[[TraceRecord], Optional[str]],
    events: Iterable[InjectedFailure],
    since: int,
    until: Optional[int] = None,
    detection_bound_us: int = 0,
) -> LivenessStats:
    """Fold the trace through a stack's ``classify_liveness`` hook.

    A timer-based detection at time *t* is explained (true positive) if
    any injected fault window ``[down, up + detection_bound_us)`` covers
    *t* — the trailing grace admits detections of a fault that was
    already restored before the timer fired.  Everything else is a
    false positive.
    """
    windows = [(start, (end if end >= 0 else None))
               for start, end in fault_windows(events)]

    def explained(t: int) -> bool:
        for start, end in windows:
            if t >= start and (end is None
                               or t < end + detection_bound_us):
                return True
        return False

    stats = LivenessStats()
    if until is not None:
        stats.window_us = max(0, until - since)
    # per-(node, adjacency) open episodes; the adjacency key is the
    # first message token (port / peer name) by log convention
    down_since: dict[tuple[str, str], int] = {}
    supp_since: dict[tuple[str, str], int] = {}
    keys: set[tuple[str, str]] = set()
    for record in trace.select(since=since, until=until):
        kind = classify(record)
        if kind is None:
            continue
        key = (record.node, record.message.split()[0])
        keys.add(key)
        if kind == LIVENESS_DETECTED:
            stats.detections += 1
            if not explained(record.time):
                stats.false_positives += 1
            down_since.setdefault(key, record.time)
        elif kind == LIVENESS_ADMIN:
            stats.admin_downs += 1
            down_since.setdefault(key, record.time)
        elif kind == LIVENESS_UP:
            stats.ups += 1
            started = down_since.pop(key, None)
            if started is not None:
                stats.recovered += 1
                stats.recovery_us += record.time - started
                stats.downtime_us += record.time - started
        elif kind == LIVENESS_SUPPRESS:
            stats.suppressions += 1
            supp_since.setdefault(key, record.time)
        elif kind == LIVENESS_REUSE:
            stats.reuses += 1
            started = supp_since.pop(key, None)
            if started is not None:
                stats.suppression_us += record.time - started
    if until is not None:
        # close episodes still open at the window edge (no MTTR credit)
        for started in down_since.values():
            stats.downtime_us += max(0, until - started)
        for started in supp_since.values():
            stats.suppression_us += max(0, until - started)
    stats.adjacencies = len(keys)
    return stats


# ----------------------------------------------------------------------
# control overhead
# ----------------------------------------------------------------------
def control_overhead_bytes(
    trace: TraceLog,
    categories: tuple[str, ...],
    since: int,
    until: Optional[int] = None,
) -> int:
    """Sum of L2 bytes in update messages during convergence (section
    VI.C: "total bytes transferred during the convergence time")."""
    total = 0
    for category in categories:
        for rec in trace.select(category=category, since=since, until=until):
            total += int(rec.data.get("bytes", 0))
    return total


# ----------------------------------------------------------------------
# keepalive overhead
# ----------------------------------------------------------------------
@dataclass
class KeepaliveBreakdown:
    """Steady-state liveness traffic on one link over a window (Fig. 9/10)."""

    window_us: int
    bgp_keepalive_bytes: int = 0
    bgp_keepalive_count: int = 0
    bfd_bytes: int = 0
    bfd_count: int = 0
    tcp_ack_bytes: int = 0
    tcp_ack_count: int = 0
    mtp_keepalive_bytes: int = 0
    mtp_keepalive_count: int = 0

    @property
    def total_bytes(self) -> int:
        return (self.bgp_keepalive_bytes + self.bfd_bytes
                + self.tcp_ack_bytes + self.mtp_keepalive_bytes)

    @property
    def bytes_per_second(self) -> float:
        return self.total_bytes * SECOND / self.window_us if self.window_us else 0.0


def classify_keepalive_frame(frame: EthernetFrame) -> Optional[str]:
    """One of 'bgp', 'bfd', 'tcp-ack', 'mtp', or None."""
    if frame.ethertype == ETHERTYPE_MTP:
        return "mtp" if isinstance(frame.payload, MtpKeepalive) else None
    if frame.ethertype != ETHERTYPE_IPV4:
        return None
    packet = frame.payload
    if not isinstance(packet, Ipv4Packet):
        return None
    if packet.proto == PROTO_UDP and isinstance(packet.payload, UdpDatagram):
        return "bfd" if packet.payload.dst_port == BFD_PORT else None
    if packet.proto == PROTO_TCP and isinstance(packet.payload, TcpSegment):
        seg = packet.payload
        if BGP_PORT not in (seg.src_port, seg.dst_port):
            return None
        if seg.data_len == 0 and seg.seq_space == 0:
            return "tcp-ack"
        # a 19-byte BGP message on an established session is a KEEPALIVE
        if seg.data_len == 19:
            return "bgp"
    return None


def keepalive_overhead(capture: Capture, since: int, until: int) -> KeepaliveBreakdown:
    """Classify captured liveness frames on a link over [since, until]."""
    result = KeepaliveBreakdown(window_us=until - since)
    for rec in capture.select(since=since, until=until):
        if rec.direction.value != "tx":
            continue
        kind = classify_keepalive_frame(rec.frame)
        if kind == "bgp":
            result.bgp_keepalive_bytes += rec.wire_size
            result.bgp_keepalive_count += 1
        elif kind == "bfd":
            result.bfd_bytes += rec.wire_size
            result.bfd_count += 1
        elif kind == "tcp-ack":
            result.tcp_ack_bytes += rec.wire_size
            result.tcp_ack_count += 1
        elif kind == "mtp":
            result.mtp_keepalive_bytes += rec.wire_size
            result.mtp_keepalive_count += 1
    return result
