"""Metric computation (paper section V).

Blast radius, control overhead and keepalive overhead, computed from the
forwarding-table change counters, the trace log and packet captures — the
same data sources (logs + tshark) the paper's scripts parse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.sim.trace import TraceLog
from repro.sim.units import SECOND
from repro.net.capture import Capture
from repro.stack.ethernet import ETHERTYPE_IPV4, ETHERTYPE_MTP, EthernetFrame
from repro.stack.ipv4 import Ipv4Packet, PROTO_TCP, PROTO_UDP
from repro.stack.tcp_segment import TcpSegment
from repro.stack.udp import UdpDatagram
from repro.bfd.messages import BFD_PORT
from repro.bgp.messages import BGP_PORT
from repro.core.messages import MtpKeepalive


# ----------------------------------------------------------------------
# blast radius
# ----------------------------------------------------------------------
def snapshot_table_change_counts(tables: dict[str, object]) -> dict[str, int]:
    """Capture each router's forwarding-table change counter."""
    return {name: table.change_count for name, table in tables.items()}


def blast_radius(
    before: dict[str, int],
    tables: dict[str, object],
    exclude: Iterable[str] = (),
) -> list[str]:
    """Routers whose forwarding tables changed since ``before`` — "the
    number of routers that updated their routing tables subsequent to a
    topology change" (section VII.B).  ``exclude`` typically removes the
    node whose interface was administratively downed."""
    excluded = set(exclude)
    return sorted(
        name
        for name, table in tables.items()
        if name not in excluded and table.change_count > before.get(name, 0)
    )


# ----------------------------------------------------------------------
# control overhead
# ----------------------------------------------------------------------
def control_overhead_bytes(
    trace: TraceLog,
    categories: tuple[str, ...],
    since: int,
    until: Optional[int] = None,
) -> int:
    """Sum of L2 bytes in update messages during convergence (section
    VI.C: "total bytes transferred during the convergence time")."""
    total = 0
    for category in categories:
        for rec in trace.select(category=category, since=since, until=until):
            total += int(rec.data.get("bytes", 0))
    return total


# ----------------------------------------------------------------------
# keepalive overhead
# ----------------------------------------------------------------------
@dataclass
class KeepaliveBreakdown:
    """Steady-state liveness traffic on one link over a window (Fig. 9/10)."""

    window_us: int
    bgp_keepalive_bytes: int = 0
    bgp_keepalive_count: int = 0
    bfd_bytes: int = 0
    bfd_count: int = 0
    tcp_ack_bytes: int = 0
    tcp_ack_count: int = 0
    mtp_keepalive_bytes: int = 0
    mtp_keepalive_count: int = 0

    @property
    def total_bytes(self) -> int:
        return (self.bgp_keepalive_bytes + self.bfd_bytes
                + self.tcp_ack_bytes + self.mtp_keepalive_bytes)

    @property
    def bytes_per_second(self) -> float:
        return self.total_bytes * SECOND / self.window_us if self.window_us else 0.0


def classify_keepalive_frame(frame: EthernetFrame) -> Optional[str]:
    """One of 'bgp', 'bfd', 'tcp-ack', 'mtp', or None."""
    if frame.ethertype == ETHERTYPE_MTP:
        return "mtp" if isinstance(frame.payload, MtpKeepalive) else None
    if frame.ethertype != ETHERTYPE_IPV4:
        return None
    packet = frame.payload
    if not isinstance(packet, Ipv4Packet):
        return None
    if packet.proto == PROTO_UDP and isinstance(packet.payload, UdpDatagram):
        return "bfd" if packet.payload.dst_port == BFD_PORT else None
    if packet.proto == PROTO_TCP and isinstance(packet.payload, TcpSegment):
        seg = packet.payload
        if BGP_PORT not in (seg.src_port, seg.dst_port):
            return None
        if seg.data_len == 0 and seg.seq_space == 0:
            return "tcp-ack"
        # a 19-byte BGP message on an established session is a KEEPALIVE
        if seg.data_len == 19:
            return "bgp"
    return None


def keepalive_overhead(capture: Capture, since: int, until: int) -> KeepaliveBreakdown:
    """Classify captured liveness frames on a link over [since, until]."""
    result = KeepaliveBreakdown(window_us=until - since)
    for rec in capture.select(since=since, until=until):
        if rec.direction.value != "tx":
            continue
        kind = classify_keepalive_frame(rec.frame)
        if kind == "bgp":
            result.bgp_keepalive_bytes += rec.wire_size
            result.bgp_keepalive_count += 1
        elif kind == "bfd":
            result.bfd_bytes += rec.wire_size
            result.bfd_count += 1
        elif kind == "tcp-ack":
            result.tcp_ack_bytes += rec.wire_size
            result.tcp_ack_count += 1
        elif kind == "mtp":
            result.mtp_keepalive_bytes += rec.wire_size
            result.mtp_keepalive_count += 1
    return result
