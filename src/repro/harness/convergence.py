"""Convergence measurement.

Implements the paper's methodology (section VI.B): record the exact
failure-injection time, then watch update messages on all devices; when
they stop, the last update's timestamp is the convergence end time.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.trace import TraceRecord
from repro.sim.units import MILLISECOND, SECOND
from repro.net.world import World


class QuiescenceTimeout(TimeoutError):
    """The control plane failed to go quiet within its budget.

    Replaces the bare :class:`TimeoutError` with enough context to
    diagnose a supervisor quarantine record without re-running the task:
    where the simulated clock stood, how many timers were still pending
    (a runaway flap storm looks very different from a drained queue),
    and the last trace event emitted.
    """

    def __init__(self, message: str, *, sim_time_us: int,
                 pending_events: int, last_event: str = "") -> None:
        detail = (f"{message} [sim t={sim_time_us} us, "
                  f"{pending_events} pending timer(s)"
                  + (f", last event: {last_event}" if last_event else "")
                  + "]")
        super().__init__(detail)
        self.sim_time_us = sim_time_us
        self.pending_events = pending_events
        self.last_event = last_event


def _last_event_description(world: World) -> str:
    records = world.trace.records
    return str(records[-1]) if records else ""


class ConvergenceMonitor:
    """Live listener for update-message trace events."""

    def __init__(self, world: World, categories: tuple[str, ...]) -> None:
        self.world = world
        self.categories = set(categories)
        self.armed_at: Optional[int] = None
        self.first_update_time: Optional[int] = None
        self.last_update_time: Optional[int] = None
        self.update_count = 0
        self.update_bytes = 0
        self.updating_nodes: set[str] = set()
        world.trace.add_listener(self._on_record)

    def arm(self, at_time: Optional[int] = None) -> None:
        """Start counting updates from ``at_time`` (default: now)."""
        self.armed_at = self.world.sim.now if at_time is None else at_time
        self.first_update_time = None
        self.last_update_time = None
        self.update_count = 0
        self.update_bytes = 0
        self.updating_nodes.clear()

    def _on_record(self, record: TraceRecord) -> None:
        if self.armed_at is None or record.time < self.armed_at:
            return
        if record.category not in self.categories:
            return
        if self.first_update_time is None:
            self.first_update_time = record.time
        self.last_update_time = record.time
        self.update_count += 1
        self.update_bytes += int(record.data.get("bytes", 0))
        self.updating_nodes.add(record.node)

    # ------------------------------------------------------------------
    def convergence_time_us(self) -> Optional[int]:
        """Failure-to-last-update interval; None if no update was seen."""
        if self.armed_at is None or self.last_update_time is None:
            return None
        return self.last_update_time - self.armed_at

    def run_until_quiet(
        self,
        quiet_us: int = 1 * SECOND,
        max_wait_us: int = 60 * SECOND,
        slice_us: int = 50 * MILLISECOND,
        min_wait_us: int = 0,
        strict: bool = False,
    ) -> bool:
        """Advance the simulation until no update has been seen for
        ``quiet_us`` (bounded by ``max_wait_us`` after arming).

        ``min_wait_us`` must cover the slowest failure-detection path —
        the far end of a one-sided failure only reacts after its dead /
        hold timer, so stopping earlier would miss its updates entirely.

        Returns True once quiescence was reached.  Hitting the
        ``max_wait_us`` budget first returns False — or, with
        ``strict=True``, raises :class:`QuiescenceTimeout` (never-quiet
        runs such as a flap storm under persistent loss legitimately
        saturate the budget, so raising is opt-in).
        """
        assert self.armed_at is not None, "arm() before run_until_quiet()"
        sim = self.world.sim
        deadline = self.armed_at + max_wait_us
        earliest_stop = self.armed_at + min_wait_us
        while sim.now < deadline:
            sim.run(until=min(sim.now + slice_us, deadline))
            if sim.now < earliest_stop:
                continue
            reference = self.last_update_time
            if reference is None:
                reference = self.armed_at
            if sim.now - reference >= quiet_us:
                return True
        if strict:
            raise QuiescenceTimeout(
                f"updates did not quiesce within {max_wait_us} us of "
                f"arming ({self.update_count} updates seen)",
                sim_time_us=sim.now, pending_events=sim.pending_events,
                last_event=_last_event_description(self.world))
        return False

    def observe_for(self, duration_us: int,
                    slice_us: int = 50 * MILLISECOND) -> None:
        """Advance the simulation for a *fixed* window while counting
        updates.  The chaos suite uses this instead of
        :meth:`run_until_quiet`: under a persistently lossy link a
        false-flapping detector may never go quiet, so the observation
        window — not quiescence — bounds the run."""
        assert self.armed_at is not None, "arm() before observe_for()"
        sim = self.world.sim
        deadline = sim.now + duration_us
        while sim.now < deadline:
            sim.run(until=min(sim.now + slice_us, deadline))

    def detach(self) -> None:
        self.world.trace.remove_listener(self._on_record)


def converge_from_cold(
    world: World,
    deployment,
    check,
    max_time_us: int = 30 * SECOND,
    quiet_us: int = 500 * MILLISECOND,
    slice_us: int = 100 * MILLISECOND,
) -> None:
    """Run a freshly started deployment until ``check()`` holds and the
    control plane has gone quiet.  Raises on timeout."""
    sim = world.sim
    deadline = sim.now + max_time_us
    satisfied_since: Optional[int] = None
    while sim.now < deadline:
        sim.run(until=min(sim.now + slice_us, deadline))
        if check():
            if satisfied_since is None:
                satisfied_since = sim.now
            elif sim.now - satisfied_since >= quiet_us:
                return
        else:
            satisfied_since = None
    raise QuiescenceTimeout(
        f"deployment did not converge within {max_time_us} us "
        f"(check={check.__name__ if hasattr(check, '__name__') else check})",
        sim_time_us=sim.now, pending_events=sim.pending_events,
        last_event=_last_event_description(world),
    )
