"""Process-pool experiment fan-out with a determinism guard.

Sweep points and seeded experiment runs are embarrassingly parallel:
each task builds its own :class:`~repro.net.world.World` from scratch, so
tasks share no state and the engine's per-seed determinism means the
fan-out is *verifiable* — a run digest (trace + metrics hash, see
:mod:`repro.harness.digest`) must come out identical whether a task ran
inline, in a worker process, or was replayed from the result cache.

The runner is generic: callers hand it picklable task specs, a top-level
worker function, and (optionally) a :class:`~repro.harness.cache.ResultCache`
plus encode/decode/key functions.  Cached tasks are answered from disk;
the remainder fan out over a ``ProcessPoolExecutor`` with chunked
scheduling; results come back in task order regardless of completion
order.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.harness.cache import ResultCache


class DeterminismError(AssertionError):
    """Serial and parallel execution disagreed — a nondeterminism bug
    (wall-clock dependence, cross-task shared state, unseeded RNG...)."""


class FanoutInterrupted(KeyboardInterrupt):
    """Ctrl-C during a fan-out.  Results that had already completed were
    salvaged into the cache (when one is attached) before re-raising, so
    re-running the same command resumes instead of starting over."""

    def __init__(self, done: int, total: int, salvaged: int) -> None:
        super().__init__(f"interrupted: {done}/{total} tasks done "
                         f"({salvaged} checkpointed this run)")
        self.done = done
        self.total = total
        self.salvaged = salvaged


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 means one worker per core."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def default_chunk_size(n_tasks: int, jobs: int) -> int:
    """Chunked scheduling: ~4 chunks per worker amortizes IPC overhead
    while keeping the tail balanced."""
    return max(1, n_tasks // (jobs * 4))


@dataclass
class FanoutReport:
    """What one :func:`execute_tasks` call actually did."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    jobs: int = 1
    cache_stored: int = 0
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return (f"{self.total} tasks: {self.executed} executed "
                f"({self.jobs} jobs), {self.cached} from cache")


def execute_tasks(
    specs: Sequence[Any],
    worker: Callable[[Any], Any],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    key_fn: Optional[Callable[[Any], str]] = None,
    encode: Optional[Callable[[Any], dict]] = None,
    decode: Optional[Callable[[dict], Any]] = None,
    chunk_size: Optional[int] = None,
    report: Optional[FanoutReport] = None,
    allow_oversubscribe: bool = False,
) -> list[Any]:
    """Run ``worker`` over ``specs``; results in spec order.

    ``jobs <= 1`` runs inline (no pool, no pickling) — that is the
    reference serial path the determinism guard compares against.  With a
    cache, each spec is first looked up under ``key_fn(spec)``; hits are
    ``decode``d from disk, misses are executed and ``encode``d back.

    When the host has no spare cores for the requested worker count
    (``os.cpu_count() <= jobs``), the pool cannot beat serial — worker
    startup plus pickling are pure overhead on a saturated CPU (a 1-core
    CI host ran the pool at ~0.55x serial) — so the fan-out falls back to
    inline execution and notes it in the report.  Results are identical
    either way (that is the determinism contract); pass
    ``allow_oversubscribe=True`` to force the pool anyway, e.g. to test
    that very contract.
    """
    if cache is not None and (key_fn is None or encode is None
                              or decode is None):
        raise ValueError("cache requires key_fn, encode and decode")
    jobs = resolve_jobs(jobs)
    if report is None:
        report = FanoutReport()
    if jobs > 1 and not allow_oversubscribe:
        cores = os.cpu_count() or 1
        if cores <= jobs:
            report.notes.append(
                f"fell back to serial: {jobs} jobs would oversubscribe "
                f"{cores} core(s)")
            jobs = 1
    report.total += len(specs)
    report.jobs = jobs

    outcomes: list[Any] = [None] * len(specs)
    pending: list[tuple[int, Any, Optional[str]]] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            key = key_fn(spec)
            hit = cache.get(key)
            if hit is not None:
                outcomes[i] = decode(hit)
                report.cached += 1
                continue
            pending.append((i, spec, key))
        else:
            pending.append((i, spec, None))

    def settle(slot: tuple[int, Any, Optional[str]], outcome: Any) -> None:
        """Record one fresh result and checkpoint it immediately — a
        later interrupt must not lose work that already finished."""
        i, _, key = slot
        outcomes[i] = outcome
        report.executed += 1
        if cache is not None and key is not None:
            cache.put(key, encode(outcome))
            report.cache_stored += 1

    def interrupted() -> FanoutInterrupted:
        done = report.cached + report.executed
        return FanoutInterrupted(done=done, total=report.total,
                                 salvaged=report.cache_stored)

    if pending:
        todo = [spec for _, spec, _ in pending]
        if jobs <= 1 or len(todo) == 1:
            for slot in pending:
                try:
                    outcome = worker(slot[1])
                except KeyboardInterrupt:
                    raise interrupted() from None
                settle(slot, outcome)
        else:
            chunk = chunk_size or default_chunk_size(len(todo), jobs)
            chunks = [pending[i:i + chunk]
                      for i in range(0, len(pending), chunk)]
            pool = ProcessPoolExecutor(max_workers=min(jobs, len(todo)))
            futures: dict = {}
            collected: set = set()
            try:
                for group in chunks:
                    futures[pool.submit(
                        _run_chunk, worker,
                        [spec for _, spec, _ in group])] = group
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done,
                                          return_when=FIRST_COMPLETED)
                    for future in done:
                        for slot, outcome in zip(futures[future],
                                                 future.result()):
                            settle(slot, outcome)
                        collected.add(future)
                pool.shutdown()
            except KeyboardInterrupt:
                # salvage chunks that finished but were not yet collected
                for future, group in futures.items():
                    if (future not in collected and future.done()
                            and not future.cancelled()
                            and future.exception() is None):
                        for slot, outcome in zip(group, future.result()):
                            settle(slot, outcome)
                pool.shutdown(wait=False, cancel_futures=True)
                raise interrupted() from None
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
    return outcomes


def _run_chunk(worker: Callable[[Any], Any], specs: list[Any]) -> list[Any]:
    """Top-level chunk runner (the process pool needs to pickle it)."""
    return [worker(spec) for spec in specs]


def assert_fanout_deterministic(
    specs: Sequence[Any],
    worker: Callable[[Any], Any],
    digest_of: Callable[[Any], str],
    *,
    jobs: int = 2,
    chunk_size: Optional[int] = None,
) -> list[str]:
    """The determinism guard: run ``specs`` serially *and* through the
    process pool, compare per-task run digests, and raise
    :class:`DeterminismError` on the first divergence.  Returns the
    (verified) digests.
    """
    serial = [digest_of(o) for o in execute_tasks(specs, worker, jobs=1)]
    # allow_oversubscribe: the whole point is to compare the pool against
    # serial, so the guard must not quietly fall back on small hosts
    fanned = [digest_of(o) for o in execute_tasks(
        specs, worker, jobs=jobs, chunk_size=chunk_size,
        allow_oversubscribe=True)]
    for i, (a, b) in enumerate(zip(serial, fanned)):
        if a != b:
            raise DeterminismError(
                f"task {i}: serial digest {a[:16]}... != "
                f"parallel digest {b[:16]}... (jobs={jobs}) — "
                f"spec {specs[i]!r}"
            )
    return serial
