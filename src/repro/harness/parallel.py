"""Process-pool experiment fan-out with a determinism guard.

Sweep points and seeded experiment runs are embarrassingly parallel:
each task builds its own :class:`~repro.net.world.World` from scratch, so
tasks share no state and the engine's per-seed determinism means the
fan-out is *verifiable* — a run digest (trace + metrics hash, see
:mod:`repro.harness.digest`) must come out identical whether a task ran
inline, in a worker process, or was replayed from the result cache.

The runner is generic: callers hand it picklable task specs, a top-level
worker function, and (optionally) a :class:`~repro.harness.cache.ResultCache`
plus encode/decode/key functions.  Cached tasks are answered from disk;
the remainder fan out over a ``ProcessPoolExecutor`` with chunked
scheduling; results come back in task order regardless of completion
order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.harness.cache import ResultCache


class DeterminismError(AssertionError):
    """Serial and parallel execution disagreed — a nondeterminism bug
    (wall-clock dependence, cross-task shared state, unseeded RNG...)."""


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 means one worker per core."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def default_chunk_size(n_tasks: int, jobs: int) -> int:
    """Chunked scheduling: ~4 chunks per worker amortizes IPC overhead
    while keeping the tail balanced."""
    return max(1, n_tasks // (jobs * 4))


@dataclass
class FanoutReport:
    """What one :func:`execute_tasks` call actually did."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    jobs: int = 1
    cache_stored: int = 0
    notes: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return (f"{self.total} tasks: {self.executed} executed "
                f"({self.jobs} jobs), {self.cached} from cache")


def execute_tasks(
    specs: Sequence[Any],
    worker: Callable[[Any], Any],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    key_fn: Optional[Callable[[Any], str]] = None,
    encode: Optional[Callable[[Any], dict]] = None,
    decode: Optional[Callable[[dict], Any]] = None,
    chunk_size: Optional[int] = None,
    report: Optional[FanoutReport] = None,
) -> list[Any]:
    """Run ``worker`` over ``specs``; results in spec order.

    ``jobs <= 1`` runs inline (no pool, no pickling) — that is the
    reference serial path the determinism guard compares against.  With a
    cache, each spec is first looked up under ``key_fn(spec)``; hits are
    ``decode``d from disk, misses are executed and ``encode``d back.
    """
    if cache is not None and (key_fn is None or encode is None
                              or decode is None):
        raise ValueError("cache requires key_fn, encode and decode")
    jobs = resolve_jobs(jobs)
    if report is None:
        report = FanoutReport()
    report.total += len(specs)
    report.jobs = jobs

    outcomes: list[Any] = [None] * len(specs)
    pending: list[tuple[int, Any, Optional[str]]] = []
    for i, spec in enumerate(specs):
        if cache is not None:
            key = key_fn(spec)
            hit = cache.get(key)
            if hit is not None:
                outcomes[i] = decode(hit)
                report.cached += 1
                continue
            pending.append((i, spec, key))
        else:
            pending.append((i, spec, None))

    if pending:
        todo = [spec for _, spec, _ in pending]
        if jobs <= 1 or len(todo) == 1:
            fresh = [worker(spec) for spec in todo]
        else:
            chunk = chunk_size or default_chunk_size(len(todo), jobs)
            with ProcessPoolExecutor(max_workers=min(jobs, len(todo))) as pool:
                fresh = list(pool.map(worker, todo, chunksize=chunk))
        for (i, _, key), outcome in zip(pending, fresh):
            outcomes[i] = outcome
            if cache is not None and key is not None:
                cache.put(key, encode(outcome))
                report.cache_stored += 1
        report.executed += len(fresh)
    return outcomes


def assert_fanout_deterministic(
    specs: Sequence[Any],
    worker: Callable[[Any], Any],
    digest_of: Callable[[Any], str],
    *,
    jobs: int = 2,
    chunk_size: Optional[int] = None,
) -> list[str]:
    """The determinism guard: run ``specs`` serially *and* through the
    process pool, compare per-task run digests, and raise
    :class:`DeterminismError` on the first divergence.  Returns the
    (verified) digests.
    """
    serial = [digest_of(o) for o in execute_tasks(specs, worker, jobs=1)]
    fanned = [digest_of(o) for o in execute_tasks(
        specs, worker, jobs=jobs, chunk_size=chunk_size)]
    for i, (a, b) in enumerate(zip(serial, fanned)):
        if a != b:
            raise DeterminismError(
                f"task {i}: serial digest {a[:16]}... != "
                f"parallel digest {b[:16]}... (jobs={jobs}) — "
                f"spec {specs[i]!r}"
            )
    return serial
