"""Ground-truth reachability oracle.

Computes, from the physical topology and the set of alive links alone,
which rack pairs *should* be able to communicate under valley-free
(up*-then-down*) Clos routing — the routing discipline both MR-MTP and
RFC 7938 BGP implement.  Comparing the oracle against what the deployed
protocol actually forwards catches both failure modes:

* **blackholes** — the oracle says reachable, the protocol drops;
* **over-pruning** — same symptom, caused by marks/withdrawals that
  removed more state than the failure justified.

(The reverse disagreement cannot occur: a completed path trace is a
constructive proof of reachability.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.topology import TIER_SERVER, Topology
from repro.harness.pathtrace import trace_path


def alive_fabric_graph(topo: Topology) -> nx.DiGraph:
    """Directed graph of alive fabric links: an edge u->v exists when a
    frame can actually travel from u to v (u's interface can transmit
    and v's can receive — the paper's one-sided failure semantics)."""
    graph = nx.DiGraph()
    for name in topo.routers():
        graph.add_node(name, tier=topo.node(name).tier)
    for link in topo.world.links:
        a, b = link.end_a, link.end_b
        if a.node.tier == TIER_SERVER or b.node.tier == TIER_SERVER:
            continue
        if a.admin_up and b.admin_up:
            graph.add_edge(a.node.name, b.node.name)
            graph.add_edge(b.node.name, a.node.name)
    return graph


def _up_closure(graph: nx.DiGraph, start: str) -> set[str]:
    """Nodes reachable from ``start`` along strictly tier-increasing
    alive edges (the 'up' phase of a valley-free path)."""
    closure = {start}
    frontier = [start]
    while frontier:
        here = frontier.pop()
        here_tier = graph.nodes[here]["tier"]
        for nxt in graph.successors(here):
            if graph.nodes[nxt]["tier"] > here_tier and nxt not in closure:
                closure.add(nxt)
                frontier.append(nxt)
    return closure


def _down_closure(graph: nx.DiGraph, start: str) -> set[str]:
    """Nodes that can reach ``start`` along strictly tier-decreasing
    alive edges (the 'down' phase, walked backwards)."""
    closure = {start}
    frontier = [start]
    while frontier:
        here = frontier.pop()
        here_tier = graph.nodes[here]["tier"]
        for prev in graph.predecessors(here):
            if graph.nodes[prev]["tier"] > here_tier and prev not in closure:
                closure.add(prev)
                frontier.append(prev)
    return closure


def oracle_reachable(topo: Topology, src_tor: str, dst_tor: str) -> bool:
    """True when a valley-free path src_tor -> dst_tor exists over the
    alive links: some node lies both in src's up-closure and in the set
    of nodes that can descend to dst."""
    graph = alive_fabric_graph(topo)
    if src_tor not in graph or dst_tor not in graph:
        return False
    return bool(_up_closure(graph, src_tor) & _down_closure(graph, dst_tor))


@dataclass
class OracleDisagreement:
    src_tor: str
    dst_tor: str
    oracle_reachable: bool
    protocol_reachable: bool
    detail: str


def compare_with_oracle(
    deployment,
    topo: Topology,
    probe_ports: Iterable[int] = (40000, 40001, 40002, 40003),
) -> list[OracleDisagreement]:
    """Check every rack pair against the oracle; return disagreements.

    The protocol is *required* to deliver whenever the oracle says a
    valley-free path exists, and must not complete a trace when none
    does (the latter would mean the trace walked a valley).
    """
    disagreements = []
    tors = topo.all_tors()
    for src_tor in tors:
        for dst_tor in tors:
            if src_tor == dst_tor:
                continue
            expected = oracle_reachable(topo, src_tor, dst_tor)
            src = topo.first_server_of(src_tor)
            dst = topo.first_server_of(dst_tor)
            delivered = 0
            first_error = ""
            for port in probe_ports:
                try:
                    trace_path(deployment, src, dst, src_port=port)
                    delivered += 1
                except RuntimeError as exc:
                    if not first_error:
                        first_error = str(exc)
            actual = delivered == len(tuple(probe_ports))
            if actual != expected:
                disagreements.append(OracleDisagreement(
                    src_tor, dst_tor, expected, actual,
                    first_error or f"{delivered} of probes delivered",
                ))
    return disagreements
