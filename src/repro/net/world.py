"""World: one simulated deployment.

Bundles the event engine, trace log, RNG registry, nodes and links, and
provides cabling helpers.  Everything an experiment run owns lives here,
so constructing a fresh :class:`World` per run gives full isolation
between repetitions (the "reserve a fresh slice" analogue).
"""

from __future__ import annotations

from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog
from repro.net.interface import Interface
from repro.net.link import Link, DEFAULT_BANDWIDTH_BPS, DEFAULT_PROPAGATION_US
from repro.net.node import Node


class World:
    def __init__(
        self,
        seed: int = 0,
        trace_enabled: bool = True,
        engine_backend: Optional[str] = None,
    ) -> None:
        # engine_backend: None = process default (REPRO_ENGINE_BACKEND or
        # the timer wheel); "heap" selects the legacy scheduler for
        # differential testing.
        self.sim = Simulator(backend=engine_backend)
        self.trace = TraceLog(self.sim, enabled=trace_enabled)
        self.rng = RngRegistry(seed)
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []

    # ------------------------------------------------------------------
    def add_node(self, name: str, tier: int = 0) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(self.sim, name, self.trace, tier=tier)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def cable(
        self,
        iface_a: Interface,
        iface_b: Interface,
        bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS,
        propagation_us: int = DEFAULT_PROPAGATION_US,
    ) -> Link:
        link = Link(self.sim, iface_a, iface_b, bandwidth_bps, propagation_us)
        self.links.append(link)
        return link

    def connect(
        self,
        node_a: Node,
        node_b: Node,
        bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS,
        propagation_us: int = DEFAULT_PROPAGATION_US,
    ) -> Link:
        """Create a new interface on each node and cable them."""
        return self.cable(
            node_a.add_interface(),
            node_b.add_interface(),
            bandwidth_bps,
            propagation_us,
        )

    def find_link(self, name_a: str, name_b: str) -> Optional[Link]:
        """The link between two named nodes, if any."""
        for link in self.links:
            ends = {link.end_a.node.name, link.end_b.node.name}
            if ends == {name_a, name_b}:
                return link
        return None

    def all_interfaces(self) -> list[Interface]:
        return [
            iface
            for node in self.nodes.values()
            for iface in node.interfaces.values()
        ]

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    def run_for(self, duration: int) -> None:
        self.sim.run_for(duration)
