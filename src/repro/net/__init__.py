"""Network substrate: nodes, interfaces, point-to-point links, captures.

Failure semantics follow the paper's FABRIC VM behaviour: administratively
downing an interface raises an *immediate* local link-down event at that
node, while the peer's interface keeps carrier and only learns of the
failure through protocol timers (dead/hold/BFD-detect).  That asymmetry is
exactly what separates TC1 from TC2 and TC3 from TC4 in the evaluation.
"""

from repro.net.interface import Interface, InterfaceCounters
from repro.net.impairment import (
    ImpairmentProfile,
    LinkImpairment,
    PRESETS,
    resolve_profile,
)
from repro.net.link import Link
from repro.net.node import Node
from repro.net.capture import Capture, CaptureRecord, Direction
from repro.net.world import World

__all__ = [
    "Interface",
    "InterfaceCounters",
    "ImpairmentProfile",
    "LinkImpairment",
    "PRESETS",
    "resolve_profile",
    "Link",
    "Node",
    "Capture",
    "CaptureRecord",
    "Direction",
    "World",
]
