"""Per-direction link impairments: the gray-failure model.

The paper's failure primitive (``ip link set down``) is binary, but real
fabrics mostly fail *grayly*: a marginal optic loses a few percent of
frames, corrupts others (bad FCS, dropped by the receiving MAC), and a
flapping retimer reorders or duplicates what survives — often in one
direction only.  This module models that regime so the detection-speed /
false-positive tradeoff (Quick-to-Detect vs Slow-to-Accept vs BFD's
detect-mult) can actually be measured.

An :class:`ImpairmentProfile` is a frozen, validated bundle of knobs:

* ``loss`` — independent per-frame loss probability;
* ``ge_p`` / ``ge_r`` / ``ge_loss_bad`` — Gilbert–Elliott two-state
  burst loss.  The chain sits in a *good* state (lossless) and moves to
  a *bad* state with probability ``ge_p`` per frame; in the bad state
  each frame is lost with probability ``ge_loss_bad`` and the chain
  recovers with probability ``ge_r``.  Expected burst length is
  ``1/ge_r`` frames.  Independent ``loss`` still applies on top;
* ``corrupt`` — probability the frame arrives with a bad FCS.  The
  receiver counts it (``rx_dropped_corrupt``) and drops it, exactly as
  a real MAC does — the sender's tx counters still advance;
* ``duplicate`` — probability a second copy of the frame is delivered;
* ``jitter_us`` — each delivered copy is delayed by an extra uniform
  integer in ``[0, jitter_us]``, which reorders frames once the draw
  spread exceeds the inter-frame gap.

Profiles attach to one *direction* of a :class:`~repro.net.link.Link`
(keyed by the sending interface), so asymmetric gray failures — the
canonical hard case for liveness protocols — are first-class: impair the
rx direction of a ToR uplink and the ToR's hellos still arrive fine at
the agg while the agg's replies die.

Every random draw comes from a dedicated named RNG stream
(``impair:<node>:<iface>`` of the sending end, created by the caller via
``world.rng.stream``), so attaching an impairment never perturbs any
other stream and serial == parallel run digests keep holding.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

import numpy as np

#: Scenario/CLI shorthand for the direction a profile applies to.
DIRECTIONS = ("tx", "rx", "both")

#: Fields of :class:`ImpairmentProfile` settable from scenario events.
PROFILE_FIELDS = ("loss", "corrupt", "duplicate", "jitter_us",
                  "ge_p", "ge_r", "ge_loss_bad")


def rng_stream_name(sender_full_name: str) -> str:
    """Name of the dedicated RNG stream for one impaired direction."""
    return f"impair:{sender_full_name}"


@dataclass(frozen=True)
class ImpairmentProfile:
    """Validated impairment knobs for one link direction."""

    loss: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    jitter_us: int = 0
    ge_p: float = 0.0        # P(good -> bad) per offered frame
    ge_r: float = 0.0        # P(bad -> good) per offered frame
    ge_loss_bad: float = 1.0  # loss probability while in the bad state

    def __post_init__(self) -> None:
        for name in ("loss", "corrupt", "duplicate", "ge_p", "ge_r",
                     "ge_loss_bad"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) \
                    or not 0.0 <= float(value) <= 1.0:
                raise ValueError(
                    f"impairment {name}={value!r}: want a probability "
                    f"in [0, 1]")
            object.__setattr__(self, name, float(value))
        if not isinstance(self.jitter_us, int) or isinstance(
                self.jitter_us, bool) or self.jitter_us < 0:
            raise ValueError(
                f"impairment jitter_us={self.jitter_us!r}: want a "
                f"non-negative integer of microseconds")
        if self.ge_p > 0.0 and self.ge_r == 0.0:
            raise ValueError(
                "impairment ge_p > 0 needs ge_r > 0, or the bad state "
                "is absorbing and the link is simply dead")

    @property
    def burst_enabled(self) -> bool:
        return self.ge_p > 0.0

    @property
    def is_noop(self) -> bool:
        return (self.loss == 0.0 and self.corrupt == 0.0
                and self.duplicate == 0.0 and self.jitter_us == 0
                and not self.burst_enabled)

    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """Canonical dict: only non-default fields, sorted keys."""
        payload: dict[str, Any] = {}
        defaults = ImpairmentProfile()
        for name in PROFILE_FIELDS:
            value = getattr(self, name)
            if value != getattr(defaults, name):
                payload[name] = value
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ImpairmentProfile":
        unknown = set(payload) - set(PROFILE_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown impairment field(s): {', '.join(sorted(unknown))}")
        return cls(**dict(payload))


#: Named presets usable from scenarios (``"profile": "gray"``) and the
#: injector.  Values chosen to sit below hard failure but well above a
#: clean fiber.
PRESETS: dict[str, ImpairmentProfile] = {
    # marginal optic: steady independent loss
    "lossy": ImpairmentProfile(loss=0.05),
    "very-lossy": ImpairmentProfile(loss=0.20),
    # dirty connector: frames arrive, but with bad FCS
    "corrupting": ImpairmentProfile(corrupt=0.10),
    # burst loss: ~8-frame bursts, entered rarely (Gilbert-Elliott)
    "bursty": ImpairmentProfile(ge_p=0.02, ge_r=0.125, ge_loss_bad=0.9),
    # flapping retimer: duplicates and reorders, loses a little
    "flaky": ImpairmentProfile(loss=0.02, duplicate=0.05, jitter_us=200),
    # the canonical gray failure: lossy AND corrupting; applied to one
    # direction only by the gray-* helpers / scenarios
    "gray": ImpairmentProfile(loss=0.15, corrupt=0.05),
}


def resolve_profile(preset: Optional[str] = None,
                    **overrides: Any) -> ImpairmentProfile:
    """Build a profile from an optional preset name plus field overrides.

    ``resolve_profile("gray", loss=0.3)`` starts from the ``gray`` preset
    and overrides its loss.  Unknown presets and out-of-range fields
    raise ``ValueError`` — scenario validation calls this up front so a
    typo fails before any simulation time is spent.
    """
    overrides = {k: v for k, v in overrides.items() if v is not None}
    unknown = set(overrides) - set(PROFILE_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown impairment field(s): {', '.join(sorted(unknown))}")
    if preset is not None:
        base = PRESETS.get(preset)
        if base is None:
            raise ValueError(
                f"unknown impairment preset {preset!r}; available: "
                f"{', '.join(sorted(PRESETS))}")
        profile = replace(base, **overrides) if overrides else base
        # re-validate the combination
        return ImpairmentProfile(**{f: getattr(profile, f)
                                    for f in PROFILE_FIELDS})
    profile = ImpairmentProfile(**overrides)
    if profile.is_noop:
        raise ValueError(
            "impairment profile is a no-op: set a preset or at least one "
            f"of {', '.join(PROFILE_FIELDS)}")
    return profile


@dataclass
class ImpairmentDecision:
    """Fate of one offered frame (and its optional duplicate)."""

    lost: bool = False
    corrupt: bool = False
    duplicate: bool = False
    jitter_us: int = 0
    dup_jitter_us: int = 0


class LinkImpairment:
    """Mutable per-direction impairment state attached to a link.

    Holds the profile, the dedicated RNG stream, the Gilbert–Elliott
    chain state and running counters.  ``decide()`` draws the fate of
    one offered frame; the draw order is fixed (burst chain, independent
    loss, corrupt, duplicate, jitter per delivered copy) and draws only
    happen for enabled knobs, so a given profile+stream is bit-stable.
    """

    def __init__(self, profile: ImpairmentProfile,
                 rng: np.random.Generator) -> None:
        self.profile = profile
        self.rng = rng
        self.bad_state = False
        self.offered = 0
        self.lost = 0
        self.corrupted = 0
        self.duplicated = 0

    def decide(self) -> ImpairmentDecision:
        p, rng = self.profile, self.rng
        self.offered += 1
        lost = False
        if p.burst_enabled:
            if self.bad_state:
                lost = rng.random() < p.ge_loss_bad
                if rng.random() < p.ge_r:
                    self.bad_state = False
            elif rng.random() < p.ge_p:
                self.bad_state = True
        if not lost and p.loss > 0.0:
            lost = rng.random() < p.loss
        if lost:
            self.lost += 1
            return ImpairmentDecision(lost=True)
        decision = ImpairmentDecision()
        if p.corrupt > 0.0 and rng.random() < p.corrupt:
            decision.corrupt = True
            self.corrupted += 1
        if p.duplicate > 0.0 and rng.random() < p.duplicate:
            decision.duplicate = True
            self.duplicated += 1
        if p.jitter_us > 0:
            decision.jitter_us = int(rng.integers(0, p.jitter_us + 1))
            if decision.duplicate:
                decision.dup_jitter_us = int(
                    rng.integers(0, p.jitter_us + 1))
        return decision

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<LinkImpairment offered={self.offered} lost={self.lost} "
                f"corrupted={self.corrupted} duplicated={self.duplicated}>")
