"""Frame dissection — the Wireshark-view substitute.

The paper presents captures (Figs. 9 and 10) to show what each
protocol's liveness traffic looks like on the wire.  ``dissect(frame)``
renders any simulated frame as the same kind of layered breakdown, and
``dissect_capture`` renders a capture window the way the paper shows
interleaved BFD/BGP traffic.
"""

from __future__ import annotations

from typing import Iterable

from repro.stack.arp import ArpMessage
from repro.stack.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_MTP,
    EthernetFrame,
)
from repro.stack.icmp import IcmpMessage
from repro.stack.ipv4 import Ipv4Packet, PROTO_TCP, PROTO_UDP
from repro.stack.payload import RawBytes
from repro.stack.tcp_segment import TcpFlags, TcpSegment
from repro.stack.udp import UdpDatagram
from repro.bfd.messages import BFD_PORT, BfdControlPacket
from repro.bgp.messages import (
    BGP_PORT,
    BgpKeepalive,
    BgpMessage,
    BgpNotification,
    BgpOpen,
    BgpUpdate,
)
from repro.core.messages import (
    MtpAccept,
    MtpAdvertise,
    MtpData,
    MtpFullHello,
    MtpJoin,
    MtpKeepalive,
    MtpMessage,
    MtpOffer,
    MtpRestored,
    MtpRestoredDefault,
    MtpUnreachable,
    MtpUnreachableDefault,
    MtpUpdateLost,
)
from repro.net.capture import Capture, CaptureRecord

_ETHERTYPE_NAMES = {
    ETHERTYPE_IPV4: "IPv4",
    ETHERTYPE_ARP: "ARP",
    ETHERTYPE_MTP: "Unknown (0x8850)",  # as Wireshark shows it (Fig. 10)
}


def dissect(frame: EthernetFrame) -> str:
    """Multi-line, Wireshark-style rendering of one frame."""
    lines = [
        f"Ethernet II, Src: {frame.src}, Dst: {frame.dst}"
        + ("  (Broadcast)" if frame.dst.is_broadcast else ""),
        f"    Type: {_ETHERTYPE_NAMES.get(frame.ethertype, hex(frame.ethertype))}",
        f"    Frame length: {frame.wire_size} bytes"
        f" (on wire: {frame.padded_wire_size})",
    ]
    payload = frame.payload
    if frame.ethertype == ETHERTYPE_MTP:
        lines += _dissect_mtp(payload)
    elif isinstance(payload, Ipv4Packet):
        lines += _dissect_ipv4(payload)
    elif isinstance(payload, ArpMessage):
        lines.append(f"{payload}")
    return "\n".join(lines)


def _dissect_ipv4(packet: Ipv4Packet) -> list[str]:
    lines = [
        f"Internet Protocol Version 4, Src: {packet.src}, Dst: {packet.dst}",
        f"    TTL: {packet.ttl}, Protocol: {packet.proto},"
        f" Total Length: {packet.wire_size}",
    ]
    body = packet.payload
    if isinstance(body, UdpDatagram):
        lines.append(
            f"User Datagram Protocol, Src Port: {body.src_port},"
            f" Dst Port: {body.dst_port}"
        )
        if isinstance(body.payload, BfdControlPacket):
            lines += _dissect_bfd(body.payload)
    elif isinstance(body, IcmpMessage):
        lines.append(f"Internet Control Message Protocol: {body}")
    elif isinstance(body, TcpSegment):
        flags = "|".join(
            f.name for f in TcpFlags if f is not TcpFlags.NONE and f in body.flags
        )
        lines.append(
            f"Transmission Control Protocol, Src Port: {body.src_port},"
            f" Dst Port: {body.dst_port}, Seq: {body.seq}, Ack: {body.ack},"
            f" Flags: [{flags or '-'}]"
        )
        if isinstance(body.payload, BgpMessage):
            lines += _dissect_bgp(body.payload)
    return lines


def _dissect_bfd(packet: BfdControlPacket) -> list[str]:
    return [
        "BFD Control message",
        f"    Version: 1, Diagnostic: No Diagnostic",
        f"    State: {packet.state.name}",
        f"    Detect Time Multiplier: {packet.detect_mult}",
        f"    My Discriminator: 0x{packet.my_discriminator:08x}",
        f"    Your Discriminator: 0x{packet.your_discriminator:08x}",
        f"    Desired Min TX Interval: {packet.desired_min_tx_us} us",
        f"    Required Min RX Interval: {packet.required_min_rx_us} us",
    ]


def _dissect_bgp(message: BgpMessage) -> list[str]:
    if isinstance(message, BgpKeepalive):
        return ["Border Gateway Protocol - KEEPALIVE Message",
                f"    Length: {message.wire_size}"]
    if isinstance(message, BgpOpen):
        return [
            "Border Gateway Protocol - OPEN Message",
            f"    Version: 4, My AS: {message.asn},"
            f" Hold Time: {message.hold_time_s},"
            f" BGP Identifier: {message.router_id}",
        ]
    if isinstance(message, BgpUpdate):
        lines = ["Border Gateway Protocol - UPDATE Message",
                 f"    Length: {message.wire_size}"]
        for prefix in message.withdrawn:
            lines.append(f"    Withdrawn route: {prefix}")
        if message.attributes is not None:
            attrs = message.attributes
            lines.append(
                f"    Path attributes: ORIGIN IGP,"
                f" AS_PATH {list(attrs.as_path)}, NEXT_HOP {attrs.next_hop}"
            )
        for prefix in message.nlri:
            lines.append(f"    NLRI: {prefix}")
        return lines
    if isinstance(message, BgpNotification):
        return ["Border Gateway Protocol - NOTIFICATION Message",
                f"    Error: {message.error_code}/{message.error_subcode}"]
    return [f"Border Gateway Protocol - {type(message).__name__}"]


_MTP_NAMES = {
    MtpKeepalive: "Keep-Alive",
    MtpFullHello: "Hello",
    MtpAdvertise: "Advertise",
    MtpJoin: "Join Request",
    MtpOffer: "VID Offer",
    MtpAccept: "Accept",
    MtpUpdateLost: "Update (VIDs lost)",
    MtpUnreachable: "Update (roots unreachable)",
    MtpRestored: "Update (roots restored)",
    MtpUnreachableDefault: "Update (default path lost)",
    MtpRestoredDefault: "Update (default path restored)",
    MtpData: "Encapsulated IP",
}


def _dissect_mtp(message) -> list[str]:
    if isinstance(message, MtpKeepalive):
        # the paper's Fig. 10: wireshark shows raw data for the unknown
        # ethertype — a single byte 0x06
        return ["Data (1 byte)", "    Data: 06", "    [Length: 1]"]
    if not isinstance(message, MtpMessage):
        return [f"Data ({getattr(message, 'wire_size', '?')} bytes)"]
    name = _MTP_NAMES.get(type(message), type(message).__name__)
    lines = [f"MR-MTP {name} (type 0x{message.type_code:02x})"]
    if isinstance(message, MtpFullHello):
        lines.append(f"    Tier: {message.tier}")
    if hasattr(message, "vids"):
        lines.append("    VIDs: " + ", ".join(str(v) for v in message.vids))
    if hasattr(message, "roots"):
        lines.append("    Roots: " + ", ".join(str(r) for r in message.roots))
    if hasattr(message, "except_roots"):
        lines.append("    Except roots: "
                     + (", ".join(str(r) for r in message.except_roots)
                        or "(none)"))
    if isinstance(message, MtpData):
        lines.append(f"    Source ToR VID: {message.src_root},"
                     f" Destination ToR VID: {message.dst_root}")
        lines += ["    " + line for line in _dissect_ipv4(message.packet)]
    return lines


def dissect_capture(records: Iterable[CaptureRecord], limit: int = 20) -> str:
    """Render a capture window: one numbered frame summary per packet,
    like the paper's Fig. 9 list view."""
    out = []
    for i, rec in enumerate(records):
        if i >= limit:
            out.append(f"... ({i}+ frames)")
            break
        # summary = the innermost protocol header line
        lines = dissect(rec.frame).splitlines()
        protocol_lines = [l for l in lines if l and not l.startswith("    ")]
        summary = protocol_lines[-1] if protocol_lines else lines[0]
        out.append(
            f"{i + 1:>4d} {rec.time / 1e6:>12.6f}s {rec.node}:{rec.interface}"
            f" [{rec.direction.value}] len={rec.wire_size:<5d} {summary}"
        )
    return "\n".join(out)
