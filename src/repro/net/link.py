"""Point-to-point links.

A link models the DCN's fiber pairs: per-direction serialization (frames
queue behind each other at line rate), a finite tail-drop egress queue,
and a fixed propagation delay.  Defaults approximate the testbed's
virtual links: 10 Gb/s, 5 us propagation, 512 KiB per-port buffering.
Delivery checks the receiving interface's admin state at arrival time,
so a frame racing an ``ip link set down`` is dropped exactly as on the
real VM.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.units import SECOND
from repro.stack.ethernet import EthernetFrame
from repro.net.impairment import ImpairmentProfile, LinkImpairment
from repro.net.interface import Interface

DEFAULT_BANDWIDTH_BPS = 10_000_000_000  # 10 Gb/s
DEFAULT_PROPAGATION_US = 5
DEFAULT_QUEUE_BYTES = 512 * 1024  # per-direction egress buffer


class Link:
    """Full-duplex point-to-point link between two interfaces."""

    __slots__ = ("sim", "end_a", "end_b", "bandwidth_bps", "propagation_us",
                 "queue_bytes", "_next_free", "frames_carried",
                 "bytes_carried", "frames_dropped_queue", "_impairments",
                 "_arrival_seq", "frames_lost_impaired", "frames_corrupted",
                 "frames_duplicated")

    def __init__(
        self,
        sim: Simulator,
        end_a: Interface,
        end_b: Interface,
        bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS,
        propagation_us: int = DEFAULT_PROPAGATION_US,
        queue_bytes: Optional[int] = DEFAULT_QUEUE_BYTES,
    ) -> None:
        if end_a is end_b:
            raise ValueError("cannot cable an interface to itself")
        if end_a.link is not None or end_b.link is not None:
            raise ValueError("interface already cabled")
        if bandwidth_bps <= 0:
            raise ValueError(f"bad bandwidth {bandwidth_bps}")
        if propagation_us < 0:
            raise ValueError(f"bad propagation {propagation_us}")
        if queue_bytes is not None and queue_bytes <= 0:
            raise ValueError(f"bad queue size {queue_bytes}")
        self.sim = sim
        self.end_a = end_a
        self.end_b = end_b
        self.bandwidth_bps = bandwidth_bps
        self.propagation_us = int(propagation_us)
        self.queue_bytes = queue_bytes  # None = infinite buffering
        end_a.link = self
        end_b.link = self
        # Per-direction time at which the transmitter becomes free again;
        # keys are the *sending* interface.
        self._next_free: dict[Interface, int] = {end_a: 0, end_b: 0}
        self.frames_carried = 0
        self.bytes_carried = 0
        self.frames_dropped_queue = 0
        # Per-direction impairment (gray failures); keys are the sender.
        self._impairments: dict[Interface, LinkImpairment] = {}
        # Monotone arrival sequence used as the scheduler priority for
        # impaired deliveries: with jitter, two frames can land on the
        # same microsecond, and the explicit (time, priority) key makes
        # the delivery order a pure function of the transmit order — a
        # deterministic tiebreak independent of heap insertion details.
        # Clean links keep priority 0 so their digests are unchanged.
        self._arrival_seq = 0
        self.frames_lost_impaired = 0
        self.frames_corrupted = 0
        self.frames_duplicated = 0

    # ------------------------------------------------------------------
    def other_end(self, iface: Interface) -> Interface:
        if iface is self.end_a:
            return self.end_b
        if iface is self.end_b:
            return self.end_a
        raise ValueError(f"{iface!r} is not an end of this link")

    def serialization_us(self, frame: EthernetFrame) -> int:
        """Line-rate serialization delay (padded frames occupy the wire)."""
        bits = frame.padded_wire_size * 8
        return max(1, (bits * SECOND) // self.bandwidth_bps)

    # ------------------------------------------------------------------
    # impairment (gray failures) — see repro.net.impairment
    # ------------------------------------------------------------------
    def set_impairment(self, sender: Interface, profile: ImpairmentProfile,
                       rng: np.random.Generator) -> LinkImpairment:
        """Attach ``profile`` to the ``sender`` -> peer direction,
        replacing any existing impairment on that direction.  ``rng``
        must be a dedicated named stream (see
        :func:`repro.net.impairment.rng_stream_name`)."""
        if sender is not self.end_a and sender is not self.end_b:
            raise ValueError(f"{sender!r} is not an end of this link")
        state = LinkImpairment(profile, rng)
        self._impairments[sender] = state
        return state

    def clear_impairment(self, sender: Interface) -> None:
        """Remove any impairment on the ``sender`` -> peer direction."""
        self._impairments.pop(sender, None)

    def impairment(self, sender: Interface) -> Optional[LinkImpairment]:
        return self._impairments.get(sender)

    # ------------------------------------------------------------------
    def queue_backlog_bytes(self, sender: Interface) -> int:
        """Bytes currently waiting to serialize in ``sender``'s direction."""
        backlog_us = max(0, self._next_free[sender] - self.sim.now)
        return (backlog_us * self.bandwidth_bps) // (8 * SECOND)

    def transmit(self, sender: Interface, frame: EthernetFrame) -> bool:
        """Queue ``frame`` from ``sender``; deliver after serialization +
        propagation.  Back-to-back frames serialize sequentially, which is
        what lets the traffic generator's "back-to-back packets" saturate
        the line exactly as the paper's tool does.  A frame arriving to a
        full egress queue is tail-dropped (returns False) — congestion
        loss, distinct from the failure loss the paper measures."""
        if (self.queue_bytes is not None
                and self.queue_backlog_bytes(sender) + frame.padded_wire_size
                > self.queue_bytes):
            self.frames_dropped_queue += 1
            sender.counters.tx_dropped_queue += 1
            return False
        receiver = self.other_end(sender)
        start = max(self.sim.now, self._next_free[sender])
        done = start + self.serialization_us(frame)
        self._next_free[sender] = done
        self.frames_carried += 1
        self.bytes_carried += frame.wire_size
        impairment = self._impairments.get(sender)
        if impairment is None:
            self.sim.schedule_at(done + self.propagation_us,
                                 receiver.deliver, frame)
            return True
        # Gray path: the frame occupied the wire (tx counters advance at
        # the sender), but its fate at the far end is drawn from the
        # direction's dedicated RNG stream.
        decision = impairment.decide()
        if decision.lost:
            self.frames_lost_impaired += 1
            return True
        if decision.corrupt:
            self.frames_corrupted += 1
        self._arrival_seq += 1
        self.sim.schedule_at(
            done + self.propagation_us + decision.jitter_us,
            receiver.deliver, frame, decision.corrupt, False,
            priority=self._arrival_seq)
        if decision.duplicate:
            self.frames_duplicated += 1
            self._arrival_seq += 1
            self.sim.schedule_at(
                done + self.propagation_us + decision.dup_jitter_us,
                receiver.deliver, frame, decision.corrupt, True,
                priority=self._arrival_seq)
        return True

    def __repr__(self) -> str:
        return f"<Link {self.end_a.full_name} <-> {self.end_b.full_name}>"
