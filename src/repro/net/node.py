"""Nodes: the base device class.

A node owns interfaces and dispatches received frames to protocol
handlers registered per ethertype.  Protocol implementations (the IP
stack, BGP's TCP sessions, MR-MTP) attach themselves as services and
subscribe to interface up/down events — the local "kernel" notification
the paper relies on for instant same-side failure detection.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.stack.addresses import MacAddress
from repro.stack.ethernet import EthernetFrame
from repro.net.interface import Interface

FrameHandler = Callable[[Interface, EthernetFrame], None]
IfaceListener = Callable[[Interface], None]

_mac_counter = 0


def _next_mac() -> MacAddress:
    global _mac_counter
    _mac_counter += 1
    return MacAddress.from_index(_mac_counter)


class Node:
    """A device: server, ToR, aggregation spine or top spine."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        trace: Optional[TraceLog] = None,
        tier: int = 0,
    ) -> None:
        self.sim = sim
        self.name = name
        self.trace = trace if trace is not None else TraceLog(sim, enabled=False)
        # Tier in the folded-Clos: 0 = server, 1 = ToR, 2.. = spines.
        self.tier = tier
        self.interfaces: dict[str, Interface] = {}
        self._handlers: dict[int, FrameHandler] = {}
        self._down_listeners: list[IfaceListener] = []
        self._up_listeners: list[IfaceListener] = []
        self._impair_listeners: list[IfaceListener] = []

    # ------------------------------------------------------------------
    # interfaces
    # ------------------------------------------------------------------
    def add_interface(self, name: Optional[str] = None) -> Interface:
        port_number = len(self.interfaces) + 1
        if name is None:
            name = f"eth{port_number}"
        if name in self.interfaces:
            raise ValueError(f"{self.name} already has interface {name}")
        iface = Interface(self, name, _next_mac(), port_number)
        self.interfaces[name] = iface
        return iface

    def interface(self, name: str) -> Interface:
        return self.interfaces[name]

    def interfaces_up(self) -> list[Interface]:
        return [i for i in self.interfaces.values() if i.admin_up and i.cabled]

    def neighbor_on(self, iface_name: str) -> Optional["Node"]:
        peer = self.interfaces[iface_name].peer()
        return peer.node if peer else None

    # ------------------------------------------------------------------
    # frame dispatch
    # ------------------------------------------------------------------
    def register_handler(self, ethertype: int, handler: FrameHandler) -> None:
        if ethertype in self._handlers:
            raise ValueError(
                f"{self.name}: ethertype {ethertype:#06x} already handled"
            )
        self._handlers[ethertype] = handler

    def handle_frame(self, iface: Interface, frame: EthernetFrame) -> None:
        handler = self._handlers.get(frame.ethertype)
        if handler is None:
            self.log("frame.unhandled", f"no handler for {frame.ethertype:#06x}")
            return
        handler(iface, frame)

    # ------------------------------------------------------------------
    # interface events
    # ------------------------------------------------------------------
    def on_interface_down(self, listener: IfaceListener) -> None:
        self._down_listeners.append(listener)

    def on_interface_up(self, listener: IfaceListener) -> None:
        self._up_listeners.append(listener)

    def interface_went_down(self, iface: Interface) -> None:
        self.log("iface.down", f"{iface.name} admin down")
        for listener in list(self._down_listeners):
            listener(iface)

    def interface_came_up(self, iface: Interface) -> None:
        self.log("iface.up", f"{iface.name} admin up")
        for listener in list(self._up_listeners):
            listener(iface)

    def on_impairment_cleared(self, listener: IfaceListener) -> None:
        """Subscribe to link-repair notifications (an impairment on the
        interface's link was cleared by the failure injector).  A real
        deployment's analogue is the optics/NOC repair event that closes
        an incident."""
        self._impair_listeners.append(listener)

    def impairment_cleared(self, iface: Interface) -> None:
        # deliberately not logged: only liveness-enabled protocols
        # subscribe, so baseline traces stay byte-identical
        for listener in list(self._impair_listeners):
            listener(iface)

    # ------------------------------------------------------------------
    def log(self, category: str, message: str, **data) -> None:
        trace = self.trace
        if trace.live:  # skip record construction when nobody is watching
            trace.emit(self.name, category, message, **data)

    def __repr__(self) -> str:
        return f"<Node {self.name} tier={self.tier}>"
