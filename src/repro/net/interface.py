"""Network interfaces.

An interface belongs to a node, may be cabled to a link, may carry an IPv4
address, and keeps tx/rx counters.  ``admin_up`` models ``ip link set
down`` at that end only — the failure primitive used throughout the
paper's test cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.stack.addresses import Ipv4Address, Ipv4Network, MacAddress
from repro.stack.ethernet import EthernetFrame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link
    from repro.net.node import Node


@dataclass(slots=True)
class InterfaceCounters:
    tx_frames: int = 0
    tx_bytes: int = 0
    rx_frames: int = 0
    rx_bytes: int = 0
    tx_dropped_down: int = 0   # frames offered for tx while admin-down
    rx_dropped_down: int = 0   # frames arriving while admin-down
    tx_dropped_uncabled: int = 0
    tx_dropped_queue: int = 0  # egress buffer overflow (congestion)
    rx_dropped_corrupt: int = 0  # bad FCS at the receiving MAC (gray link)
    rx_duplicate: int = 0      # extra copies delivered by a flaky link


class Interface:
    """One port of a node."""

    __slots__ = ("node", "name", "mac", "port_number", "link", "admin_up",
                 "address", "network", "counters", "taps")

    def __init__(
        self,
        node: "Node",
        name: str,
        mac: MacAddress,
        port_number: int,
    ) -> None:
        self.node = node
        self.name = name
        self.mac = mac
        # 1-based port number: the value MR-MTP appends when deriving child
        # VIDs ("the port number on which the request arrived").
        self.port_number = port_number
        self.link: Optional["Link"] = None
        self.admin_up: bool = True
        self.address: Optional[Ipv4Address] = None
        self.network: Optional[Ipv4Network] = None
        self.counters = InterfaceCounters()
        # capture taps: called for every frame tx'd / rx'd on this port
        self.taps: list[Callable[["Interface", EthernetFrame, str], None]] = []

    # ------------------------------------------------------------------
    @property
    def full_name(self) -> str:
        return f"{self.node.name}:{self.name}"

    @property
    def cabled(self) -> bool:
        return self.link is not None

    def assign_address(self, address: Ipv4Address, prefix_len: int) -> None:
        self.address = address
        self.network = Ipv4Network.of(address, prefix_len)

    def peer(self) -> Optional["Interface"]:
        """The interface at the other end of the cable (if cabled)."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    # ------------------------------------------------------------------
    # admin state — the paper's failure injection primitive
    # ------------------------------------------------------------------
    def set_admin(self, up: bool) -> None:
        """Administratively raise/lower the interface.

        Lowering notifies the local node immediately (kernel link-down
        event); the peer sees nothing.  Raising also notifies only the
        local node: protocols apply their own acceptance rules (MR-MTP's
        Slow-to-Accept, BGP session re-establishment).
        """
        if self.admin_up == up:
            return
        self.admin_up = up
        if up:
            self.node.interface_came_up(self)
        else:
            self.node.interface_went_down(self)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def send(self, frame: EthernetFrame) -> bool:
        """Offer a frame for transmission.  Returns True if it got onto
        the wire (it may still be dropped at the far end)."""
        if not self.admin_up:
            self.counters.tx_dropped_down += 1
            return False
        if self.link is None:
            self.counters.tx_dropped_uncabled += 1
            return False
        if not self.link.transmit(self, frame):
            return False  # egress queue overflow (counted by the link)
        self.counters.tx_frames += 1
        self.counters.tx_bytes += frame.wire_size
        for tap in self.taps:
            tap(self, frame, "tx")
        return True

    def deliver(self, frame: EthernetFrame, corrupt: bool = False,
                duplicate: bool = False) -> None:
        """Called by the link when a frame arrives at this end.

        ``corrupt`` frames model a bad FCS: the receiving MAC counts and
        drops them without handing them to the node, so the protocol
        above sees pure loss while the counters tell the gray-failure
        story.  ``duplicate`` marks the extra copy a flaky link
        delivered; it is counted and then processed normally.
        """
        if not self.admin_up:
            self.counters.rx_dropped_down += 1
            return
        if corrupt:
            self.counters.rx_dropped_corrupt += 1
            return
        if duplicate:
            self.counters.rx_duplicate += 1
        self.counters.rx_frames += 1
        self.counters.rx_bytes += frame.wire_size
        for tap in self.taps:
            tap(self, frame, "rx")
        self.node.handle_frame(self, frame)

    def __repr__(self) -> str:
        state = "up" if self.admin_up else "DOWN"
        return f"<Interface {self.full_name} {state}>"
