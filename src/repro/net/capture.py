"""Packet capture (the tshark substitute).

A :class:`Capture` taps any set of interfaces and records every frame with
its timestamp, direction and L2 size.  The control-overhead experiments
replay the paper's methodology — "tshark was used to capture BGP UPDATE
messages on all interfaces... total bytes transferred during the
convergence time was summed up" — directly on these records.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, Iterator, Optional

from repro.stack.ethernet import EthernetFrame
from repro.net.interface import Interface


class Direction(Enum):
    TX = "tx"
    RX = "rx"


@dataclass(frozen=True, slots=True)
class CaptureRecord:
    time: int
    node: str
    interface: str
    direction: Direction
    frame: EthernetFrame

    @property
    def wire_size(self) -> int:
        return self.frame.wire_size


FrameFilter = Callable[[EthernetFrame], bool]


class Capture:
    """Tap a set of interfaces and accumulate records."""

    def __init__(self, frame_filter: Optional[FrameFilter] = None) -> None:
        self.records: list[CaptureRecord] = []
        self.frame_filter = frame_filter
        self._tapped: list[Interface] = []
        self.enabled = True

    def attach(self, interfaces: Iterable[Interface]) -> None:
        for iface in interfaces:
            iface.taps.append(self._tap)
            self._tapped.append(iface)

    def attach_node(self, node) -> None:
        self.attach(node.interfaces.values())

    def detach(self) -> None:
        for iface in self._tapped:
            iface.taps.remove(self._tap)
        self._tapped.clear()

    def _tap(self, iface: Interface, frame: EthernetFrame, direction: str) -> None:
        if not self.enabled:
            return
        if self.frame_filter is not None and not self.frame_filter(frame):
            return
        self.records.append(
            CaptureRecord(
                time=iface.node.sim.now,
                node=iface.node.name,
                interface=iface.name,
                direction=Direction(direction),
                frame=frame,
            )
        )

    # ------------------------------------------------------------------
    # analysis helpers (the "parse the pcap" scripts)
    # ------------------------------------------------------------------
    def select(
        self,
        since: Optional[int] = None,
        until: Optional[int] = None,
        direction: Optional[Direction] = None,
        predicate: Optional[Callable[[CaptureRecord], bool]] = None,
    ) -> Iterator[CaptureRecord]:
        for rec in self.records:
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            if direction is not None and rec.direction is not direction:
                continue
            if predicate is not None and not predicate(rec):
                continue
            yield rec

    def total_bytes(self, **kwargs) -> int:
        """Sum of L2 frame sizes over ``select(**kwargs)``.

        Counting TX only avoids double-counting frames seen at both ends
        of a link.
        """
        kwargs.setdefault("direction", Direction.TX)
        return sum(rec.wire_size for rec in self.select(**kwargs))

    def count(self, **kwargs) -> int:
        kwargs.setdefault("direction", Direction.TX)
        return sum(1 for _ in self.select(**kwargs))

    def clear(self) -> None:
        self.records.clear()
