"""BGP RIBs and the decision process.

Adj-RIB-In per peer, a Loc-RIB of chosen paths per prefix, and the
decision rule the datacenter profile reduces to: locally originated
routes win; otherwise shortest AS path; with multipath-relax all
equal-length paths are kept for ECMP and the tie-break (lowest neighbor
address) orders the set deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.stack.addresses import Ipv4Address, Ipv4Network
from repro.bgp.messages import PathAttributes


@dataclass(frozen=True)
class RibEntry:
    """One candidate path for a prefix.  ``peer_ip`` is None for locally
    originated networks."""

    prefix: Ipv4Network
    attributes: PathAttributes
    peer_ip: Optional[Ipv4Address]

    @property
    def is_local(self) -> bool:
        return self.peer_ip is None

    @property
    def path_len(self) -> int:
        return len(self.attributes.as_path)


class AdjRibIn:
    """Routes received from each peer, keyed (peer_ip, prefix).

    Stale marking (RFC 4724 helper mode): when a peer's session dies
    under graceful restart, its routes are *marked* rather than purged —
    they keep feeding the decision process while the restart timer runs.
    A fresh advertisement clears the mark per prefix; :meth:`sweep_stale`
    purges whatever was never refreshed (timer expiry, or the
    End-of-RIB marking the refresh complete).
    """

    def __init__(self) -> None:
        self._by_peer: dict[Ipv4Address, dict[Ipv4Network, PathAttributes]] = {}
        self._stale: dict[Ipv4Address, set[Ipv4Network]] = {}

    def set(self, peer: Ipv4Address, prefix: Ipv4Network, attrs: PathAttributes) -> None:
        self._by_peer.setdefault(peer, {})[prefix] = attrs
        stale = self._stale.get(peer)
        if stale is not None:
            stale.discard(prefix)

    def mark_peer_stale(self, peer: Ipv4Address) -> int:
        """Mark every route from ``peer`` stale; returns how many."""
        routes = self._by_peer.get(peer)
        if not routes:
            return 0
        self._stale[peer] = set(routes)
        return len(routes)

    def stale_prefixes(self, peer: Ipv4Address) -> list[Ipv4Network]:
        return sorted(self._stale.get(peer, ()))

    def sweep_stale(self, peer: Ipv4Address) -> list[Ipv4Network]:
        """Purge the peer's still-stale routes; returns the affected
        prefixes (each needs a fresh decision)."""
        stale = self._stale.pop(peer, None)
        if not stale:
            return []
        routes = self._by_peer.get(peer, {})
        swept = []
        for prefix in stale:
            if prefix in routes:
                del routes[prefix]
                swept.append(prefix)
        if not routes:
            self._by_peer.pop(peer, None)
        return swept

    def remove(self, peer: Ipv4Address, prefix: Ipv4Network) -> bool:
        routes = self._by_peer.get(peer)
        if routes and prefix in routes:
            del routes[prefix]
            return True
        return False

    def remove_peer(self, peer: Ipv4Address) -> list[Ipv4Network]:
        """Purge everything from a dead peer; returns affected prefixes."""
        self._stale.pop(peer, None)
        routes = self._by_peer.pop(peer, None)
        return list(routes) if routes else []

    def candidates(self, prefix: Ipv4Network) -> list[RibEntry]:
        found = []
        for peer, routes in self._by_peer.items():
            attrs = routes.get(prefix)
            if attrs is not None:
                found.append(RibEntry(prefix, attrs, peer))
        return found

    def prefixes_from(self, peer: Ipv4Address) -> list[Ipv4Network]:
        return list(self._by_peer.get(peer, {}))

    def entry_count(self) -> int:
        return sum(len(routes) for routes in self._by_peer.values())


class LocRib:
    """Chosen (possibly multipath) entries per prefix."""

    def __init__(self, multipath: bool = True) -> None:
        self.multipath = multipath
        self._chosen: dict[Ipv4Network, tuple[RibEntry, ...]] = {}

    @staticmethod
    def _sort_key(entry: RibEntry):
        # local first, then shortest path, then lowest neighbor address
        peer_value = entry.peer_ip.value if entry.peer_ip else -1
        return (0 if entry.is_local else 1, entry.path_len, peer_value)

    def decide(
        self, prefix: Ipv4Network, candidates: Iterable[RibEntry]
    ) -> tuple[RibEntry, ...]:
        """Run the decision process; store and return the chosen set."""
        ordered = sorted(candidates, key=self._sort_key)
        if not ordered:
            chosen: tuple[RibEntry, ...] = ()
        elif not self.multipath:
            chosen = (ordered[0],)
        else:
            best = ordered[0]
            chosen = tuple(
                e
                for e in ordered
                if e.is_local == best.is_local and e.path_len == best.path_len
            )
        if chosen:
            self._chosen[prefix] = chosen
        else:
            self._chosen.pop(prefix, None)
        return chosen

    def chosen(self, prefix: Ipv4Network) -> tuple[RibEntry, ...]:
        return self._chosen.get(prefix, ())

    def best(self, prefix: Ipv4Network) -> Optional[RibEntry]:
        chosen = self._chosen.get(prefix)
        return chosen[0] if chosen else None

    def prefixes(self) -> list[Ipv4Network]:
        return sorted(self._chosen)

    def __len__(self) -> int:
        return len(self._chosen)
