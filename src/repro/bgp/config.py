"""BGP configuration (the paper's Listing 1, as data).

Defaults follow FRR's ``frr defaults datacenter`` profile with the
timers the paper configures: keepalive 1 s, hold 3 s, MRAI 0.  The
ASN plan follows RFC 7938 section 5.2 / the paper's Listing 1: one ASN
for the top-spine layer, one per PoD for its aggregations, one per ToR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.sim.units import MILLISECOND, SECOND
from repro.stack.addresses import Ipv4Address, Ipv4Network
from repro.bfd.session import BfdTimers
from repro.liveness import LivenessConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Topology


@dataclass(frozen=True)
class BgpTimers:
    """Paper section VI.F: `timers bgp 1 3`."""

    keepalive_us: int = 1 * SECOND
    hold_us: int = 3 * SECOND
    connect_retry_us: int = 1 * SECOND
    mrai_us: int = 0  # RFC 7938 recommends MRAI 0 in the DC
    # update-processing latency per received UPDATE (bgpd work: parse,
    # decision process, FIB download).  Sub-millisecond on the paper's VMs.
    processing_us: int = 500
    # timing noise 0..1 (see MtpTimers.jitter): keepalive periods scale
    # in [(1-jitter), 1] x interval, processing in [1, 1+jitter]
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.keepalive_us <= 0 or self.hold_us <= 0:
            raise ValueError("keepalive/hold must be positive")
        if self.hold_us < self.keepalive_us:
            raise ValueError("hold timer shorter than keepalive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


@dataclass(frozen=True)
class BgpNeighborConfig:
    peer_ip: Ipv4Address
    peer_asn: int
    interface: str
    bfd: bool = False


@dataclass
class BgpConfig:
    asn: int
    router_id: Ipv4Address
    neighbors: list[BgpNeighborConfig] = field(default_factory=list)
    networks: list[Ipv4Network] = field(default_factory=list)
    multipath: bool = True  # `bestpath as-path multipath-relax`
    # RFC 4724 graceful restart: helpers retain a dead peer's paths as
    # stale under the restart timer (flushed on expiry or a fresh
    # End-of-RIB); a restarting speaker keeps its FIB and re-learns.
    graceful_restart: bool = False
    gr_restart_time_us: int = 10 * SECOND
    timers: BgpTimers = field(default_factory=BgpTimers)
    bfd_timers: BfdTimers = field(default_factory=BfdTimers)
    # adaptive liveness layer (DESIGN §14): session flap damping plus,
    # with BFD, adaptive detection and gray-failure verdicts.  None =
    # plain RFC 7938 behavior.
    liveness: Optional[LivenessConfig] = None

    def config_lines(self) -> list[str]:
        """Render the FRR-style configuration (Listing 1) — the artifact
        counted in the paper's configuration-cost comparison."""
        lines = [
            "frr defaults datacenter",
            f"router bgp {self.asn}",
            f" bgp router-id {self.router_id}",
            f" timers bgp {self.timers.keepalive_us // SECOND}"
            f" {self.timers.hold_us // SECOND}",
        ]
        if self.multipath:
            lines.append(" bgp bestpath as-path multipath-relax")
        if self.graceful_restart:
            lines.append(" bgp graceful-restart")
            lines.append(
                f" bgp graceful-restart restart-time"
                f" {self.gr_restart_time_us // SECOND}")
        for nbr in self.neighbors:
            lines.append(f" neighbor {nbr.peer_ip} remote-as {nbr.peer_asn}")
            if nbr.bfd:
                lines.append(f" neighbor {nbr.peer_ip} bfd")
        for net in self.networks:
            lines.append(f" network {net}")
        if any(nbr.bfd for nbr in self.neighbors):
            lines.append("bfd")
            lines.append(" profile lowerIntervals")
            lines.append(
                f"  transmit-interval {self.bfd_timers.tx_interval_us // MILLISECOND}"
            )
            for nbr in self.neighbors:
                if nbr.bfd:
                    lines.append(f" peer {nbr.peer_ip}")
                    lines.append("  profile lowerIntervals")
        return lines


# ----------------------------------------------------------------------
# RFC 7938 ASN plan for a built fabric
# ----------------------------------------------------------------------
SUPER_ASN = 64498
TOP_ASN_BASE = 64500      # + zone index
AGG_ASN_BASE = 64513      # + global pod index (matches Listing 1's 64513..)
TOR_ASN_BASE = 65001      # + global ToR index


def rfc7938_asn_plan(topo: "Topology") -> dict[str, int]:
    """node name -> ASN, per the RFC 7938 tiered plan.

    The RFC's shared per-pod aggregation ASN assumes siblings never
    transit traffic for each other (in a strict Clos every pod device
    has identical up/down adjacencies).  Recursively-defined fabrics
    break that assumption: cross-cell routes must re-enter a sibling
    proxy through the cell's ToRs, which AS-path loop prevention would
    silently discard under a shared ASN.  When the fabric has no tier
    above the aggregation role (the recursive-DCN signature), every
    aggregation device therefore gets its own ASN instead.
    """
    plan: dict[str, int] = {}
    for name in topo.all_supers():
        plan[name] = SUPER_ASN
    for z, zone_tops in enumerate(topo.tops):
        for plane in zone_tops:
            for name in plane:
                plan[name] = TOP_ASN_BASE + z
    shared_pod_asn = bool(topo.all_tops() or topo.all_supers())
    pod_index = 0
    for zone_aggs in topo.aggs:
        for pod in zone_aggs:
            for name in pod:
                plan[name] = AGG_ASN_BASE + pod_index
                if not shared_pod_asn:
                    pod_index += 1
            if shared_pod_asn:
                pod_index += 1
    for i, name in enumerate(topo.all_tors()):
        plan[name] = TOR_ASN_BASE + i
    return plan
