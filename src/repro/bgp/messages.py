"""BGP message types (RFC 4271).

``wire_size`` on every message is the length of its real RFC 4271
encoding (see :mod:`repro.bgp.encoding`), so a KEEPALIVE is 19 bytes and
rides in an 85-byte L2 frame — the number in the paper's Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.stack.addresses import Ipv4Address, Ipv4Network

BGP_PORT = 179
BGP_HEADER_BYTES = 19  # 16-byte marker + 2 length + 1 type

MSG_OPEN = 1
MSG_UPDATE = 2
MSG_NOTIFICATION = 3
MSG_KEEPALIVE = 4

ORIGIN_IGP = 0


def prefix_encoded_len(prefix: Ipv4Network) -> int:
    """NLRI encoding: 1 length byte + ceil(prefix_len/8) address bytes."""
    return 1 + (prefix.prefix_len + 7) // 8


class BgpMessage:
    """Base class; concrete messages below."""

    @property
    def wire_size(self) -> int:
        from repro.bgp.encoding import encode_message

        return len(encode_message(self))


@dataclass(frozen=True)
class BgpOpen(BgpMessage):
    asn: int
    hold_time_s: int
    router_id: Ipv4Address

    def __post_init__(self) -> None:
        if not 0 < self.asn < (1 << 32):
            raise ValueError(f"bad ASN {self.asn}")
        if not 0 <= self.hold_time_s <= 0xFFFF:
            raise ValueError(f"bad hold time {self.hold_time_s}")


@dataclass(frozen=True)
class PathAttributes:
    """The attribute set these experiments need: ORIGIN, AS_PATH (one
    AS_SEQUENCE segment of 4-octet ASNs), NEXT_HOP."""

    as_path: tuple[int, ...]
    next_hop: Ipv4Address
    origin: int = ORIGIN_IGP

    def prepend(self, asn: int, next_hop: Ipv4Address) -> "PathAttributes":
        return PathAttributes(
            as_path=(asn, *self.as_path), next_hop=next_hop, origin=self.origin
        )

    def contains_as(self, asn: int) -> bool:
        return asn in self.as_path

    def __str__(self) -> str:
        return f"path={list(self.as_path)} nh={self.next_hop}"


@dataclass(frozen=True)
class BgpUpdate(BgpMessage):
    withdrawn: tuple[Ipv4Network, ...] = ()
    nlri: tuple[Ipv4Network, ...] = ()
    attributes: PathAttributes | None = None

    def __post_init__(self) -> None:
        if self.nlri and self.attributes is None:
            raise ValueError("NLRI requires path attributes (RFC 4271 3.1)")
        if not self.nlri and not self.withdrawn \
                and self.attributes is not None:
            raise ValueError("path attributes without NLRI")

    @property
    def is_end_of_rib(self) -> bool:
        """A fully empty UPDATE is the RFC 4724 End-of-RIB marker."""
        return not self.nlri and not self.withdrawn


@dataclass(frozen=True)
class BgpKeepalive(BgpMessage):
    pass


@dataclass(frozen=True)
class BgpNotification(BgpMessage):
    error_code: int
    error_subcode: int = 0

    # common codes
    HOLD_TIMER_EXPIRED = 4
    CEASE = 6
