"""RFC 4271 wire encoding / decoding.

Real bytes, not size estimates: captures of our UPDATE cascades therefore
sum to overhead figures directly comparable with the paper's tshark
numbers.  The encoder assumes the capability set FRR negotiates on a
datacenter profile session: multiprotocol IPv4-unicast, route-refresh and
4-octet-AS — a 45-byte OPEN.
"""

from __future__ import annotations

import struct

from repro.stack.addresses import Ipv4Address, Ipv4Network
from repro.bgp.messages import (
    BGP_HEADER_BYTES,
    BgpKeepalive,
    BgpMessage,
    BgpNotification,
    BgpOpen,
    BgpUpdate,
    MSG_KEEPALIVE,
    MSG_NOTIFICATION,
    MSG_OPEN,
    MSG_UPDATE,
    PathAttributes,
)

_MARKER = b"\xff" * 16

# attribute flags / type codes
_FLAG_TRANSITIVE = 0x40
_ATTR_ORIGIN = 1
_ATTR_AS_PATH = 2
_ATTR_NEXT_HOP = 3
_SEG_AS_SEQUENCE = 2


# ----------------------------------------------------------------------
# prefixes
# ----------------------------------------------------------------------
def _encode_prefix(prefix: Ipv4Network) -> bytes:
    nbytes = (prefix.prefix_len + 7) // 8
    addr = struct.pack("!I", prefix.address.value)
    return bytes([prefix.prefix_len]) + addr[:nbytes]


def _decode_prefixes(blob: bytes) -> list[Ipv4Network]:
    prefixes = []
    i = 0
    while i < len(blob):
        plen = blob[i]
        nbytes = (plen + 7) // 8
        raw = blob[i + 1 : i + 1 + nbytes] + b"\x00" * (4 - nbytes)
        value = struct.unpack("!I", raw)[0]
        prefixes.append(Ipv4Network(Ipv4Address(value), plen))
        i += 1 + nbytes
    return prefixes


# ----------------------------------------------------------------------
# path attributes
# ----------------------------------------------------------------------
def _encode_attributes(attrs: PathAttributes) -> bytes:
    out = bytearray()
    # ORIGIN
    out += bytes([_FLAG_TRANSITIVE, _ATTR_ORIGIN, 1, attrs.origin])
    # AS_PATH: one AS_SEQUENCE of 4-octet ASNs (4-octet-AS capable session)
    path_value = bytes([_SEG_AS_SEQUENCE, len(attrs.as_path)])
    for asn in attrs.as_path:
        path_value += struct.pack("!I", asn)
    if not attrs.as_path:
        path_value = b""  # empty AS_PATH attribute (locally originated)
    out += bytes([_FLAG_TRANSITIVE, _ATTR_AS_PATH, len(path_value)]) + path_value
    # NEXT_HOP
    out += bytes([_FLAG_TRANSITIVE, _ATTR_NEXT_HOP, 4])
    out += struct.pack("!I", attrs.next_hop.value)
    return bytes(out)


def _decode_attributes(blob: bytes) -> PathAttributes:
    origin = 0
    as_path: tuple[int, ...] = ()
    next_hop = Ipv4Address(0)
    i = 0
    while i < len(blob):
        _flags, type_code, length = blob[i], blob[i + 1], blob[i + 2]
        value = blob[i + 3 : i + 3 + length]
        i += 3 + length
        if type_code == _ATTR_ORIGIN:
            origin = value[0]
        elif type_code == _ATTR_AS_PATH:
            if value:
                count = value[1]
                as_path = tuple(
                    struct.unpack("!I", value[2 + 4 * k : 6 + 4 * k])[0]
                    for k in range(count)
                )
        elif type_code == _ATTR_NEXT_HOP:
            next_hop = Ipv4Address(struct.unpack("!I", value)[0])
    return PathAttributes(as_path=as_path, next_hop=next_hop, origin=origin)


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
def _with_header(msg_type: int, body: bytes) -> bytes:
    length = BGP_HEADER_BYTES + len(body)
    return _MARKER + struct.pack("!HB", length, msg_type) + body


# FRR-style capability block: MP IPv4/unicast (6) + route-refresh (2) +
# 4-octet AS (6) wrapped in one optional parameter (2) = 16 bytes.
def _open_capabilities(asn: int) -> bytes:
    caps = bytearray()
    caps += bytes([1, 4]) + struct.pack("!HBB", 1, 0, 1)       # MP: AFI 1 SAFI 1
    caps += bytes([2, 0])                                       # route refresh
    caps += bytes([65, 4]) + struct.pack("!I", asn)             # 4-octet AS
    return bytes([2, len(caps)]) + bytes(caps)


def encode_message(msg: BgpMessage) -> bytes:
    if isinstance(msg, BgpOpen):
        caps = _open_capabilities(msg.asn)
        two_octet_asn = msg.asn if msg.asn < 65536 else 23456  # AS_TRANS
        body = struct.pack(
            "!BHHI", 4, two_octet_asn, msg.hold_time_s, msg.router_id.value
        ) + bytes([len(caps)]) + caps
        return _with_header(MSG_OPEN, body)
    if isinstance(msg, BgpUpdate):
        withdrawn = b"".join(_encode_prefix(p) for p in msg.withdrawn)
        attrs = _encode_attributes(msg.attributes) if msg.attributes else b""
        nlri = b"".join(_encode_prefix(p) for p in msg.nlri)
        body = (
            struct.pack("!H", len(withdrawn)) + withdrawn
            + struct.pack("!H", len(attrs)) + attrs
            + nlri
        )
        return _with_header(MSG_UPDATE, body)
    if isinstance(msg, BgpKeepalive):
        return _with_header(MSG_KEEPALIVE, b"")
    if isinstance(msg, BgpNotification):
        return _with_header(
            MSG_NOTIFICATION, bytes([msg.error_code, msg.error_subcode])
        )
    raise TypeError(f"unknown BGP message {msg!r}")


def decode_message(blob: bytes) -> BgpMessage:
    if len(blob) < BGP_HEADER_BYTES or blob[:16] != _MARKER:
        raise ValueError("bad BGP header")
    length, msg_type = struct.unpack("!HB", blob[16:19])
    if length != len(blob):
        raise ValueError(f"length field {length} != {len(blob)}")
    body = blob[19:]
    if msg_type == MSG_OPEN:
        version, asn2, hold, router_id = struct.unpack("!BHHI", body[:9])
        if version != 4:
            raise ValueError(f"BGP version {version}")
        asn = asn2
        # recover 4-octet ASN from the capability if present
        opt_len = body[9]
        opts = body[10 : 10 + opt_len]
        i = 0
        while i < len(opts):
            ptype, plen = opts[i], opts[i + 1]
            pval = opts[i + 2 : i + 2 + plen]
            if ptype == 2:  # capabilities
                j = 0
                while j < len(pval):
                    code, clen = pval[j], pval[j + 1]
                    if code == 65:
                        asn = struct.unpack("!I", pval[j + 2 : j + 6])[0]
                    j += 2 + clen
            i += 2 + plen
        return BgpOpen(asn=asn, hold_time_s=hold, router_id=Ipv4Address(router_id))
    if msg_type == MSG_UPDATE:
        wlen = struct.unpack("!H", body[:2])[0]
        withdrawn = tuple(_decode_prefixes(body[2 : 2 + wlen]))
        alen_at = 2 + wlen
        alen = struct.unpack("!H", body[alen_at : alen_at + 2])[0]
        attrs_blob = body[alen_at + 2 : alen_at + 2 + alen]
        nlri = tuple(_decode_prefixes(body[alen_at + 2 + alen :]))
        attributes = _decode_attributes(attrs_blob) if alen else None
        return BgpUpdate(withdrawn=withdrawn, nlri=nlri, attributes=attributes)
    if msg_type == MSG_KEEPALIVE:
        return BgpKeepalive()
    if msg_type == MSG_NOTIFICATION:
        return BgpNotification(error_code=body[0], error_subcode=body[1])
    raise ValueError(f"unknown message type {msg_type}")
