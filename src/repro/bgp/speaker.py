"""The BGP speaker: session FSM, route propagation, FIB download.

One speaker per router.  Sessions ride the node's TCP service; the peer
with the lower interface address performs the active open (deterministic,
no collision handling needed).  Failure behaviour mirrors FRR's
datacenter profile:

* **fast fallover** — a local interface-down event tears the session down
  immediately (the instant-detection side of the paper's TC cases);
* **hold timer** — the remote side detects only after ``hold_us`` without
  keepalives (3 s here), unless
* **BFD** is enabled, in which case its Down notification (300 ms
  detection) tears the session down early.

Update propagation: per-prefix decision process; advertisements carry
only the best path, are suppressed toward peers whose ASN appears in the
AS_PATH (RFC 4271 9.1.3 sender-side loop check — what keeps Clos routing
valley-free under the RFC 7938 plan), and are batched per MRAI window
with shared-attribute packing, so capture byte counts behave like real
bgpd output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.sim.timers import PeriodicTimer, Timer
from repro.stack.addresses import Ipv4Address, Ipv4Network
from repro.net.interface import Interface
from repro.net.node import Node
from repro.iputil.stack import IpStack
from repro.iputil.tcp import TcpConnection, TcpService
from repro.routing.table import NextHop, Route
from repro.bfd.session import BfdManager, BfdSession
from repro.liveness import FlapDamper, NeighborMonitor
from repro.bgp.config import BgpConfig, BgpNeighborConfig
from repro.bgp.messages import (
    BGP_PORT,
    BgpKeepalive,
    BgpMessage,
    BgpNotification,
    BgpOpen,
    BgpUpdate,
    PathAttributes,
)
from repro.bgp.rib import AdjRibIn, LocRib, RibEntry

BGP_ROUTE_METRIC = 20  # `proto bgp metric 20`, as in the paper's Listing 3


class PeerState(Enum):
    IDLE = "idle"
    CONNECT = "connect"
    OPEN_SENT = "open-sent"
    OPEN_CONFIRM = "open-confirm"
    ESTABLISHED = "established"


@dataclass
class _PendingOut:
    """Adj-RIB-Out changes awaiting the next MRAI flush."""

    withdraw: set[Ipv4Network] = field(default_factory=set)
    advertise: dict[Ipv4Network, PathAttributes] = field(default_factory=dict)

    def clear(self) -> None:
        self.withdraw.clear()
        self.advertise.clear()

    def __bool__(self) -> bool:
        return bool(self.withdraw or self.advertise)


class BgpPeer:
    """Per-neighbor session state."""

    def __init__(self, speaker: "BgpSpeaker", cfg: BgpNeighborConfig) -> None:
        self.speaker = speaker
        self.cfg = cfg
        self.state = PeerState.IDLE
        self.conn: Optional[TcpConnection] = None
        self.local_ip = speaker.stack.address_on(cfg.interface)
        self.adj_out: dict[Ipv4Network, PathAttributes] = {}
        self.pending = _PendingOut()
        self.bfd_session: Optional[BfdSession] = None
        self.sessions_established = 0
        sim = speaker.node.sim
        timers = speaker.config.timers
        # session-level flap damping (DESIGN §14): each session loss adds
        # penalty; while suppressed, neither side of this peer re-forms
        # the session (active connects and passive accepts both gate)
        liveness = speaker.config.liveness
        self.damper: Optional[FlapDamper] = None
        if liveness is not None and liveness.damping:
            self.damper = FlapDamper(liveness, sim.now)
        self._suppress_flagged = False
        self.hold_timer = Timer(sim, timers.hold_us, self._on_hold_expired,
                                name=f"hold-{cfg.peer_ip}")
        self.keepalive_timer = PeriodicTimer(
            sim, timers.keepalive_us, self._send_keepalive,
            name=f"ka-{cfg.peer_ip}",
            jitter=timers.jitter, rng=speaker.rng)
        self.retry_timer = Timer(sim, timers.connect_retry_us,
                                 self._retry_connect,
                                 name=f"retry-{cfg.peer_ip}")
        self.mrai_timer: Optional[Timer] = None
        if timers.mrai_us > 0:
            self.mrai_timer = Timer(sim, timers.mrai_us, self.flush_pending,
                                    name=f"mrai-{cfg.peer_ip}")
        self._flush_scheduled = False
        # RFC 4724: while this runs, the peer's paths stay usable-but-
        # stale in the Adj-RIB-In.  Expiry (or a fresh End-of-RIB)
        # flushes whatever the peer never refreshed.
        self.stale_timer: Optional[Timer] = None
        if speaker.config.graceful_restart:
            self.stale_timer = Timer(
                sim, speaker.config.gr_restart_time_us,
                self._on_stale_expired, name=f"gr-stale-{cfg.peer_ip}")

    # ------------------------------------------------------------------
    @property
    def is_active_opener(self) -> bool:
        return self.local_ip.value < self.cfg.peer_ip.value

    @property
    def established(self) -> bool:
        return self.state is PeerState.ESTABLISHED

    def __repr__(self) -> str:
        return f"<BgpPeer {self.speaker.node.name}->{self.cfg.peer_ip} {self.state.value}>"

    # ------------------------------------------------------------------
    # session bring-up
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.is_active_opener:
            self._retry_connect()

    def _damping_gate(self) -> bool:
        """True while flap damping withholds session (re-)formation.
        Emits the edge-triggered ``suppress``/``reuse`` trace events."""
        if self.damper is None:
            return False
        now = self.speaker.node.sim.now
        if self.damper.suppressed(now):
            if not self._suppress_flagged:
                self._suppress_flagged = True
                eta_ms = self.damper.reuse_eta_us(now) // 1000
                self.speaker.node.log(
                    "bgp.damping",
                    f"{self.cfg.peer_ip} suppress (reuse in ~{eta_ms} ms)")
            return True
        if self._suppress_flagged:
            self._suppress_flagged = False
            self.speaker.node.log("bgp.damping", f"{self.cfg.peer_ip} reuse")
        return False

    def _retry_connect(self) -> None:
        if self.state is not PeerState.IDLE:
            return
        if self._damping_gate():
            # re-check once the penalty has decayed to the reuse level
            eta = self.damper.reuse_eta_us(self.speaker.node.sim.now)
            retry = self.speaker.config.timers.connect_retry_us
            self.retry_timer.start(max(retry, eta + 1000))
            return
        iface = self.speaker.node.interfaces[self.cfg.interface]
        if not iface.admin_up:
            self.retry_timer.start()
            return
        self.state = PeerState.CONNECT
        conn = self.speaker.tcp.connect(self.cfg.peer_ip, BGP_PORT,
                                        local=self.local_ip)
        self._bind_connection(conn)
        conn.on_established = self._on_tcp_established

    def accept_connection(self, conn: TcpConnection) -> None:
        """Incoming TCP connection from this neighbor."""
        if self._damping_gate():
            conn.abort()
            return
        if self.established:
            # A brand-new connection while the old session still looks
            # up means the neighbor's process bounced without us ever
            # noticing (it crashed silently, then reconnected).  The old
            # session must go *down* first — merging the fresh
            # connection into the established state would leave the
            # Adj-RIB-Out believing everything was already sent, so the
            # restarted peer would never be refreshed.
            self.down("remote-restart")
        elif self.conn is not None:
            self.conn.on_close = None
            self.conn.abort()
        self._bind_connection(conn)
        self.state = PeerState.CONNECT
        conn.on_established = self._on_tcp_established

    def _bind_connection(self, conn: TcpConnection) -> None:
        self.conn = conn
        conn.on_receive = self._on_message
        conn.on_close = self._on_tcp_closed

    def _on_tcp_established(self) -> None:
        self._send(BgpOpen(
            asn=self.speaker.config.asn,
            hold_time_s=self.speaker.config.timers.hold_us // 1_000_000,
            router_id=self.speaker.config.router_id,
        ))
        self.state = PeerState.OPEN_SENT
        self.hold_timer.start()

    def _on_tcp_closed(self, reason: str) -> None:
        self.down(f"tcp:{reason}")

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def _on_message(self, message) -> None:
        if not isinstance(message, BgpMessage):
            return
        self.hold_timer.restart()
        if isinstance(message, BgpOpen):
            self._on_open(message)
        elif isinstance(message, BgpKeepalive):
            self._on_keepalive()
        elif isinstance(message, BgpUpdate):
            self._on_update(message)
        elif isinstance(message, BgpNotification):
            self.down(f"notification:{message.error_code}")

    def _on_open(self, msg: BgpOpen) -> None:
        if msg.asn != self.cfg.peer_asn:
            self._send(BgpNotification(BgpNotification.CEASE))
            self.down("bad-peer-as")
            return
        self._send(BgpKeepalive())
        if self.state is PeerState.OPEN_SENT:
            self.state = PeerState.OPEN_CONFIRM

    def _on_keepalive(self) -> None:
        if self.state is PeerState.OPEN_CONFIRM:
            self._become_established()

    def _on_update(self, msg: BgpUpdate) -> None:
        if self.state is not PeerState.ESTABLISHED:
            return
        self.speaker.node.log("bgp.update.rx",
                              f"from {self.cfg.peer_ip}",
                              bytes=msg.wire_size)
        # model bgpd's processing latency before the decision process runs
        self.speaker.node.sim.schedule_after(
            self.speaker.processing_delay(), self.speaker.process_update,
            self, msg,
        )

    def _become_established(self) -> None:
        self.state = PeerState.ESTABLISHED
        self.sessions_established += 1
        self.keepalive_timer.start()
        self.hold_timer.restart()
        self.speaker.node.log("bgp.session", f"{self.cfg.peer_ip} up")
        self.speaker.on_peer_established(self)

    # ------------------------------------------------------------------
    # keepalive / hold
    # ------------------------------------------------------------------
    def _send_keepalive(self) -> None:
        if self.state in (PeerState.ESTABLISHED, PeerState.OPEN_CONFIRM):
            self._send(BgpKeepalive())

    def _on_hold_expired(self) -> None:
        self.speaker.node.log("bgp.holdtime", f"{self.cfg.peer_ip} expired")
        if self.conn is not None and self.established:
            self._send(BgpNotification(BgpNotification.HOLD_TIMER_EXPIRED))
        self.down("hold-timer")

    # Ethernet(14) + IPv4(20) + TCP-with-timestamps(32): what a capture
    # adds on top of the BGP message itself.  Logged byte counts are L2
    # frame sizes, as the paper's tshark-based accounting measures.
    _L2_ENCAP_BYTES = 66

    def _send(self, message: BgpMessage) -> None:
        if self.conn is None:
            return
        try:
            self.conn.send(message)
        except RuntimeError:
            return
        frame_bytes = message.wire_size + self._L2_ENCAP_BYTES
        if isinstance(message, BgpUpdate):
            self.speaker.node.log("bgp.update.tx",
                                  f"to {self.cfg.peer_ip}",
                                  bytes=frame_bytes)
        elif isinstance(message, BgpKeepalive):
            self.speaker.node.log("bgp.keepalive.tx",
                                  f"to {self.cfg.peer_ip}",
                                  bytes=frame_bytes)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def down(self, reason: str) -> None:
        """Session failure or teardown: purge and schedule reconnection."""
        was_established = self.established
        if self.conn is not None:
            self.conn.on_close = None
            self.conn.on_receive = None
            self.conn.abort()
            self.conn = None
        self.state = PeerState.IDLE
        self.hold_timer.stop()
        self.keepalive_timer.stop()
        if self.mrai_timer:
            self.mrai_timer.stop()
        self.pending.clear()
        self.adj_out.clear()
        if was_established:
            self.speaker.node.log("bgp.session",
                                  f"{self.cfg.peer_ip} down ({reason})")
            if self.damper is not None:
                self.damper.record_flap(self.speaker.node.sim.now)
            self.speaker.on_peer_down(self, reason)
        if self.is_active_opener:
            self.retry_timer.start()

    def crash(self) -> None:
        """Process death: the connection vanishes silently (no FIN, no
        RST — stray segments draw kernel RSTs once the listener is
        gone), every timer stops, and the speaker is *not* notified —
        there is nobody left to notify."""
        if self.conn is not None:
            self.conn.on_close = None
            self.conn.on_receive = None
            self.conn.on_established = None
            self.conn._teardown("crashed")
            self.conn = None
        self.state = PeerState.IDLE
        self.hold_timer.stop()
        self.keepalive_timer.stop()
        self.retry_timer.stop()
        if self.mrai_timer:
            self.mrai_timer.stop()
        if self.stale_timer is not None:
            self.stale_timer.stop()
        self.pending.clear()
        self.adj_out.clear()

    def arm_stale_timer(self) -> None:
        if self.stale_timer is not None:
            self.stale_timer.restart()

    def _on_stale_expired(self) -> None:
        self.speaker.flush_stale(self, "restart-timer")

    def send_eor(self) -> None:
        """End-of-RIB: an UPDATE with no withdrawals and no NLRI, sent
        once the initial table exchange has been queued."""
        if self.established:
            self._send(BgpUpdate())

    def clear_damping(self) -> None:
        """The underlying link was repaired (impairment cleared): drop
        the penalty accumulated against the fault so the session
        re-forms on the normal retry schedule."""
        if self.damper is None:
            return
        self.damper.reset()
        if self.bfd_session is not None and self.bfd_session.monitor is not None:
            self.bfd_session.monitor.clear_history()
        if self._suppress_flagged:
            self._suppress_flagged = False
            self.speaker.node.log("bgp.damping", f"{self.cfg.peer_ip} reuse")

    # ------------------------------------------------------------------
    # adj-rib-out
    # ------------------------------------------------------------------
    def queue_route(self, prefix: Ipv4Network, best: Optional[RibEntry]) -> None:
        """Queue the advertisement/withdrawal implied by the new best path."""
        if not self.established:
            return
        if best is None:
            out_attrs = None
        elif best.attributes.contains_as(self.cfg.peer_asn):
            # RFC 4271 9.1.3: do not advertise a route whose AS_PATH
            # contains the peer's AS
            out_attrs = None
        elif best.peer_ip == self.cfg.peer_ip:
            # no point reflecting the peer's own route back
            out_attrs = None
        else:
            out_attrs = best.attributes.prepend(self.speaker.config.asn,
                                                self.local_ip)
        currently = self.adj_out.get(prefix)
        if out_attrs == currently:
            return
        if out_attrs is None:
            if currently is not None:
                self.pending.advertise.pop(prefix, None)
                self.pending.withdraw.add(prefix)
                self._arm_flush()
            return
        self.pending.withdraw.discard(prefix)
        self.pending.advertise[prefix] = out_attrs
        self._arm_flush()

    def _arm_flush(self) -> None:
        timers = self.speaker.config.timers
        if timers.mrai_us > 0:
            if not self.mrai_timer.running:
                self.mrai_timer.start()
            return
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.speaker.node.sim.call_soon(self.flush_pending)

    def flush_pending(self) -> None:
        """Emit queued changes as packed UPDATE messages."""
        self._flush_scheduled = False
        if not self.pending or not self.established:
            self.pending.clear()
            return
        withdraw = tuple(sorted(self.pending.withdraw))
        groups: dict[PathAttributes, list[Ipv4Network]] = {}
        for prefix, attrs in self.pending.advertise.items():
            groups.setdefault(attrs, []).append(prefix)
        self.pending.clear()
        # apply to adj-rib-out
        for prefix in withdraw:
            self.adj_out.pop(prefix, None)
        for attrs, prefixes in groups.items():
            for prefix in prefixes:
                self.adj_out[prefix] = attrs
        # first message carries the withdrawals (plus one attr group)
        group_items = sorted(groups.items(),
                             key=lambda kv: str(sorted(kv[1])[0]))
        if withdraw and not group_items:
            self._send(BgpUpdate(withdrawn=withdraw))
        for i, (attrs, prefixes) in enumerate(group_items):
            self._send(BgpUpdate(
                withdrawn=withdraw if i == 0 else (),
                nlri=tuple(sorted(prefixes)),
                attributes=attrs,
            ))


class BgpSpeaker:
    """The per-router BGP process."""

    def __init__(
        self,
        node: Node,
        config: BgpConfig,
        stack: IpStack,
        tcp: TcpService,
        bfd: Optional[BfdManager] = None,
        rng=None,
    ) -> None:
        self.node = node
        self.config = config
        self.stack = stack
        self.tcp = tcp
        self.bfd = bfd
        if config.timers.jitter > 0.0 and rng is None:
            raise ValueError(f"{node.name}: timing jitter requires an rng")
        self.rng = rng
        self.rib_in = AdjRibIn()
        self.loc_rib = LocRib(multipath=config.multipath)
        self.crashed = False
        self.peers: dict[Ipv4Address, BgpPeer] = {}
        self._iface_to_peers: dict[str, list[BgpPeer]] = {}
        tcp.listen(BGP_PORT, self._on_accept)
        node.on_interface_down(self._on_iface_down)
        node.on_interface_up(self._on_iface_up)
        if config.liveness is not None:
            node.on_impairment_cleared(self._on_impairment_cleared)
        node.bgp = self
        for nbr in config.neighbors:
            peer = BgpPeer(self, nbr)
            self.peers[nbr.peer_ip] = peer
            self._iface_to_peers.setdefault(nbr.interface, []).append(peer)
            if nbr.bfd:
                if bfd is None:
                    raise ValueError(
                        f"{node.name}: neighbor {nbr.peer_ip} wants BFD but "
                        "no BfdManager supplied"
                    )
                monitor = None
                if config.liveness is not None:
                    monitor = NeighborMonitor(
                        config.liveness,
                        period_us=config.bfd_timers.tx_interval_us,
                        base_detection_us=config.bfd_timers.detection_time_us,
                        now_us=node.sim.now,
                    )
                peer.bfd_session = bfd.create_session(
                    nbr.peer_ip, peer.local_ip, config.bfd_timers,
                    on_state_change=self._on_bfd_state, monitor=monitor,
                )
        # local networks enter the Loc-RIB before any session starts
        for network in config.networks:
            self._decide(network)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin connecting to neighbors."""
        for peer in self.peers.values():
            peer.start()

    def processing_delay(self) -> int:
        """Per-update bgpd latency, scaled by the timing noise."""
        timers = self.config.timers
        if timers.jitter == 0.0:
            return timers.processing_us
        return max(1, int(self.rng.uniform(1.0, 1.0 + timers.jitter)
                          * timers.processing_us))

    def all_established(self) -> bool:
        return all(p.established for p in self.peers.values())

    # ------------------------------------------------------------------
    # TCP accept / interface / BFD events
    # ------------------------------------------------------------------
    def _on_accept(self, conn: TcpConnection) -> None:
        peer = self.peers.get(conn.remote)
        if peer is None:
            conn.abort()
            return
        peer.accept_connection(conn)

    def _on_iface_down(self, iface: Interface) -> None:
        if self.crashed:
            return
        # FRR fast fallover: directly connected eBGP drops instantly
        for peer in self._iface_to_peers.get(iface.name, ()):
            peer.down("interface-down")

    def _on_iface_up(self, iface: Interface) -> None:
        if self.crashed:
            return
        for peer in self._iface_to_peers.get(iface.name, ()):
            if peer.bfd_session is not None:
                peer.bfd_session.admin_reset()
            if peer.is_active_opener and peer.state is PeerState.IDLE:
                peer.retry_timer.start()

    def _on_bfd_state(self, session: BfdSession, is_up: bool) -> None:
        if is_up or self.crashed:
            return
        peer = self.peers.get(session.peer)
        if peer is not None and peer.established:
            self.node.log("bgp.bfd", f"{session.peer} BFD down -> session down")
            peer.down("bfd")

    def _on_impairment_cleared(self, iface: Interface) -> None:
        for peer in self._iface_to_peers.get(iface.name, ()):
            peer.clear_damping()

    def iface_link_degraded(self, iface_name: str) -> bool:
        """Gray-failure verdict for one next-hop interface: True when a
        BFD monitor on it measures loss at or above the degrade
        threshold.  ECMP depreferences (but does not withdraw) such
        next hops via the routing table's ``nexthop_bias``."""
        for peer in self._iface_to_peers.get(iface_name, ()):
            session = peer.bfd_session
            if (session is not None and session.monitor is not None
                    and session.monitor.degraded):
                return True
        return False

    # ------------------------------------------------------------------
    # route processing
    # ------------------------------------------------------------------
    def process_update(self, peer: BgpPeer, msg: BgpUpdate) -> None:
        if not peer.established:
            return
        if msg.is_end_of_rib:
            # End-of-RIB (RFC 4724 section 2): the peer's refresh is
            # complete — whatever is still stale was really withdrawn
            self.flush_stale(peer, "end-of-rib")
            return
        changed: set[Ipv4Network] = set()
        for prefix in msg.withdrawn:
            if self.rib_in.remove(peer.cfg.peer_ip, prefix):
                changed.add(prefix)
        if msg.nlri and msg.attributes is not None:
            if msg.attributes.contains_as(self.config.asn):
                pass  # receiver-side loop check: discard silently
            else:
                for prefix in msg.nlri:
                    self.rib_in.set(peer.cfg.peer_ip, prefix, msg.attributes)
                    changed.add(prefix)
        for prefix in sorted(changed):
            self._decide(prefix)

    def on_peer_established(self, peer: BgpPeer) -> None:
        """Initial table exchange toward the new peer."""
        for prefix in self.loc_rib.prefixes():
            peer.queue_route(prefix, self.loc_rib.best(prefix))
        if self.config.graceful_restart:
            # End-of-RIB follows the initial exchange (the queued
            # updates flush first — both ride call_soon, FIFO)
            self.node.sim.call_soon(peer.send_eor)

    def on_peer_down(self, peer: BgpPeer, reason: str) -> None:
        peer_ip = peer.cfg.peer_ip
        if self.config.graceful_restart and reason != "interface-down":
            # RFC 4724 helper mode: the session died but the peer's
            # forwarding plane may well still be running — keep its
            # paths as stale under the restart timer.  A local
            # interface-down is categorically different: the path
            # through that port is physically gone, so flush.
            if self.rib_in.mark_peer_stale(peer_ip):
                self.node.log("bgp.gr",
                              f"{peer_ip} down ({reason}): paths held stale")
                peer.arm_stale_timer()
                return
        if peer.stale_timer is not None:
            peer.stale_timer.stop()
        affected = self.rib_in.remove_peer(peer_ip)
        for prefix in sorted(affected):
            self._decide(prefix)

    def flush_stale(self, peer: BgpPeer, why: str) -> None:
        """Purge what the peer never refreshed (timer expiry or EOR)."""
        if peer.stale_timer is not None:
            peer.stale_timer.stop()
        swept = self.rib_in.sweep_stale(peer.cfg.peer_ip)
        if not swept:
            return
        self.node.log("bgp.gr",
                      f"{peer.cfg.peer_ip} {why}: flushed {len(swept)} stale")
        for prefix in sorted(swept):
            self._decide(prefix)

    # ------------------------------------------------------------------
    # agent lifecycle (crash / restart)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Agent death.  Sessions drop silently, the listener closes
        (stray segments now draw kernel RSTs), BFD goes dark.  The FIB
        and RIBs are left exactly as they were: the node keeps
        forwarding headless on frozen state until peers time out."""
        if self.crashed:
            return
        self.crashed = True
        for peer in self.peers.values():
            peer.crash()
        self.tcp.unlisten(BGP_PORT)
        if self.bfd is not None:
            for session in list(self.bfd.sessions.values()):
                session.stop()

    def restart(self, cold: bool) -> None:
        """Bring the agent back.  ``cold`` wipes protocol *and*
        forwarding state (power-cycle semantics); a graceful restart
        keeps the FIB and re-learns, marking everything stale until
        peers refresh it (RFC 4724 restarting side)."""
        if not self.crashed:
            return
        self.crashed = False
        self.tcp.listen(BGP_PORT, self._on_accept)
        if cold:
            self.stack.table.flush_proto("bgp")
            self.rib_in = AdjRibIn()
            self.loc_rib = LocRib(multipath=self.config.multipath)
            for network in self.config.networks:
                self._decide(network)
        else:
            for peer in self.peers.values():
                if self.rib_in.mark_peer_stale(peer.cfg.peer_ip):
                    peer.arm_stale_timer()
        if self.bfd is not None:
            for session in list(self.bfd.sessions.values()):
                session.admin_reset()
        for peer in self.peers.values():
            peer.start()

    # ------------------------------------------------------------------
    def _decide(self, prefix: Ipv4Network) -> None:
        """Run the decision process for one prefix; propagate changes."""
        candidates = self.rib_in.candidates(prefix)
        if prefix in self.config.networks:
            candidates.append(RibEntry(
                prefix,
                PathAttributes(as_path=(), next_hop=Ipv4Address(0)),
                peer_ip=None,
            ))
        old = self.loc_rib.chosen(prefix)
        chosen = self.loc_rib.decide(prefix, candidates)
        if chosen == old:
            return
        self._download_fib(prefix, chosen)
        best = chosen[0] if chosen else None
        for peer in self.peers.values():
            peer.queue_route(prefix, best)

    def summary(self) -> str:
        """`show bgp summary`-style rendering."""
        lines = [
            f"BGP router {self.node.name}, local AS {self.config.asn}, "
            f"router-id {self.config.router_id}",
            f"RIB entries: {len(self.loc_rib)} chosen, "
            f"{self.rib_in.entry_count()} received",
            f"{'Neighbor':<14} {'AS':>6} {'State':<12} {'PfxSnt':>6}",
        ]
        for peer in sorted(self.peers.values(),
                           key=lambda p: p.cfg.peer_ip.value):
            lines.append(
                f"{str(peer.cfg.peer_ip):<14} {peer.cfg.peer_asn:>6} "
                f"{peer.state.value:<12} {len(peer.adj_out):>6}"
            )
        return "\n".join(lines)

    def _download_fib(self, prefix: Ipv4Network, chosen: tuple[RibEntry, ...]) -> None:
        if not chosen:
            self.stack.table.withdraw(prefix)
            return
        if chosen[0].is_local:
            return  # connected route already covers it
        nexthops = tuple(
            NextHop(interface=self.peers[e.peer_ip].cfg.interface,
                    via=e.peer_ip)
            for e in chosen
        )
        self.stack.table.install(Route(
            prefix=prefix, nexthops=nexthops, proto="bgp",
            metric=BGP_ROUTE_METRIC,
        ))
