"""eBGP for data centers (RFC 7938 flavour, FRRouting-style defaults).

The baseline protocol suite of the paper: external BGP sessions on every
fabric link, per-tier ASN plan, multipath over equal-length AS paths
(ECMP), MinRouteAdvertisementInterval, hold/keepalive timers, optional
BFD-driven fast failure detection, and fast fallover on local interface
down.  Messages are encoded to real RFC 4271 wire bytes so capture-based
overhead accounting matches what tshark would report.
"""

from repro.bgp.messages import (
    BgpMessage,
    BgpOpen,
    BgpUpdate,
    BgpKeepalive,
    BgpNotification,
    PathAttributes,
    BGP_HEADER_BYTES,
    BGP_PORT,
)
from repro.bgp.encoding import encode_message, decode_message
from repro.bgp.config import BgpConfig, BgpNeighborConfig, BgpTimers, rfc7938_asn_plan
from repro.bgp.rib import AdjRibIn, LocRib, RibEntry
from repro.bgp.speaker import BgpSpeaker, PeerState

__all__ = [
    "BgpMessage",
    "BgpOpen",
    "BgpUpdate",
    "BgpKeepalive",
    "BgpNotification",
    "PathAttributes",
    "BGP_HEADER_BYTES",
    "BGP_PORT",
    "encode_message",
    "decode_message",
    "BgpConfig",
    "BgpNeighborConfig",
    "BgpTimers",
    "rfc7938_asn_plan",
    "AdjRibIn",
    "LocRib",
    "RibEntry",
    "BgpSpeaker",
    "PeerState",
]
