"""MR-MTP: the Multi-Root Meshed Tree Protocol (the paper's contribution).

A single layer-3 protocol that replaces BGP, ECMP, BFD, TCP, UDP and IP
inside a folded-Clos fabric:

* every ToR roots a tree, identified by a Virtual ID (VID) derived from
  its rack subnet's third byte;
* upper tiers join the trees and are assigned child VIDs by appending the
  parent's port number (``11`` → ``11.1`` → ``11.1.1``), meshing all the
  trees at the spines — multiple loop-free paths with zero configured
  addresses;
* IP packets are encapsulated with (source VID, destination VID) and
  forwarded down via VID-table entries or up via hashed default paths;
* failures are detected Quick-to-Detect (one missed 50 ms hello) and
  recovered by pruning VID-table entries — no route recomputation — while
  Slow-to-Accept (three consecutive hellos) dampens flapping;
* every MR-MTP frame doubles as a keepalive; explicit keepalives are a
  single byte.
"""

from repro.core.vid import Vid, derive_tor_root, ThirdByteDerivation, WideDerivation
from repro.core.messages import (
    MtpMessage,
    MtpKeepalive,
    MtpFullHello,
    MtpAdvertise,
    MtpJoin,
    MtpOffer,
    MtpAccept,
    MtpUpdateLost,
    MtpUnreachable,
    MtpUnreachableDefault,
    MtpRestored,
    MtpRestoredDefault,
    MtpData,
)
from repro.core.config import MtpGlobalConfig, MtpNodeConfig, MtpTimers
from repro.core.tables import VidTable
from repro.core.protocol import MtpNode

__all__ = [
    "Vid",
    "derive_tor_root",
    "ThirdByteDerivation",
    "WideDerivation",
    "MtpMessage",
    "MtpKeepalive",
    "MtpFullHello",
    "MtpAdvertise",
    "MtpJoin",
    "MtpOffer",
    "MtpAccept",
    "MtpUpdateLost",
    "MtpUnreachable",
    "MtpUnreachableDefault",
    "MtpRestored",
    "MtpRestoredDefault",
    "MtpData",
    "MtpGlobalConfig",
    "MtpNodeConfig",
    "MtpTimers",
    "VidTable",
    "MtpNode",
]
