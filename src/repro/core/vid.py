"""Virtual IDs.

A VID is a dotted sequence of integers.  The first component is the
*root* — the ToR VID derived from the rack subnet (section III.A of the
paper: the third byte of 192.168.**11**.0/24 gives VID ``11``).  Each
additional component is the port number a JOIN arrived on when the tree
grew one tier (section III.B), so a VID *is* a path from its root and two
VIDs of the same root never form a loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.stack.addresses import Ipv4Address, Ipv4Network


@total_ordering
@dataclass(frozen=True)
class Vid:
    """An immutable VID, e.g. ``Vid.parse("11.1.2")``."""

    parts: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("empty VID")
        for part in self.parts:
            if not 0 < part < 65536:
                raise ValueError(f"VID component out of range: {part}")

    @classmethod
    def parse(cls, text: str) -> "Vid":
        return cls(tuple(int(p) for p in text.split(".")))

    @classmethod
    def root_of(cls, root: int) -> "Vid":
        return cls((root,))

    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        return self.parts[0]

    @property
    def depth(self) -> int:
        """Tier distance from the root ToR: a root VID has depth 1."""
        return len(self.parts)

    @property
    def is_root(self) -> bool:
        return len(self.parts) == 1

    def extend(self, port_number: int) -> "Vid":
        """Child VID: append the port number the JOIN arrived on."""
        if not 0 < port_number < 65536:
            raise ValueError(f"bad port number {port_number}")
        return Vid((*self.parts, port_number))

    def parent(self) -> "Vid":
        if self.is_root:
            raise ValueError(f"root VID {self} has no parent")
        return Vid(self.parts[:-1])

    def is_extension_of(self, other: "Vid") -> bool:
        """True when ``self`` descends from ``other`` (proper or equal)."""
        return (
            len(self.parts) >= len(other.parts)
            and self.parts[: len(other.parts)] == other.parts
        )

    # ------------------------------------------------------------------
    @property
    def wire_size(self) -> int:
        """Encoded bytes: 1 count byte + per component 1 byte (or 3 for
        components above 254, escape-coded)."""
        return 1 + sum(1 if p < 255 else 3 for p in self.parts)

    def encode(self) -> bytes:
        out = bytearray([len(self.parts)])
        for part in self.parts:
            if part < 255:
                out.append(part)
            else:
                out += bytes([255, part >> 8, part & 0xFF])
        return bytes(out)

    @classmethod
    def decode(cls, blob: bytes, offset: int = 0) -> tuple["Vid", int]:
        """Decode one VID; returns (vid, next_offset)."""
        count = blob[offset]
        offset += 1
        parts = []
        for _ in range(count):
            value = blob[offset]
            offset += 1
            if value == 255:
                value = (blob[offset] << 8) | blob[offset + 1]
                offset += 2
            parts.append(value)
        return cls(tuple(parts)), offset

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return ".".join(str(p) for p in self.parts)

    def __lt__(self, other: "Vid") -> bool:
        return self.parts < other.parts


# ----------------------------------------------------------------------
# root derivation from IP (paper section III.A / D)
# ----------------------------------------------------------------------
class ThirdByteDerivation:
    """The paper's algorithm: the ToR VID is the third byte of the rack
    subnet / destination server address.  Valid for fabrics of < 256
    racks inside 192.168.0.0/16."""

    def root_for_subnet(self, subnet: Ipv4Network) -> int:
        return subnet.address.octets[2]

    def root_for_address(self, address: Ipv4Address) -> int:
        return address.octets[2]


class WideDerivation:
    """Extension for larger fabrics (the paper: "More than 1 byte (or
    other algorithms) can be used"): combines the second and third bytes
    so rack subnets beyond 192.168.255/24 still map to unique roots."""

    def root_for_subnet(self, subnet: Ipv4Network) -> int:
        o = subnet.address.octets
        if o[0] == 192 and o[1] == 168:
            return o[2]
        return (o[1] - 169 + 1) * 256 + o[2]

    def root_for_address(self, address: Ipv4Address) -> int:
        o = address.octets
        if o[0] == 192 and o[1] == 168:
            return o[2]
        return (o[1] - 169 + 1) * 256 + o[2]


def derive_tor_root(subnet: Ipv4Network, derivation=None) -> int:
    """ToR root VID for a rack subnet."""
    if derivation is None:
        derivation = ThirdByteDerivation()
    return derivation.root_for_subnet(subnet)
