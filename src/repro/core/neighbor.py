"""Per-port neighbor liveness: Quick-to-Detect, Slow-to-Accept.

The paper's section IV.B:

* **Quick-to-Detect** — a neighbor is assumed down after missing a
  *single* hello: the dead timer is 2x the 50 ms hello interval (100 ms),
  not the classical 3x.  Any received MR-MTP frame counts as a hello.
* **Slow-to-Accept** — after a failure, the neighbor is only accepted
  back after three *consecutive* hellos (gaps under the dead interval),
  which dampens a toggling interface the way BGP needs route-flap
  damping for.

With an attached :class:`~repro.liveness.NeighborMonitor` (the
``mtp-adaptive`` stack) two extra behaviors kick in: the dead interval
widens on a measured-lossy link (Quick-to-Detect keeps the 100 ms bound
only where the link is clean enough to deserve it), and a neighbor that
keeps flapping is held in quarantine past Slow-to-Accept until its
damping penalty decays to the reuse threshold.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.timers import Timer
from repro.core.config import MtpTimers
from repro.liveness import NeighborMonitor


class NeighborState(Enum):
    UNKNOWN = "unknown"      # never heard from
    UP = "up"
    DEAD = "dead"            # dead timer fired / local port down
    PROBATION = "probation"  # hearing hellos again, counting acceptance


class PortNeighbor:
    """Liveness and direction state for the device at the far end of one
    port."""

    def __init__(
        self,
        sim: Simulator,
        port: str,
        timers: MtpTimers,
        on_up: Callable[["PortNeighbor"], None],
        on_down: Callable[["PortNeighbor", str], None],
        monitor: Optional[NeighborMonitor] = None,
        on_damp: Optional[Callable[["PortNeighbor", str], None]] = None,
    ) -> None:
        self.sim = sim
        self.port = port
        self.timers = timers
        self.on_up = on_up
        self.on_down = on_down
        self.monitor = monitor
        self.on_damp = on_damp
        self.state = NeighborState.UNKNOWN
        self.tier: Optional[int] = None
        # the peer's restart generation from its last full hello.  A
        # changed generation on a port believed UP means the peer's
        # control plane bounced without ever missing a hello — the
        # adjacency is torn down (reason ``peer-restart``) so protocol
        # state re-forms against the fresh process.
        self.peer_gen: Optional[int] = None
        # graceful restart (DESIGN §15): the neighbor's dead timer fired
        # but its data plane is presumed still forwarding — tree state
        # learned through this port is retained until a stale-hold
        # timer expires or the neighbor re-ups.
        self.stale_held = False
        self._consecutive = 0
        self._last_rx: Optional[int] = None
        self.times_died = 0
        self._suppress_flagged = False
        self._dead_timer = Timer(sim, timers.dead_us, self._on_dead,
                                 name=f"mtp-dead-{port}")

    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        return self.state is NeighborState.UP

    def __repr__(self) -> str:
        return f"<PortNeighbor {self.port} {self.state.value} tier={self.tier}>"

    def _dead_interval_us(self) -> int:
        if self.monitor is None:
            return self.timers.dead_us
        return self.monitor.detection_interval_us(self.timers.dead_us)

    # ------------------------------------------------------------------
    def saw_frame(self, tier: Optional[int] = None,
                  gen: Optional[int] = None) -> None:
        """Any MR-MTP frame from the peer is a liveness proof."""
        now = self.sim.now
        if self.monitor is not None:
            self.monitor.observe(now)
        if tier is not None:
            self.tier = tier
        if gen is not None:
            if self.peer_gen is None:
                self.peer_gen = gen
            elif gen != self.peer_gen:
                self.peer_gen = gen
                if self.state is NeighborState.UP:
                    self._declare_down("peer-restart")
        if self.state is NeighborState.UNKNOWN:
            # initial discovery needs the tier (a full hello) before the
            # port direction is known
            if self.tier is not None:
                self._try_accept()
        elif self.state is NeighborState.UP:
            self._dead_timer.restart(self._dead_interval_us())
        else:
            # DEAD or PROBATION: Slow-to-Accept counting.  A gap larger
            # than the dead interval breaks the consecutive run.
            if (
                self._last_rx is not None
                and now - self._last_rx > self._dead_interval_us()
            ):
                self._consecutive = 0
            self._consecutive += 1
            self.state = NeighborState.PROBATION
            # probation decays back to DEAD when the hellos stop again
            self._dead_timer.restart(self._dead_interval_us())
            if self._consecutive >= self.timers.accept_hellos and self.tier is not None:
                self._try_accept()
        self._last_rx = now

    def _try_accept(self) -> None:
        """Slow-to-Accept is satisfied; damping may still withhold."""
        if self.monitor is not None and self.monitor.suppressed(self.sim.now):
            if not self._suppress_flagged and self.on_damp is not None:
                self._suppress_flagged = True
                self.on_damp(self, "suppress")
            return
        if self._suppress_flagged:
            self._suppress_flagged = False
            if self.on_damp is not None:
                self.on_damp(self, "reuse")
        self._accept()

    def _accept(self) -> None:
        self.state = NeighborState.UP
        self.stale_held = False
        self._consecutive = 0
        self._dead_timer.restart(self._dead_interval_us())
        self.on_up(self)

    def _on_dead(self) -> None:
        if self.state is NeighborState.UP:
            self._declare_down("dead-timer")
        elif self.state is NeighborState.PROBATION:
            self.state = NeighborState.DEAD

    def local_port_down(self) -> None:
        """The local interface was administratively downed."""
        if self.state is NeighborState.UP:
            self._declare_down("local-port-down")
        elif self.state is not NeighborState.UNKNOWN:
            # a flap mid-probation restarts the Slow-to-Accept count
            self.state = NeighborState.DEAD
            self._consecutive = 0
            self._dead_timer.stop()

    def _declare_down(self, reason: str) -> None:
        self.state = NeighborState.DEAD
        self.times_died += 1
        self._consecutive = 0
        self._dead_timer.stop()
        if self.monitor is not None:
            self.monitor.interrupt()
            self.monitor.record_flap(self.sim.now)
        self.on_down(self, reason)

    def clear_damping(self) -> None:
        """The underlying link was repaired (impairment cleared): drop
        the accumulated penalty and measured loss so re-acceptance is
        governed by Slow-to-Accept alone, not a stale suppression."""
        if self.monitor is None:
            return
        was_suppressed = self._suppress_flagged
        self.monitor.clear_history()
        if was_suppressed:
            self._suppress_flagged = False
            if self.on_damp is not None:
                self.on_damp(self, "reuse")

    def stop(self) -> None:
        self._dead_timer.stop()
