"""MR-MTP configuration (the paper's Listing 2, as data).

The whole fabric is configured by one small document: each node's tier
and, for ToRs, the interface facing the server rack (so the ToR can read
its rack subnet and derive its VID).  ``render_json`` reproduces the
Listing 2 shape for the configuration-cost experiment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.sim.units import MILLISECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.topology import Topology


@dataclass(frozen=True)
class MtpTimers:
    """Paper section VI.F: hello 50 ms, dead 100 ms (Quick-to-Detect:
    a single missed hello), Slow-to-Accept after 3 consecutive hellos."""

    hello_us: int = 50 * MILLISECOND
    dead_us: int = 100 * MILLISECOND
    accept_hellos: int = 3
    # control-message retransmit interval (request-response reliability)
    retransmit_us: int = 100 * MILLISECOND
    # per-update processing latency (prune ports, no route recomputation —
    # cheaper than a BGP decision-process run)
    processing_us: int = 200
    # timing noise 0..1: hello periods scale uniformly in
    # [(1-jitter), 1] x interval and processing scales in [1, 1+jitter] —
    # the VM-scheduling noise of the paper's testbed, seeded per node
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.hello_us <= 0 or self.dead_us <= 0:
            raise ValueError("timers must be positive")
        if self.dead_us < self.hello_us:
            raise ValueError("dead timer shorter than hello interval")
        if self.accept_hellos < 1:
            raise ValueError("accept_hellos must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")


@dataclass(frozen=True)
class MtpNodeConfig:
    """Per-device configuration: tier, plus the rack port for ToRs."""

    name: str
    tier: int
    rack_interface: Optional[str] = None  # ToRs only

    def __post_init__(self) -> None:
        if self.tier < 1:
            raise ValueError("MTP runs on routers (tier >= 1)")
        if self.tier == 1 and self.rack_interface is None:
            raise ValueError(f"ToR {self.name} needs its rack interface")


@dataclass
class MtpGlobalConfig:
    """The single JSON document configuring every router in the DCN."""

    nodes: dict[str, MtpNodeConfig] = field(default_factory=dict)
    timers: MtpTimers = field(default_factory=MtpTimers)

    @classmethod
    def from_topology(cls, topo: "Topology",
                      timers: MtpTimers = MtpTimers()) -> "MtpGlobalConfig":
        config = cls(timers=timers)
        for name in topo.routers():
            node = topo.node(name)
            rack = topo.rack_port.get(name) if node.tier == 1 else None
            config.nodes[name] = MtpNodeConfig(name, node.tier, rack)
        return config

    def for_node(self, name: str) -> MtpNodeConfig:
        return self.nodes[name]

    # ------------------------------------------------------------------
    def render_json(self) -> str:
        """The Listing 2 document: leaves + rack ports + spine tiers."""
        leaves = sorted(n.name for n in self.nodes.values() if n.tier == 1)
        doc = {
            "topology": {
                "leaves": leaves,
                "leavesNetworkPortDict": {
                    n: self.nodes[n].rack_interface for n in leaves
                },
                "tiers": {
                    name: cfg.tier
                    for name, cfg in sorted(self.nodes.items())
                    if cfg.tier > 1
                },
            }
        }
        return json.dumps(doc, indent=1)

    def config_lines(self) -> list[str]:
        """Line count comparable with BGP's per-router configs: the JSON
        rendered line by line (it configures the *whole* fabric)."""
        return self.render_json().splitlines()
