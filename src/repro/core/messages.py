"""MR-MTP wire messages (ethertype 0x8850).

Sizes are what the paper's captures show: the explicit keepalive is a
single byte (type 0x06, Fig. 10); everything else is a type byte plus
compact VID encodings, an order of magnitude smaller than BGP UPDATEs.
Frames are addressed to ff:ff:ff:ff:ff:ff — on point-to-point DCN links
the peer is the only receiver, and broadcast removes the need for ARP
(paper section VII.F).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.stack.ipv4 import Ipv4Packet
from repro.core.vid import Vid

TYPE_ADVERTISE = 0x01
TYPE_JOIN = 0x02
TYPE_OFFER = 0x03
TYPE_ACCEPT = 0x04
TYPE_UPDATE_LOST = 0x05
TYPE_KEEPALIVE = 0x06  # the paper's one-byte hello, value 06
TYPE_FULL_HELLO = 0x07
TYPE_UNREACHABLE = 0x08
TYPE_RESTORED = 0x09
TYPE_DATA = 0x10
TYPE_UNREACHABLE_DEFAULT = 0x0A
TYPE_RESTORED_DEFAULT = 0x0B


class MtpMessage:
    """Base class for MR-MTP messages."""

    __slots__ = ()  # keep subclasses __dict__-free when they opt into slots

    type_code: ClassVar[int]

    @property
    def wire_size(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class MtpKeepalive(MtpMessage):
    """The 1-byte keepalive: just the type byte."""

    type_code: ClassVar[int] = TYPE_KEEPALIVE

    @property
    def wire_size(self) -> int:
        return 1


@dataclass(frozen=True, slots=True)
class MtpFullHello(MtpMessage):
    """Neighbor discovery hello carrying the sender's tier (so each end
    learns whether the port faces up or down the Clos) and its restart
    generation — a counter bumped on every agent restart, so a peer
    that never missed a hello still notices the control plane bounced
    (DESIGN §15)."""

    type_code: ClassVar[int] = TYPE_FULL_HELLO
    tier: int
    gen: int = 0

    @property
    def wire_size(self) -> int:
        return 3


@dataclass(frozen=True, slots=True)
class _VidListMessage(MtpMessage):
    vids: tuple[Vid, ...]

    def __post_init__(self) -> None:
        if not self.vids:
            raise ValueError(f"{type(self).__name__} with no VIDs")

    @property
    def wire_size(self) -> int:
        return 2 + sum(v.wire_size for v in self.vids)  # type + count + vids


@dataclass(frozen=True, slots=True)
class MtpAdvertise(_VidListMessage):
    """Sender's current VIDs, announced on upstream ports (tree growth)."""

    type_code: ClassVar[int] = TYPE_ADVERTISE


@dataclass(frozen=True, slots=True)
class MtpJoin(_VidListMessage):
    """Request to join the trees rooted at the listed (advertised) VIDs."""

    type_code: ClassVar[int] = TYPE_JOIN


@dataclass(frozen=True, slots=True)
class MtpOffer(_VidListMessage):
    """Child VIDs assigned to the joiner (parent VID + arrival port)."""

    type_code: ClassVar[int] = TYPE_OFFER


@dataclass(frozen=True, slots=True)
class MtpAccept(_VidListMessage):
    """Joiner's confirmation — the accept-acknowledge reliability step."""

    type_code: ClassVar[int] = TYPE_ACCEPT


@dataclass(frozen=True, slots=True)
class MtpUpdateLost(_VidListMessage):
    """Sent upstream: the listed VIDs (ours) were lost; prune children."""

    type_code: ClassVar[int] = TYPE_UPDATE_LOST


@dataclass(frozen=True, slots=True)
class _RootListMessage(MtpMessage):
    roots: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.roots:
            raise ValueError(f"{type(self).__name__} with no roots")

    @property
    def wire_size(self) -> int:
        return 2 + sum(1 if r < 255 else 3 for r in self.roots)


@dataclass(frozen=True, slots=True)
class MtpUnreachable(_RootListMessage):
    """Sent downstream: the listed ToR roots cannot be reached via the
    sender; receivers mark the arrival port unusable for those roots."""

    type_code: ClassVar[int] = TYPE_UNREACHABLE


@dataclass(frozen=True, slots=True)
class MtpRestored(_RootListMessage):
    """Sent downstream: the listed roots are reachable again."""

    type_code: ClassVar[int] = TYPE_RESTORED


@dataclass(frozen=True, slots=True)
class MtpUnreachableDefault(MtpMessage):
    """Sent downstream when the sender has lost its *default* upstream
    path entirely (e.g. every uplink dead — a double-failure scenario
    the paper's single-failure test cases never reach): the sender can
    now only serve the listed exception roots.  Receivers treat the
    arrival port as unusable for every other root.

    This message is an extension beyond the paper's protocol description
    (documented in DESIGN.md §5): without it, an agg that lost all its
    uplinks would keep silently blackholing hashed default-up traffic.
    """

    type_code: ClassVar[int] = TYPE_UNREACHABLE_DEFAULT
    except_roots: tuple[int, ...] = ()

    @property
    def wire_size(self) -> int:
        return 2 + sum(1 if r < 255 else 3 for r in self.except_roots)


@dataclass(frozen=True, slots=True)
class MtpRestoredDefault(MtpMessage):
    """Sent downstream when the sender's default upstream path is back."""

    type_code: ClassVar[int] = TYPE_RESTORED_DEFAULT

    @property
    def wire_size(self) -> int:
        return 1


@dataclass(frozen=True, slots=True)
class MtpData(MtpMessage):
    """An encapsulated IP packet: (src ToR VID, dst ToR VID) + payload
    (paper section III.D)."""

    type_code: ClassVar[int] = TYPE_DATA
    src_root: int
    dst_root: int
    packet: Ipv4Packet

    @property
    def header_size(self) -> int:
        root_bytes = sum(2 if r < 255 else 4 for r in (self.src_root, self.dst_root))
        return 1 + root_bytes

    @property
    def wire_size(self) -> int:
        return self.header_size + self.packet.wire_size
