"""The VID table (the paper's routing state) and up-port marks.

A node's VID table holds the VIDs it acquired, keyed by the port of
acquisition — exactly Listing 5's shape (``eth2: 37.1.1, 38.1.1``).  The
*marks* set records upstream ports a received UNREACHABLE update declared
unusable for specific roots — the "record that a certain port cannot be
used for traffic destined to VID 11" state of section VII.B.

Change accounting mirrors :class:`repro.routing.table.RoutingTable` so
the harness computes blast radius identically for both protocols.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.vid import Vid


class VidTable:
    """Acquired VIDs by port + unusable-root marks by port."""

    def __init__(self, name: str = "", sim=None) -> None:
        self.name = name
        self.sim = sim
        self._by_port: dict[str, set[Vid]] = {}
        self._marks: dict[str, set[int]] = {}
        # default marks: the port's upstream lost its own default path
        # and can only serve the exception roots (double-failure case)
        self._default_marks: dict[str, frozenset[int]] = {}
        self.change_count = 0
        self.last_change_time: Optional[int] = None

    # ------------------------------------------------------------------
    def _note_change(self) -> None:
        self.change_count += 1
        if self.sim is not None:
            self.last_change_time = self.sim.now

    # ------------------------------------------------------------------
    # acquired VIDs
    # ------------------------------------------------------------------
    def add(self, port: str, vid: Vid) -> bool:
        vids = self._by_port.setdefault(port, set())
        if vid in vids:
            return False
        vids.add(vid)
        self._note_change()
        return True

    def remove(self, port: str, vid: Vid) -> bool:
        vids = self._by_port.get(port)
        if vids and vid in vids:
            vids.remove(vid)
            if not vids:
                del self._by_port[port]
            self._note_change()
            return True
        return False

    def prune_port(self, port: str) -> list[Vid]:
        """Drop everything acquired on ``port`` (the port went down)."""
        vids = self._by_port.pop(port, None)
        if not vids:
            return []
        self._note_change()
        return sorted(vids)

    def entries(self) -> list[tuple[str, Vid]]:
        """Every (port, vid) pair currently held — the snapshot a
        graceful restart marks stale before the tree rebuilds."""
        return sorted((port, vid)
                      for port, vids in self._by_port.items()
                      for vid in vids)

    def clear(self) -> None:
        """Cold boot: wipe acquired VIDs, marks and default marks *in
        place* (identity survives; change counters stay monotonic)."""
        if not (self._by_port or self._marks or self._default_marks):
            return
        self._by_port.clear()
        self._marks.clear()
        self._default_marks.clear()
        self._note_change()

    def prune_extensions(self, port: str, parents: Iterable[Vid]) -> list[Vid]:
        """Drop VIDs on ``port`` that descend from any of ``parents``
        (an UPDATE_LOST from the downstream neighbor)."""
        vids = self._by_port.get(port)
        if not vids:
            return []
        parents = tuple(parents)
        doomed = sorted(
            v for v in vids if any(v.is_extension_of(p) for p in parents)
        )
        if not doomed:
            return []
        vids.difference_update(doomed)
        if not vids:
            del self._by_port[port]
        self._note_change()
        return doomed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def vids_on(self, port: str) -> set[Vid]:
        return set(self._by_port.get(port, ()))

    def all_vids(self) -> list[Vid]:
        return sorted(v for vids in self._by_port.values() for v in vids)

    def ports_for_root(self, root: int) -> list[str]:
        """Ports holding a VID of the given root — the down-forwarding
        choices for traffic destined to that ToR."""
        return sorted(
            port
            for port, vids in self._by_port.items()
            if any(v.root == root for v in vids)
        )

    def roots(self) -> set[int]:
        return {v.root for vids in self._by_port.values() for v in vids}

    def roots_on(self, port: str) -> set[int]:
        return {v.root for v in self._by_port.get(port, ())}

    def entry_count(self) -> int:
        return sum(len(vids) for vids in self._by_port.values())

    # ------------------------------------------------------------------
    # marks (unusable roots per upstream port)
    # ------------------------------------------------------------------
    def mark_unreachable(self, port: str, roots: Iterable[int]) -> list[int]:
        existing = self._marks.setdefault(port, set())
        added = sorted(set(roots) - existing)
        if added:
            existing.update(added)
            self._note_change()
        return added

    def clear_marks(self, port: str, roots: Optional[Iterable[int]] = None) -> list[int]:
        existing = self._marks.get(port)
        if not existing:
            return []
        cleared = sorted(existing if roots is None else existing & set(roots))
        if cleared:
            existing.difference_update(cleared)
            if not existing:
                del self._marks[port]
            self._note_change()
        return cleared

    def is_marked(self, port: str, root: int) -> bool:
        """Unusable for ``root``: explicitly marked, or default-marked
        with ``root`` not among the exceptions."""
        if root in self._marks.get(port, ()):
            return True
        exceptions = self._default_marks.get(port)
        return exceptions is not None and root not in exceptions

    def marks_on(self, port: str) -> set[int]:
        return set(self._marks.get(port, ()))

    # ------------------------------------------------------------------
    # default marks (the double-failure extension)
    # ------------------------------------------------------------------
    def set_default_mark(self, port: str, except_roots) -> bool:
        exceptions = frozenset(except_roots)
        if self._default_marks.get(port) == exceptions:
            return False
        self._default_marks[port] = exceptions
        self._note_change()
        return True

    def clear_default_mark(self, port: str) -> bool:
        if port in self._default_marks:
            del self._default_marks[port]
            self._note_change()
            return True
        return False

    def has_default_mark(self, port: str) -> bool:
        return port in self._default_marks

    def default_exceptions(self, port: str) -> Optional[frozenset[int]]:
        return self._default_marks.get(port)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Storage cost: ~1 byte per VID component + 2 per port entry,
        comparable with RoutingTable.memory_bytes."""
        total = 0
        for vids in self._by_port.values():
            total += sum(2 + len(v.parts) for v in vids)
        for marked in self._marks.values():
            total += 2 * len(marked)
        return total

    def render(self) -> str:
        """Listing 5 shape: one line per port with its VIDs."""
        lines = []
        for port in sorted(self._by_port):
            vids = ", ".join(str(v) for v in sorted(self._by_port[port]))
            lines.append(f"{port:<6s} {vids}")
        for port in sorted(self._marks):
            roots = ", ".join(str(r) for r in sorted(self._marks[port]))
            lines.append(f"{port:<6s} unreachable: {roots}")
        for port in sorted(self._default_marks):
            exceptions = ", ".join(str(r) for r in
                                   sorted(self._default_marks[port]))
            lines.append(f"{port:<6s} default-unreachable"
                         + (f" (except {exceptions})" if exceptions else ""))
        return "\n".join(lines)
