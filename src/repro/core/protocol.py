"""The MR-MTP node: meshed-tree construction, failure updates, data plane.

One :class:`MtpNode` runs per router.  Control flow (paper section III):

* ToRs derive their root VID from the rack subnet and ADVERTISE it on
  upstream ports;
* an upper-tier device receiving an ADVERTISE answers with a JOIN; the
  lower device OFFERs child VIDs (parent VID + arrival-port number); the
  joiner stores them in its VID table and ACCEPTs (request-response /
  accept-acknowledge reliability, with retransmission);
* devices holding VIDs advertise them further up, meshing every ToR's
  tree across the spines.

Failure flow (sections IV.B and VII.B):

* a port facing *down* dying prunes everything acquired on it; the lost
  VIDs travel *up* as UPDATE_LOST (parents prune derived entries) and
  roots that became wholly unreachable travel *down* as UNREACHABLE
  (receivers mark the arrival port unusable for those roots);
* receivers only prune/mark — "recomputing of routes is not required";
* recovery is the mirror image: re-acquired roots propagate RESTORED.

Data plane (section III.D): ToRs encapsulate IP packets with
(src root, dst root) derived from the destination address; transit nodes
forward down via VID-table ports when they hold the destination root,
otherwise up via a hashed choice among alive, unmarked upstream ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.units import SECOND
from repro.stack.addresses import BROADCAST_MAC
from repro.stack.ethernet import ETHERTYPE_MTP, EthernetFrame
from repro.stack.ipv4 import Ipv4Packet
from repro.routing.ecmp import FlowKey, ecmp_hash
from repro.net.interface import Interface
from repro.net.node import Node
from repro.core.config import MtpNodeConfig, MtpTimers
from repro.core.messages import (
    MtpAccept,
    MtpAdvertise,
    MtpData,
    MtpFullHello,
    MtpJoin,
    MtpKeepalive,
    MtpMessage,
    MtpOffer,
    MtpRestored,
    MtpRestoredDefault,
    MtpUnreachable,
    MtpUnreachableDefault,
    MtpUpdateLost,
)
from repro.core.neighbor import NeighborState, PortNeighbor
from repro.core.tables import VidTable
from repro.core.vid import ThirdByteDerivation, Vid
from repro.liveness import NeighborMonitor, resolve_liveness

# Keepalives carry no fields; one immutable instance serves every port of
# every router (flyweight — the steady state sends one per hello interval
# per port, which dominated allocations at 32-PoD scale).
_KEEPALIVE = MtpKeepalive()


@dataclass
class MtpCounters:
    data_sent: int = 0
    data_forwarded: int = 0
    data_delivered: int = 0
    data_dropped_no_path: int = 0
    updates_sent: int = 0
    updates_received: int = 0
    keepalives_sent: int = 0


class MtpNode:
    """MR-MTP protocol instance on one router."""

    def __init__(
        self,
        node: Node,
        config: MtpNodeConfig,
        timers: MtpTimers = MtpTimers(),
        derivation=None,
        stack=None,
        exclude_interfaces: Iterable[str] = (),
        salt: int = 0,
        rng=None,
        per_packet_spray: bool = False,
        liveness=None,
        graceful_restart: bool = False,
        stale_hold_us: Optional[int] = None,
    ) -> None:
        self.node = node
        self.sim = node.sim
        self.config = config
        self.timers = timers
        # Load-balancing ablation: flow hashing (the paper's design, and
        # ECMP's) vs per-packet round-robin spraying.  Spraying smooths
        # load but reorders flows — the trade-off the hash avoids.
        self.per_packet_spray = per_packet_spray
        self._spray_counter = 0
        # adaptive liveness layer (DESIGN §14): None = the paper's fixed
        # Quick-to-Detect timers, byte-identical baseline behavior
        self.liveness = resolve_liveness(liveness)
        if timers.jitter > 0.0 and rng is None:
            raise ValueError(f"{node.name}: timing jitter requires an rng")
        self.rng = rng
        self.derivation = derivation if derivation is not None else ThirdByteDerivation()
        self.stack = stack  # ToRs only: rack-side IP delivery
        self.salt = salt
        self.tier = config.tier
        self.table = VidTable(name=node.name, sim=node.sim)
        self.counters = MtpCounters()
        self.own_root: Optional[int] = None
        self.neighbors: dict[str, PortNeighbor] = {}
        self._excluded = set(exclude_interfaces)
        if config.rack_interface:
            self._excluded.add(config.rack_interface)
        # per-port transmit bookkeeping for keepalive suppression
        self._last_tx: dict[str, int] = {}
        # flyweight keepalive frames: frames are immutable and identical
        # per port, so the steady-state churn reuses one object per port
        # instead of allocating frame+message every hello interval
        self._keepalive_frames: dict[str, EthernetFrame] = {}
        self._hello_timers: dict[str, PeriodicTimer] = {}
        # reliability: outstanding requests awaiting a response
        self._pending_join: dict[str, set[Vid]] = {}
        self._pending_offer: dict[str, set[Vid]] = {}
        self._unjoined_adverts: dict[str, set[Vid]] = {}
        # roots we have announced as unreachable to downstream neighbors;
        # a RESTORED goes out when such a root comes back
        self._announced_lost: set[int] = set()
        # default-path state (double-failure extension): None = our
        # default upstream path works; a frozenset = we advertised
        # UNREACHABLE_DEFAULT with those exception roots.  Messaging is
        # gated until the node first has a working default path so
        # bring-up produces no spurious updates.
        self._advertised_default: Optional[frozenset[int]] = None
        self._default_active = False
        self._retx_timer = PeriodicTimer(
            self.sim, timers.retransmit_us, self._retransmit, name="mtp-retx"
        )
        # graceful restart (DESIGN §15).  Helper side: a neighbor whose
        # dead timer fired is presumed restarting — its tree state is
        # held stale (per-port timer) instead of pruned.  Restarting
        # side: the VID table survives the crash; entries are stale
        # until the rebuilt tree re-offers them, the remainder pruned
        # when the rebuild timer expires.
        self.graceful_restart = graceful_restart
        self.stale_hold_us = (stale_hold_us if stale_hold_us is not None
                              else 1 * SECOND)
        self.crashed = False
        # restart generation, carried in every full hello: peers that
        # never missed a hello still notice the control plane bounced
        # when the generation moves (wire byte, so modulo 256)
        self.restart_gen = 0
        # bumps on every neighbor-usability transition; forwarding-state
        # observers (the fluid workload, the invariant monitor) combine
        # it with the VID table's change_count, because graceful restart
        # changes what the data plane does without touching the table
        self.fib_gen = 0
        self._stale_hold_timers: dict[str, Timer] = {}
        self._gr_stale: set[tuple[str, Vid]] = set()
        self._gr_rebuild_timer: Optional[Timer] = None
        self._started = False
        node.register_handler(ETHERTYPE_MTP, self._on_frame)
        node.on_interface_down(self._on_iface_down)
        node.on_interface_up(self._on_iface_up)
        if self.liveness is not None:
            node.on_impairment_cleared(self._on_impairment_cleared)
        node.mtp = self
        if stack is not None:
            stack.intercept = self._intercept_ip

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Derive the ToR VID (tier 1) and begin hello transmission."""
        if self._started:
            return
        self._started = True
        if self.tier == 1:
            rack = self.node.interfaces[self.config.rack_interface]
            if rack.network is None:
                raise ValueError(
                    f"{self.node.name}: rack interface has no subnet; "
                    "cannot derive the ToR VID"
                )
            self.own_root = self.derivation.root_for_subnet(rack.network)
            self.node.log("mtp.vid", f"derived ToR VID {self.own_root}")
        for iface in self.node.interfaces.values():
            if iface.name in self._excluded or not iface.cabled:
                continue
            monitor = None
            if self.liveness is not None:
                # The arrival slot is hello_us, but keepalive suppression
                # lets a sender stay silent for one extra hello after any
                # frame — slack_periods=1 keeps those legal 2x-hello gaps
                # from reading as phantom loss.
                monitor = NeighborMonitor(
                    self.liveness, period_us=self.timers.hello_us,
                    base_detection_us=self.timers.dead_us,
                    now_us=self.sim.now, slack_periods=1,
                )
            self.neighbors[iface.name] = PortNeighbor(
                self.sim, iface.name, self.timers,
                on_up=self._on_neighbor_up, on_down=self._on_neighbor_down,
                monitor=monitor, on_damp=self._on_neighbor_damped,
            )
            timer = PeriodicTimer(
                self.sim, self.timers.hello_us,
                lambda port=iface.name: self._hello_tick(port),
                name=f"mtp-hello-{iface.name}",
                jitter=self.timers.jitter, rng=self.rng,
            )
            self._hello_timers[iface.name] = timer
            timer.start(immediate=True)
        self._retx_timer.start()

    def crash(self) -> None:
        """Agent death: every control timer stops, neighbor liveness
        stops, pending exchanges are forgotten.  The VID table is left
        untouched — the data plane keeps forwarding headless on the
        frozen state until peers time the node out."""
        if self.crashed:
            return
        self.crashed = True
        for timer in self._hello_timers.values():
            timer.stop()
        self._retx_timer.stop()
        for nbr in self.neighbors.values():
            nbr.stop()
        for timer in self._stale_hold_timers.values():
            timer.stop()
        if self._gr_rebuild_timer is not None:
            self._gr_rebuild_timer.stop()
        self._gr_stale.clear()
        self._pending_join.clear()
        self._pending_offer.clear()
        self._unjoined_adverts.clear()

    def restart(self, cold: bool) -> None:
        """Bring the agent back.  ``cold`` wipes the VID table in place
        (power-cycle semantics: the tree is rebuilt from scratch); a
        graceful restart keeps it, marking every entry stale until the
        neighbor re-hellos rebuild and confirm it — the remainder is
        pruned when the rebuild stale-hold expires."""
        if not self.crashed:
            return
        self.crashed = False
        if cold:
            self.table.clear()
            self._announced_lost.clear()
            self._advertised_default = None
            self._default_active = False
        else:
            self._gr_stale = set(self.table.entries())
            if self._gr_stale:
                self.node.log(
                    "mtp.gr",
                    f"restart: {len(self._gr_stale)} entries held stale")
                if self._gr_rebuild_timer is None:
                    self._gr_rebuild_timer = Timer(
                        self.sim, self.stale_hold_us,
                        self._on_gr_rebuild_expired, name="mtp-gr-rebuild")
                self._gr_rebuild_timer.restart(self.stale_hold_us)
        # fresh discovery on every port: neighbors and hello timers are
        # rebuilt by start() (Slow-to-Accept runs on the remote side).
        # The restart generation moves so peers that never missed a
        # hello still notice the bounce from the next full hello.
        self.restart_gen = (self.restart_gen + 1) & 0xFF
        self.fib_gen += 1
        prev = {port: (nbr.tier, nbr.up or nbr.stale_held, nbr.peer_gen)
                for port, nbr in self.neighbors.items()}
        self._last_tx.clear()
        self._started = False
        self.start()
        if not cold:
            # warm restart remembers which ports were carrying traffic:
            # the fresh (UNKNOWN) neighbors inherit the old tier and are
            # held stale so the data plane never loses its candidate
            # ports while hellos re-form the adjacency
            for port, (tier, usable, peer_gen) in prev.items():
                nbr = self.neighbors.get(port)
                if nbr is None or tier is None:
                    continue
                nbr.tier = tier
                nbr.peer_gen = peer_gen
                if usable:
                    nbr.stale_held = True
                    self._arm_stale_hold(port)
            # re-join every surviving entry straight away instead of
            # waiting for the neighbor to re-advertise: the lower tier
            # never lost its state, so its OFFER confirms ours within a
            # round trip (the retransmit timer covers a lost JOIN)
            rejoin: dict[str, set[Vid]] = {}
            for port, vid in self._gr_stale:
                parent = vid.parent() if not vid.is_root else vid
                rejoin.setdefault(port, set()).add(parent)
            for port in sorted(rejoin):
                if not self._port_usable(port):
                    continue
                parents = rejoin[port]
                self._pending_join.setdefault(port, set()).update(parents)
                self._send(port, MtpJoin(vids=tuple(sorted(parents))))

    def _on_gr_rebuild_expired(self) -> None:
        """Rebuild stale-hold expired: whatever the re-formed tree never
        confirmed was really lost while we were down."""
        stale, self._gr_stale = sorted(self._gr_stale), set()
        by_port: dict[str, list[Vid]] = {}
        for port, vid in stale:
            if self.table.remove(port, vid):
                by_port.setdefault(port, []).append(vid)
        if not by_port:
            return
        total = sum(len(v) for v in by_port.values())
        self.node.log("mtp.gr",
                      f"stale-hold: pruned {total} unconfirmed entries")
        for port in sorted(by_port):
            self._propagate_loss(by_port[port], port)

    def _processing_delay(self) -> int:
        """Per-update processing latency, scaled by the timing noise."""
        base = self.timers.processing_us
        if self.timers.jitter == 0.0:
            return base
        return max(1, int(self.rng.uniform(1.0, 1.0 + self.timers.jitter) * base))

    # ------------------------------------------------------------------
    # direction helpers
    # ------------------------------------------------------------------
    def _direction(self, port: str) -> Optional[str]:
        nbr = self.neighbors.get(port)
        if nbr is None or nbr.tier is None:
            return None
        if nbr.tier < self.tier:
            return "down"
        if nbr.tier > self.tier:
            return "up"
        return None  # same-tier links do not occur in a folded-Clos

    def _alive_ports(self, direction: str) -> list[str]:
        result = []
        for port, nbr in self.neighbors.items():
            if not (nbr.up or nbr.stale_held) or self._direction(port) != direction:
                continue
            iface = self.node.interfaces[port]
            if iface.admin_up and iface.cabled:
                result.append(port)
        return sorted(result)

    def up_ports(self) -> list[str]:
        return self._alive_ports("up")

    def down_ports(self) -> list[str]:
        return self._alive_ports("down")

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _send(self, port: str, message: MtpMessage) -> None:
        iface = self.node.interfaces[port]
        frame = EthernetFrame(
            dst=BROADCAST_MAC, src=iface.mac,
            ethertype=ETHERTYPE_MTP, payload=message,
        )
        if iface.send(frame):
            self._last_tx[port] = self.sim.now

    def _hello_tick(self, port: str) -> None:
        """Hello-interval tick: transmit only if nothing else served as a
        keepalive in the last interval (paper section IV.B)."""
        iface = self.node.interfaces[port]
        if not iface.admin_up:
            return
        last = self._last_tx.get(port)
        if last is not None and self.sim.now - last < self.timers.hello_us:
            return
        nbr = self.neighbors[port]
        if nbr.state is NeighborState.UP:
            self.counters.keepalives_sent += 1
            self.node.log("mtp.keepalive.tx", port, bytes=15)
            frame = self._keepalive_frames.get(port)
            if frame is None:
                frame = EthernetFrame(
                    dst=BROADCAST_MAC, src=iface.mac,
                    ethertype=ETHERTYPE_MTP, payload=_KEEPALIVE,
                )
                self._keepalive_frames[port] = frame
            if iface.send(frame):
                self._last_tx[port] = self.sim.now
        else:
            # discovery / re-acceptance needs the tier information
            self._send(port, MtpFullHello(tier=self.tier,
                                          gen=self.restart_gen))

    def _send_update(self, port: str, message: MtpMessage) -> None:
        self.counters.updates_sent += 1
        frame_bytes = 14 + message.wire_size
        self.node.log("mtp.update.tx", f"{type(message).__name__} on {port}",
                      bytes=frame_bytes)
        self._send(port, message)

    # ------------------------------------------------------------------
    # frame reception
    # ------------------------------------------------------------------
    def _on_frame(self, iface: Interface, frame: EthernetFrame) -> None:
        message = frame.payload
        if not isinstance(message, MtpMessage):
            return
        port = iface.name
        nbr = self.neighbors.get(port)
        if nbr is None:
            return  # excluded or unconfigured port
        if self.crashed:
            # headless data plane: the ASIC still switches on the frozen
            # table, but nobody is home for control traffic
            if isinstance(message, MtpData):
                self._on_data(port, message)
            return
        was_up = nbr.up
        if isinstance(message, MtpFullHello):
            nbr.saw_frame(message.tier, gen=message.gen)
        else:
            nbr.saw_frame()
        if not was_up and not nbr.up:
            # Slow-to-Accept still counting: process nothing but liveness.
            return
        if isinstance(message, (MtpKeepalive, MtpFullHello)):
            return
        if isinstance(message, MtpData):
            self._on_data(port, message)
            return
        if isinstance(message, MtpAdvertise):
            self._on_advertise(port, message)
        elif isinstance(message, MtpJoin):
            self._on_join(port, message)
        elif isinstance(message, MtpOffer):
            self._on_offer(port, message)
        elif isinstance(message, MtpAccept):
            self._on_accept(port, message)
        elif isinstance(message, (MtpUpdateLost, MtpUnreachable, MtpRestored,
                                  MtpUnreachableDefault, MtpRestoredDefault)):
            self.counters.updates_received += 1
            self.sim.schedule_after(
                self._processing_delay(), self._process_update, port, message
            )

    # ------------------------------------------------------------------
    # meshed-tree construction
    # ------------------------------------------------------------------
    def _my_vids(self) -> list[Vid]:
        if self.tier == 1:
            return [Vid.root_of(self.own_root)] if self.own_root else []
        return self.table.all_vids()

    def _advertise_on(self, port: str) -> None:
        vids = self._my_vids()
        if not vids:
            return
        self._unjoined_adverts[port] = set(vids)
        self.node.log("mtp.ctrl.tx", f"advertise {len(vids)} vids on {port}")
        self._send(port, MtpAdvertise(vids=tuple(vids)))

    def _advertise_up(self) -> None:
        for port in self.up_ports():
            self._advertise_on(port)

    def _on_advertise(self, port: str, msg: MtpAdvertise) -> None:
        if self._direction(port) != "down":
            return
        have = self.table.vids_on(port)
        have_parents = {v.parent() for v in have if not v.is_root}
        if self._gr_stale:
            # graceful-restart rebuild: a surviving entry must still be
            # re-joined so the fresh OFFER confirms it before the
            # stale-hold would prune it as unconfirmed
            have_parents -= {v.parent() for p, v in self._gr_stale
                             if p == port and not v.is_root}
        wanted = tuple(v for v in msg.vids if v not in have_parents)
        if not wanted:
            return
        pending = self._pending_join.setdefault(port, set())
        pending.update(wanted)
        self._send(port, MtpJoin(vids=wanted))

    def _on_join(self, port: str, msg: MtpJoin) -> None:
        if self._direction(port) != "up":
            return
        port_number = self.node.interfaces[port].port_number
        mine = set(self._my_vids())
        children = tuple(
            parent.extend(port_number) for parent in msg.vids if parent in mine
        )
        if not children:
            return
        unjoined = self._unjoined_adverts.get(port)
        if unjoined:
            unjoined.difference_update(msg.vids)
        self._pending_offer.setdefault(port, set()).update(children)
        self._send(port, MtpOffer(vids=children))

    def _on_offer(self, port: str, msg: MtpOffer) -> None:
        if self._direction(port) != "down":
            return
        pending = self._pending_join.get(port, set())
        added: list[Vid] = []
        confirmed = 0
        for child in msg.vids:
            parent = child.parent() if not child.is_root else child
            pending.discard(parent)
            key = (port, child)
            if key in self._gr_stale:
                # graceful-restart rebuild: the re-formed tree confirms
                # an entry that survived the crash
                self._gr_stale.discard(key)
                confirmed += 1
            if self.table.add(port, child):
                added.append(child)
        self._send(port, MtpAccept(vids=msg.vids))
        if added:
            self.node.log("mtp.vid", f"acquired {[str(v) for v in added]} on {port}")
        if confirmed and not self._gr_stale and self._gr_rebuild_timer is not None:
            self._gr_rebuild_timer.stop()
            self.node.log("mtp.gr", "rebuild complete: every entry confirmed")
        if added or confirmed:
            self._after_acquisition(added)

    def _on_accept(self, port: str, msg: MtpAccept) -> None:
        pending = self._pending_offer.get(port)
        if pending:
            pending.difference_update(msg.vids)

    def _after_acquisition(self, added: list[Vid]) -> None:
        """New VIDs: advertise upward; roots we had declared lost and can
        now serve again flow down as RESTORED."""
        self._advertise_up()
        regained = tuple(
            r for r in sorted({v.root for v in added})
            if r in self._announced_lost and self._serves_root(r)
        )
        if regained:
            self._announced_lost.difference_update(regained)
            for port in self.down_ports():
                self._send_update(port, MtpRestored(roots=regained))
        self._recompute_default_state()

    def _retransmit(self) -> None:
        """Request-response reliability: re-issue unanswered messages."""
        for port, parents in self._pending_join.items():
            if parents and self._port_usable(port):
                self._send(port, MtpJoin(vids=tuple(sorted(parents))))
        for port, children in self._pending_offer.items():
            if children and self._port_usable(port):
                self._send(port, MtpOffer(vids=tuple(sorted(children))))
        for port, unjoined in self._unjoined_adverts.items():
            if unjoined and self._port_usable(port):
                self._send(port, MtpAdvertise(vids=tuple(sorted(unjoined))))

    def _port_usable(self, port: str) -> bool:
        nbr = self.neighbors.get(port)
        iface = self.node.interfaces[port]
        return (nbr is not None and (nbr.up or nbr.stale_held)
                and iface.admin_up)

    # ------------------------------------------------------------------
    # neighbor events
    # ------------------------------------------------------------------
    def _on_neighbor_up(self, nbr: PortNeighbor) -> None:
        self.node.log("mtp.neighbor", f"{nbr.port} up (tier {nbr.tier})")
        self.fib_gen += 1
        hold = self._stale_hold_timers.get(nbr.port)
        if hold is not None:
            hold.stop()
        if self._direction(nbr.port) == "up":
            self._advertise_on(nbr.port)
        elif self._direction(nbr.port) == "down":
            # a (re)appearing downstream neighbor missed our earlier
            # updates: replay the unreachability state it needs
            still_lost = tuple(sorted(
                r for r in self._announced_lost if self._lost_downward(r)))
            if still_lost:
                self._send_update(nbr.port, MtpUnreachable(roots=still_lost))
            if self._default_active and self._advertised_default is not None:
                self._send_update(nbr.port, MtpUnreachableDefault(
                    except_roots=tuple(sorted(self._advertised_default))))
        self._recompute_default_state()

    def _on_neighbor_down(self, nbr: PortNeighbor, reason: str) -> None:
        self.node.log("mtp.neighbor", f"{nbr.port} down ({reason})")
        self.fib_gen += 1
        if self.graceful_restart and reason in ("dead-timer", "peer-restart"):
            # GR helper: silence without a local port event is presumed
            # a restarting peer whose data plane still forwards (and a
            # moved restart generation is that restart made explicit) —
            # hold its tree state stale instead of pruning, and keep
            # the port in the forwarding candidate sets
            nbr.stale_held = True
            self.node.log(
                "mtp.gr",
                f"{nbr.port} held stale ({self.stale_hold_us // 1000} ms)")
            self._arm_stale_hold(nbr.port)
            return
        self._neighbor_lost(nbr.port)

    def _arm_stale_hold(self, port: str) -> None:
        timer = self._stale_hold_timers.get(port)
        if timer is None:
            timer = Timer(self.sim, self.stale_hold_us,
                          lambda p=port: self._on_stale_hold_expired(p),
                          name=f"mtp-gr-hold-{port}")
            self._stale_hold_timers[port] = timer
        timer.restart(self.stale_hold_us)

    def _on_stale_hold_expired(self, port: str) -> None:
        nbr = self.neighbors.get(port)
        if nbr is None or not nbr.stale_held or self.crashed:
            return
        nbr.stale_held = False
        self.fib_gen += 1
        self.node.log("mtp.gr", f"{port} stale-hold expired")
        self._neighbor_lost(port)

    def _neighbor_lost(self, port: str) -> None:
        """The neighbor is really gone: prune/mark and propagate."""
        self._pending_join.pop(port, None)
        self._pending_offer.pop(port, None)
        self._unjoined_adverts.pop(port, None)
        direction = self._direction(port)
        if direction == "down":
            pruned = self.table.prune_port(port)
            if pruned:
                self.sim.schedule_after(
                    self._processing_delay(), self._propagate_loss,
                    pruned, port,
                )
        elif direction == "up":
            # our VIDs are intact; the hashed up-forwarding simply skips
            # the dead port.  Marks on the dead port are moot.
            self.table.clear_marks(port)
            self.table.clear_default_mark(port)
        self._recompute_default_state()

    def _on_neighbor_damped(self, nbr: PortNeighbor, kind: str) -> None:
        """Flap damping quarantined the neighbor past Slow-to-Accept
        (``suppress``) or released it (``reuse``)."""
        if kind == "suppress":
            eta_ms = nbr.monitor.reuse_eta_us(self.sim.now) // 1000
            self.node.log("mtp.damping",
                          f"{nbr.port} suppress (reuse in ~{eta_ms} ms)")
        else:
            self.node.log("mtp.damping", f"{nbr.port} reuse")

    def _on_iface_down(self, iface: Interface) -> None:
        if self.crashed:
            return
        nbr = self.neighbors.get(iface.name)
        if nbr is not None:
            if nbr.stale_held:
                # a stale-held port going administratively down is a
                # real loss, not a restarting peer
                nbr.stale_held = False
                self._neighbor_lost(iface.name)
            nbr.local_port_down()

    def _on_iface_up(self, iface: Interface) -> None:
        # hellos resume on the next tick; Slow-to-Accept gates re-use
        pass

    def _on_impairment_cleared(self, iface: Interface) -> None:
        """The harness repaired the physical link: damping state built
        up against the impairment no longer reflects the link."""
        nbr = self.neighbors.get(iface.name)
        if nbr is not None:
            nbr.clear_damping()

    # ------------------------------------------------------------------
    # failure updates
    # ------------------------------------------------------------------
    def _serves_root(self, root: int) -> bool:
        if root == self.own_root:
            return True
        if self.table.ports_for_root(root):
            return True
        for port in self.up_ports():
            if not self.table.is_marked(port, root):
                return True
        return False

    # ------------------------------------------------------------------
    # default-path bookkeeping (double-failure extension; DESIGN.md §5)
    # ------------------------------------------------------------------
    def _serviceable_roots(self) -> Optional[frozenset[int]]:
        """Roots this node can currently forward toward.  None means
        "everything": at least one alive up port with a working default
        path.  Tops (no up ports by design) are None while they hold
        entries — their losses are announced explicitly per root."""
        if not any(self.neighbors.get(p) and self._direction(p) == "up"
                   for p in self.neighbors):
            return None  # top tier: no default-up concept
        reachable: set[int] = set(self.table.roots())
        if self.own_root is not None:
            reachable.add(self.own_root)
        for port in self.up_ports():
            exceptions = self.table.default_exceptions(port)
            if exceptions is None:
                return None  # a fully working default uplink
            reachable.update(exceptions - self.table.marks_on(port))
        return frozenset(reachable)

    def _recompute_default_state(self) -> None:
        serviceable = self._serviceable_roots()
        if serviceable is None:
            if not self._default_active:
                self._default_active = True
            if self._advertised_default is not None:
                self._advertised_default = None
                for port in self.down_ports():
                    self._send_update(port, MtpRestoredDefault())
            return
        if not self._default_active:
            return  # never had a default path yet: stay silent (bring-up)
        if serviceable != self._advertised_default:
            self._advertised_default = serviceable
            for port in self.down_ports():
                self._send_update(port, MtpUnreachableDefault(
                    except_roots=tuple(sorted(serviceable))))

    def _lost_downward(self, root: int) -> bool:
        """True when this node no longer has any VID-table (downward)
        path to ``root``.  The up-ports are deliberately not consulted:
        in a folded-Clos, the plane above this node reached ``root``
        only *through* this node, so an up-detour cannot recover it —
        which is why the paper's S1_1 announces VID 11 unreachable to
        ToR12 immediately (section VII.B)."""
        return root != self.own_root and not self.table.ports_for_root(root)

    def _propagate_loss(self, pruned: list[Vid], origin_port: str) -> None:
        """After pruning VIDs (port death or UPDATE_LOST): tell parents
        to prune derived entries; tell children about lost roots."""
        if self.crashed:
            return
        for port in self.up_ports():
            self._send_update(port, MtpUpdateLost(vids=tuple(pruned)))
        lost_roots = tuple(
            sorted({v.root for v in pruned if self._lost_downward(v.root)})
        )
        if lost_roots:
            self._announced_lost.update(lost_roots)
            for port in self.down_ports():
                if port == origin_port:
                    continue
                self._send_update(port, MtpUnreachable(roots=lost_roots))
        self._recompute_default_state()

    def _process_update(self, port: str, message: MtpMessage) -> None:
        if self.crashed:
            return
        if isinstance(message, MtpUpdateLost):
            if self._direction(port) != "down":
                return
            doomed = self.table.prune_extensions(port, message.vids)
            if doomed:
                self.node.log("mtp.table",
                              f"pruned {[str(v) for v in doomed]} ({port})")
                self._propagate_loss(doomed, port)
        elif isinstance(message, MtpUnreachable):
            if self._direction(port) != "up":
                return
            added = self.table.mark_unreachable(port, message.roots)
            if not added:
                return
            self.node.log("mtp.table", f"marked {added} unreachable via {port}")
            now_lost = tuple(r for r in added if not self._serves_root(r))
            if now_lost:
                self._announced_lost.update(now_lost)
                for down in self.down_ports():
                    self._send_update(down, MtpUnreachable(roots=now_lost))
        elif isinstance(message, MtpRestored):
            if self._direction(port) != "up":
                return
            cleared = self.table.clear_marks(port, message.roots)
            if not cleared:
                return
            self.node.log("mtp.table", f"cleared marks {cleared} via {port}")
            regained = tuple(
                r for r in cleared
                if r in self._announced_lost and self._serves_root(r)
            )
            if regained:
                self._announced_lost.difference_update(regained)
                for down in self.down_ports():
                    self._send_update(down, MtpRestored(roots=regained))
        elif isinstance(message, MtpUnreachableDefault):
            if self._direction(port) != "up":
                return
            if self.table.set_default_mark(port, message.except_roots):
                self.node.log(
                    "mtp.table",
                    f"default-unreachable via {port} "
                    f"(except {sorted(message.except_roots)})")
        elif isinstance(message, MtpRestoredDefault):
            if self._direction(port) != "up":
                return
            if self.table.clear_default_mark(port):
                self.node.log("mtp.table", f"default restored via {port}")
        self._recompute_default_state()

    def summary(self) -> str:
        """`show mtp`-style rendering of the node's protocol state."""
        role = {1: "ToR", 2: "aggregation", 3: "top spine"}.get(
            self.tier, f"tier-{self.tier}")
        lines = [f"MR-MTP router {self.node.name} ({role})"]
        if self.own_root is not None:
            lines.append(f"ToR VID: {self.own_root}")
        lines.append(
            f"neighbors: {sum(1 for n in self.neighbors.values() if n.up)} up"
            f" / {len(self.neighbors)}"
        )
        table = self.table.render()
        if table:
            lines.append("VID table:")
            lines += ["  " + line for line in table.splitlines()]
        c = self.counters
        lines.append(
            f"counters: data sent={c.data_sent} fwd={c.data_forwarded} "
            f"delivered={c.data_delivered} dropped={c.data_dropped_no_path}; "
            f"updates tx={c.updates_sent} rx={c.updates_received}; "
            f"keepalives={c.keepalives_sent}"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # data plane
    # ------------------------------------------------------------------
    def _intercept_ip(self, iface: Interface, packet: Ipv4Packet) -> bool:
        """ToR ingress hook: encapsulate rack traffic bound for another
        rack.  Returns True when MR-MTP consumed the packet."""
        if self.tier != 1 or self.own_root is None:
            return False
        dst_root = self.derivation.root_for_address(packet.dst)
        if dst_root == self.own_root:
            return False  # local rack: normal IP delivery
        message = MtpData(src_root=self.own_root, dst_root=dst_root,
                          packet=packet)
        self.counters.data_sent += 1
        self._forward_data(message, ingress_port=None)
        return True

    def _on_data(self, port: str, message: MtpData) -> None:
        if self.tier == 1 and message.dst_root == self.own_root:
            # destination ToR: de-encapsulate and deliver into the rack
            self.counters.data_delivered += 1
            if self.stack is not None:
                self.stack.forward_local(message.packet)
            return
        self.counters.data_forwarded += 1
        self._forward_data(message, ingress_port=port)

    def _flow_key(self, message: MtpData) -> FlowKey:
        packet = message.packet
        src_port = getattr(packet.payload, "src_port", 0)
        dst_port = getattr(packet.payload, "dst_port", 0)
        return FlowKey(src=packet.src.value, dst=packet.dst.value,
                       proto=packet.proto, src_port=src_port,
                       dst_port=dst_port)

    def decide_data_port(
        self, dst_root: int, flow: FlowKey, ingress_port: Optional[str] = None
    ) -> Optional[str]:
        """The forwarding decision of section III.D: down via a VID-table
        port when we hold the destination root, else up via a hashed
        choice among alive, unmarked upstream ports; None = no path."""
        candidates = self.candidate_data_ports(dst_root, ingress_port)
        if candidates:
            return candidates[self._balance(flow, len(candidates))]
        return None

    def candidate_data_ports(
        self, dst_root: int, ingress_port: Optional[str] = None
    ) -> list[str]:
        """The ordered candidate set :meth:`decide_data_port` hashes
        over right now — the flow-level evaluator's view of this node's
        forwarding state.  Same construction, minus the per-flow pick:
        index ``i`` here is what ``_balance(flow, len(...)) == i``
        selects."""
        down = [
            p for p in self.table.ports_for_root(dst_root)
            if self._port_usable(p) and p != ingress_port
        ]
        if down:
            return self._healthy_first(down)
        return self._healthy_first([
            p for p in self.up_ports()
            if not self.table.is_marked(p, dst_root) and p != ingress_port
        ])

    def _healthy_first(self, ports: list[str]) -> list[str]:
        """Gray-failure depreference: when some candidates are measured
        degraded and at least one is healthy, hash only over the healthy
        subset — the degraded port stays installed (no withdrawal, no
        churn) but stops receiving new flows.  With liveness off, or all
        candidates equally (un)healthy, the set is returned unchanged."""
        if self.liveness is None or len(ports) < 2:
            return ports
        healthy = [
            p for p in ports
            if not (self.neighbors[p].monitor is not None
                    and self.neighbors[p].monitor.degraded)
        ]
        if healthy and len(healthy) < len(ports):
            return healthy
        return ports

    def _balance(self, flow: FlowKey, n_choices: int) -> int:
        if self.per_packet_spray:
            self._spray_counter += 1
            return self._spray_counter % n_choices
        return ecmp_hash(flow, n_choices, salt=self.salt)

    def _forward_data(self, message: MtpData, ingress_port: Optional[str]) -> None:
        choice = self.decide_data_port(
            message.dst_root, self._flow_key(message), ingress_port
        )
        if choice is None:
            self.counters.data_dropped_no_path += 1
            self.node.log("mtp.drop", f"no path for root {message.dst_root}")
            return
        self._send(choice, message)
