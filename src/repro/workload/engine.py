"""Fluid workload evaluation against a deployed stack's forwarding state.

The engine replaces per-packet simulation with flow-level (fluid)
evaluation, FatPaths-style: each flow's path is resolved hop by hop
through the stack's *actual* forwarding state (the same candidate sets
and keyed ECMP hash the data plane and ``pathtrace`` use, via the
:meth:`~repro.stacks.Deployment.fluid_candidates` hook), link shares
are solved with the max-min waterfall in :mod:`repro.workload.fluid`,
and per-flow bytes are settled epoch by epoch.

**Epochs.** Simulated time is partitioned at route-change boundaries:
the compiler marks an epoch right after every scheduled fault action,
and a periodic sampler (``spec.epoch_ms``) marks one whenever the
forwarding tables changed since the last capture — so a fault's
pre-detection blackhole and the post-convergence reroute both reshape
the allocation mid-run.  Within an epoch, paths and rates are constant;
a flow delivers ``rate x overlap x survival`` bytes, where survival is
the product of ``(1 - expected loss)`` over its links' impairments.

**Attribution.** Every injected byte lands in exactly one bucket:
*delivered* (reached the sink), *dropped* (lost to link impairments
along a complete path), or *blackholed* (the flow's path dead-ends —
no candidate port, a downed egress, a cut cable, or a routing loop —
and the source keeps injecting at its max-min share on the partial
path).  ``offered == delivered + dropped + blackholed`` holds for every
epoch by construction; the Hypothesis property test holds the
accounting code to it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.sim.units import MILLISECOND, SECOND
from repro.stack.ipv4 import PROTO_UDP
from repro.harness.metrics import nearest_rank_percentile
from repro.harness.pathtrace import access_uplink
from repro.workload.fluid import FluidProblem, link_loads, max_min_rates
from repro.workload.spec import WorkloadSpec
from repro.workload.synth import FlowSet, synthesize

# a routing loop is a blackhole with extra steps: cap the walk like the
# per-packet tracer does (repro.harness.pathtrace.MAX_HOPS)
MAX_FLUID_HOPS = 32

_KEY_BYTES = 22  # FlowKey.pack(): 8 + 8 + 2 + 2 + 2, little-endian


@dataclass
class EpochRecord:
    """Byte conservation ledger for one solve epoch."""

    start_us: int
    end_us: int
    offered: float
    delivered: float
    dropped: float
    blackholed: float

    def conservation_error(self) -> float:
        """Relative byte-accounting error (0.0 is perfect)."""
        total = self.delivered + self.dropped + self.blackholed
        scale = max(self.offered, total, 1.0)
        return abs(self.offered - total) / scale


@dataclass
class WorkloadReport:
    """Aggregate verdict of one fluid evaluation (the cacheable row)."""

    workload: str
    matrix: str
    flows: int
    completed_flows: int
    blackholed_flows: int      # unfinished because their path dead-ended
    offered_bytes: int
    delivered_bytes: int
    dropped_bytes: int
    blackholed_bytes: int
    goodput_bps: int
    fct_p50_us: int            # -1 when no flow completed
    fct_p99_us: int
    fct_max_us: int
    max_blackhole_us: int      # widest per-flow blackhole window
    blackhole_flow_count: int  # flows that saw any blackhole time
    peak_link_utilization: float
    hot_links: list[list[Any]] = field(default_factory=list)
    epochs: int = 1
    epoch_records: list[list[int]] = field(default_factory=list)
    max_conservation_error: float = 0.0

    def to_payload(self) -> dict:
        return {
            "workload": self.workload,
            "matrix": self.matrix,
            "flows": self.flows,
            "completed_flows": self.completed_flows,
            "blackholed_flows": self.blackholed_flows,
            "offered_bytes": self.offered_bytes,
            "delivered_bytes": self.delivered_bytes,
            "dropped_bytes": self.dropped_bytes,
            "blackholed_bytes": self.blackholed_bytes,
            "goodput_bps": self.goodput_bps,
            "fct_p50_us": self.fct_p50_us,
            "fct_p99_us": self.fct_p99_us,
            "fct_max_us": self.fct_max_us,
            "max_blackhole_us": self.max_blackhole_us,
            "blackhole_flow_count": self.blackhole_flow_count,
            "peak_link_utilization": self.peak_link_utilization,
            "hot_links": [list(h) for h in self.hot_links],
            "epochs": self.epochs,
            "epoch_records": [list(r) for r in self.epoch_records],
            "max_conservation_error": self.max_conservation_error,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WorkloadReport":
        return cls(**{k: payload[k] for k in (
            "workload", "matrix", "flows", "completed_flows",
            "blackholed_flows", "offered_bytes", "delivered_bytes",
            "dropped_bytes", "blackholed_bytes", "goodput_bps",
            "fct_p50_us", "fct_p99_us", "fct_max_us", "max_blackhole_us",
            "blackhole_flow_count", "peak_link_utilization", "hot_links",
            "epochs", "epoch_records", "max_conservation_error")})


def _expected_loss(impairment) -> float:
    """Steady-state drop probability of one impaired link direction:
    independent loss, corrupt (dropped at the receiving MAC) and the
    Gilbert–Elliott chain's stationary bad-state loss, composed."""
    if impairment is None:
        return 0.0
    profile = impairment.profile
    survive = (1.0 - profile.loss) * (1.0 - profile.corrupt)
    if profile.ge_p > 0.0 and profile.ge_p + profile.ge_r > 0.0:
        pi_bad = profile.ge_p / (profile.ge_p + profile.ge_r)
        survive *= 1.0 - pi_bad * profile.ge_loss_bad
    return min(max(1.0 - survive, 0.0), 1.0)


class FluidWorkload:
    """One workload bound to one built, converged fabric.

    Lifecycle: :meth:`start` at the workload's simulated start time,
    :meth:`mark_epoch` at every route-change boundary (the scenario
    compiler schedules these; the built-in sampler adds table-change
    driven ones), :meth:`finish` at measurement end, then
    :meth:`report`.
    """

    def __init__(self, spec: WorkloadSpec, topo, deployment,
                 flows: Optional[FlowSet] = None, monitor=None) -> None:
        self.spec = spec
        self.topo = topo
        self.deployment = deployment
        self.monitor = monitor   # optional InvariantMonitor, checked per epoch
        self.sim = topo.world.sim
        if flows is None:
            flows = synthesize(spec, topo.rack_endpoints(), topo.world.rng)
        self.flows = flows
        n = len(flows)

        # directed-link registry: (node, iface) -> id, capacity, loss
        self._link_ids: dict[tuple[str, str], int] = {}
        self._link_refs: list[tuple[str, str]] = []
        self._capacity: list[float] = []

        # per-flow constants
        self._packed_keys = self._pack_flow_keys()
        self._src_tor = flows.host_tor[flows.src]
        self._dst_tor = flows.host_tor[flows.dst]
        self._src_access, self._dst_access = self._access_links()

        # per-flow running state
        self.remaining = flows.size_bytes.astype(np.float64)
        self.arrival_abs = np.zeros(n, dtype=np.int64)
        self.fct_end = np.full(n, -1.0)
        self.flow_blackhole_us = np.zeros(n, dtype=np.int64)
        self.delivered = 0.0
        self.dropped = 0.0
        self.blackholed = 0.0
        # goodput numerator/denominator: only bytes that landed *inside*
        # the settled measurement window count — the drain's forced tail
        # completion must not launder a blackhole pause into goodput
        self._settled_delivered = 0.0
        self._window_end_us = 0
        self.epoch_records: list[EpochRecord] = []
        self._peak_util = np.zeros(0)

        self._started = False
        self._finished = False
        self._start_us = 0
        self._epoch_start = 0
        self._problem: Optional[FluidProblem] = None
        self._blackholed_now = np.zeros(n, dtype=bool)
        self._surv: Optional[np.ndarray] = None
        self._table_marks: Optional[dict] = None

    # ------------------------------------------------------------------
    # link registry
    # ------------------------------------------------------------------
    def _link_id(self, node: str, iface_name: str) -> int:
        key = (node, iface_name)
        ident = self._link_ids.get(key)
        if ident is None:
            ident = len(self._link_refs)
            self._link_ids[key] = ident
            self._link_refs.append(key)
            link = self.topo.node(node).interfaces[iface_name].link
            self._capacity.append(link.bandwidth_bps / 8.0)  # bytes/sec
        return ident

    def _link_losses(self) -> np.ndarray:
        """Current expected drop probability per registered directed
        link (re-read every epoch: impairments come and go)."""
        losses = np.zeros(len(self._link_refs))
        for ident, (node, iface_name) in enumerate(self._link_refs):
            iface = self.topo.node(node).interfaces[iface_name]
            if iface.link is not None:
                losses[ident] = _expected_loss(iface.link.impairment(iface))
        return losses

    def link_name(self, ident: int) -> str:
        node, iface_name = self._link_refs[ident]
        return f"{node}:{iface_name}"

    # ------------------------------------------------------------------
    # per-flow constants
    # ------------------------------------------------------------------
    def _pack_flow_keys(self) -> bytes:
        """Every flow's FlowKey.pack() bytes, concatenated — the exact
        22-byte layout ecmp_hash consumes, built vectorized."""
        flows = self.flows
        addr = np.array(
            [self.topo.server_address(h).value for h in flows.hosts],
            dtype=np.uint64)
        rec = np.zeros(len(flows), dtype=np.dtype(
            [("src", "<u8"), ("dst", "<u8"), ("proto", "<u2"),
             ("sp", "<u2"), ("dp", "<u2")]))
        rec["src"] = addr[flows.src]
        rec["dst"] = addr[flows.dst]
        rec["proto"] = PROTO_UDP
        rec["sp"] = flows.src_port.astype(np.uint16)
        rec["dp"] = flows.dst_port.astype(np.uint16)
        assert rec.itemsize == _KEY_BYTES
        return rec.tobytes()

    def _access_links(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-flow first and last directed link: source host uplink
        and destination ToR's rack-facing downlink."""
        up_of_host = np.empty(len(self.flows.hosts), dtype=np.int64)
        down_of_host = np.empty(len(self.flows.hosts), dtype=np.int64)
        for h, host in enumerate(self.flows.hosts):
            host_if, tor_if = access_uplink(self.topo, host)
            up_of_host[h] = self._link_id(host, host_if.name)
            down_of_host[h] = self._link_id(tor_if.node.name, tor_if.name)
        return (up_of_host[self.flows.src], down_of_host[self.flows.dst])

    # ------------------------------------------------------------------
    # path resolution (one forwarding-state capture)
    # ------------------------------------------------------------------
    def _resolve(self) -> None:
        """Capture forwarding state *now*: walk every flow's path
        through the deployment's live candidate sets and rebuild the
        flow->link CSR the next solve uses."""
        flows = self.flows
        n = len(flows)
        keys = self._packed_keys
        memo: dict[tuple[str, str, Optional[str]], tuple] = {}
        blackholed = np.zeros(n, dtype=bool)
        seg_flows: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
        seg_links: list[np.ndarray] = [self._src_access]

        def candidates(node: str, dst_tor: str, ingress: Optional[str]):
            key = (node, dst_tor, ingress)
            entry = memo.get(key)
            if entry is None:
                salt, spray, ports = self.deployment.fluid_candidates(
                    node, dst_tor, ingress)
                expanded = []
                topo_node = self.topo.node(node)
                for port in ports:
                    iface = topo_node.interfaces[port]
                    if not iface.admin_up or iface.link is None:
                        # the frame never leaves this node
                        expanded.append((None, None, None))
                        continue
                    link = self._link_id(node, port)
                    peer = iface.peer()
                    if peer is None or not peer.admin_up:
                        # crosses the wire, dropped at the far MAC
                        expanded.append((link, None, None))
                        continue
                    expanded.append((link, peer.node.name, peer.name))
                entry = (salt.to_bytes(8, "little", signed=False)
                         if len(expanded) > 1 else b"",
                         spray, tuple(expanded))
                memo[key] = entry
            return entry

        # flows grouped by (src rack, dst rack) share the whole walk
        # tree; per-flow work happens only at genuine ECMP branch points
        n_tors = len(flows.tors)
        pair = self._src_tor.astype(np.int64) * n_tors + self._dst_tor
        order = np.argsort(pair, kind="stable")
        boundaries = np.flatnonzero(np.diff(pair[order])) + 1
        groups = np.split(order, boundaries)
        blake2b = hashlib.blake2b

        for group in groups:
            f0 = int(group[0])
            src_tor = flows.tors[int(self._src_tor[f0])]
            dst_tor = flows.tors[int(self._dst_tor[f0])]
            if src_tor == dst_tor:
                continue  # intra-rack: access links only
            stack = [(src_tor, None, 0, group)]
            while stack:
                node, ingress, depth, idx = stack.pop()
                if node == dst_tor:
                    continue
                if depth >= MAX_FLUID_HOPS:
                    blackholed[idx] = True  # routing loop
                    continue
                salt_bytes, spray, entries = candidates(node, dst_tor,
                                                        ingress)
                if not entries:
                    blackholed[idx] = True  # no candidate port at all
                    continue
                if len(entries) == 1:
                    parts = [idx]
                elif spray:
                    # per-packet spray approximated fluidly: flows spread
                    # round-robin by flow id (even split, deterministic)
                    choice = idx % len(entries)
                    parts = [idx[choice == c] for c in range(len(entries))]
                else:
                    # the genuine keyed ECMP hash, per flow — identical
                    # index arithmetic to repro.routing.ecmp.ecmp_hash
                    m = len(entries)
                    out = np.empty(len(idx), dtype=np.int64)
                    for j, f in enumerate(idx.tolist()):
                        digest = blake2b(
                            keys[f * _KEY_BYTES:(f + 1) * _KEY_BYTES],
                            digest_size=8, key=salt_bytes).digest()
                        out[j] = int.from_bytes(digest, "little") % m
                    parts = [idx[out == c] for c in range(m)]
                for entry, part in zip(entries, parts):
                    if len(part) == 0:
                        continue
                    link, peer_node, peer_iface = entry
                    if link is not None:
                        seg_flows.append(part)
                        seg_links.append(np.full(len(part), link,
                                                 dtype=np.int64))
                    if peer_node is None:
                        blackholed[part] = True
                    else:
                        stack.append((peer_node, peer_iface, depth + 1,
                                      part))

        routed = np.flatnonzero(~blackholed)
        seg_flows.append(routed)
        seg_links.append(self._dst_access[routed])

        rep_flow = np.concatenate(seg_flows)
        rep_link = np.concatenate(seg_links)
        csr_order = np.argsort(rep_flow, kind="stable")
        flow_links = rep_link[csr_order]
        counts = np.bincount(rep_flow, minlength=n)
        flow_ptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=flow_ptr[1:])

        self._problem = FluidProblem(
            capacity=np.asarray(self._capacity, dtype=np.float64),
            flow_links=flow_links, flow_ptr=flow_ptr)
        self._blackholed_now = blackholed

        # per-flow survival under the current impairments
        losses = self._link_losses()
        log_surv = np.log1p(-np.minimum(losses, 1.0 - 1e-12))
        sums = np.add.reduceat(log_surv[flow_links], flow_ptr[:-1])
        sums[counts == 0] = 0.0
        self._surv = np.exp(sums)
        self._surv[blackholed] = 0.0

        self._table_marks = self._forwarding_marks()
        if self.monitor is not None:
            # every forwarding-state capture is an invariant-check
            # instant: the monitor sees exactly the states flows ride
            self.monitor.check()

    def _forwarding_marks(self):
        """Current forwarding-state version.  Prefers the deployment's
        ``route_generation`` (which also counts liveness transitions —
        graceful restart changes forwarding without a table write);
        falls back to per-table change counters."""
        gen = getattr(self.deployment, "route_generation", None)
        if gen is not None:
            return gen()
        tables = self.deployment.forwarding_tables()
        return {name: getattr(t, "change_count", 0)
                for name, t in tables.items()}

    def _tables_changed(self) -> bool:
        return self._forwarding_marks() != self._table_marks

    # ------------------------------------------------------------------
    # epoch lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Open epoch 0 at the current simulated time and arm the
        table-change sampler."""
        if self._started:
            raise RuntimeError("workload already started")
        self._started = True
        self._start_us = self.sim.now
        self._epoch_start = self.sim.now
        self.arrival_abs = self._start_us + self.flows.arrival_us
        self._resolve()
        self.sim.schedule_after(self.spec.epoch_ms * MILLISECOND,
                                self._sample)

    def mark_epoch(self) -> None:
        """Close the running epoch at the current simulated time and
        re-capture forwarding state — the route-change boundary."""
        if not self._started or self._finished:
            return
        now = self.sim.now
        if now > self._epoch_start:
            self._settle(now)
        self._epoch_start = now
        self._resolve()

    def _sample(self) -> None:
        if self._finished:
            return
        if self._tables_changed():
            self.mark_epoch()
        self.sim.schedule_after(self.spec.epoch_ms * MILLISECOND,
                                self._sample)

    def finish(self) -> WorkloadReport:
        """Close the last epoch at the current simulated time, drain
        the unfinished flows at their final rates, and report."""
        if not self._started:
            raise RuntimeError("workload never started")
        if self._finished:
            return self.report()
        self._finished = True
        now = max(self.sim.now, self._epoch_start)
        if now > self._epoch_start:
            self._settle(now)
        self._drain(now)
        return self.report()

    # ------------------------------------------------------------------
    # settlement
    # ------------------------------------------------------------------
    def _solve(self, active: np.ndarray) -> np.ndarray:
        return max_min_rates(self._problem, active)

    def _settle(self, t_end: int) -> None:
        """Account bytes for [epoch_start, t_end) at max-min rates."""
        t0 = self._epoch_start
        active = (self.remaining > 0) & (self.arrival_abs < t_end)
        record = EpochRecord(start_us=t0, end_us=t_end, offered=0.0,
                             delivered=0.0, dropped=0.0, blackholed=0.0)
        if active.any():
            rate = self._solve(active)
            start_eff = np.maximum(t0, self.arrival_abs)
            overlap = np.maximum(t_end - start_eff, 0) * active
            seconds = overlap / SECOND
            bh = self._blackholed_now
            surv = self._surv

            routed = active & ~bh
            potential = rate * seconds * surv
            before = self.remaining.copy()
            delivered_now = np.where(routed,
                                     np.minimum(potential, before), 0.0)
            injected = np.where(
                surv > 0, delivered_now / np.maximum(surv, 1e-300),
                rate * seconds)
            injected = np.where(routed, injected, 0.0)
            dropped_now = injected - delivered_now
            self.remaining = before - delivered_now

            done = routed & (potential >= before) & (potential > 0)
            with np.errstate(divide="ignore", invalid="ignore"):
                t_done = start_eff + np.where(
                    done, before / np.maximum(rate * surv / SECOND, 1e-300),
                    0.0)
            self.fct_end[done] = t_done[done]

            bh_active = active & bh
            injected_bh = np.where(bh_active, rate * seconds, 0.0)
            self.flow_blackhole_us[bh_active] += overlap[bh_active]

            record.delivered = float(delivered_now.sum())
            record.dropped = float(dropped_now.sum())
            record.blackholed = float(injected_bh.sum())
            record.offered = (record.delivered + record.dropped
                              + record.blackholed)
            self.delivered += record.delivered
            self.dropped += record.dropped
            self.blackholed += record.blackholed
            self._settled_delivered += record.delivered

            loads = link_loads(self._problem, rate * active)
            util = loads / np.maximum(self._problem.capacity, 1e-300)
            if len(util) > len(self._peak_util):
                grown = np.zeros(len(util))
                grown[:len(self._peak_util)] = self._peak_util
                self._peak_util = grown
            np.maximum(self._peak_util, util, out=self._peak_util)
        self.epoch_records.append(record)
        self._window_end_us = t_end

    def _drain(self, t_end: int) -> None:
        """Complete every routed flow that still holds bytes at the
        final forwarding state's rates (the tail past the measurement
        window); blackholed flows never complete."""
        open_flows = (self.remaining > 0) & ~self._blackholed_now \
            & (self._surv > 0)
        if not open_flows.any():
            return
        rate = self._solve(open_flows)
        movable = open_flows & (rate > 0)
        start_eff = np.maximum(t_end, self.arrival_abs)
        surv = self._surv
        before = self.remaining.copy()
        injected = np.where(movable, before / np.maximum(surv, 1e-300),
                            0.0)
        delivered_now = np.where(movable, before, 0.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            t_done = start_eff + np.where(
                movable, before / np.maximum(rate * surv / SECOND, 1e-300),
                0.0)
        self.fct_end[movable] = t_done[movable]
        self.remaining = np.where(movable, 0.0, self.remaining)
        record = EpochRecord(
            start_us=t_end, end_us=t_end,
            offered=float(injected.sum()),
            delivered=float(delivered_now.sum()),
            dropped=float((injected - delivered_now).sum()),
            blackholed=0.0)
        self.delivered += record.delivered
        self.dropped += record.dropped
        self.epoch_records.append(record)

    # ------------------------------------------------------------------
    def report(self) -> WorkloadReport:
        flows = self.flows
        completed = self.fct_end >= 0
        fct = (self.fct_end[completed]
               - self.arrival_abs[completed]).astype(np.int64)
        fct_sorted = np.sort(fct)
        # goodput over the settled measurement window only: bytes a
        # blackhole pushed past the window (delivered by the drain's
        # tail completion) are backlog, not goodput
        window_us = self._window_end_us - self._start_us
        goodput = (self._settled_delivered * 8 * SECOND / window_us
                   if window_us > 0 else 0.0)
        unfinished_bh = int(((self.remaining > 0)
                             & self._blackholed_now).sum())
        hot = []
        if len(self._peak_util):
            top = np.argsort(self._peak_util)[::-1][:3]
            hot = [[self.link_name(int(i)),
                    round(float(self._peak_util[i]), 6)]
                   for i in top if self._peak_util[i] > 0]
        records = [[r.start_us, r.end_us, int(round(r.offered)),
                    int(round(r.delivered)), int(round(r.dropped)),
                    int(round(r.blackholed))] for r in self.epoch_records]
        max_err = max((r.conservation_error()
                       for r in self.epoch_records), default=0.0)
        return WorkloadReport(
            workload=self.spec.name,
            matrix=self.spec.matrix,
            flows=len(flows),
            completed_flows=int(completed.sum()),
            blackholed_flows=unfinished_bh,
            offered_bytes=int(round(self.delivered + self.dropped
                                    + self.blackholed)),
            delivered_bytes=int(round(self.delivered)),
            dropped_bytes=int(round(self.dropped)),
            blackholed_bytes=int(round(self.blackholed)),
            goodput_bps=int(round(goodput)),
            fct_p50_us=nearest_rank_percentile(fct_sorted, 50),
            fct_p99_us=nearest_rank_percentile(fct_sorted, 99),
            fct_max_us=int(fct_sorted[-1]) if len(fct_sorted) else -1,
            max_blackhole_us=int(self.flow_blackhole_us.max())
            if len(flows) else 0,
            blackhole_flow_count=int((self.flow_blackhole_us > 0).sum()),
            peak_link_utilization=round(float(self._peak_util.max()), 6)
            if len(self._peak_util) else 0.0,
            hot_links=hot,
            epochs=len(self.epoch_records),
            epoch_records=records,
            max_conservation_error=max_err,
        )
