"""Workload specifications: datacenter traffic matrices as frozen data.

A :class:`WorkloadSpec` describes *what* load a fabric carries — the
matrix shape (permutation / hotspot / incast / all-to-all / uniform),
the elephant-mice flow-size mix, and per-tenant Poisson arrival
processes — without naming any concrete host: expansion against a built
topology's rack endpoints happens in :mod:`repro.workload.synth`, from
dedicated RNG streams, so the same spec is meaningful on a 2-PoD Clos,
a VL2 fabric or a recursive DCell.

Specs are pure data with a canonical JSON form (sorted keys, schema
version embedded), so they flow through the content-addressed result
cache and the scenario engine exactly like scenarios and topology specs
do: the spec payload *is* the cache-key component.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Union

from repro.harness.digest import canonical_json

# Bump when the spec payload or the synthesis semantics change: the
# schema number is embedded in every serialized spec and so in every
# cache key a workload participates in.
WORKLOAD_SCHEMA = 1

#: the matrix families the synthesizer expands (FatPaths' evaluation set)
MATRIX_KINDS = ("permutation", "hotspot", "incast", "all-to-all",
                "uniform")


class WorkloadError(ValueError):
    """A structurally invalid workload spec."""


@dataclass(frozen=True)
class WorkloadSpec:
    """One traffic workload, fully described and cache-keyable.

    ``flows`` flows arrive over ``duration_ms`` as the superposition of
    ``tenants`` independent Poisson processes (each tenant's arrivals
    are a Poisson process conditioned on its flow count).  Sizes are an
    elephant-mice mix: a flow is an elephant with probability
    ``elephant_fraction``, and either class's size is its base byte
    count jittered by a factor drawn log-uniform in [1/2, 2].

    ``epoch_ms`` is the fluid evaluator's re-solve cadence under route
    change (see :mod:`repro.workload.engine`); it is part of the spec —
    and so of the cache key — because it quantizes every reported
    blackhole window.
    """

    name: str
    matrix: str = "permutation"
    flows: int = 10_000
    duration_ms: int = 1_000
    tenants: int = 4
    elephant_fraction: float = 0.1
    mice_bytes: int = 20_000
    elephant_bytes: int = 10_000_000
    hotspot_fraction: float = 0.5   # hotspot: share of flows into the hot rack
    incast_fanin: int = 16          # incast: synchronized senders per sink
    epoch_ms: int = 25              # fluid re-solve cadence under route change
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or self.name.strip() != self.name:
            raise WorkloadError(f"invalid workload name {self.name!r}")
        if self.matrix not in MATRIX_KINDS:
            raise WorkloadError(
                f"unknown matrix kind {self.matrix!r}; known kinds: "
                f"{', '.join(MATRIX_KINDS)}")
        for field_name in ("flows", "duration_ms", "tenants",
                           "mice_bytes", "elephant_bytes", "incast_fanin",
                           "epoch_ms"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value <= 0:
                raise WorkloadError(
                    f"{self.name}: {field_name} must be a positive "
                    f"integer, got {value!r}")
        if self.tenants > 256:
            raise WorkloadError(
                f"{self.name}: tenants must be <= 256, got {self.tenants}")
        if self.incast_fanin < 2:
            raise WorkloadError(
                f"{self.name}: incast_fanin must be >= 2, "
                f"got {self.incast_fanin}")
        if not 0.0 <= self.elephant_fraction <= 1.0:
            raise WorkloadError(
                f"{self.name}: elephant_fraction must be in [0, 1], "
                f"got {self.elephant_fraction!r}")
        if not 0.0 < self.hotspot_fraction <= 1.0:
            raise WorkloadError(
                f"{self.name}: hotspot_fraction must be in (0, 1], "
                f"got {self.hotspot_fraction!r}")

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        payload: dict[str, Any] = {"schema": WORKLOAD_SCHEMA}
        for field in dataclasses.fields(self):
            payload[field.name] = getattr(self, field.name)
        return payload

    def to_json(self) -> str:
        """Canonical JSON: the form that is cached, hashed and diffed."""
        return canonical_json(self.to_payload())

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "WorkloadSpec":
        if not isinstance(payload, Mapping):
            raise WorkloadError(
                f"workload must be an object, got {payload!r}")
        schema = payload.get("schema", WORKLOAD_SCHEMA)
        if schema != WORKLOAD_SCHEMA:
            raise WorkloadError(
                f"unsupported workload schema {schema!r} "
                f"(this build reads schema {WORKLOAD_SCHEMA})")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known - {"schema"}
        if unknown:
            raise WorkloadError(
                f"workload has unknown fields: {', '.join(sorted(unknown))}")
        if "name" not in payload:
            raise WorkloadError("workload requires 'name'")
        return cls(**{k: v for k, v in payload.items() if k != "schema"})


# ----------------------------------------------------------------------
# the canonical workload library
# ----------------------------------------------------------------------
PERMUTATION = WorkloadSpec(
    name="permutation", matrix="permutation",
    description="each rack sends to exactly one other rack (a random "
                "rack cycle) — the classic bisection stress test")

UNIFORM = WorkloadSpec(
    name="uniform", matrix="uniform",
    description="source and destination racks drawn uniformly — the "
                "baseline all-fabric shuffle")

HOTSPOT = WorkloadSpec(
    name="hotspot", matrix="hotspot",
    description="half the flows converge on one hot rack, the rest "
                "stay uniform — a popular-shard traffic skew")

INCAST = WorkloadSpec(
    name="incast", matrix="incast", elephant_fraction=0.02,
    description="synchronized fan-in: groups of senders start together "
                "toward one sink server (partition-aggregate)")

ALL_TO_ALL = WorkloadSpec(
    name="all-to-all", matrix="all-to-all",
    description="every ordered rack pair carries flows round-robin — "
                "the MapReduce shuffle matrix")

CANONICAL_WORKLOADS = (PERMUTATION, UNIFORM, HOTSPOT, INCAST, ALL_TO_ALL)


def canonical_workloads() -> dict[str, WorkloadSpec]:
    """name -> spec, in library order."""
    return {spec.name: spec for spec in CANONICAL_WORKLOADS}


def get_workload(name: str) -> WorkloadSpec:
    library = canonical_workloads()
    if name not in library:
        raise WorkloadError(
            f"unknown workload {name!r}; canonical library: "
            f"{', '.join(library)}")
    return library[name]


def resolve_workload(
        value: Union[str, Mapping[str, Any], WorkloadSpec]) -> WorkloadSpec:
    """A spec from any accepted spelling: a library name, a payload
    mapping, or a spec itself (the scenario engine's ``workload`` event
    field accepts the first two)."""
    if isinstance(value, WorkloadSpec):
        return value
    if isinstance(value, str):
        return get_workload(value)
    if isinstance(value, Mapping):
        return WorkloadSpec.from_payload(value)
    raise WorkloadError(
        f"workload must be a library name or a spec object, got {value!r}")
