"""Max-min fluid bandwidth allocation: the progressive-filling waterfall.

Given directed-link capacities and each flow's link list (CSR layout),
compute the max-min fair rate vector: raise every flow's rate together
until some link saturates, freeze the flows through it at that link's
fair share, subtract what they consume, repeat.  The classic waterfall
— but vectorized, so a million flows over a few hundred links solve in
seconds, not hours.

Invariants (the ones DESIGN §13 states and the property tests enforce):

* every active flow with at least one link receives a finite rate
  >= 0, and rate > 0 whenever all its links start with capacity > 0;
* no link is over-subscribed: sum of frozen rates through a link never
  exceeds its capacity (beyond float epsilon);
* the allocation is max-min: a flow's rate can only be raised by
  lowering that of a flow with an equal-or-smaller rate.

The solver is pure numpy + deterministic tie-breaking (ties freeze
together within ``_EPS``), so identical inputs give bit-identical rate
vectors on every run — the property the run-digest machinery needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

_EPS = 1e-9


def _multi_arange(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start+length)`` ranges, vectorized."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths,
                                                          lengths)
    return np.repeat(starts, lengths) + within


@dataclass
class FluidProblem:
    """One solve's inputs: link capacities plus flow->link CSR."""

    capacity: np.ndarray    # float64 [L], bytes/sec
    flow_links: np.ndarray  # int64 concatenated link ids, flow-major
    flow_ptr: np.ndarray    # int64 [F+1] CSR offsets into flow_links

    @property
    def n_flows(self) -> int:
        return len(self.flow_ptr) - 1

    @property
    def n_links(self) -> int:
        return len(self.capacity)


def max_min_rates(problem: FluidProblem,
                  active: Optional[np.ndarray] = None) -> np.ndarray:
    """The max-min fair rate vector (bytes/sec, float64 [F]).

    ``active`` masks flows out of the allocation (rate 0, no capacity
    consumed) — the engine uses it for flows that have finished or not
    yet arrived.  Flows with an empty link list get rate 0.
    """
    n_flows, n_links = problem.n_flows, problem.n_links
    rate = np.zeros(n_flows, dtype=np.float64)
    if n_flows == 0 or n_links == 0:
        return rate
    flow_ptr = problem.flow_ptr
    flow_links = problem.flow_links
    lengths = np.diff(flow_ptr)
    if active is None:
        active = np.ones(n_flows, dtype=bool)
    live = active & (lengths > 0)

    # link -> flows CSR (only live flows participate)
    live_entry = np.repeat(live, lengths)
    entry_flow = np.repeat(np.arange(n_flows, dtype=np.int64), lengths)
    links_live = flow_links[live_entry]
    flows_live = entry_flow[live_entry]
    order = np.argsort(links_live, kind="stable")
    link_flows = flows_live[order]
    counts = np.bincount(links_live, minlength=n_links).astype(np.int64)
    link_ptr = np.zeros(n_links + 1, dtype=np.int64)
    np.cumsum(counts, out=link_ptr[1:])

    remaining = problem.capacity.astype(np.float64).copy()
    unfrozen = counts.copy()   # live, not-yet-frozen flows per link
    frozen = ~live             # inactive flows count as already frozen

    for _ in range(n_links + 1):
        eligible = unfrozen > 0
        if not eligible.any():
            break
        share = np.full(n_links, np.inf)
        share[eligible] = np.maximum(remaining[eligible], 0.0) \
            / unfrozen[eligible]
        level = share.min()
        bottleneck = np.flatnonzero(eligible & (share <= level + _EPS
                                                + _EPS * level))
        # flows riding any bottleneck link freeze at the water level
        cand = link_flows[_multi_arange(link_ptr[bottleneck],
                                        counts[bottleneck])]
        newly = np.unique(cand[~frozen[cand]])
        if len(newly) == 0:
            break  # numerically stuck: everything left is frozen
        frozen[newly] = True
        rate[newly] = level
        # subtract the frozen flows' consumption from every link they
        # cross; each flow is processed exactly once over the whole
        # solve, so total scatter work is O(total path length)
        entries = flow_links[_multi_arange(flow_ptr[newly],
                                           lengths[newly])]
        np.subtract.at(remaining, entries, level)
        unfrozen -= np.bincount(entries, minlength=n_links)

    np.clip(rate, 0.0, None, out=rate)
    rate[~live] = 0.0
    return rate


def link_loads(problem: FluidProblem, rate: np.ndarray) -> np.ndarray:
    """Per-link carried load (bytes/sec [L]) for a rate vector."""
    lengths = np.diff(problem.flow_ptr)
    weights = np.repeat(rate, lengths)
    return np.bincount(problem.flow_links, weights=weights,
                       minlength=problem.n_links)
