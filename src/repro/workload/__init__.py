"""Flow-level workload engine: millions of realistic flows on any
fabric, any stack, under chaos — without per-packet simulation.

Three layers (see DESIGN §13):

* :mod:`repro.workload.spec` — frozen, cache-keyed workload specs
  (matrix kind, elephant-mice size mix, per-tenant Poisson arrivals);
* :mod:`repro.workload.synth` — deterministic expansion against a
  topology's rack endpoints from dedicated RNG streams;
* :mod:`repro.workload.fluid` / :mod:`repro.workload.engine` — max-min
  progressive-filling rate allocation over each flow's path through the
  deployed stack's actual forwarding state, re-solved at route-change
  epochs;
* :mod:`repro.workload.runner` — cached, supervised, digest-stable
  standalone runs (the ``repro load`` CLI).
"""

from repro.workload.spec import (
    ALL_TO_ALL,
    CANONICAL_WORKLOADS,
    HOTSPOT,
    INCAST,
    MATRIX_KINDS,
    PERMUTATION,
    UNIFORM,
    WORKLOAD_SCHEMA,
    WorkloadError,
    WorkloadSpec,
    canonical_workloads,
    get_workload,
    resolve_workload,
)
from repro.workload.synth import FlowSet, synthesize
from repro.workload.fluid import FluidProblem, link_loads, max_min_rates
from repro.workload.engine import EpochRecord, FluidWorkload, WorkloadReport
from repro.workload.runner import (
    WorkloadOutcome,
    WorkloadRunSpec,
    decode_workload_outcome,
    encode_workload_outcome,
    run_workload,
    run_workload_suite,
    run_workload_task,
    workload_suite_specs,
    workload_task_key,
    workload_task_label,
)

__all__ = [
    "ALL_TO_ALL",
    "CANONICAL_WORKLOADS",
    "HOTSPOT",
    "INCAST",
    "MATRIX_KINDS",
    "PERMUTATION",
    "UNIFORM",
    "WORKLOAD_SCHEMA",
    "WorkloadError",
    "WorkloadSpec",
    "canonical_workloads",
    "get_workload",
    "resolve_workload",
    "FlowSet",
    "synthesize",
    "FluidProblem",
    "link_loads",
    "max_min_rates",
    "EpochRecord",
    "FluidWorkload",
    "WorkloadReport",
    "WorkloadOutcome",
    "WorkloadRunSpec",
    "decode_workload_outcome",
    "encode_workload_outcome",
    "run_workload",
    "run_workload_suite",
    "run_workload_task",
    "workload_suite_specs",
    "workload_task_key",
    "workload_task_label",
]
