"""Deterministic workload synthesis: spec x endpoints -> flow records.

Expansion draws from dedicated named RNG streams (``workload-matrix``,
``workload-size``, ``workload-arrival``, ``workload-port``), so a
workload's flows are a pure function of (seed, spec, endpoint listing)
and never perturb any other seeded subsystem — the same independence
contract every protocol stack relies on.

The output is a struct-of-arrays :class:`FlowSet` (numpy columns, one
row per flow): the shape the fluid evaluator consumes directly, and the
only representation that stays cheap at millions of flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sim.units import MILLISECOND
from repro.workload.spec import WorkloadError, WorkloadSpec

# src ports: a high ephemeral band, wide enough that concurrent flows
# between one host pair still hash over distinct 5-tuples
_PORT_BASE = 16384
_PORT_SPAN = 45000
# per-tenant service ports, so the tenant id is visible in the 5-tuple
_SERVICE_PORT_BASE = 7700


@dataclass
class FlowSet:
    """One synthesized workload, expanded against concrete endpoints.

    Columns are parallel arrays indexed by flow id.  ``hosts`` and
    ``tors`` map the integer host/rack columns back to node names;
    ``host_tor[h]`` is the rack index of host ``h``.
    """

    spec: WorkloadSpec
    hosts: tuple[str, ...]
    tors: tuple[str, ...]
    host_tor: np.ndarray      # int32 [H] host -> rack index
    src: np.ndarray           # int32 [F] source host index
    dst: np.ndarray           # int32 [F] destination host index
    size_bytes: np.ndarray    # int64 [F]
    arrival_us: np.ndarray    # int64 [F] offset from workload start
    tenant: np.ndarray        # int16 [F]
    src_port: np.ndarray      # int32 [F]
    dst_port: np.ndarray      # int32 [F]

    def __len__(self) -> int:
        return len(self.src)

    @property
    def offered_bytes(self) -> int:
        return int(self.size_bytes.sum())


def _host_layout(endpoints: Sequence[tuple[str, Sequence[str]]]):
    """Flatten (tor, hosts) rack listing into indexable columns."""
    tors: list[str] = []
    hosts: list[str] = []
    host_tor: list[int] = []
    rack_first: list[int] = []
    rack_count: list[int] = []
    for tor, rack_hosts in endpoints:
        if not rack_hosts:
            continue
        rack = len(tors)
        tors.append(tor)
        rack_first.append(len(hosts))
        rack_count.append(len(rack_hosts))
        for host in rack_hosts:
            hosts.append(host)
            host_tor.append(rack)
    return (tuple(tors), tuple(hosts),
            np.asarray(host_tor, dtype=np.int32),
            np.asarray(rack_first, dtype=np.int64),
            np.asarray(rack_count, dtype=np.int64))


def _pick_host(rng, racks: np.ndarray, rack_first: np.ndarray,
               rack_count: np.ndarray) -> np.ndarray:
    """A uniform host within each flow's rack (racks with any host
    count supported)."""
    offsets = np.floor(rng.random(len(racks)) * rack_count[racks])
    return (rack_first[racks] + offsets.astype(np.int64)).astype(np.int32)


def _other_rack(rng, src_rack: np.ndarray, n_racks: int) -> np.ndarray:
    """A uniform rack different from each flow's source rack."""
    shift = rng.integers(1, n_racks, size=len(src_rack))
    return ((src_rack + shift) % n_racks).astype(np.int64)


def synthesize(spec: WorkloadSpec,
               endpoints: Sequence[tuple[str, Sequence[str]]],
               rng_registry) -> FlowSet:
    """Expand ``spec`` against ``endpoints`` (a topology's
    ``rack_endpoints()`` listing) using the registry's dedicated
    workload streams."""
    tors, hosts, host_tor, rack_first, rack_count = _host_layout(endpoints)
    n_racks = len(tors)
    if n_racks < 2:
        raise WorkloadError(
            f"workload {spec.name!r} needs at least 2 populated racks, "
            f"topology has {n_racks}")

    matrix_rng = rng_registry.stream("workload-matrix")
    size_rng = rng_registry.stream("workload-size")
    arrival_rng = rng_registry.stream("workload-arrival")
    port_rng = rng_registry.stream("workload-port")
    n = spec.flows

    # ---- the matrix: (src rack, dst rack) per flow -------------------
    if spec.matrix == "permutation":
        # a random rack cycle: derangement by construction, so every
        # rack sends to exactly one other rack and receives from one
        order = matrix_rng.permutation(n_racks)
        cycle = np.empty(n_racks, dtype=np.int64)
        cycle[order] = np.roll(order, -1)
        src_rack = matrix_rng.integers(0, n_racks, size=n)
        dst_rack = cycle[src_rack]
    elif spec.matrix == "uniform":
        src_rack = matrix_rng.integers(0, n_racks, size=n)
        dst_rack = _other_rack(matrix_rng, src_rack, n_racks)
    elif spec.matrix == "all-to-all":
        # round-robin over every ordered rack pair: coverage first,
        # randomness only inside the rack
        pairs = np.arange(n, dtype=np.int64) % (n_racks * (n_racks - 1))
        src_rack = pairs // (n_racks - 1)
        dst_rack = (src_rack + 1 + pairs % (n_racks - 1)) % n_racks
    elif spec.matrix == "hotspot":
        hot = int(matrix_rng.integers(0, n_racks))
        src_rack = matrix_rng.integers(0, n_racks, size=n)
        dst_rack = _other_rack(matrix_rng, src_rack, n_racks)
        to_hot = (matrix_rng.random(n) < spec.hotspot_fraction) \
            & (src_rack != hot)
        dst_rack[to_hot] = hot
    else:  # incast
        groups = -(-n // spec.incast_fanin)  # ceil
        sink_rack = matrix_rng.integers(0, n_racks, size=groups)
        group_of = np.arange(n, dtype=np.int64) // spec.incast_fanin
        dst_rack = sink_rack[group_of]
        src_rack = _other_rack(matrix_rng, dst_rack, n_racks)

    src = _pick_host(matrix_rng, src_rack, rack_first, rack_count)
    dst = _pick_host(matrix_rng, dst_rack, rack_first, rack_count)
    if spec.matrix == "incast":
        # the hallmark of incast is one shared sink *server* per group:
        # every flow adopts the host its group's first flow picked
        group_of = np.arange(n, dtype=np.int64) // spec.incast_fanin
        dst = dst[group_of * spec.incast_fanin]

    # ---- sizes: elephant-mice mix ------------------------------------
    elephant = size_rng.random(n) < spec.elephant_fraction
    base = np.where(elephant, float(spec.elephant_bytes),
                    float(spec.mice_bytes))
    jitter = np.exp2(size_rng.uniform(-1.0, 1.0, size=n))
    size_bytes = np.maximum((base * jitter).astype(np.int64), 1)

    # ---- arrivals: per-tenant conditioned Poisson --------------------
    # each tenant's arrival times, conditioned on its flow count, are
    # i.i.d. uniforms over the window (order statistics of a Poisson
    # process); sorting within the tenant recovers the process
    window_us = spec.duration_ms * MILLISECOND
    tenant = arrival_rng.integers(0, spec.tenants, size=n).astype(np.int16)
    raw = arrival_rng.random(n) * window_us
    arrival_us = np.empty(n, dtype=np.int64)
    for t in range(spec.tenants):
        mask = tenant == t
        arrival_us[mask] = np.sort(raw[mask]).astype(np.int64)
    if spec.matrix == "incast":
        # synchronized senders: every flow of a group starts when the
        # group's first flow does
        group_of = np.arange(n, dtype=np.int64) // spec.incast_fanin
        arrival_us = arrival_us[group_of * spec.incast_fanin]

    # ---- the 5-tuple tail --------------------------------------------
    src_port = (_PORT_BASE
                + port_rng.integers(0, _PORT_SPAN, size=n)).astype(np.int32)
    dst_port = (_SERVICE_PORT_BASE + tenant.astype(np.int32))

    return FlowSet(spec=spec, hosts=hosts, tors=tors, host_tor=host_tor,
                   src=src, dst=dst, size_bytes=size_bytes,
                   arrival_us=arrival_us, tenant=tenant,
                   src_port=src_port, dst_port=dst_port)
