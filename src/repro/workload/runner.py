"""Standalone workload runs: build, converge, load, solve — cached.

One workload x topology x stack x seed is an independent, picklable
task (:class:`WorkloadRunSpec`) that flows through the same fan-out /
cache / supervisor machinery as sweeps and scenario suites: serial and
``--jobs N`` executions produce byte-identical digests, and loaded
campaigns resume from the content-addressed result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.units import MILLISECOND, SECOND
from repro.topology import TopologySpec, resolve_topology_spec
from repro.stacks import StackSpec, StackTimers, resolve_spec
from repro.harness.cache import ResultCache, task_key
from repro.harness.digest import run_digest
from repro.harness.experiments import build_and_converge
from repro.harness.parallel import FanoutReport, execute_tasks
from repro.harness.supervisor import (
    RetryPolicy,
    SupervisorReport,
    supervise_tasks,
)
from repro.workload.engine import FluidWorkload, WorkloadReport
from repro.workload.spec import WorkloadSpec, resolve_workload


@dataclass(frozen=True)
class WorkloadRunSpec:
    """One loaded run as an independent, picklable task."""

    params: TopologySpec
    stack: StackSpec
    workload: WorkloadSpec
    seed: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "params",
                           resolve_topology_spec(self.params))
        object.__setattr__(self, "workload",
                           resolve_workload(self.workload))


@dataclass
class WorkloadOutcome:
    """A loaded run's report plus its determinism fingerprint."""

    report: WorkloadReport
    digest: str


def run_workload(
    workload,
    params,
    stack,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    return_world: bool = False,
):
    """Build a fresh fabric, converge the stack, run the workload on
    the converged forwarding state (the fault-free baseline; scenario
    runs layer faults via the ``workload`` op instead)."""
    spec = resolve_spec(stack, timers)
    wl = resolve_workload(workload)
    world, topo, deployment = build_and_converge(
        params, spec, seed, max_converge_us=60 * SECOND)
    engine = FluidWorkload(wl, topo, deployment)
    engine.start()
    world.run_for(wl.duration_ms * MILLISECOND)
    report = engine.finish()
    if return_world:
        return report, world
    return report


def run_workload_task(spec: WorkloadRunSpec) -> WorkloadOutcome:
    """The parallel worker (top-level so the process pool can pickle it)."""
    report, world = run_workload(spec.workload, spec.params, spec.stack,
                                 spec.seed, return_world=True)
    digest = run_digest(world.trace, report.to_payload())
    return WorkloadOutcome(report=report, digest=digest)


# ----------------------------------------------------------------------
# cache plumbing: key, encode, decode
# ----------------------------------------------------------------------
def workload_task_key(spec: WorkloadRunSpec) -> str:
    """Content hash of one loaded run: the canonical workload payload
    enters the key, so editing a spec invalidates only its entries."""
    return task_key(
        "workload-run",
        params=spec.params,
        stack=spec.stack.name,
        stack_params=spec.stack.params,
        timers=spec.stack.timers,
        workload=spec.workload.to_payload(),
        seed=spec.seed,
    )


def encode_workload_outcome(outcome: WorkloadOutcome) -> dict:
    return {**outcome.report.to_payload(), "digest": outcome.digest}


def decode_workload_outcome(payload: dict) -> WorkloadOutcome:
    report = WorkloadReport.from_payload(
        {k: v for k, v in payload.items() if k != "digest"})
    return WorkloadOutcome(report=report, digest=payload["digest"])


# ----------------------------------------------------------------------
# suite runner: workloads x stacks through the fan-out machinery
# ----------------------------------------------------------------------
def workload_suite_specs(
    params,
    workloads: Sequence,
    stacks: Sequence,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
) -> list[WorkloadRunSpec]:
    """Expand a loaded suite into independent per-run tasks, stack-major
    so one stack's workloads sit together in reports."""
    return [
        WorkloadRunSpec(params=params, stack=resolve_spec(stack, timers),
                        workload=resolve_workload(workload), seed=seed)
        for stack in stacks
        for workload in workloads
    ]


def workload_task_label(spec: WorkloadRunSpec) -> str:
    """Human task label for supervisor records and quarantine tables."""
    return f"{spec.stack.name}/{spec.workload.name} seed={spec.seed}"


def run_workload_suite(
    params,
    workloads: Sequence,
    stacks: Sequence,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    report: Optional[FanoutReport] = None,
    policy: Optional[RetryPolicy] = None,
    supervisor: Optional[SupervisorReport] = None,
) -> list[Optional[WorkloadOutcome]]:
    """Run every workload on every stack, fanned out over ``jobs``
    workers and replayed from ``cache`` when given.  With a ``policy``
    (or ``supervisor`` report) the suite runs under the fault-tolerant
    supervisor: quarantined runs come back ``None``."""
    specs = workload_suite_specs(params, workloads, stacks, seed, timers)
    if policy is not None or supervisor is not None:
        return supervise_tasks(
            specs, run_workload_task, jobs=jobs, policy=policy,
            cache=cache, key_fn=workload_task_key,
            encode=encode_workload_outcome,
            decode=decode_workload_outcome, label_fn=workload_task_label,
            report=supervisor,
        )
    return execute_tasks(
        specs, run_workload_task, jobs=jobs, cache=cache,
        key_fn=workload_task_key, encode=encode_workload_outcome,
        decode=decode_workload_outcome, report=report,
    )
