"""UDP sockets over the IP stack (the BFD transport)."""

from __future__ import annotations

from typing import Callable, Optional

from repro.stack.addresses import Ipv4Address
from repro.stack.ipv4 import Ipv4Packet, PROTO_UDP
from repro.stack.payload import Payload
from repro.stack.udp import UdpDatagram
from repro.net.interface import Interface
from repro.iputil.stack import IpStack

# callback(payload, src_ip, src_port, ingress_interface)
UdpCallback = Callable[[Payload, Ipv4Address, int, Interface], None]


class UdpService:
    """Port-demultiplexed UDP endpoints."""

    def __init__(self, stack: IpStack) -> None:
        self.stack = stack
        self.node = stack.node
        self._sockets: dict[int, UdpCallback] = {}
        stack.register_proto(PROTO_UDP, self._on_packet)
        self.node.udp = self

    def open(self, port: int, callback: UdpCallback) -> None:
        if port in self._sockets:
            raise ValueError(f"{self.node.name}: UDP port {port} in use")
        self._sockets[port] = callback

    def close(self, port: int) -> None:
        self._sockets.pop(port, None)

    def send(
        self,
        dst: Ipv4Address,
        dst_port: int,
        src_port: int,
        payload: Payload,
        src: Optional[Ipv4Address] = None,
        ttl: int = 64,
    ) -> None:
        """Send a datagram.  ``src`` defaults to the egress interface's
        address, resolved by a routing lookup (as the kernel does)."""
        if src is None:
            route = self.stack.table.lookup(dst)
            if route is None:
                self.stack.counters.dropped_no_route += 1
                return
            iface = self.node.interfaces.get(route.nexthops[0].interface)
            if iface is None or iface.address is None:
                self.stack.counters.dropped_no_route += 1
                return
            src = iface.address
        datagram = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
        packet = Ipv4Packet(src=src, dst=dst, proto=PROTO_UDP,
                            payload=datagram, ttl=ttl)
        self.stack.send_packet(packet)

    def _on_packet(self, packet: Ipv4Packet, iface: Interface) -> None:
        datagram = packet.payload
        if not isinstance(datagram, UdpDatagram):
            return
        callback = self._sockets.get(datagram.dst_port)
        if callback is None:
            return
        callback(datagram.payload, packet.src, datagram.src_port, iface)
