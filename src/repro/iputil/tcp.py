"""TCP over the IP stack (the BGP transport).

A deliberately compact but *behaviourally real* TCP: three-way handshake,
byte-counted sequence numbers, cumulative ACKs with out-of-order
reassembly, retransmission with exponential backoff, FIN teardown and RST
abort.  Two simplifications, both documented in DESIGN.md:

* every application ``send()`` maps to one segment (callers must stay
  under the MSS — all BGP messages in these experiments do), so the
  receiver gets whole protocol messages back in order and BGP needs no
  re-framing layer;
* no congestion/flow control — DCN links here are never the bottleneck
  for control traffic.

Pure ACK segments are 66 bytes at L2 (14+20+32), which is what makes the
"Included in BGP communications is TCP acknowledgements" overhead of the
paper's Fig. 9 appear in our captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

from repro.sim.timers import Timer
from repro.sim.units import MILLISECOND, SECOND
from repro.stack.addresses import Ipv4Address
from repro.stack.ipv4 import Ipv4Packet, PROTO_TCP
from repro.stack.payload import Payload, RawBytes
from repro.stack.tcp_segment import TcpFlags, TcpSegment
from repro.net.interface import Interface
from repro.iputil.stack import IpStack

MSS = 1460
INITIAL_RTO_US = 200 * MILLISECOND
MAX_RTO_US = 4 * SECOND
MAX_RETRANSMITS = 8
TIME_WAIT_US = 1 * SECOND
INITIAL_SEQ = 1000  # deterministic ISS keeps traces reproducible


class TcpState(Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_WAIT_1 = "fin-wait-1"
    FIN_WAIT_2 = "fin-wait-2"
    CLOSE_WAIT = "close-wait"
    LAST_ACK = "last-ack"
    TIME_WAIT = "time-wait"


ConnKey = tuple[int, int, int, int]  # local_ip, local_port, remote_ip, remote_port


def _conn_key(local: Ipv4Address, lport: int, remote: Ipv4Address, rport: int) -> ConnKey:
    return (local.value, lport, remote.value, rport)


@dataclass
class _Unacked:
    seq: int
    segment: TcpSegment
    retransmits: int = 0


class TcpConnection:
    """One TCP connection endpoint."""

    def __init__(
        self,
        service: "TcpService",
        local: Ipv4Address,
        local_port: int,
        remote: Ipv4Address,
        remote_port: int,
    ) -> None:
        self.service = service
        self.node = service.node
        self.sim = service.node.sim
        self.local = local
        self.local_port = local_port
        self.remote = remote
        self.remote_port = remote_port
        self.state = TcpState.CLOSED
        # sequence bookkeeping
        self.snd_nxt = INITIAL_SEQ
        self.snd_una = INITIAL_SEQ
        self.rcv_nxt = 0
        self._fin_sent = False
        self._reassembly: dict[int, TcpSegment] = {}
        self._unacked: list[_Unacked] = []
        self._rto = INITIAL_RTO_US
        self._rto_timer = Timer(self.sim, INITIAL_RTO_US, self._on_rto, name="tcp-rto")
        # application callbacks
        self.on_receive: Optional[Callable[[Payload], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        self.on_close: Optional[Callable[[str], None]] = None
        # stats
        self.segments_sent = 0
        self.segments_retransmitted = 0
        self.bytes_delivered = 0

    # ------------------------------------------------------------------
    @property
    def key(self) -> ConnKey:
        return _conn_key(self.local, self.local_port, self.remote, self.remote_port)

    @property
    def established(self) -> bool:
        return self.state is TcpState.ESTABLISHED

    def __repr__(self) -> str:
        return (
            f"<TCP {self.local}:{self.local_port} <-> "
            f"{self.remote}:{self.remote_port} {self.state.value}>"
        )

    # ------------------------------------------------------------------
    # application API
    # ------------------------------------------------------------------
    def send(self, payload: Payload) -> None:
        """Send one application message as a single segment."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise RuntimeError(f"send() in state {self.state.value}")
        if payload.wire_size > MSS:
            raise ValueError(
                f"payload of {payload.wire_size} B exceeds MSS {MSS}; "
                "message-per-segment model requires smaller sends"
            )
        segment = self._make_segment(
            flags=TcpFlags.ACK | TcpFlags.PSH, payload=payload
        )
        self.snd_nxt += segment.seq_space
        self._transmit(segment, track=True)

    def close(self) -> None:
        """Graceful close (FIN)."""
        if self.state is TcpState.ESTABLISHED:
            self._send_fin()
            self.state = TcpState.FIN_WAIT_1
        elif self.state is TcpState.CLOSE_WAIT:
            self._send_fin()
            self.state = TcpState.LAST_ACK
        elif self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
            self.abort()

    def abort(self, reason: str = "aborted") -> None:
        """Hard close: send RST (if we ever got started) and tear down."""
        if self.state is not TcpState.CLOSED:
            rst = self._make_segment(flags=TcpFlags.RST)
            self._transmit(rst, track=False)
        self._teardown(reason)

    # ------------------------------------------------------------------
    # internals: sending
    # ------------------------------------------------------------------
    def _make_segment(
        self, flags: TcpFlags, payload: Payload = RawBytes(0)
    ) -> TcpSegment:
        return TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flags=flags,
            payload=payload,
        )

    def _send_syn(self, with_ack: bool) -> None:
        flags = TcpFlags.SYN | TcpFlags.ACK if with_ack else TcpFlags.SYN
        segment = self._make_segment(flags=flags)
        self.snd_nxt += segment.seq_space
        self._transmit(segment, track=True)

    def _send_fin(self) -> None:
        self._fin_sent = True
        segment = self._make_segment(flags=TcpFlags.FIN | TcpFlags.ACK)
        self.snd_nxt += segment.seq_space
        self._transmit(segment, track=True)

    def _send_pure_ack(self) -> None:
        self._transmit(self._make_segment(flags=TcpFlags.ACK), track=False)

    def _transmit(self, segment: TcpSegment, track: bool) -> None:
        if track and segment.seq_space > 0:
            self._unacked.append(_Unacked(seq=segment.seq, segment=segment))
            if not self._rto_timer.running:
                self._rto_timer.start(self._rto)
        self.segments_sent += 1
        packet = Ipv4Packet(
            src=self.local, dst=self.remote, proto=PROTO_TCP, payload=segment
        )
        self.service.stack.send_packet(packet)

    def _on_rto(self) -> None:
        if not self._unacked:
            return
        oldest = self._unacked[0]
        oldest.retransmits += 1
        if oldest.retransmits > MAX_RETRANSMITS:
            self.node.log("tcp.fail", f"{self!r} retransmit limit")
            self.abort("retransmit-timeout")
            return
        self.segments_retransmitted += 1
        # re-send with the *current* cumulative ack
        seg = oldest.segment
        resend = TcpSegment(
            src_port=seg.src_port, dst_port=seg.dst_port, seq=seg.seq,
            ack=self.rcv_nxt, flags=seg.flags, payload=seg.payload,
        )
        oldest.segment = resend
        packet = Ipv4Packet(
            src=self.local, dst=self.remote, proto=PROTO_TCP, payload=resend
        )
        self.segments_sent += 1
        self.service.stack.send_packet(packet)
        self._rto = min(self._rto * 2, MAX_RTO_US)
        self._rto_timer.start(self._rto)

    # ------------------------------------------------------------------
    # internals: receiving
    # ------------------------------------------------------------------
    def handle_segment(self, segment: TcpSegment) -> None:
        if TcpFlags.RST in segment.flags:
            self._teardown("reset-by-peer")
            return

        if TcpFlags.ACK in segment.flags:
            self._process_ack(segment.ack)

        if self.state is TcpState.SYN_SENT:
            if TcpFlags.SYN in segment.flags and TcpFlags.ACK in segment.flags:
                self.rcv_nxt = segment.seq + segment.seq_space
                self.state = TcpState.ESTABLISHED
                self._send_pure_ack()
                if self.on_established:
                    self.on_established()
            return

        if self.state is TcpState.SYN_RCVD:
            if TcpFlags.ACK in segment.flags and self.snd_una == self.snd_nxt:
                self.state = TcpState.ESTABLISHED
                if self.on_established:
                    self.on_established()
            # fall through: the ACK may carry data

        if segment.seq_space > 0:
            self._process_payload(segment)

    def _process_ack(self, ack: int) -> None:
        if ack <= self.snd_una:
            return
        self.snd_una = ack
        self._unacked = [
            u for u in self._unacked
            if u.seq + u.segment.seq_space > ack
        ]
        if self._unacked:
            self._rto_timer.start(self._rto)
        else:
            self._rto = INITIAL_RTO_US
            self._rto_timer.stop()
        if self.state is TcpState.FIN_WAIT_1 and self.snd_una == self.snd_nxt:
            self.state = TcpState.FIN_WAIT_2
        elif self.state is TcpState.LAST_ACK and self.snd_una == self.snd_nxt:
            self._teardown("closed")

    def _process_payload(self, segment: TcpSegment) -> None:
        if segment.seq + segment.seq_space <= self.rcv_nxt:
            # pure duplicate — re-ack so the sender can advance
            self._send_pure_ack()
            return
        self._reassembly[segment.seq] = segment
        advanced = False
        while self.rcv_nxt in self._reassembly:
            seg = self._reassembly.pop(self.rcv_nxt)
            self.rcv_nxt += seg.seq_space
            advanced = True
            self._consume(seg)
        if advanced or segment.seq > self.rcv_nxt:
            self._send_pure_ack()

    def _consume(self, segment: TcpSegment) -> None:
        if TcpFlags.SYN in segment.flags:
            return  # handshake bookkeeping only
        if segment.data_len > 0 and self.on_receive:
            self.bytes_delivered += segment.data_len
            self.on_receive(segment.payload)
        if TcpFlags.FIN in segment.flags:
            self._handle_fin()

    def _handle_fin(self) -> None:
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
            if self.on_close:
                self.on_close("peer-closed")
        elif self.state in (TcpState.FIN_WAIT_1, TcpState.FIN_WAIT_2):
            self.state = TcpState.TIME_WAIT
            self.sim.schedule_after(TIME_WAIT_US, self._time_wait_expire)

    def _time_wait_expire(self) -> None:
        if self.state is TcpState.TIME_WAIT:
            self._teardown("closed")

    def _teardown(self, reason: str) -> None:
        already_closed = self.state is TcpState.CLOSED
        self.state = TcpState.CLOSED
        self._rto_timer.stop()
        self._unacked.clear()
        self.service._forget(self)
        if not already_closed and reason != "closed" and self.on_close:
            self.on_close(reason)


class TcpService:
    """Per-node TCP demultiplexer."""

    def __init__(self, stack: IpStack) -> None:
        self.stack = stack
        self.node = stack.node
        self.sim = stack.node.sim
        self._connections: dict[ConnKey, TcpConnection] = {}
        self._listeners: dict[int, Callable[[TcpConnection], None]] = {}
        self._ephemeral = 49152
        stack.register_proto(PROTO_TCP, self._on_packet)
        self.node.tcp = self

    # ------------------------------------------------------------------
    def listen(self, port: int, on_accept: Callable[[TcpConnection], None]) -> None:
        if port in self._listeners:
            raise ValueError(f"{self.node.name}: TCP port {port} in use")
        self._listeners[port] = on_accept

    def unlisten(self, port: int) -> None:
        self._listeners.pop(port, None)

    def connect(
        self,
        remote: Ipv4Address,
        remote_port: int,
        local: Optional[Ipv4Address] = None,
        local_port: Optional[int] = None,
    ) -> TcpConnection:
        """Active open.  ``local`` defaults to the egress interface
        address for ``remote`` (kernel source-address selection)."""
        if local is None:
            route = self.stack.table.lookup(remote)
            if route is None:
                raise RuntimeError(f"{self.node.name}: no route to {remote}")
            iface = self.node.interfaces[route.nexthops[0].interface]
            if iface.address is None:
                raise RuntimeError(f"{iface.full_name} has no address")
            local = iface.address
        if local_port is None:
            local_port = self._ephemeral
            self._ephemeral += 1
            if self._ephemeral > 65535:
                self._ephemeral = 49152
        conn = TcpConnection(self, local, local_port, remote, remote_port)
        self._connections[conn.key] = conn
        conn.state = TcpState.SYN_SENT
        conn._send_syn(with_ack=False)
        return conn

    def _forget(self, conn: TcpConnection) -> None:
        self._connections.pop(conn.key, None)

    # ------------------------------------------------------------------
    def _on_packet(self, packet: Ipv4Packet, iface: Interface) -> None:
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            return
        key = _conn_key(packet.dst, segment.dst_port, packet.src, segment.src_port)
        conn = self._connections.get(key)
        if conn is not None:
            conn.handle_segment(segment)
            return
        # no connection: maybe a listener (SYN), else RST
        if TcpFlags.SYN in segment.flags and TcpFlags.ACK not in segment.flags:
            on_accept = self._listeners.get(segment.dst_port)
            if on_accept is not None:
                conn = TcpConnection(
                    self, packet.dst, segment.dst_port, packet.src, segment.src_port
                )
                self._connections[conn.key] = conn
                conn.state = TcpState.SYN_RCVD
                conn.rcv_nxt = segment.seq + segment.seq_space
                on_accept(conn)
                conn._send_syn(with_ack=True)
                return
        if TcpFlags.RST not in segment.flags:
            # refuse with RST
            rst = TcpSegment(
                src_port=segment.dst_port, dst_port=segment.src_port,
                seq=segment.ack, ack=segment.seq + segment.seq_space,
                flags=TcpFlags.RST | TcpFlags.ACK,
            )
            self.stack.send_packet(
                Ipv4Packet(src=packet.dst, dst=packet.src, proto=PROTO_TCP,
                           payload=rst)
            )
