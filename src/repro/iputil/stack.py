"""IPv4 host stack: ARP + forwarding + local delivery.

One :class:`IpStack` instance per node on the BGP data path.  Servers run
it with ``forwarding=False`` and a default route to their ToR; routers run
it with forwarding enabled and BGP programming the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.units import MILLISECOND, SECOND
from repro.stack.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.stack.arp import ArpMessage, ArpOp
from repro.stack.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
)
from repro.stack.icmp import IcmpMessage, IcmpType
from repro.stack.ipv4 import Ipv4Packet, PROTO_ICMP
from repro.routing.ecmp import FlowKey
from repro.routing.table import NextHop, Route, RoutingTable
from repro.net.interface import Interface
from repro.net.node import Node

ARP_RETRY_US = 200 * MILLISECOND
ARP_MAX_TRIES = 3

ProtoHandler = Callable[[Ipv4Packet, Interface], None]


@dataclass
class IpCounters:
    sent: int = 0
    forwarded: int = 0
    delivered: int = 0
    dropped_no_route: int = 0
    dropped_ttl: int = 0
    dropped_arp_fail: int = 0
    dropped_iface_down: int = 0


@dataclass
class _PendingArp:
    tries: int = 0
    queue: list[Ipv4Packet] = field(default_factory=list)
    timer_handle: object = None


class IpStack:
    """ARP + IPv4 forwarding service attached to a node."""

    def __init__(self, node: Node, forwarding: bool = True, salt: int = 0) -> None:
        self.node = node
        self.sim = node.sim
        self.forwarding = forwarding
        # Optional pre-forwarding hook: ``intercept(iface, packet) -> bool``.
        # MR-MTP installs this on ToRs to pull rack traffic into its
        # encapsulated data plane; True means the packet was consumed.
        self.intercept = None
        self.table = RoutingTable(name=node.name, sim=node.sim, salt=salt)
        self.counters = IpCounters()
        self._proto_handlers: dict[int, ProtoHandler] = {}
        # per-interface ARP cache and pending queues
        self._arp_cache: dict[tuple[str, Ipv4Address], MacAddress] = {}
        self._arp_pending: dict[tuple[str, Ipv4Address], _PendingArp] = {}
        # ICMP: echo responder built in; listeners get replies and errors
        self._icmp_listeners: list = []
        self.register_proto(PROTO_ICMP, self._on_icmp)
        node.register_handler(ETHERTYPE_IPV4, self._on_ip_frame)
        node.register_handler(ETHERTYPE_ARP, self._on_arp_frame)
        node.ip = self  # conventional attachment point

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def install_connected_routes(self) -> None:
        """One connected route per addressed interface."""
        for iface in self.node.interfaces.values():
            if iface.address is not None and iface.network is not None:
                self.table.install(
                    Route(
                        prefix=iface.network,
                        nexthops=(NextHop(interface=iface.name),),
                        proto="connected",
                    )
                )

    def local_addresses(self) -> set[Ipv4Address]:
        return {
            iface.address
            for iface in self.node.interfaces.values()
            if iface.address is not None
        }

    def register_proto(self, proto: int, handler: ProtoHandler) -> None:
        if proto in self._proto_handlers:
            raise ValueError(f"{self.node.name}: IP proto {proto} already bound")
        self._proto_handlers[proto] = handler

    def address_on(self, iface_name: str) -> Ipv4Address:
        address = self.node.interfaces[iface_name].address
        if address is None:
            raise ValueError(f"{self.node.name}:{iface_name} has no address")
        return address

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def send_packet(self, packet: Ipv4Packet, flow: Optional[FlowKey] = None) -> None:
        """Route and transmit a locally originated packet."""
        self.counters.sent += 1
        self._route_and_emit(packet, flow)

    def forward_local(self, packet: Ipv4Packet) -> None:
        """Emit a packet that arrived by other means (MR-MTP de-encapsulation
        at a ToR) toward its destination — typically a connected rack route."""
        self.counters.forwarded += 1
        self._route_and_emit(packet)

    def _flow_for(self, packet: Ipv4Packet) -> FlowKey:
        # Transport ports participate in the hash when present.
        src_port = getattr(packet.payload, "src_port", 0)
        dst_port = getattr(packet.payload, "dst_port", 0)
        return FlowKey(
            src=packet.src.value,
            dst=packet.dst.value,
            proto=packet.proto,
            src_port=src_port,
            dst_port=dst_port,
        )

    def _route_and_emit(self, packet: Ipv4Packet, flow: Optional[FlowKey] = None,
                        notify_unreachable: bool = False) -> None:
        if flow is None:
            flow = self._flow_for(packet)
        nexthop = self.table.select_nexthop(packet.dst, flow)
        if nexthop is None:
            self.counters.dropped_no_route += 1
            self.node.log("ip.drop", f"no route to {packet.dst}")
            if notify_unreachable:
                self._send_icmp_error(packet, IcmpType.DEST_UNREACHABLE)
            return
        iface = self.node.interfaces.get(nexthop.interface)
        if iface is None or not iface.admin_up or not iface.cabled:
            self.counters.dropped_iface_down += 1
            return
        arp_target = nexthop.via if nexthop.via is not None else packet.dst
        self._emit_via(iface, arp_target, packet)

    def _emit_via(self, iface: Interface, arp_target: Ipv4Address, packet: Ipv4Packet) -> None:
        mac = self._arp_cache.get((iface.name, arp_target))
        if mac is None:
            self._arp_enqueue(iface, arp_target, packet)
            return
        iface.send(
            EthernetFrame(dst=mac, src=iface.mac, ethertype=ETHERTYPE_IPV4,
                          payload=packet)
        )

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_ip_frame(self, iface: Interface, frame: EthernetFrame) -> None:
        packet = frame.payload
        if not isinstance(packet, Ipv4Packet):
            return
        if packet.dst in self.local_addresses():
            self._deliver_local(packet, iface)
            return
        if self.intercept is not None and self.intercept(iface, packet):
            return
        if not self.forwarding:
            return
        if packet.ttl <= 1:
            self.counters.dropped_ttl += 1
            self.node.log("ip.drop", f"TTL expired for {packet.dst}")
            self._send_icmp_error(packet, IcmpType.TIME_EXCEEDED)
            return
        self.counters.forwarded += 1
        self._route_and_emit(packet.decrement_ttl(),
                             notify_unreachable=True)

    def _deliver_local(self, packet: Ipv4Packet, iface: Interface) -> None:
        handler = self._proto_handlers.get(packet.proto)
        if handler is None:
            self.node.log("ip.unreach", f"no proto handler {packet.proto}")
            return
        self.counters.delivered += 1
        handler(packet, iface)

    # ------------------------------------------------------------------
    # ICMP (echo responder + error generation, RFC 792)
    # ------------------------------------------------------------------
    def add_icmp_listener(self, listener) -> None:
        """``listener(message, src_ip)`` sees echo replies and errors
        delivered to this host (ping/traceroute hook)."""
        self._icmp_listeners.append(listener)

    def remove_icmp_listener(self, listener) -> None:
        self._icmp_listeners.remove(listener)

    def send_echo_request(self, dst: Ipv4Address, identifier: int,
                          sequence: int, ttl: int = 64,
                          data_bytes: int = 56) -> None:
        message = IcmpMessage(IcmpType.ECHO_REQUEST, identifier=identifier,
                              sequence=sequence, data_bytes=data_bytes)
        src = self._source_address_for(dst)
        if src is None:
            self.counters.dropped_no_route += 1
            return
        self.send_packet(Ipv4Packet(src=src, dst=dst, proto=PROTO_ICMP,
                                    payload=message, ttl=ttl))

    def _source_address_for(self, dst: Ipv4Address) -> Optional[Ipv4Address]:
        route = self.table.lookup(dst)
        if route is None:
            return None
        iface = self.node.interfaces.get(route.nexthops[0].interface)
        return iface.address if iface is not None else None

    def _on_icmp(self, packet: Ipv4Packet, iface: Interface) -> None:
        message = packet.payload
        if not isinstance(message, IcmpMessage):
            return
        if message.icmp_type is IcmpType.ECHO_REQUEST:
            reply = IcmpMessage(IcmpType.ECHO_REPLY,
                                identifier=message.identifier,
                                sequence=message.sequence,
                                data_bytes=message.data_bytes)
            self.send_packet(Ipv4Packet(src=packet.dst, dst=packet.src,
                                        proto=PROTO_ICMP, payload=reply))
            return
        for listener in list(self._icmp_listeners):
            listener(message, packet.src)

    def _send_icmp_error(self, offending: Ipv4Packet, icmp_type: IcmpType) -> None:
        # never generate errors about ICMP errors (RFC 792 loop guard)
        if (isinstance(offending.payload, IcmpMessage)
                and offending.payload.is_error):
            return
        src = self._source_address_for(offending.src)
        if src is None:
            return
        error = IcmpMessage(
            icmp_type,
            # quote the offending IP header + 8 payload bytes
            quoted_bytes=20 + min(8, offending.payload.wire_size),
        )
        self.send_packet(Ipv4Packet(src=src, dst=offending.src,
                                    proto=PROTO_ICMP, payload=error))

    # ------------------------------------------------------------------
    # ARP
    # ------------------------------------------------------------------
    def _arp_enqueue(self, iface: Interface, target: Ipv4Address, packet: Ipv4Packet) -> None:
        key = (iface.name, target)
        pending = self._arp_pending.get(key)
        if pending is None:
            pending = _PendingArp()
            self._arp_pending[key] = pending
            self._arp_send_request(iface, target)
            pending.tries = 1
            pending.timer_handle = self.sim.schedule_after(
                ARP_RETRY_US, self._arp_retry, iface, target
            )
        pending.queue.append(packet)

    def _arp_send_request(self, iface: Interface, target: Ipv4Address) -> None:
        if iface.address is None:
            return
        request = ArpMessage(
            op=ArpOp.REQUEST,
            sender_mac=iface.mac,
            sender_ip=iface.address,
            target_ip=target,
        )
        iface.send(
            EthernetFrame(dst=BROADCAST_MAC, src=iface.mac,
                          ethertype=ETHERTYPE_ARP, payload=request)
        )

    def _arp_retry(self, iface: Interface, target: Ipv4Address) -> None:
        key = (iface.name, target)
        pending = self._arp_pending.get(key)
        if pending is None:
            return
        if pending.tries >= ARP_MAX_TRIES:
            self.counters.dropped_arp_fail += len(pending.queue)
            del self._arp_pending[key]
            self.node.log("arp.fail", f"no reply for {target} on {iface.name}")
            return
        pending.tries += 1
        self._arp_send_request(iface, target)
        pending.timer_handle = self.sim.schedule_after(
            ARP_RETRY_US, self._arp_retry, iface, target
        )

    def _on_arp_frame(self, iface: Interface, frame: EthernetFrame) -> None:
        msg = frame.payload
        if not isinstance(msg, ArpMessage):
            return
        # Learn the sender mapping opportunistically (gratuitous learning).
        self._arp_cache[(iface.name, msg.sender_ip)] = msg.sender_mac
        if msg.op is ArpOp.REQUEST and msg.target_ip == iface.address:
            reply = ArpMessage(
                op=ArpOp.REPLY,
                sender_mac=iface.mac,
                sender_ip=iface.address,
                target_ip=msg.sender_ip,
                target_mac=msg.sender_mac,
            )
            iface.send(
                EthernetFrame(dst=msg.sender_mac, src=iface.mac,
                              ethertype=ETHERTYPE_ARP, payload=reply)
            )
        # Flush anything queued on this resolution.
        key = (iface.name, msg.sender_ip)
        pending = self._arp_pending.pop(key, None)
        if pending is not None:
            if pending.timer_handle is not None:
                pending.timer_handle.cancel()
            for packet in pending.queue:
                self._emit_via(iface, msg.sender_ip, packet)
