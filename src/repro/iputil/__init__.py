"""Host IP stack.

The per-node "kernel": ARP resolution, IPv4 forwarding with ECMP, local
delivery, and the UDP/TCP transport services that BFD and BGP ride on.
MR-MTP deliberately bypasses everything in this package inside the fabric
— that bypass is the 6-protocols-replaced-by-1 claim of the paper.
"""

from repro.iputil.stack import IpStack
from repro.iputil.udp_service import UdpService
from repro.iputil.tcp import TcpService, TcpConnection, TcpState

__all__ = ["IpStack", "UdpService", "TcpService", "TcpConnection", "TcpState"]
