"""Ping and traceroute over the simulated IP stack.

Data-plane probing utilities: RTT measurement and hop discovery.  Under
the BGP fabric a traceroute reveals every router hop (each decrements
TTL); under MR-MTP the fabric is a single IP hop — the encapsulated
transit never touches the inner TTL, exactly like the VXLAN-style
overlay the paper assumes for inter-rack VM traffic (section III.A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.timers import Timer
from repro.sim.units import MILLISECOND, SECOND
from repro.stack.addresses import Ipv4Address
from repro.stack.icmp import IcmpMessage, IcmpType
from repro.iputil.stack import IpStack

_next_identifier = 0


def _new_identifier() -> int:
    global _next_identifier
    _next_identifier = (_next_identifier + 1) % 0xFFFF
    return _next_identifier or 1


@dataclass
class PingResult:
    sent: int
    received: int
    rtts_us: list[int] = field(default_factory=list)

    @property
    def lost(self) -> int:
        return self.sent - self.received

    @property
    def min_rtt_us(self) -> Optional[int]:
        return min(self.rtts_us) if self.rtts_us else None

    @property
    def avg_rtt_us(self) -> Optional[float]:
        return sum(self.rtts_us) / len(self.rtts_us) if self.rtts_us else None


class Pinger:
    """Sends echo requests and collects RTTs; calls back when done."""

    def __init__(
        self,
        stack: IpStack,
        dst: Ipv4Address,
        count: int = 5,
        interval_us: int = 100 * MILLISECOND,
        timeout_us: int = 1 * SECOND,
        on_done: Optional[Callable[[PingResult], None]] = None,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.dst = dst
        self.count = count
        self.interval_us = interval_us
        self.timeout_us = timeout_us
        self.on_done = on_done
        self.identifier = _new_identifier()
        self.result = PingResult(sent=0, received=0)
        self._sent_at: dict[int, int] = {}
        self._finished = False
        stack.add_icmp_listener(self._on_icmp)

    def start(self) -> None:
        self._send_next()

    def _send_next(self) -> None:
        if self.result.sent >= self.count:
            self.sim.schedule_after(self.timeout_us, self._finish)
            return
        seq = self.result.sent
        self._sent_at[seq] = self.sim.now
        self.stack.send_echo_request(self.dst, self.identifier, seq)
        self.result.sent += 1
        self.sim.schedule_after(self.interval_us, self._send_next)

    def _on_icmp(self, message: IcmpMessage, src: Ipv4Address) -> None:
        if (message.icmp_type is not IcmpType.ECHO_REPLY
                or message.identifier != self.identifier
                or src != self.dst):
            return
        sent_at = self._sent_at.pop(message.sequence, None)
        if sent_at is None:
            return
        self.result.received += 1
        self.result.rtts_us.append(self.sim.now - sent_at)

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.stack.remove_icmp_listener(self._on_icmp)
        if self.on_done:
            self.on_done(self.result)


@dataclass
class TracerouteHop:
    ttl: int
    address: Optional[Ipv4Address]  # None = no answer (silent hop)
    rtt_us: Optional[int]
    reached: bool = False


class Traceroute:
    """Classic TTL-walking traceroute with one probe per hop."""

    def __init__(
        self,
        stack: IpStack,
        dst: Ipv4Address,
        max_hops: int = 16,
        probe_timeout_us: int = 500 * MILLISECOND,
        on_done: Optional[Callable[[list[TracerouteHop]], None]] = None,
    ) -> None:
        self.stack = stack
        self.sim = stack.sim
        self.dst = dst
        self.max_hops = max_hops
        self.on_done = on_done
        self.identifier = _new_identifier()
        self.hops: list[TracerouteHop] = []
        self._ttl = 0
        self._probe_sent_at = 0
        self._answered = False
        self._timeout = Timer(self.sim, probe_timeout_us, self._on_timeout,
                              name="traceroute")
        stack.add_icmp_listener(self._on_icmp)

    def start(self) -> None:
        self._next_probe()

    def _next_probe(self) -> None:
        self._ttl += 1
        if self._ttl > self.max_hops:
            self._finish()
            return
        self._answered = False
        self._probe_sent_at = self.sim.now
        self.stack.send_echo_request(self.dst, self.identifier,
                                     sequence=self._ttl, ttl=self._ttl)
        self._timeout.start()

    def _on_icmp(self, message: IcmpMessage, src: Ipv4Address) -> None:
        if self._answered:
            return
        rtt = self.sim.now - self._probe_sent_at
        if (message.icmp_type is IcmpType.ECHO_REPLY
                and message.identifier == self.identifier
                and src == self.dst):
            self._answered = True
            self._timeout.stop()
            self.hops.append(TracerouteHop(self._ttl, src, rtt, reached=True))
            self._finish()
        elif message.icmp_type is IcmpType.TIME_EXCEEDED:
            self._answered = True
            self._timeout.stop()
            self.hops.append(TracerouteHop(self._ttl, src, rtt))
            self._next_probe()

    def _on_timeout(self) -> None:
        if self._answered:
            return
        self.hops.append(TracerouteHop(self._ttl, None, None))
        self._next_probe()

    def _finish(self) -> None:
        self.stack.remove_icmp_listener(self._on_icmp)
        if self.on_done:
            self.on_done(self.hops)

    def render(self) -> str:
        lines = [f"traceroute to {self.dst}, {self.max_hops} hops max"]
        for hop in self.hops:
            if hop.address is None:
                lines.append(f"{hop.ttl:>3d}  *")
            else:
                rtt_ms = hop.rtt_us / 1000
                mark = "  [destination]" if hop.reached else ""
                lines.append(f"{hop.ttl:>3d}  {hop.address}  "
                             f"{rtt_ms:.3f} ms{mark}")
        return "\n".join(lines)
