"""Restartable timers built on the event engine.

Protocol code (hold timers, dead timers, hello intervals, MRAI) uses these
instead of raw events: a :class:`Timer` can be started, restarted ("kicked")
and stopped; a :class:`PeriodicTimer` refires on a fixed interval with
optional per-firing jitter (BFD-style 75-100% scaling).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventHandle, Simulator


class Timer:
    """A one-shot, restartable timer.

    ``restart()`` is the idiom for dead/hold timers: every received
    keepalive kicks the timer; if it ever fires, the neighbor is declared
    down.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: int,
        callback: Callable[[], None],
        name: str = "timer",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"timer interval must be positive, got {interval}")
        self.sim = sim
        self.interval = int(interval)
        self.callback = callback
        self.name = name
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        return self._handle is not None and self._handle.active

    @property
    def expires_at(self) -> Optional[int]:
        return self._handle.time if self.running else None

    def start(self, interval: Optional[int] = None) -> None:
        """(Re)start the timer; fires ``interval`` ticks from now."""
        if interval is not None:
            if interval <= 0:
                raise ValueError("interval must be positive")
            self.interval = int(interval)
        self.stop()
        self._handle = self.sim.schedule_after(self.interval, self._fire)

    # restart is an alias that reads better at call sites that "kick" a
    # dead timer on every received message.
    restart = start

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self.callback()


class PeriodicTimer:
    """Fires ``callback`` every ``interval`` ticks until stopped.

    ``jitter`` (0..1) scales each period uniformly in
    ``[(1-jitter)*interval, interval]`` using the supplied RNG — the BFD
    transmit-interval rule (RFC 5880 section 6.8.7 mandates 75-100%).
    Deterministic when the RNG is seeded.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: int,
        callback: Callable[[], None],
        name: str = "periodic",
        jitter: float = 0.0,
        rng=None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"timer interval must be positive, got {interval}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if jitter > 0.0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.sim = sim
        self.interval = int(interval)
        self.callback = callback
        self.name = name
        self.jitter = jitter
        self.rng = rng
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        return self._handle is not None and self._handle.active

    def _next_period(self) -> int:
        if self.jitter == 0.0:
            return self.interval
        lo = (1.0 - self.jitter) * self.interval
        period = int(self.rng.uniform(lo, self.interval))
        return max(1, period)

    def start(self, immediate: bool = False) -> None:
        self.stop()
        delay = 0 if immediate else self._next_period()
        self._handle = self.sim.schedule_after(delay, self._fire)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def set_interval(self, interval: int) -> None:
        """Change the period; takes effect from the next scheduling."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = int(interval)

    def _fire(self) -> None:
        # Reschedule before the callback so the callback may stop() us.
        self._handle = self.sim.schedule_after(self._next_period(), self._fire)
        self.callback()
