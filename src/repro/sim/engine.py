"""Deterministic discrete-event engine with two scheduler backends.

Events are ordered by (time, priority, sequence-number); the sequence
number makes scheduling order the tiebreaker, so runs are bit-for-bit
reproducible for a fixed seed.  Cancellation is O(1) (tombstoning) in
both backends.

Backends (the ``engine_backend`` flag):

``wheel`` (default)
    A hierarchical timer wheel: 4 levels of 256 slots covering 2^32
    ticks of lookahead (level *L* slots are 256^L ticks wide).  Insert
    is O(1) — compute the level whose aligned window contains the
    event's time, append to the slot list, set a bit in the level's
    occupancy mask.  Advancing finds the next populated slot with bit
    tricks and cascades coarser slots down one level at a time;
    tombstoned (cancelled) events are discarded wholesale the first
    time their slot is visited, so hello/keepalive/dead-timer churn —
    schedule, cancel on every received keepalive, reschedule — never
    pays a comparison.  Events behind a level's current window (rare:
    only after an ``until``-bounded run stopped mid-cascade) and events
    beyond the 2^32-tick horizon go to a small fallback heap that is
    merged by (time, priority, seq) at dispatch.

``heap``
    The original binary heap, kept verbatim in semantics for
    differential testing; entries are (time, priority, seq, event)
    tuples so ordering comparisons stay in C.

Both backends dispatch through the same same-timestamp batch: all
events due at time *t* are drained into one small (priority, seq) heap
and fired in order; callbacks scheduling at the current time join the
live batch, preserving causal FIFO ordering exactly as the single heap
did.  The determinism contract — identical firing order, hence
byte-identical trace digests — is enforced by differential property
tests in ``tests/sim``.
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, Callable, Optional

BACKEND_ENV_VAR = "REPRO_ENGINE_BACKEND"
WHEEL_BACKEND = "wheel"
HEAP_BACKEND = "heap"
BACKENDS = (WHEEL_BACKEND, HEAP_BACKEND)

# "run to exhaustion" sentinel passed to the backends; larger than any
# simulated time (2^63 us is ~292k years).
_NO_LIMIT = 1 << 63


def default_backend() -> str:
    """The process-wide default scheduler backend.

    ``REPRO_ENGINE_BACKEND=heap`` selects the legacy binary heap; the
    environment variable (rather than a constructor argument threaded
    through every driver) is what lets whole experiment pipelines —
    including worker processes of a fan-out — be flipped for the
    before/after golden-digest comparisons.
    """
    return os.environ.get(BACKEND_ENV_VAR, WHEEL_BACKEND)


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback; doubles as its own cancellation handle.

    ``cancel()`` only flips a flag — O(1) regardless of where the event
    currently rests (wheel slot, heap, or the active dispatch batch);
    the tombstone is discarded when its container is next visited.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    @property
    def active(self) -> bool:
        return not self.cancelled

    def cancel(self) -> None:
        """Cancel the event.  Safe to call more than once or after firing."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "active"
        return f"<Event t={self.time} pri={self.priority} seq={self.seq} {state}>"


# The handle returned by ``Simulator.schedule`` *is* the event; the old
# wrapper class added an allocation per scheduled event for no benefit.
EventHandle = Event


class _HeapBackend:
    """The legacy binary-heap scheduler (tuple entries, C comparisons)."""

    __slots__ = ("_heap", "discarded")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, Event]] = []
        self.discarded = 0  # tombstones dropped without firing

    def push(self, event: Event) -> None:
        heappush(self._heap, (event.time, event.priority, event.seq, event))

    def collect(self, batch: list, limit: int) -> Optional[int]:
        """Drain every live event due at the earliest pending tick into
        ``batch`` (a (priority, seq, event) heap) and return that tick,
        or None when the queue is drained / the next tick is beyond
        ``limit`` (nothing is consumed in that case)."""
        heap = self._heap
        while heap:
            head = heap[0]
            if head[3].cancelled:
                heappop(heap)
                self.discarded += 1
                continue
            tick = head[0]
            if tick > limit:
                return None
            while heap and heap[0][0] == tick:
                _, priority, seq, event = heappop(heap)
                if event.cancelled:
                    self.discarded += 1
                else:
                    heappush(batch, (priority, seq, event))
            return tick
        return None

    def live_count(self) -> int:
        return sum(1 for entry in self._heap if not entry[3].cancelled)


_WHEEL_BITS = 8
_WHEEL_SLOTS = 1 << _WHEEL_BITS  # 256
_SLOT_MASK = _WHEEL_SLOTS - 1


class _WheelBackend:
    """Hierarchical timer wheel: O(1) insert, batched tombstone discard.

    Level *L* (0..3) divides time into aligned slots of 256^L ticks;
    each level maps one aligned 256-slot window, identified by
    ``_base[L]`` (the window's block number, ``time >> (8*(L+1))``).
    An event goes into the finest level whose current window contains
    its time.  When level 0 drains, the next populated level-1 slot is
    *cascaded* — re-distributed into level 0 — and so on upward.

    Two invariants keep the (time, priority, seq) contract exact:

    - a cascade never reorders: every event due at one tick is gathered
      into the caller's (priority, seq) batch heap before any of them
      fires;
    - an insert that lands *behind* a level's current window (possible
      only after an ``until``-bounded run advanced the wheel past times
      that were still legal to schedule) falls back to ``_far``, a plain
      heap merged with the wheel at every dispatch, so late-but-legal
      events still fire in exact order.  ``_far`` also absorbs events
      beyond the level-3 horizon.
    """

    __slots__ = ("_levels", "_masks", "_base", "_far", "_count", "discarded")

    def __init__(self) -> None:
        # Slot lists are allocated on first use and released when
        # consumed: a fresh Simulator costs four 256-entry arrays of
        # None, not 1024 list objects.
        self._levels: list[list[Optional[list[Event]]]] = [
            [None] * _WHEEL_SLOTS for _ in range(4)]
        self._masks = [0, 0, 0, 0]  # per-level occupancy bitmask
        self._base = [0, 0, 0, 0]   # per-level current window block
        self._far: list[tuple[int, int, int, Event]] = []
        self._count = 0             # wheel-resident events, incl. tombstones
        self.discarded = 0          # tombstones dropped without firing

    def push(self, event: Event) -> None:
        time = event.time
        base = self._base
        if self._count == 0:
            # Empty wheel: re-anchor every window on the new event so it
            # always lands in level 0 (keeps the common idle->schedule
            # pattern on the fast path).
            base[0] = time >> 8
            base[1] = time >> 16
            base[2] = time >> 24
            base[3] = time >> 32
        block = time >> 8
        if block == base[0]:
            # level 0 — the overwhelmingly common case (same-window
            # schedules): early-out without touching the elif chain
            index = time & _SLOT_MASK
            slots = self._levels[0]
            slot = slots[index]
            if slot is None:
                slots[index] = [event]
                self._masks[0] |= 1 << index
            else:
                slot.append(event)
            self._count += 1
            return
        if (time >> 16) == base[1] and block > base[0]:
            level, index = 1, block & _SLOT_MASK
        elif (time >> 24) == base[2] and (time >> 16) > base[1]:
            level, index = 2, (time >> 16) & _SLOT_MASK
        elif (time >> 32) == base[3] and (time >> 24) > base[2]:
            level, index = 3, (time >> 24) & _SLOT_MASK
        else:
            # behind a current window (until-cut straggler) or beyond
            # the horizon: the fallback heap keeps exact ordering
            heappush(self._far, (time, event.priority, event.seq, event))
            return
        slots = self._levels[level]
        slot = slots[index]
        if slot is None:
            slots[index] = [event]
            self._masks[level] |= 1 << index
        else:
            slot.append(event)
        self._count += 1

    def _cascade(self, level: int) -> None:
        """Re-distribute the next populated slot of ``level`` into
        ``level - 1`` and advance the finer window onto it."""
        masks = self._masks
        mask = masks[level]
        index = (mask & -mask).bit_length() - 1
        masks[level] = mask & (mask - 1)
        slots = self._levels[level]
        slot = slots[index]
        slots[index] = None
        below = level - 1
        self._base[below] = (self._base[level] << _WHEEL_BITS) | index
        shift = _WHEEL_BITS * below
        dest = self._levels[below]
        dest_mask = masks[below]
        dropped = 0
        for event in slot:
            if event.cancelled:
                dropped += 1
                continue
            i = (event.time >> shift) & _SLOT_MASK
            bucket = dest[i]
            if bucket is None:
                dest[i] = [event]
                dest_mask |= 1 << i
            else:
                bucket.append(event)
        masks[below] = dest_mask
        if dropped:
            self.discarded += dropped
            self._count -= dropped

    def collect(self, batch: list, limit: int) -> Optional[int]:
        """Drain every live event due at the earliest pending tick into
        ``batch`` and return that tick, or None when drained / the next
        tick is beyond ``limit`` (nothing live is consumed then; only
        cascades and tombstone discards may have happened).

        Callers always pass an empty ``batch`` (leftover batches are
        dispatched before collecting again), which the single-event fast
        path below relies on."""
        mask = self._masks[0]
        if mask and not self._far:
            # fast path: one live event alone in the earliest level-0
            # slot — the overwhelmingly common shape on fabric runs
            index = (mask & -mask).bit_length() - 1
            tick = (self._base[0] << _WHEEL_BITS) | index
            if tick <= limit:
                slots = self._levels[0]
                slot = slots[index]
                if len(slot) == 1:
                    event = slot[0]
                    if not event.cancelled:
                        slots[index] = None
                        self._masks[0] = mask & (mask - 1)
                        self._count -= 1
                        batch.append((event.priority, event.seq, event))
                        return tick
            else:
                return None
        masks = self._masks
        far = self._far
        while True:
            # locate the earliest populated level-0 slot, cascading
            # coarser levels down as their windows open
            while True:
                mask = masks[0]
                if mask:
                    index = (mask & -mask).bit_length() - 1
                    wheel_time = (self._base[0] << _WHEEL_BITS) | index
                    break
                if masks[1]:
                    self._cascade(1)
                elif masks[2]:
                    self._cascade(2)
                elif masks[3]:
                    self._cascade(3)
                else:
                    wheel_time = None
                    break
            if far:
                # drop cancelled stragglers, then let the earlier of
                # (far head, wheel slot) win; ties merge below
                while far and far[0][3].cancelled:
                    heappop(far)
                    self.discarded += 1
                if far and (wheel_time is None or far[0][0] < wheel_time):
                    tick = far[0][0]
                    if tick > limit:
                        return None
                    while far and far[0][0] == tick:
                        _, priority, seq, event = heappop(far)
                        if event.cancelled:
                            self.discarded += 1
                        else:
                            heappush(batch, (priority, seq, event))
                    if batch:
                        return tick
                    continue
            if wheel_time is None:
                return None
            if wheel_time > limit:
                return None
            level0 = self._levels[0]
            slot = level0[index]
            level0[index] = None
            masks[0] = mask & (mask - 1)
            self._count -= len(slot)
            dropped = 0
            for event in slot:
                if event.cancelled:
                    dropped += 1
                else:
                    heappush(batch, (event.priority, event.seq, event))
            if dropped:
                self.discarded += dropped
            while far and far[0][0] == wheel_time:
                _, priority, seq, event = heappop(far)
                if event.cancelled:
                    self.discarded += 1
                else:
                    heappush(batch, (priority, seq, event))
            if batch:
                return wheel_time
            # the slot held only tombstones — keep looking

    def live_count(self) -> int:
        count = sum(1 for entry in self._far if not entry[3].cancelled)
        for slots in self._levels:
            for slot in slots:
                if slot:
                    for event in slot:
                        if not event.cancelled:
                            count += 1
        return count


_BACKEND_CLASSES = {WHEEL_BACKEND: _WheelBackend, HEAP_BACKEND: _HeapBackend}


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_after(10, fired.append, 1)
    >>> sim.run()
    >>> (sim.now, fired)
    (10, [1])
    """

    __slots__ = ("_now", "_seq", "_running", "_processed", "_backend_name",
                 "_queue", "_qpush", "_batch", "_batch_time", "_batch_drops",
                 "_peak_depth")

    def __init__(self, backend: Optional[str] = None) -> None:
        name = backend if backend is not None else default_backend()
        try:
            queue_class = _BACKEND_CLASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown engine backend {name!r}; expected one of {BACKENDS}"
            ) from None
        self._backend_name = name
        self._queue = queue_class()
        self._qpush = self._queue.push  # pre-bound: hot in schedule_*
        self._now: int = 0
        self._seq: int = 0
        self._running: bool = False
        self._processed: int = 0
        # Same-timestamp dispatch batch: a (priority, seq, event) heap
        # holding every event due at _batch_time.  Non-empty between
        # run() calls only when a max_events budget expired mid-tick.
        self._batch: list[tuple[int, int, Event]] = []
        self._batch_time: int = -1
        self._batch_drops: int = 0
        self._peak_depth: int = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in integer microseconds."""
        return self._now

    @property
    def backend(self) -> str:
        return self._backend_name

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        batch_live = sum(1 for entry in self._batch if not entry[2].cancelled)
        return self._queue.live_count() + batch_live

    @property
    def queue_depth(self) -> int:
        """Resident events (including not-yet-discarded tombstones)."""
        return (self._seq - self._processed - self._batch_drops
                - self._queue.discarded)

    @property
    def peak_queue_depth(self) -> int:
        """High-water mark of :attr:`queue_depth`, sampled at every
        dispatch-tick boundary — the memory-pressure figure the perf
        suite records per scenario.  Tick-granularity sampling keeps the
        accounting off the per-schedule fast path."""
        return self._peak_depth

    def _sample_depth(self) -> None:
        depth = (self._seq - self._processed - self._batch_drops
                 - self._queue.discarded)
        if depth > self._peak_depth:
            self._peak_depth = depth

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now}): in the past"
            )
        if type(time) is not int:
            time = int(time)
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args)
        if time == self._batch_time:
            # joins the tick currently being dispatched, ordered by
            # (priority, seq) exactly as the single heap ordered it
            heappush(self._batch, (priority, seq, event))
        else:
            self._qpush(event)
        return event

    def schedule_after(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # duplicates schedule_at's body: this is the hottest scheduling
        # entry point (every protocol timer) and the extra call frame
        # showed up as ~15% of engine time in profiles
        if type(delay) is not int:
            delay = int(delay)
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args)
        if time == self._batch_time:
            heappush(self._batch, (priority, seq, event))
        else:
            self._qpush(event)
        return event

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule at the current time (runs after already-queued events
        at this tick, preserving causality)."""
        return self.schedule_at(self._now, callback, *args)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        batch = self._batch
        while True:
            if not batch:
                self._sample_depth()
                tick = self._queue.collect(batch, _NO_LIMIT)
                if tick is None:
                    self._batch_time = -1
                    return False
                self._batch_time = tick
            self._now = self._batch_time
            while batch:
                event = heappop(batch)[2]
                if event.cancelled:
                    self._batch_drops += 1
                    continue
                if not batch:
                    self._batch_time = -1
                self._processed += 1
                event.callback(*event.args)
                return True
            self._batch_time = -1

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` more events have fired.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so wall-clock style measurements
        (e.g. capture windows) are well defined.
        """
        if self._running:
            raise SimulationError("run() re-entered")
        self._running = True
        budget = max_events
        limit = _NO_LIMIT if until is None else until
        queue = self._queue
        collect = queue.collect
        batch = self._batch
        self._sample_depth()
        try:
            if budget is None:
                # unbudgeted fast path: the per-event budget checks cost
                # ~10% of the dispatch loop on fabric-scale runs
                while True:
                    if batch:
                        tick = self._batch_time
                        if tick > limit:
                            break  # leftover batch beyond a shorter horizon
                    else:
                        depth = (self._seq - self._processed
                                 - self._batch_drops - queue.discarded)
                        if depth > self._peak_depth:
                            self._peak_depth = depth
                        tick = collect(batch, limit)
                        if tick is None:
                            break
                        self._batch_time = tick
                    self._now = tick
                    while batch:
                        event = heappop(batch)[2]
                        if event.cancelled:
                            self._batch_drops += 1
                            continue
                        self._processed += 1
                        event.callback(*event.args)
                    self._batch_time = -1
            else:
                while True:
                    if batch:
                        tick = self._batch_time
                        if tick > limit:
                            break
                    else:
                        if budget <= 0:
                            # never collect a tick we cannot start: a
                            # leftover batch must imply now == batch time,
                            # so later schedules can never land behind it
                            break
                        depth = (self._seq - self._processed
                                 - self._batch_drops - queue.discarded)
                        if depth > self._peak_depth:
                            self._peak_depth = depth
                        tick = collect(batch, limit)
                        if tick is None:
                            break
                        self._batch_time = tick
                    self._now = tick
                    out_of_budget = False
                    while batch:
                        if budget <= 0:
                            out_of_budget = True
                            break
                        event = heappop(batch)[2]
                        if event.cancelled:
                            self._batch_drops += 1
                            continue
                        budget -= 1
                        self._processed += 1
                        event.callback(*event.args)
                    if out_of_budget:
                        break
                    self._batch_time = -1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: int, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` ticks from the current time."""
        self.run(until=self._now + int(duration), max_events=max_events)
