"""Deterministic discrete-event engine.

Events are ordered by (time, priority, sequence-number); the sequence
number makes scheduling order the tiebreaker, so runs are bit-for-bit
reproducible for a fixed seed.  Cancellation is O(1) (tombstoning) and the
queue is a binary heap, so a run costs O(E log E) for E events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, running twice...)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering fields first so heapq can sort."""

    time: int
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`; allows cancel."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> int:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event.  Safe to call more than once or after firing."""
        self._event.cancelled = True


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_after(10, fired.append, 1)
    >>> sim.run()
    >>> (sim.now, fired)
    (10, [1])
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._processed: int = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in integer microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now}): in the past"
            )
        event = Event(time=int(time), priority=priority, seq=self._seq,
                      callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_after(
        self,
        delay: int,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + int(delay), callback, *args,
                                priority=priority)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule at the current time (runs after already-queued events
        at this tick, preserving causality)."""
        return self.schedule_at(self._now, callback, *args)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or
        ``max_events`` more events have fired.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drained earlier, so wall-clock style measurements
        (e.g. capture windows) are well defined.
        """
        if self._running:
            raise SimulationError("run() re-entered")
        self._running = True
        budget = max_events
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                if budget is not None:
                    if budget <= 0:
                        break
                    budget -= 1
                heapq.heappop(self._queue)
                self._now = event.time
                self._processed += 1
                event.callback(*event.args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: int, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` ticks from the current time."""
        self.run(until=self._now + int(duration), max_events=max_events)
