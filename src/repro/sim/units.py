"""Time units.

Simulation time is an integer count of microseconds.  Integers keep event
ordering exact (no float accumulation error) and match the paper's stated
"microsecond accuracy" clock synchronisation on FABRIC (section VI.A).
"""

from __future__ import annotations

MICROSECOND: int = 1
MILLISECOND: int = 1_000
SECOND: int = 1_000_000


def from_seconds(seconds: float) -> int:
    """Convert seconds to integer simulation ticks (microseconds)."""
    return round(seconds * SECOND)


def to_seconds(ticks: int) -> float:
    """Convert simulation ticks to float seconds."""
    return ticks / SECOND


def from_millis(millis: float) -> int:
    """Convert milliseconds to integer simulation ticks."""
    return round(millis * MILLISECOND)


def to_millis(ticks: int) -> float:
    """Convert simulation ticks to float milliseconds."""
    return ticks / MILLISECOND
