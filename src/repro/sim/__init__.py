"""Discrete-event simulation substrate.

The FABRIC testbed substitute: a deterministic event engine with an
integer-microsecond clock, restartable timers, seeded random streams and a
structured trace log.  All protocol timing in this repository (hello
timers, dead timers, hold timers, MRAI, link propagation) runs on this
engine, which is what lets the paper's control-plane timing experiments be
reproduced without testbed noise.
"""

from repro.sim.engine import Event, EventHandle, Simulator, SimulationError
from repro.sim.timers import Timer, PeriodicTimer
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog, TraceRecord
from repro.sim.units import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    from_seconds,
    to_seconds,
    from_millis,
    to_millis,
)

__all__ = [
    "Event",
    "EventHandle",
    "Simulator",
    "SimulationError",
    "Timer",
    "PeriodicTimer",
    "RngRegistry",
    "TraceLog",
    "TraceRecord",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "from_seconds",
    "to_seconds",
    "from_millis",
    "to_millis",
]
