"""Seeded random streams.

Every consumer of randomness (per-node jitter, ECMP hash salts, traffic
timing noise) pulls a *named* stream from the registry.  Streams derive
their seed from the registry seed plus the stream name, so adding a new
consumer never perturbs the random sequence observed by existing ones —
the property that keeps multi-seed experiment batches comparable across
code revisions.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngRegistry:
    """Deterministic factory of named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams
