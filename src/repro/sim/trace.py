"""Structured trace log.

The simulator-side equivalent of the paper's node log files: protocol code
emits (time, node, category, message, data) records; the harness parses
them to compute convergence times, blast radius etc., mirroring the
paper's "automation scripts parsed the logs" methodology (section VI.B).

Tracing is *lazy*: :attr:`TraceLog.live` is maintained to be True exactly
when a record would be kept (recording enabled or a listener attached).
Hot paths check ``live`` before building a record — a dark trace log costs
one attribute read per would-be emit, not an allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.sim.engine import Simulator


@dataclass(frozen=True, slots=True)
class TraceRecord:
    time: int
    node: str
    category: str
    message: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # human-readable log line
        extra = f" {self.data}" if self.data else ""
        return f"[{self.time:>12d}us] {self.node:<8s} {self.category:<18s} {self.message}{extra}"


class TraceLog:
    """Append-only record store with category filtering and live listeners."""

    def __init__(self, sim: Simulator, enabled: bool = True) -> None:
        self.sim = sim
        self._enabled = enabled
        self.records: list[TraceRecord] = []
        self._listeners: list[Callable[[TraceRecord], None]] = []
        # kept in sync by the enabled setter and add/remove_listener so
        # emitters can skip record construction with one attribute read
        self.live: bool = enabled

    @property
    def enabled(self) -> bool:
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = value
        self.live = value or bool(self._listeners)

    def emit(self, node: str, category: str, message: str, **data: Any) -> None:
        if not self.live:
            return
        record = TraceRecord(self.sim.now, node, category, message, data)
        if self._enabled:
            self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def add_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        self._listeners.append(listener)
        self.live = True

    def remove_listener(self, listener: Callable[[TraceRecord], None]) -> None:
        self._listeners.remove(listener)
        self.live = self._enabled or bool(self._listeners)

    # ------------------------------------------------------------------
    # queries (the "log parsing scripts")
    # ------------------------------------------------------------------
    def select(
        self,
        category: Optional[str] = None,
        node: Optional[str] = None,
        since: Optional[int] = None,
        until: Optional[int] = None,
    ) -> Iterator[TraceRecord]:
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            yield rec

    def last_time(self, category: str, since: Optional[int] = None) -> Optional[int]:
        """Time of the last record in ``category`` (optionally after ``since``)."""
        result = None
        for rec in self.select(category=category, since=since):
            result = rec.time
        return result

    def count(self, category: str, since: Optional[int] = None) -> int:
        return sum(1 for _ in self.select(category=category, since=since))

    def clear(self) -> None:
        self.records.clear()
