"""BFD control packets (RFC 5880 section 4.1).

The mandatory section is 24 bytes; with UDP+IP+Ethernet that is the
66-byte packet the paper's Fig. 9 capture shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

BFD_CONTROL_BYTES = 24
BFD_PORT = 3784  # single-hop BFD (RFC 5881)
BFD_VERSION = 1


class BfdState(IntEnum):
    ADMIN_DOWN = 0
    DOWN = 1
    INIT = 2
    UP = 3


@dataclass(frozen=True)
class BfdControlPacket:
    state: BfdState
    detect_mult: int
    my_discriminator: int
    your_discriminator: int
    desired_min_tx_us: int
    required_min_rx_us: int
    poll: bool = False
    final: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.detect_mult <= 255:
            raise ValueError(f"bad detect multiplier {self.detect_mult}")
        if self.my_discriminator == 0:
            raise ValueError("my_discriminator must be nonzero (RFC 5880 4.1)")

    @property
    def wire_size(self) -> int:
        return BFD_CONTROL_BYTES

    def __str__(self) -> str:
        return (
            f"BFD[{self.state.name} mult={self.detect_mult} "
            f"my={self.my_discriminator} your={self.your_discriminator}]"
        )
