"""BFD sessions (RFC 5880 asynchronous mode, single-hop RFC 5881).

State machine per section 6.8.6, transmit jitter per 6.8.7 (periods drawn
uniformly from 75-100 % of the negotiated interval), detection time =
detect_mult x agreed interval.  Clients (BGP) register a callback and are
told about Up and Down transitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.timers import PeriodicTimer, Timer
from repro.sim.units import MILLISECOND
from repro.stack.addresses import Ipv4Address
from repro.net.interface import Interface
from repro.iputil.udp_service import UdpService
from repro.liveness import NeighborMonitor
from repro.bfd.messages import BFD_PORT, BfdControlPacket, BfdState

# The paper's configuration (section VI.F): 100 ms hello, multiplier 3.
DEFAULT_TX_INTERVAL_US = 100 * MILLISECOND
DEFAULT_DETECT_MULT = 3
# Sessions not yet Up transmit no faster than 1/s (RFC 5880 6.8.3).
SLOW_TX_INTERVAL_US = 1000 * MILLISECOND


@dataclass(frozen=True)
class BfdTimers:
    tx_interval_us: int = DEFAULT_TX_INTERVAL_US
    detect_mult: int = DEFAULT_DETECT_MULT

    @property
    def detection_time_us(self) -> int:
        return self.tx_interval_us * self.detect_mult


StateCallback = Callable[["BfdSession", bool], None]  # (session, is_up)


class BfdSession:
    """One single-hop async-mode session with a directly connected peer."""

    def __init__(
        self,
        manager: "BfdManager",
        peer: Ipv4Address,
        local: Ipv4Address,
        discriminator: int,
        timers: BfdTimers,
        on_state_change: Optional[StateCallback] = None,
        monitor: Optional[NeighborMonitor] = None,
    ) -> None:
        self.manager = manager
        self.node = manager.node
        self.sim = manager.node.sim
        self.peer = peer
        self.local = local
        self.my_discriminator = discriminator
        self.your_discriminator = 0
        self.timers = timers
        self.on_state_change = on_state_change
        # adaptive liveness (DESIGN §14): widens the detection time on a
        # measured-lossy link and carries the gray-failure verdict
        self.monitor = monitor
        self.state = BfdState.DOWN
        self.packets_sent = 0
        self.packets_received = 0
        rng = manager.rng
        self._tx_timer = PeriodicTimer(
            self.sim, SLOW_TX_INTERVAL_US, self._transmit,
            name=f"bfd-tx-{peer}", jitter=0.25, rng=rng,
        )
        self._detect_timer = Timer(
            self.sim, timers.detection_time_us, self._on_detect_expired,
            name=f"bfd-detect-{peer}",
        )
        self._tx_timer.start(immediate=True)

    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        return self.state is BfdState.UP

    def stop(self) -> None:
        self._tx_timer.stop()
        self._detect_timer.stop()
        self.state = BfdState.ADMIN_DOWN

    def admin_reset(self) -> None:
        """Back to DOWN and start polling again (after interface recovery)."""
        self.state = BfdState.DOWN
        self.your_discriminator = 0
        self._tx_timer.set_interval(SLOW_TX_INTERVAL_US)
        self._tx_timer.start(immediate=True)

    # ------------------------------------------------------------------
    def _transmit(self) -> None:
        # Advertise the rate we are actually transmitting at: the slow
        # rate until the session is Up (RFC 5880 6.8.3).
        current_tx = (
            self.timers.tx_interval_us if self.up else SLOW_TX_INTERVAL_US
        )
        packet = BfdControlPacket(
            state=self.state,
            detect_mult=self.timers.detect_mult,
            my_discriminator=self.my_discriminator,
            your_discriminator=self.your_discriminator,
            desired_min_tx_us=current_tx,
            required_min_rx_us=self.timers.tx_interval_us,
        )
        self.packets_sent += 1
        self.manager.udp.send(
            self.peer, BFD_PORT, src_port=49152 + (self.my_discriminator % 1024),
            payload=packet, src=self.local, ttl=255,
        )

    def _set_state(self, new_state: BfdState) -> None:
        if new_state is self.state:
            return
        old = self.state
        self.state = new_state
        self.node.log(
            "bfd.state", f"{self.peer}: {old.name} -> {new_state.name}"
        )
        if new_state is BfdState.UP:
            # Speed up to the negotiated interval once Up (RFC 5880
            # 6.8.3).  Restart, don't just retarget: the pending slow-rate
            # transmission would otherwise leave the peer's detection
            # time at the slow rate for up to a full second.
            self._tx_timer.set_interval(self.timers.tx_interval_us)
            self._tx_timer.start(immediate=True)
            if self.on_state_change:
                self.on_state_change(self, True)
        elif old is BfdState.UP:
            self._tx_timer.set_interval(SLOW_TX_INTERVAL_US)
            self._tx_timer.start(immediate=True)
            if self.on_state_change:
                self.on_state_change(self, False)

    def handle_packet(self, packet: BfdControlPacket) -> None:
        if self.state is BfdState.ADMIN_DOWN:
            return
        self.packets_received += 1
        self.your_discriminator = packet.my_discriminator
        remote = packet.state

        if remote is BfdState.ADMIN_DOWN:
            self._set_state(BfdState.DOWN)
            self._detect_timer.stop()
            return

        # RFC 5880 6.8.6 state table
        if self.state is BfdState.DOWN:
            if remote is BfdState.DOWN:
                self._set_state(BfdState.INIT)
            elif remote is BfdState.INIT:
                self._set_state(BfdState.UP)
        elif self.state is BfdState.INIT:
            if remote in (BfdState.INIT, BfdState.UP):
                self._set_state(BfdState.UP)
        elif self.state is BfdState.UP:
            if remote is BfdState.DOWN:
                # peer signalled failure
                self._set_state(BfdState.DOWN)
                self._detect_timer.stop()
                return

        # Kick the detection timer on every packet from the peer.  The
        # detection time follows the *remote's* advertised transmit rate
        # (RFC 5880 6.8.4): mult x max(remote DesiredMinTx, local
        # RequiredMinRx) — so bring-up at the 1 s slow rate is not falsely
        # detected as a failure.
        if self.state in (BfdState.INIT, BfdState.UP):
            interval = max(packet.desired_min_tx_us, self.timers.tx_interval_us)
            detection = packet.detect_mult * interval
            if self.monitor is not None:
                # Feed the estimator only at the negotiated fast rate —
                # counting slow-rate (1 s) bring-up gaps against the
                # 100 ms period would fabricate misses.
                if interval == self.timers.tx_interval_us:
                    self.monitor.observe(self.sim.now, period_us=interval)
                    detection = self.monitor.detection_interval_us(
                        base_us=detection, period_us=interval)
                else:
                    self.monitor.interrupt()
            self._detect_timer.restart(detection)

    def _on_detect_expired(self) -> None:
        self.node.log("bfd.detect", f"{self.peer}: detection time expired")
        if self.monitor is not None:
            self.monitor.interrupt()
        self._set_state(BfdState.DOWN)


class BfdManager:
    """Per-node BFD endpoint: owns the UDP socket, demuxes to sessions."""

    def __init__(self, udp: UdpService, rng=None) -> None:
        self.udp = udp
        self.node = udp.node
        self.rng = rng if rng is not None else _require_world_rng(udp)
        self.sessions: dict[Ipv4Address, BfdSession] = {}
        self._next_discriminator = 1
        udp.open(BFD_PORT, self._on_datagram)
        self.node.bfd = self

    def create_session(
        self,
        peer: Ipv4Address,
        local: Ipv4Address,
        timers: BfdTimers = BfdTimers(),
        on_state_change: Optional[StateCallback] = None,
        monitor: Optional[NeighborMonitor] = None,
    ) -> BfdSession:
        if peer in self.sessions:
            raise ValueError(f"{self.node.name}: BFD session to {peer} exists")
        session = BfdSession(
            self, peer, local, self._next_discriminator, timers,
            on_state_change, monitor=monitor,
        )
        self._next_discriminator += 1
        self.sessions[peer] = session
        return session

    def remove_session(self, peer: Ipv4Address) -> None:
        session = self.sessions.pop(peer, None)
        if session is not None:
            session.stop()

    def _on_datagram(self, payload, src: Ipv4Address, src_port: int, iface: Interface) -> None:
        if not isinstance(payload, BfdControlPacket):
            return
        session = self.sessions.get(src)
        if session is not None:
            session.handle_packet(payload)


def _require_world_rng(udp: UdpService):
    raise ValueError("BfdManager requires an rng (pass world.rng.stream('bfd'))")
