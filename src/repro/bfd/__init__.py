"""Bidirectional Forwarding Detection (RFC 5880, asynchronous mode).

The sub-second failure detector the paper enables under BGP: 24-byte
control packets in UDP/3784 (66 bytes at L2), 100 ms transmit interval,
detect multiplier 3 (300 ms detection) — the exact configuration of the
paper's section VI.F.
"""

from repro.bfd.messages import BfdControlPacket, BfdState, BFD_CONTROL_BYTES, BFD_PORT
from repro.bfd.session import BfdSession, BfdManager, BfdTimers

__all__ = [
    "BfdControlPacket",
    "BfdState",
    "BFD_CONTROL_BYTES",
    "BFD_PORT",
    "BfdSession",
    "BfdManager",
    "BfdTimers",
]
