"""Scenario compiler: declarative events onto the simulation engine.

Compilation happens in two steps against an already-converged fabric:

1. **resolve** — every symbolic target is expanded through
   :class:`~repro.scenario.targets.TargetResolver` *before* any
   simulated time passes, so an unresolvable scenario fails fast with
   :class:`~repro.harness.failures.UnknownTargetError`;
2. **execute** — the fabric idles through the settle phase, the update
   monitor arms and forwarding tables are snapshotted (the measurement
   start, ``t = 0`` for event offsets), fault events are driven through
   :class:`~repro.harness.failures.FailureInjector` and traffic bursts
   through :mod:`repro.traffic`, and the run is measured under the
   paper's update-quiesce rule until at least the event horizon plus the
   stack's detection bound has played out.

The execution sequence around a single ``iface_down`` at offset 0 is
step-for-step identical to
:func:`repro.harness.experiments.run_failure_experiment` — which is what
lets the declarative TC1–TC4 scenarios reproduce the golden Fig. 4/5
metrics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.units import MILLISECOND, SECOND
from repro.net.world import World
from repro.topology import Topology
from repro.harness.convergence import ConvergenceMonitor
from repro.harness.failures import FailureInjector
from repro.harness.metrics import (
    blast_radius,
    liveness_stats,
    route_churn,
    snapshot_table_change_counts,
)
from repro.resilience.invariants import InvariantMonitor
from repro.scenario.model import DOWN_OPS, Scenario, ScenarioError
from repro.scenario.targets import TargetResolver
from repro.traffic.generator import ReceiverAnalyzer, TrafficSender
from repro.workload.engine import FluidWorkload

# every op whose execution can change forwarding state or link quality:
# a scheduled workload re-solves its rate allocation right after each
# (1 us later, so the injector has already run within the same tick)
ROUTE_CHANGE_OPS = ("iface_down", "iface_up", "link_cut", "link_restore",
                    "node_crash", "node_restart", "agent_crash",
                    "agent_restart", "flap_train", "impair",
                    "clear_impairment")

# default flow selector for the first traffic burst; later bursts step
# by one so concurrent flows stay distinguishable at the receiver
BASE_TRAFFIC_SRC_PORT = 40000


@dataclass(frozen=True)
class Checkpoint:
    """Monitor counters frozen at a ``measure`` marker."""

    label: str
    time_us: int
    update_count: int
    update_bytes: int


@dataclass
class ScenarioMetrics:
    """What one scenario run measured (the per-scenario analysis row)."""

    scenario: str
    stack: str
    seed: int
    settle_us: int
    convergence_us: int            # measurement start -> last update
    detection_us: Optional[int]    # first fault -> first update
    control_bytes: int
    update_count: int
    blast_routers: list[str]
    sent: int = 0
    received: int = 0
    duplicated: int = 0
    out_of_order: int = 0
    blackhole_us: int = 0          # longest inferred per-flow outage
    false_positives: int = 0       # unexplained timer-based detections
    flaps: int = 0                 # adjacency/session up-transitions
    route_churn: int = 0           # total table changes (stability score)
    fib_loops: int = 0             # invariant monitor: loop episodes
    fib_loop_us: int = 0           # longest loop episode
    fib_blackholes: int = 0        # invariant monitor: blackhole episodes
    fib_blackhole_us: int = 0      # longest blackhole episode
    checkpoints: list[Checkpoint] = field(default_factory=list)
    workload: Optional[dict] = None  # WorkloadReport payload, if loaded

    @property
    def lost(self) -> int:
        return self.sent - self.received

    @property
    def goodput(self) -> float:
        """Delivered fraction of offered traffic (1.0 when no traffic)."""
        return self.received / self.sent if self.sent else 1.0

    @property
    def blast_radius(self) -> int:
        return len(self.blast_routers)

    @property
    def convergence_ms(self) -> float:
        return self.convergence_us / MILLISECOND


@dataclass
class _Burst:
    sender: TrafficSender
    analyzer: ReceiverAnalyzer
    src_addr: object
    src_port: int
    gap_us: int


class CompiledScenario:
    """A scenario bound to one built fabric: targets resolved, horizon
    computed, ready to execute exactly once."""

    def __init__(self, scenario: Scenario, world: World,
                 topo: Topology, deployment,
                 invariants: bool = False) -> None:
        self.scenario = scenario
        self.world = world
        self.topo = topo
        self.deployment = deployment
        self.invariants = invariants
        self._executed = False
        resolver = TargetResolver(topo)
        self.actions = [self._resolve(event, resolver, index)
                        for index, event in enumerate(scenario.events)]
        self.horizon_us = scenario.horizon_ms() * MILLISECOND
        if sum(1 for a in self.actions if a[0] == "workload") > 1:
            raise ScenarioError(
                f"scenario {scenario.name!r}: at most one workload op "
                f"per scenario (one fluid engine owns the run's load)")
        # the invariant monitor attaches on loaded runs (its checks ride
        # the workload's route-change epochs for free) or on explicit
        # request; never on a plain baseline run, whose trace and
        # metrics stay byte-identical with the pre-monitor era
        has_workload = any(a[0] == "workload" for a in self.actions)
        self._inv_monitor: Optional[InvariantMonitor] = (
            InvariantMonitor(topo, deployment)
            if (has_workload or invariants) else None)

    # ------------------------------------------------------------------
    def _resolve(self, event, resolver: TargetResolver, index: int):
        at_us = event.at_ms * MILLISECOND
        if event.op in ("iface_down", "iface_up"):
            return (event.op, at_us, resolver.interface(event.target))
        if event.op in ("link_cut", "link_restore"):
            return (event.op, at_us, resolver.link(event.target))
        if event.op in ("node_crash", "node_restart",
                        "agent_crash", "agent_restart"):
            return (event.op, at_us, resolver.node(event.target))
        if event.op == "flap_train":
            up_ms = event.up_ms if event.up_ms is not None else event.down_ms
            return (event.op, at_us, resolver.interface(event.target),
                    event.down_ms * MILLISECOND, up_ms * MILLISECOND,
                    event.count)
        if event.op == "traffic_burst":
            src = resolver.endpoint(event.src)
            dst = resolver.endpoint(event.dst)
            if src == dst:
                raise ScenarioError(
                    f"traffic_burst: src and dst both resolve to {src}")
            src_port = (event.src_port if event.src_port is not None
                        else BASE_TRAFFIC_SRC_PORT + index)
            return (event.op, at_us, src, dst, event.rate_pps, event.count,
                    src_port)
        if event.op == "impair":
            return (event.op, at_us, resolver.interface(event.target),
                    event.impairment_profile(),
                    event.direction if event.direction is not None
                    else "both")
        if event.op == "clear_impairment":
            return (event.op, at_us, resolver.interface(event.target),
                    event.direction if event.direction is not None
                    else "both")
        if event.op == "workload":
            return (event.op, at_us, event.workload_spec())
        if event.op == "pause":
            return (event.op, at_us)
        return (event.op, at_us, event.label)  # measure

    # ------------------------------------------------------------------
    def execute(self, stack_name: str, seed: int) -> ScenarioMetrics:
        """Run the compiled scenario; one shot per fabric."""
        if self._executed:
            raise ScenarioError("a compiled scenario executes only once")
        self._executed = True
        world, deployment = self.world, self.deployment
        scenario = self.scenario

        # settle: idle the converged fabric so events land at an
        # arbitrary keepalive phase (or a fixed offset)
        if scenario.settle == "keepalive-phase":
            phase_rng = world.rng.stream("experiment-settle")
            period = deployment.keepalive_period_us()
            settle_us = int(phase_rng.uniform(0, 2 * period))
        else:
            settle_us = scenario.settle * MILLISECOND
        world.run_for(settle_us)

        monitor = ConvergenceMonitor(world, deployment.update_categories())
        before = snapshot_table_change_counts(deployment.forwarding_tables())
        injector = FailureInjector(world, deployment)
        monitor.arm()
        start = world.sim.now

        checkpoints: list[Checkpoint] = []
        bursts: list[_Burst] = []
        engines: list[FluidWorkload] = []
        first_fault_us: Optional[int] = None
        for action in self.actions:
            op, at_us = action[0], action[1]
            if op in DOWN_OPS and (first_fault_us is None
                                   or at_us < first_fault_us):
                first_fault_us = at_us
            self._dispatch(action, injector, monitor, checkpoints,
                           bursts, engines, start)
        if engines:
            # re-solve the fluid allocation right after every scheduled
            # route-changing action (the injector runs first within the
            # tick); the engine's own sampler covers reconvergence
            engine = engines[0]
            for action in self.actions:
                if action[0] in ROUTE_CHANGE_OPS:
                    world.sim.schedule_at(start + action[1] + 1,
                                          engine.mark_epoch)
        elif self._inv_monitor is not None:
            # invariants-only mode: with no workload engine driving
            # epoch checks, scan right after each route-changing action
            # and again once (and twice) the detection bound later, when
            # liveness timers have fired and reconvergence has played
            bound = deployment.detection_bound_us()
            for action in self.actions:
                if action[0] in ROUTE_CHANGE_OPS:
                    for delay in (1, bound + 1, 2 * bound + 1):
                        world.sim.schedule_at(start + action[1] + delay,
                                              self._inv_monitor.check)

        quiet_us = scenario.quiet_ms * MILLISECOND
        min_wait_us = (self.horizon_us + deployment.detection_bound_us()
                       + quiet_us)
        # never stop before every scheduled event has played, even when
        # the scenario's declared budget is tighter than its horizon
        max_wait_us = max(scenario.max_wait_ms * MILLISECOND, min_wait_us)
        monitor.run_until_quiet(quiet_us=quiet_us, max_wait_us=max_wait_us,
                                min_wait_us=min_wait_us)
        monitor.detach()

        convergence = monitor.convergence_time_us()
        detection: Optional[int] = None
        if first_fault_us is not None and monitor.first_update_time is not None:
            detection = monitor.first_update_time - (start + first_fault_us)
        metrics = ScenarioMetrics(
            scenario=scenario.name,
            stack=stack_name,
            seed=seed,
            settle_us=settle_us,
            convergence_us=convergence if convergence is not None else 0,
            detection_us=detection,
            control_bytes=monitor.update_bytes,
            update_count=monitor.update_count,
            blast_routers=blast_radius(before, deployment.forwarding_tables()),
            route_churn=route_churn(before, deployment.forwarding_tables()),
            checkpoints=checkpoints,
        )
        classify = getattr(deployment, "classify_liveness", None)
        if classify is not None:
            stats = liveness_stats(
                world.trace, classify, injector.events, since=start,
                detection_bound_us=deployment.detection_bound_us())
            metrics.false_positives = stats.false_positives
            metrics.flaps = stats.flaps
        self._account_traffic(metrics, bursts)
        if engines:
            # finish() already fired at the workload's scheduled end;
            # calling it again just returns the settled report
            metrics.workload = engines[0].finish().to_payload()
        if self._inv_monitor is not None:
            # one last scan on the quiesced fabric, then close any
            # still-open anomaly episodes as ongoing
            self._inv_monitor.check()
            self._inv_monitor.finalize()
            metrics.fib_loops = self._inv_monitor.loops
            metrics.fib_loop_us = self._inv_monitor.loop_us
            metrics.fib_blackholes = self._inv_monitor.blackholes
            metrics.fib_blackhole_us = self._inv_monitor.blackhole_us
        return metrics

    # ------------------------------------------------------------------
    def _dispatch(self, action, injector: FailureInjector,
                  monitor: ConvergenceMonitor,
                  checkpoints: list[Checkpoint], bursts: list[_Burst],
                  engines: list, start: int) -> None:
        op, at_us = action[0], action[1]
        # offset-0 fault events run synchronously (in declaration order),
        # exactly as the classic experiment drivers inject them
        when = None if at_us == 0 else start + at_us
        if op in ("iface_down", "iface_up"):
            node, iface = action[2]
            call = (injector.fail_interface if op == "iface_down"
                    else injector.restore_interface)
            call(node, iface, at=when)
        elif op in ("link_cut", "link_restore"):
            node_a, node_b = action[2]
            call = (injector.cut_link if op == "link_cut"
                    else injector.restore_link)
            call(node_a, node_b, at=when)
        elif op in ("node_crash", "node_restart"):
            call = (injector.fail_node if op == "node_crash"
                    else injector.restore_node)
            call(action[2], at=when)
        elif op in ("agent_crash", "agent_restart"):
            call = (injector.crash_agent if op == "agent_crash"
                    else injector.restart_agent)
            call(action[2], at=when)
        elif op == "impair":
            (_, _, (node, iface), profile, direction) = action
            injector.impair_link(node, iface, profile, direction, at=when)
        elif op == "clear_impairment":
            (_, _, (node, iface), direction) = action
            injector.clear_impairment(node, iface, direction, at=when)
        elif op == "flap_train":
            (_, _, (node, iface), down_us, up_us, count) = action
            injector.flap_interface(node, iface, period_us=down_us,
                                    count=count, start_at=start + at_us,
                                    up_period_us=up_us)
        elif op == "traffic_burst":
            (_, _, src, dst, rate_pps, count, src_port) = action
            gap_us = max(SECOND // rate_pps, 1)
            sender = TrafficSender(
                udp=self.deployment.servers[src].udp,
                dst=self.topo.server_address(dst),
                src_port=src_port, gap_us=gap_us,
            )
            analyzer = self._analyzer_for(dst, bursts)
            sender.start(count=count, at=start + at_us)
            bursts.append(_Burst(sender=sender, analyzer=analyzer,
                                 src_addr=self.topo.server_address(src),
                                 src_port=src_port, gap_us=gap_us))
        elif op == "workload":
            wl_spec = action[2]
            engine = FluidWorkload(wl_spec, self.topo, self.deployment,
                                   monitor=self._inv_monitor)
            engines.append(engine)
            if at_us == 0:
                engine.start()
            else:
                self.world.sim.schedule_at(start + at_us, engine.start)
            end_at = start + at_us + wl_spec.duration_ms * MILLISECOND
            self.world.sim.schedule_at(end_at, engine.finish)
        elif op == "measure":
            label = action[2]

            def checkpoint(label=label):
                checkpoints.append(Checkpoint(
                    label=label, time_us=self.world.sim.now,
                    update_count=monitor.update_count,
                    update_bytes=monitor.update_bytes))

            if at_us == 0:
                checkpoint()
            else:
                self.world.sim.schedule_at(start + at_us, checkpoint)
        # "pause" only extends the horizon; nothing to schedule

    def _analyzer_for(self, dst: str, bursts: list[_Burst]) -> ReceiverAnalyzer:
        for burst in bursts:
            if burst.analyzer.udp is self.deployment.servers[dst].udp:
                return burst.analyzer
        return ReceiverAnalyzer(self.deployment.servers[dst].udp)

    def _account_traffic(self, metrics: ScenarioMetrics,
                         bursts: list[_Burst]) -> None:
        analyzers = []
        for burst in bursts:
            if burst.analyzer not in analyzers:
                analyzers.append(burst.analyzer)
            delivered = burst.analyzer.flow_received(burst.src_addr,
                                                     burst.src_port)
            outage_us = (burst.sender.sent - delivered) * burst.gap_us
            metrics.sent += burst.sender.sent
            metrics.blackhole_us = max(metrics.blackhole_us, outage_us)
        for analyzer in analyzers:
            metrics.received += analyzer.received
            metrics.duplicated += analyzer.duplicated
            metrics.out_of_order += analyzer.out_of_order
            analyzer.close()


def compile_scenario(scenario: Scenario, world: World, topo: Topology,
                     deployment,
                     invariants: bool = False) -> CompiledScenario:
    """Resolve ``scenario`` against a built, converged fabric.

    ``invariants=True`` attaches the runtime invariant monitor even on
    a workload-free run (loaded runs always attach it)."""
    return CompiledScenario(scenario, world, topo, deployment,
                            invariants=invariants)
