"""Declarative scenario engine: scriptable fault/traffic workloads.

A :class:`Scenario` turns a fault/traffic experiment into data — an
ordered list of timestamped events with symbolic targets — that
serializes to canonical JSON, compiles onto the simulation engine
against any registered stack, and runs through the same cache/parallel
machinery as every other experiment task.  The canonical library ships
ten workloads (``tc1``–``tc4``, ``flap-storm``, ``double-cut``,
``drain``, ``rolling-restart``, ``gray-uplink``, ``lossy-spine``); see
README "Scenarios".
"""

from repro.scenario.model import (
    SCENARIO_SCHEMA,
    Scenario,
    ScenarioError,
    ScenarioEvent,
)
from repro.scenario.targets import TargetResolver
from repro.scenario.compiler import (
    Checkpoint,
    CompiledScenario,
    ScenarioMetrics,
    compile_scenario,
)
from repro.scenario.runner import (
    ScenarioOutcome,
    ScenarioRunSpec,
    decode_scenario_outcome,
    encode_scenario_outcome,
    run_scenario,
    run_scenario_suite,
    run_scenario_task,
    scenario_suite_specs,
    scenario_task_key,
)
from repro.scenario.library import (
    CANONICAL,
    canonical_scenarios,
    get_scenario,
)

__all__ = [
    "CANONICAL",
    "Checkpoint",
    "CompiledScenario",
    "SCENARIO_SCHEMA",
    "Scenario",
    "ScenarioError",
    "ScenarioEvent",
    "ScenarioMetrics",
    "ScenarioOutcome",
    "ScenarioRunSpec",
    "TargetResolver",
    "canonical_scenarios",
    "compile_scenario",
    "decode_scenario_outcome",
    "encode_scenario_outcome",
    "get_scenario",
    "run_scenario",
    "run_scenario_suite",
    "run_scenario_task",
    "scenario_suite_specs",
    "scenario_task_key",
]
