"""Scenario execution: single runs, cached/parallel suite sweeps.

One scenario x stack x seed is an independent, picklable task
(:class:`ScenarioRunSpec`), so suites fan out over worker processes via
:func:`repro.harness.parallel.execute_tasks` and replay from the
content-addressed result cache exactly like sweeps and seed batches do.
Every run carries a SHA-256 run digest (trace + metrics), so serial and
``--jobs N`` execution are byte-comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.units import SECOND
from repro.topology import TopologySpec, resolve_topology_spec
from repro.stacks import StackSpec, StackTimers, resolve_spec
from repro.harness.cache import ResultCache, task_key
from repro.harness.digest import run_digest
from repro.harness.experiments import build_and_converge
from repro.harness.parallel import FanoutReport, execute_tasks
from repro.harness.supervisor import (
    RetryPolicy,
    SupervisorReport,
    supervise_tasks,
)
from repro.scenario.compiler import (
    Checkpoint,
    ScenarioMetrics,
    compile_scenario,
)
from repro.scenario.model import Scenario


@dataclass(frozen=True)
class ScenarioRunSpec:
    """One scenario run as an independent, picklable task."""

    params: TopologySpec
    stack: StackSpec
    scenario: Scenario
    seed: int
    invariants: bool = False   # attach the monitor on workload-free runs

    def __post_init__(self) -> None:
        object.__setattr__(self, "params",
                           resolve_topology_spec(self.params))


@dataclass
class ScenarioOutcome:
    """A scenario run's metrics plus its determinism fingerprint."""

    metrics: ScenarioMetrics
    digest: str


def run_scenario(
    scenario: Scenario,
    params,
    stack,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    return_world: bool = False,
    invariants: bool = False,
):
    """Build a fresh fabric, converge the stack, execute the scenario."""
    spec = resolve_spec(stack, timers)
    # the horizon feeds the converge budget ceiling only indirectly: the
    # scenario itself plays after convergence, on the measured clock
    world, topo, deployment = build_and_converge(
        params, spec, seed, max_converge_us=60 * SECOND)
    program = compile_scenario(scenario, world, topo, deployment,
                               invariants=invariants)
    metrics = program.execute(spec.name, seed)
    if return_world:
        return metrics, world
    return metrics


def run_scenario_task(spec: ScenarioRunSpec) -> ScenarioOutcome:
    """The parallel worker (top-level so the process pool can pickle it)."""
    metrics, world = run_scenario(spec.scenario, spec.params, spec.stack,
                                  spec.seed, return_world=True,
                                  invariants=spec.invariants)
    digest = run_digest(world.trace, _metrics_payload(metrics))
    return ScenarioOutcome(metrics=metrics, digest=digest)


# ----------------------------------------------------------------------
# cache plumbing: key, encode, decode
# ----------------------------------------------------------------------
def scenario_task_key(spec: ScenarioRunSpec) -> str:
    """Content hash of one scenario run: the canonical scenario payload
    enters the key, so editing a scenario invalidates only its entries."""
    components = dict(
        params=spec.params,
        stack=spec.stack.name,
        stack_params=spec.stack.params,
        timers=spec.stack.timers,
        scenario=spec.scenario.to_payload(),
        seed=spec.seed,
    )
    if spec.invariants:
        # only monitored workload-free runs carry the key component, so
        # every pre-existing cache key stays unchanged
        components["invariants"] = True
    return task_key("scenario-run", **components)


def _metrics_payload(metrics: ScenarioMetrics) -> dict:
    payload = {
        "scenario": metrics.scenario,
        "stack": metrics.stack,
        "seed": metrics.seed,
        "settle_us": metrics.settle_us,
        "convergence_us": metrics.convergence_us,
        "detection_us": metrics.detection_us,
        "control_bytes": metrics.control_bytes,
        "update_count": metrics.update_count,
        "blast_routers": list(metrics.blast_routers),
        "sent": metrics.sent,
        "received": metrics.received,
        "duplicated": metrics.duplicated,
        "out_of_order": metrics.out_of_order,
        "blackhole_us": metrics.blackhole_us,
        "false_positives": metrics.false_positives,
        "flaps": metrics.flaps,
        "route_churn": metrics.route_churn,
        "checkpoints": [[c.label, c.time_us, c.update_count, c.update_bytes]
                        for c in metrics.checkpoints],
    }
    # invariant-monitor counters appear only when nonzero, so unmonitored
    # (and anomaly-free) payloads — and their run digests — stay
    # byte-identical with the pre-monitor era
    for name in ("fib_loops", "fib_loop_us", "fib_blackholes",
                 "fib_blackhole_us"):
        value = getattr(metrics, name)
        if value:
            payload[name] = value
    if metrics.workload is not None:
        # only loaded runs carry the key: workload-free payloads (and so
        # their run digests) stay byte-identical with the pre-workload era
        payload["workload"] = metrics.workload
    return payload


def encode_scenario_outcome(outcome: ScenarioOutcome) -> dict:
    return {**_metrics_payload(outcome.metrics), "digest": outcome.digest}


def decode_scenario_outcome(payload: dict) -> ScenarioOutcome:
    metrics = ScenarioMetrics(
        scenario=payload["scenario"],
        stack=payload["stack"],
        seed=payload["seed"],
        settle_us=payload["settle_us"],
        convergence_us=payload["convergence_us"],
        detection_us=payload["detection_us"],
        control_bytes=payload["control_bytes"],
        update_count=payload["update_count"],
        blast_routers=list(payload["blast_routers"]),
        sent=payload["sent"],
        received=payload["received"],
        duplicated=payload["duplicated"],
        out_of_order=payload["out_of_order"],
        blackhole_us=payload["blackhole_us"],
        false_positives=payload["false_positives"],
        flaps=payload["flaps"],
        route_churn=payload["route_churn"],
        fib_loops=payload.get("fib_loops", 0),
        fib_loop_us=payload.get("fib_loop_us", 0),
        fib_blackholes=payload.get("fib_blackholes", 0),
        fib_blackhole_us=payload.get("fib_blackhole_us", 0),
        checkpoints=[Checkpoint(label=c[0], time_us=c[1], update_count=c[2],
                                update_bytes=c[3])
                     for c in payload["checkpoints"]],
        workload=payload.get("workload"),
    )
    return ScenarioOutcome(metrics=metrics, digest=payload["digest"])


# ----------------------------------------------------------------------
# suite runner: scenarios x stacks through the fan-out machinery
# ----------------------------------------------------------------------
def scenario_suite_specs(
    params,
    scenarios: Sequence[Scenario],
    stacks: Sequence,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    invariants: bool = False,
) -> list[ScenarioRunSpec]:
    """Expand a suite into its independent per-run tasks, stack-major so
    one stack's scenarios sit together in reports."""
    return [
        ScenarioRunSpec(params=params, stack=resolve_spec(stack, timers),
                        scenario=scenario, seed=seed, invariants=invariants)
        for stack in stacks
        for scenario in scenarios
    ]


def scenario_task_label(spec: ScenarioRunSpec) -> str:
    """Human task label for supervisor records and quarantine tables."""
    return (f"{spec.stack.name}/{spec.scenario.name} seed={spec.seed}")


def run_scenario_suite(
    params,
    scenarios: Sequence[Scenario],
    stacks: Sequence,
    seed: int = 0,
    timers: Optional[StackTimers] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    report: Optional[FanoutReport] = None,
    policy: Optional[RetryPolicy] = None,
    supervisor: Optional[SupervisorReport] = None,
    invariants: bool = False,
) -> list[Optional[ScenarioOutcome]]:
    """Run every scenario on every stack, fanned out over ``jobs``
    workers and replayed from ``cache`` when given.

    With a ``policy`` (or ``supervisor`` report) the suite runs under
    the fault-tolerant supervisor: quarantined runs come back ``None``,
    the rest of the suite completes.
    """
    specs = scenario_suite_specs(params, scenarios, stacks, seed, timers,
                                 invariants=invariants)
    if policy is not None or supervisor is not None:
        return supervise_tasks(
            specs, run_scenario_task, jobs=jobs, policy=policy,
            cache=cache, key_fn=scenario_task_key,
            encode=encode_scenario_outcome,
            decode=decode_scenario_outcome, label_fn=scenario_task_label,
            report=supervisor,
        )
    return execute_tasks(
        specs, run_scenario_task, jobs=jobs, cache=cache,
        key_fn=scenario_task_key, encode=encode_scenario_outcome,
        decode=decode_scenario_outcome, report=report,
    )
