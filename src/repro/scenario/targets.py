"""Symbolic scenario targets, resolved against a built topology.

Grammar (all expressions are strings inside scenario JSON):

* node targets —
  ``tor[i]`` / ``agg[i]`` / ``top[i]`` (flat index over the whole
  fabric), ``tor[p][t]`` / ``agg[p][a]`` / ``top[plane][k]`` (per-pod /
  per-plane), ``any-tor`` / ``any-agg`` / ``any-spine`` (a top spine) /
  ``any-router``, or a literal node name such as ``L-1-1``;
* interface targets — ``<node>.uplink[j]`` / ``<node>.downlink[j]``
  (fabric-facing ports in creation order; ``j`` may be ``any``),
  ``<node>.iface[ethN]`` (a named port), or ``case:TC1`` (the paper's
  failure points: the administratively-downed side);
* link targets — ``<node>--<node>`` (both endpoints named) or any
  interface target (the link behind that port);
* endpoint targets (traffic) — ``server:<node>`` (the first server of
  that ToR) or a literal host name such as ``H-L-1-1-1``.

``any-*`` picks (and ``uplink[any]`` indexes) deterministically from the
world's seeded ``"scenario-targets"`` RNG stream, so the same scenario
and seed always expand to the same concrete fabric elements.  Each
distinct expression is resolved once per run and then reused, which lets
``node_crash "any-agg"`` and a later ``node_restart "any-agg"`` hit the
*same* randomly chosen device.

Unresolvable expressions raise the harness's
:class:`~repro.harness.failures.UnknownTargetError` up front, before any
simulation time is spent.
"""

from __future__ import annotations

import re

from repro.harness.failures import UnknownTargetError
from repro.topology import TIER_SERVER, Topology

RNG_STREAM = "scenario-targets"

_INDEXED = re.compile(r"^(tor|agg|top)((?:\[\d+\]){1,2})$")
_PORT = re.compile(r"^(?P<node>.+)\.(?P<kind>uplink|downlink|iface)"
                   r"\[(?P<index>any|\w+)\]$")
_ANY = {"any-tor": "tor", "any-agg": "agg", "any-spine": "top",
        "any-router": "router"}


class TargetResolver:
    """Resolves symbolic expressions against one built fabric, memoizing
    per expression so repeated mentions agree with each other."""

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        self.rng = topo.world.rng.stream(RNG_STREAM)
        self._nodes: dict[str, str] = {}
        self._ifaces: dict[str, tuple[str, str]] = {}

    # ------------------------------------------------------------------
    # node targets
    # ------------------------------------------------------------------
    def node(self, expr: str) -> str:
        cached = self._nodes.get(expr)
        if cached is None:
            cached = self._nodes[expr] = self._resolve_node(expr)
        return cached

    def _resolve_node(self, expr: str) -> str:
        pools = {"tor": self.topo.all_tors(), "agg": self.topo.all_aggs(),
                 "top": self.topo.all_tops(),
                 "router": self.topo.routers()}
        kind = _ANY.get(expr)
        if kind is not None:
            pool = pools[kind]
            return pool[int(self.rng.integers(len(pool)))]
        match = _INDEXED.match(expr)
        if match:
            kind, raw = match.group(1), match.group(2)
            indices = [int(i) for i in re.findall(r"\d+", raw)]
            try:
                if len(indices) == 1:
                    return pools[kind][indices[0]]
                grouped = {"tor": self.topo.tors, "agg": self.topo.aggs,
                           "top": self.topo.tops}[kind][0]
                return grouped[indices[0]][indices[1]]
            except IndexError:
                raise UnknownTargetError(
                    f"target {expr!r} is out of range for this fabric "
                    f"({len(pools[kind])} {kind}s)") from None
        if expr in self.topo.world.nodes:
            return expr
        raise UnknownTargetError(
            f"cannot resolve node target {expr!r}: not an index "
            f"(tor[i], agg[p][a]...), an any-* choice, or a node name")

    # ------------------------------------------------------------------
    # interface targets
    # ------------------------------------------------------------------
    def interface(self, expr: str) -> tuple[str, str]:
        cached = self._ifaces.get(expr)
        if cached is None:
            cached = self._ifaces[expr] = self._resolve_interface(expr)
        return cached

    def _resolve_interface(self, expr: str) -> tuple[str, str]:
        if expr.startswith("case:"):
            cases = self.topo.failure_cases()
            name = expr[len("case:"):]
            if name not in cases:
                raise UnknownTargetError(
                    f"unknown failure case {name!r}; available: "
                    f"{', '.join(cases)}")
            case = cases[name]
            return case.node, case.interface
        match = _PORT.match(expr)
        if not match:
            raise UnknownTargetError(
                f"cannot resolve interface target {expr!r}: expected "
                f"case:TCn, <node>.uplink[j], <node>.downlink[j] or "
                f"<node>.iface[name]")
        node_name = self.node(match.group("node"))
        node = self.topo.node(node_name)
        kind, index = match.group("kind"), match.group("index")
        if kind == "iface":
            if index not in node.interfaces:
                raise UnknownTargetError(
                    f"node {node_name} has no interface {index!r}; has: "
                    f"{', '.join(node.interfaces)}")
            return node_name, index
        ports = self._fabric_ports(node_name, up=(kind == "uplink"))
        if not ports:
            raise UnknownTargetError(
                f"node {node_name} has no {kind}s")
        if index == "any":
            return node_name, ports[int(self.rng.integers(len(ports)))]
        j = int(index) if index.isdigit() else None
        if j is None or j >= len(ports):
            raise UnknownTargetError(
                f"{expr!r}: {node_name} has {len(ports)} {kind}(s), "
                f"indices 0..{len(ports) - 1} or 'any'")
        return node_name, ports[j]

    def _fabric_ports(self, node_name: str, up: bool) -> list[str]:
        # delegate to the topology's own notion of up/down: strictly
        # tiered fabrics compare tiers, recursively-defined ones treat
        # same-tier cross links as "up" (out of the cell)
        return self.topo.fabric_ports(node_name, up)

    # ------------------------------------------------------------------
    # link targets
    # ------------------------------------------------------------------
    def link(self, expr: str) -> tuple[str, str]:
        if "--" in expr:
            left, _, right = expr.partition("--")
            node_a, node_b = self.node(left.strip()), self.node(right.strip())
            if self.topo.world.find_link(node_a, node_b) is None:
                raise UnknownTargetError(
                    f"link target {expr!r}: no link between {node_a} "
                    f"and {node_b}")
            return node_a, node_b
        node_name, iface_name = self.interface(expr)
        peer = self.topo.node(node_name).interfaces[iface_name].peer()
        if peer is None:
            raise UnknownTargetError(
                f"link target {expr!r}: {node_name}:{iface_name} is "
                f"not cabled")
        return node_name, peer.node.name

    # ------------------------------------------------------------------
    # traffic endpoints
    # ------------------------------------------------------------------
    def endpoint(self, expr: str) -> str:
        if expr.startswith("server:"):
            tor = self.node(expr[len("server:"):])
            servers = self.topo.servers.get(tor, ())
            if not servers:
                raise UnknownTargetError(
                    f"endpoint {expr!r}: {tor} has no servers "
                    f"(built with servers_per_rack=0?)")
            return servers[0]
        if expr in self.topo.world.nodes \
                and self.topo.node(expr).tier == TIER_SERVER:
            return expr
        raise UnknownTargetError(
            f"cannot resolve endpoint {expr!r}: expected server:<tor> "
            f"or a host name")
