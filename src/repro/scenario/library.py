"""The canonical scenario library.

Thirteen shipped scenarios, runnable on any registered stack via
``python -m repro scenario run``:

* ``tc1``–``tc4`` — the paper's four interface-failure test points
  (Fig. 3), expressed declaratively.  Event-for-event these replay
  :func:`~repro.harness.experiments.run_failure_experiment`, so at
  seed 0 they reproduce the golden Fig. 4/5 metrics exactly (the
  regression test in ``tests/scenario`` holds them to it);
* ``flap-storm`` — a link flaps repeatedly under crossing traffic: the
  Slow-to-Accept ablation's workload as a first-class scenario;
* ``double-cut`` — two correlated fiber cuts 50 ms apart along one
  aggregation's paths (the FatPaths-style correlated failure pattern);
* ``drain`` — maintenance drain-and-upgrade: a whole aggregation goes
  dark, sits in maintenance, and returns;
* ``rolling-restart`` — a pod-batched control-plane upgrade: each
  pod's aggregation *agents* crash together and restart 40 ms later
  under a permutation workload, with measure checkpoints between the
  waves: the cold-vs-graceful restart experiment (restart mode follows
  the stack — ``bgp-gr``/``mtp-gr`` restart gracefully, everything
  else cold-boots);
* ``gray-uplink`` — an asymmetric gray failure: one *direction* of a
  ToR uplink turns lossy and corrupting under crossing traffic.  The
  link is degraded, never down, so every timer-based down-declaration
  it provokes shows up in the ``false_positives`` metric;
* ``lossy-spine`` — an agg-top link runs at 10 % symmetric loss for
  4 s, then heals: the healthy-but-lossy regime where aggressive
  detectors (Quick-to-Detect, tight BFD) start false-flagging;
* ``incast-storm`` — a synchronized incast *workload* (the fluid
  flow-level engine, ``workload`` op) rides out a TC1-style failure
  and recovery: goodput, FCT tails and the blackhole window under
  partition-aggregate load;
* ``hotspot-drain`` — a hotspot workload while one aggregation drains
  for maintenance and returns: skewed load on reduced capacity;
* ``gray-uplink-recovery`` — the full gray-failure life cycle: the TC1
  uplink runs at 15 % symmetric loss, then the impairment clears —
  liveness-enabled stacks must degrade (not withdraw) during the gray
  phase and return the repaired link to service with no stale damping
  hold-down.

Scenarios are topology-relative (symbolic targets), so the same library
runs on 2-PoD, 4-PoD or multi-zone fabrics unchanged.
"""

from __future__ import annotations

from repro.scenario.model import Scenario, ScenarioEvent


def _tc_scenario(case: str, description: str) -> Scenario:
    return Scenario(
        name=case.lower(),
        description=f"{case} declaratively: {description}",
        settle="keepalive-phase",
        quiet_ms=1000,
        max_wait_ms=30_000,
        events=(ScenarioEvent(op="iface_down", at_ms=0,
                              target=f"case:{case}"),),
    )


TC1 = _tc_scenario("TC1", "ToR uplink fails at the ToR side")
TC2 = _tc_scenario("TC2", "ToR-agg link fails at the agg side")
TC3 = _tc_scenario("TC3", "agg uplink fails at the agg side")
TC4 = _tc_scenario("TC4", "agg-top link fails at the top side")

FLAP_STORM = Scenario(
    name="flap-storm",
    description="a ToR uplink flaps three times (300 ms down / 700 ms up) "
                "under crossing far-to-near traffic — the Slow-to-Accept "
                "gate's worst case, with the dead-timer blackhole visible "
                "as lost packets",
    settle=100,
    quiet_ms=1000,
    max_wait_ms=45_000,
    events=(
        # far rack -> failing rack, on a flow that hashes across the
        # flapping link: the remote side only reroutes after detection
        ScenarioEvent(op="traffic_burst", at_ms=0, src="server:tor[3]",
                      dst="server:tor[0]", rate_pps=500, count=2000,
                      src_port=40000),
        ScenarioEvent(op="flap_train", at_ms=200, target="case:TC1",
                      down_ms=300, up_ms=700, count=3),
    ),
)

DOUBLE_CUT = Scenario(
    name="double-cut",
    description="correlated fiber cuts: the first ToR-agg link and, 50 ms "
                "later, one of that agg's uplinks — a shared-conduit cut",
    settle="keepalive-phase",
    quiet_ms=1000,
    max_wait_ms=45_000,
    events=(
        ScenarioEvent(op="link_cut", at_ms=0, target="tor[0]--agg[0]"),
        ScenarioEvent(op="link_cut", at_ms=50, target="agg[0].uplink[any]"),
        ScenarioEvent(op="link_restore", at_ms=5000,
                      target="tor[0]--agg[0]"),
        ScenarioEvent(op="link_restore", at_ms=5050,
                      target="agg[0].uplink[any]"),
    ),
)

DRAIN = Scenario(
    name="drain",
    description="maintenance drain-and-upgrade: one randomly chosen "
                "aggregation goes dark, sits in maintenance for 3 s, "
                "then returns",
    settle="keepalive-phase",
    quiet_ms=1000,
    max_wait_ms=60_000,
    events=(
        ScenarioEvent(op="node_crash", at_ms=0, target="any-agg"),
        ScenarioEvent(op="pause", at_ms=0, duration_ms=3000),
        ScenarioEvent(op="node_restart", at_ms=3000, target="any-agg"),
    ),
)

ROLLING_RESTART = Scenario(
    name="rolling-restart",
    description="pod-batched control-plane upgrade under a permutation "
                "workload: both aggregation agents of pod 1, then of "
                "pod 2, crash and restart 40 ms later — inside every "
                "peer's detection window, so during each wave nobody "
                "can route around the batch.  A cold boot wipes the "
                "batch's tables while traffic still arrives (the "
                "blackhole window GR exists to close); a graceful "
                "restart keeps forwarding throughout",
    settle="keepalive-phase",
    quiet_ms=1000,
    max_wait_ms=60_000,
    events=(
        ScenarioEvent(op="workload", at_ms=0, workload={
            "name": "rolling-restart", "matrix": "permutation",
            "flows": 300, "duration_ms": 3200, "epoch_ms": 5,
        }),
        ScenarioEvent(op="agent_crash", at_ms=0, target="agg[0][0]"),
        ScenarioEvent(op="agent_crash", at_ms=0, target="agg[0][1]"),
        ScenarioEvent(op="agent_restart", at_ms=40, target="agg[0][0]"),
        ScenarioEvent(op="agent_restart", at_ms=40, target="agg[0][1]"),
        ScenarioEvent(op="measure", at_ms=1500, label="wave-1"),
        ScenarioEvent(op="agent_crash", at_ms=1500, target="agg[1][0]"),
        ScenarioEvent(op="agent_crash", at_ms=1500, target="agg[1][1]"),
        ScenarioEvent(op="agent_restart", at_ms=1540, target="agg[1][0]"),
        ScenarioEvent(op="agent_restart", at_ms=1540, target="agg[1][1]"),
        ScenarioEvent(op="measure", at_ms=3000, label="wave-2"),
    ),
)

GRAY_UPLINK = Scenario(
    name="gray-uplink",
    description="asymmetric gray failure: the rx direction of the TC1 "
                "uplink turns lossy+corrupting (the 'gray' preset) for "
                "3 s under crossing traffic — the link degrades but "
                "never goes down, so any down-declaration is a false "
                "positive",
    settle=100,
    quiet_ms=1000,
    max_wait_ms=45_000,
    events=(
        ScenarioEvent(op="traffic_burst", at_ms=0, src="server:tor[3]",
                      dst="server:tor[0]", rate_pps=500, count=2500,
                      src_port=40000),
        ScenarioEvent(op="impair", at_ms=200, target="case:TC1",
                      profile="gray", direction="rx"),
        ScenarioEvent(op="clear_impairment", at_ms=3200,
                      target="case:TC1", direction="rx"),
        ScenarioEvent(op="pause", at_ms=3200, duration_ms=1000),
    ),
)

LOSSY_SPINE = Scenario(
    name="lossy-spine",
    description="a spine-facing link runs at 10% symmetric loss for 4 s "
                "then heals — below hard failure, above clean, the "
                "regime where detector aggressiveness is decided",
    settle="keepalive-phase",
    quiet_ms=1000,
    max_wait_ms=45_000,
    events=(
        ScenarioEvent(op="impair", at_ms=0, target="agg[0].uplink[0]",
                      loss=0.1),
        ScenarioEvent(op="pause", at_ms=0, duration_ms=4000),
        ScenarioEvent(op="clear_impairment", at_ms=4000,
                      target="agg[0].uplink[0]"),
    ),
)

INCAST_STORM = Scenario(
    name="incast-storm",
    description="a synchronized incast workload (fluid flow-level load) "
                "rides out a TC1-style uplink failure and recovery: the "
                "report's blackhole window is the flow-level view of the "
                "same detection bound the probe scenarios measure",
    settle="keepalive-phase",
    quiet_ms=1000,
    max_wait_ms=45_000,
    events=(
        ScenarioEvent(op="workload", at_ms=0, workload={
            "name": "incast-storm", "matrix": "incast",
            "flows": 600, "duration_ms": 600, "incast_fanin": 8,
            "elephant_fraction": 0.02, "epoch_ms": 25,
        }),
        ScenarioEvent(op="iface_down", at_ms=150, target="case:TC1"),
        ScenarioEvent(op="iface_up", at_ms=400, target="case:TC1"),
    ),
)

GRAY_UPLINK_RECOVERY = Scenario(
    name="gray-uplink-recovery",
    description="a full gray-failure life cycle on the TC1 uplink: 15% "
                "symmetric loss for 3 s (liveness-enabled stacks degrade "
                "and depreference the link; aggressive baselines "
                "false-flag and may suppress), then the impairment "
                "clears and damping state resets — the repaired link "
                "must return to service without a stale hold-down",
    settle="keepalive-phase",
    quiet_ms=1000,
    max_wait_ms=60_000,
    events=(
        ScenarioEvent(op="impair", at_ms=0, target="case:TC1",
                      loss=0.15),
        ScenarioEvent(op="pause", at_ms=0, duration_ms=3000),
        ScenarioEvent(op="clear_impairment", at_ms=3000,
                      target="case:TC1"),
        ScenarioEvent(op="pause", at_ms=3000, duration_ms=1500),
    ),
)

HOTSPOT_DRAIN = Scenario(
    name="hotspot-drain",
    description="a hotspot workload (half the flows into one hot rack) "
                "while a randomly chosen aggregation drains for "
                "maintenance and returns — skewed load meeting reduced "
                "fabric capacity",
    settle="keepalive-phase",
    quiet_ms=1000,
    max_wait_ms=60_000,
    events=(
        ScenarioEvent(op="workload", at_ms=0, workload={
            "name": "hotspot-drain", "matrix": "hotspot",
            "flows": 600, "duration_ms": 600, "hotspot_fraction": 0.5,
            "epoch_ms": 25,
        }),
        ScenarioEvent(op="node_crash", at_ms=150, target="any-agg"),
        ScenarioEvent(op="node_restart", at_ms=400, target="any-agg"),
    ),
)

CANONICAL = (TC1, TC2, TC3, TC4, FLAP_STORM, DOUBLE_CUT, DRAIN,
             ROLLING_RESTART, GRAY_UPLINK, LOSSY_SPINE,
             INCAST_STORM, HOTSPOT_DRAIN, GRAY_UPLINK_RECOVERY)


def canonical_scenarios() -> dict[str, Scenario]:
    """name -> scenario, in library order."""
    return {scenario.name: scenario for scenario in CANONICAL}


def get_scenario(name: str) -> Scenario:
    scenarios = canonical_scenarios()
    if name not in scenarios:
        from repro.scenario.model import ScenarioError
        raise ScenarioError(
            f"unknown scenario {name!r}; canonical library: "
            f"{', '.join(scenarios)}")
    return scenarios[name]
