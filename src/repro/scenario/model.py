"""Scenario data model: fault/traffic experiments as data.

A :class:`Scenario` is an ordered list of timestamped, validated
:class:`ScenarioEvent` records — interface/link/node faults, flap
trains, traffic bursts, and pause/measure markers — plus the settle and
measurement policy around them.  Timestamps (``at_ms``) are offsets from
the *measurement start*: the instant after the converged fabric has
idled through its settle phase, when the update monitor arms and the
table snapshot is taken.

Scenarios are pure data: symbolic targets (``"tor[0].uplink[1]"``,
``"any-spine"``, ``"case:TC1"`` — see :mod:`repro.scenario.targets`)
stay unresolved until a compile against a built fabric (any registered
:class:`~repro.topology.Topology`).  They serialize to canonical
JSON (sorted keys, no incidental whitespace), so a scenario flows
through the content-addressed result cache and the parallel runner
exactly like any other task component.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.harness.digest import canonical_json
from repro.net.impairment import DIRECTIONS, resolve_profile
from repro.workload.spec import WorkloadError, resolve_workload

# Bump when the scenario payload semantics change: the schema number is
# embedded in every serialized scenario and in every scenario cache key.
# Schema 2 added the impair/clear_impairment ops (gray failures).
# Schema 3 added the workload op (flow-level load under faults).
# Schema 4 added the agent_crash/agent_restart ops (control-plane crash
# with headless forwarding; restart follows the stack's restart mode).
SCENARIO_SCHEMA = 4


class ScenarioError(ValueError):
    """A structurally invalid scenario (unknown op, bad field, bad order)."""


# op -> (required fields, optional fields) beyond the common op/at_ms
_FAULT_OPS = ("iface_down", "iface_up", "link_cut", "link_restore",
              "node_crash", "node_restart", "agent_crash", "agent_restart",
              "flap_train")
_EVENT_FIELDS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "iface_down": (("target",), ()),
    "iface_up": (("target",), ()),
    "link_cut": (("target",), ()),
    "link_restore": (("target",), ()),
    "node_crash": (("target",), ()),
    "node_restart": (("target",), ()),
    "agent_crash": (("target",), ()),
    "agent_restart": (("target",), ()),
    "flap_train": (("target", "count", "down_ms"), ("up_ms",)),
    "traffic_burst": (("src", "dst", "rate_pps", "count"), ("src_port",)),
    "pause": (("duration_ms",), ()),
    "measure": (("label",), ()),
    "impair": (("target",),
               ("profile", "direction", "loss", "corrupt", "duplicate",
                "jitter_us", "ge_p", "ge_r", "ge_loss_bad")),
    "clear_impairment": (("target",), ("direction",)),
    "workload": (("workload",), ()),
}

# events that begin an outage (used for the detection-time metric).
# impair is deliberately NOT here: an impaired link is degraded, not
# down, so any down-declaration it provokes is a false positive.
# agent_crash IS here: the silent control plane is a real outage that
# peers must detect through their own liveness machinery.
DOWN_OPS = ("iface_down", "link_cut", "node_crash", "agent_crash",
            "flap_train")


@dataclass(frozen=True)
class ScenarioEvent:
    """One timestamped scenario step.  Only the fields the op declares in
    ``_EVENT_FIELDS`` may be set; everything else must stay ``None``."""

    op: str
    at_ms: int = 0
    target: Optional[str] = None     # fault ops: symbolic target
    src: Optional[str] = None        # traffic_burst: sender endpoint
    dst: Optional[str] = None        # traffic_burst: receiver endpoint
    rate_pps: Optional[int] = None   # traffic_burst
    count: Optional[int] = None      # traffic_burst / flap_train
    src_port: Optional[int] = None   # traffic_burst flow selector
    down_ms: Optional[int] = None    # flap_train down-window
    up_ms: Optional[int] = None      # flap_train up-window (default: down)
    duration_ms: Optional[int] = None  # pause
    label: Optional[str] = None      # measure checkpoint name
    profile: Optional[str] = None    # impair: preset name (see net.impairment)
    direction: Optional[str] = None  # impair: "tx" | "rx" | "both"
    loss: Optional[float] = None     # impair: independent loss probability
    corrupt: Optional[float] = None  # impair: bad-FCS probability
    duplicate: Optional[float] = None  # impair: duplication probability
    jitter_us: Optional[int] = None  # impair: reordering jitter bound
    ge_p: Optional[float] = None     # impair: Gilbert-Elliott P(good->bad)
    ge_r: Optional[float] = None     # impair: Gilbert-Elliott P(bad->good)
    ge_loss_bad: Optional[float] = None  # impair: loss prob in bad state
    workload: Optional[Any] = None   # workload: spec name or payload dict

    def __post_init__(self) -> None:
        if self.op not in _EVENT_FIELDS:
            raise ScenarioError(
                f"unknown scenario op {self.op!r}; known ops: "
                f"{', '.join(sorted(_EVENT_FIELDS))}")
        if not isinstance(self.at_ms, int) or self.at_ms < 0:
            raise ScenarioError(
                f"{self.op}: at_ms must be a non-negative integer, "
                f"got {self.at_ms!r}")
        required, optional = _EVENT_FIELDS[self.op]
        allowed = set(required) | set(optional)
        for name in required:
            if getattr(self, name) is None:
                raise ScenarioError(f"{self.op}: missing field {name!r}")
        for field in dataclasses.fields(self):
            if field.name in ("op", "at_ms"):
                continue
            if getattr(self, field.name) is not None and \
                    field.name not in allowed:
                raise ScenarioError(
                    f"{self.op}: field {field.name!r} is not valid for "
                    f"this op (allowed: {', '.join(sorted(allowed))})")
        for name in ("rate_pps", "count", "down_ms", "duration_ms"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int)
                                      or value <= 0):
                raise ScenarioError(
                    f"{self.op}: {name} must be a positive integer, "
                    f"got {value!r}")
        if self.up_ms is not None and (not isinstance(self.up_ms, int)
                                       or self.up_ms <= 0):
            raise ScenarioError(
                f"{self.op}: up_ms must be a positive integer, "
                f"got {self.up_ms!r}")
        if self.direction is not None and self.direction not in DIRECTIONS:
            raise ScenarioError(
                f"{self.op}: direction must be one of "
                f"{', '.join(DIRECTIONS)}, got {self.direction!r}")
        if self.op == "impair":
            # validate the preset/field combination up front, before any
            # simulation time is spent (unknown preset, out-of-range
            # probability, or an all-default no-op all fail here)
            try:
                self.impairment_profile()
            except ValueError as exc:
                raise ScenarioError(f"impair: {exc}") from None
        if self.op == "workload":
            # validate and normalize eagerly: the stored form is always
            # the full resolved spec payload, so a preset name and its
            # expansion serialize (and cache-key) identically
            try:
                resolved = resolve_workload(self.workload)
            except WorkloadError as exc:
                raise ScenarioError(f"workload: {exc}") from None
            object.__setattr__(self, "workload", resolved.to_payload())

    def impairment_profile(self):
        """The validated :class:`~repro.net.impairment.ImpairmentProfile`
        this ``impair`` event describes."""
        return resolve_profile(
            self.profile, loss=self.loss, corrupt=self.corrupt,
            duplicate=self.duplicate, jitter_us=self.jitter_us,
            ge_p=self.ge_p, ge_r=self.ge_r, ge_loss_bad=self.ge_loss_bad)

    def workload_spec(self):
        """The resolved :class:`~repro.workload.spec.WorkloadSpec` this
        ``workload`` event carries."""
        return resolve_workload(self.workload)

    # ------------------------------------------------------------------
    def duration_ms_total(self) -> int:
        """How long past ``at_ms`` this event keeps the fabric busy —
        the measurement horizon must cover every event's tail."""
        if self.op == "flap_train":
            up = self.up_ms if self.up_ms is not None else self.down_ms
            return self.count * (self.down_ms + up)
        if self.op == "traffic_burst":
            gap_us = max(1_000_000 // self.rate_pps, 1)
            return -(-self.count * gap_us // 1000)  # ceil to whole ms
        if self.op == "pause":
            return self.duration_ms
        if self.op == "workload":
            return self.workload["duration_ms"]
        return 0

    def to_payload(self) -> dict:
        payload = {"op": self.op, "at_ms": self.at_ms}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name in ("op", "at_ms") or value is None:
                continue
            payload[field.name] = value
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ScenarioEvent":
        if not isinstance(payload, Mapping):
            raise ScenarioError(f"event must be an object, got {payload!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ScenarioError(
                f"event has unknown fields: {', '.join(sorted(unknown))}")
        if "op" not in payload:
            raise ScenarioError(f"event is missing 'op': {dict(payload)!r}")
        return cls(**payload)


@dataclass(frozen=True)
class Scenario:
    """A declarative fault/traffic experiment.

    ``settle`` controls how the converged fabric idles before the
    measurement starts: ``"keepalive-phase"`` draws a per-seed duration
    uniform in [0, 2 x keepalive interval] from the same RNG stream the
    classic failure experiment uses (so a single-failure scenario lands
    at an arbitrary phase of the keepalive cycle, exactly as the paper's
    testbed runs did), while an integer is a fixed millisecond settle.
    ``quiet_ms``/``max_wait_ms`` are the update-quiesce measurement rule
    of section VI.B.
    """

    name: str
    description: str = ""
    settle: Union[str, int] = "keepalive-phase"
    quiet_ms: int = 1000
    max_wait_ms: int = 30_000
    events: tuple[ScenarioEvent, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or self.name.strip() != self.name:
            raise ScenarioError(f"invalid scenario name {self.name!r}")
        if isinstance(self.settle, bool) or not (
                self.settle == "keepalive-phase"
                or (isinstance(self.settle, int) and self.settle >= 0)):
            raise ScenarioError(
                f"settle must be 'keepalive-phase' or a non-negative "
                f"millisecond count, got {self.settle!r}")
        for field_name in ("quiet_ms", "max_wait_ms"):
            value = getattr(self, field_name)
            if not isinstance(value, int) or value <= 0:
                raise ScenarioError(
                    f"{field_name} must be a positive integer, "
                    f"got {value!r}")
        object.__setattr__(self, "events", tuple(self.events))
        if not self.events:
            raise ScenarioError(f"scenario {self.name!r} has no events")
        previous = 0
        for event in self.events:
            if not isinstance(event, ScenarioEvent):
                raise ScenarioError(
                    f"scenario {self.name!r}: events must be "
                    f"ScenarioEvent instances, got {event!r}")
            if event.at_ms < previous:
                raise ScenarioError(
                    f"scenario {self.name!r}: events must be ordered by "
                    f"at_ms ({event.op} at {event.at_ms} ms follows "
                    f"{previous} ms)")
            previous = event.at_ms

    # ------------------------------------------------------------------
    def horizon_ms(self) -> int:
        """Offset of the last event activity: the measurement must not
        stop before every scheduled event (and its tail) has played."""
        return max(e.at_ms + e.duration_ms_total() for e in self.events)

    def symbolic_targets(self) -> tuple[str, ...]:
        """Every target expression, in first-use order (the order the
        resolver consumes RNG draws in)."""
        seen: list[str] = []
        for event in self.events:
            for expr in (event.target, event.src, event.dst):
                if expr is not None and expr not in seen:
                    seen.append(expr)
        return tuple(seen)

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "description": self.description,
            "settle": self.settle,
            "quiet_ms": self.quiet_ms,
            "max_wait_ms": self.max_wait_ms,
            "events": [e.to_payload() for e in self.events],
        }

    def to_json(self) -> str:
        """Canonical JSON: the form that is cached, hashed and diffed."""
        return canonical_json(self.to_payload())

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Scenario":
        if not isinstance(payload, Mapping):
            raise ScenarioError(f"scenario must be an object, got {payload!r}")
        schema = payload.get("schema", SCENARIO_SCHEMA)
        if schema != SCENARIO_SCHEMA:
            raise ScenarioError(
                f"unsupported scenario schema {schema!r} "
                f"(this build reads schema {SCENARIO_SCHEMA})")
        known = {"schema", "name", "description", "settle", "quiet_ms",
                 "max_wait_ms", "events"}
        unknown = set(payload) - known
        if unknown:
            raise ScenarioError(
                f"scenario has unknown fields: {', '.join(sorted(unknown))}")
        if "name" not in payload or "events" not in payload:
            raise ScenarioError("scenario requires 'name' and 'events'")
        if not isinstance(payload["events"], (list, tuple)):
            raise ScenarioError("'events' must be a list")
        kwargs: dict[str, Any] = {
            "name": payload["name"],
            "events": tuple(ScenarioEvent.from_payload(e)
                            for e in payload["events"]),
        }
        for field_name in ("description", "settle", "quiet_ms",
                           "max_wait_ms"):
            if field_name in payload:
                kwargs[field_name] = payload[field_name]
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}") from None
        return cls.from_payload(payload)
