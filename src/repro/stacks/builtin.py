"""The paper's three stacks as registry plugins.

This is the only module allowed to know about :class:`StackKind` — the
legacy enum stays importable (and resolvable through the registry via
its ``stack_name`` property) so existing studies keep running, but every
harness layer goes through :mod:`repro.stacks.registry` instead of
branching on it.

The harness imports are deliberately deferred into the deploy callables:
plugins must stay importable before :mod:`repro.harness` finishes
initializing (the harness itself imports this package).
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Optional

from repro.stacks.base import StackDefinition, StackTimers
from repro.stacks.registry import register_stack


class StackKind(Enum):
    """The paper's three protocol stacks (section VII) — legacy handle;
    new code should pass registry names (``"mtp"``, ``"bgp"``, ...)."""

    MTP = "MR-MTP"
    BGP = "BGP/ECMP"
    BGP_BFD = "BGP/ECMP/BFD"

    @property
    def stack_name(self) -> str:
        """The registry name this enum member resolves to."""
        return _KIND_NAMES[self]


_KIND_NAMES = {
    StackKind.MTP: "mtp",
    StackKind.BGP: "bgp",
    StackKind.BGP_BFD: "bgp-bfd",
}


# ----------------------------------------------------------------------
# deploy + config-render callables (the actual wiring lives in
# repro.harness.deploy; these adapt the shared timer bundle onto it)
# ----------------------------------------------------------------------
def deploy_mtp_stack(topo: Any, timers: StackTimers, *,
                     per_packet_spray: bool = False,
                     liveness: Any = False,
                     graceful_restart: bool = False,
                     stale_hold_us: Optional[int] = None):
    from repro.harness.deploy import deploy_mtp

    return deploy_mtp(topo, timers=timers.mtp,
                      per_packet_spray=per_packet_spray,
                      liveness=liveness,
                      graceful_restart=graceful_restart,
                      stale_hold_us=stale_hold_us)


def deploy_bgp_stack(topo: Any, timers: StackTimers, *, bfd: bool = False,
                     multipath: bool = True, liveness: Any = False,
                     graceful_restart: bool = False):
    from repro.harness.deploy import deploy_bgp

    return deploy_bgp(topo, bfd=bfd, timers=timers.bgp,
                      bfd_timers=timers.bfd, multipath=multipath,
                      liveness=liveness, graceful_restart=graceful_restart)


def render_mtp_config(topo: Any, timers: Optional[StackTimers] = None,
                      node: Optional[str] = None, **params: Any) -> str:
    """Listing 2: the single fabric-wide JSON document."""
    from repro.core.config import MtpGlobalConfig

    bundle = timers if timers is not None else StackTimers()
    return MtpGlobalConfig.from_topology(topo, bundle.mtp).render_json()


def render_bgp_config(topo: Any, timers: Optional[StackTimers] = None,
                      node: Optional[str] = None, *, bfd: bool = False,
                      multipath: bool = True, liveness: Any = False,
                      graceful_restart: bool = False) -> str:
    """Listing 1: one router's FRR-style configuration."""
    bundle = timers if timers is not None else StackTimers()
    deployment = deploy_bgp_stack(topo, bundle, bfd=bfd,
                                  multipath=multipath, liveness=liveness,
                                  graceful_restart=graceful_restart)
    # prefer a top spine; fabrics without a top tier (recursive DCNs)
    # show their first router instead
    node = node or (topo.all_tops() or topo.routers())[0]
    lines = [f"! configuration for {node}"]
    lines.extend(deployment.speakers[node].config.config_lines())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# timer-bundle accessors.  BGP's hold timer is the detection bound even
# with BFD enabled (BFD merely usually beats it); waiting for it costs
# only simulated time.
# ----------------------------------------------------------------------
def _mtp_detection_bound_us(timers: StackTimers) -> int:
    return timers.mtp.dead_us


def _mtp_keepalive_period_us(timers: StackTimers) -> int:
    return timers.mtp.hello_us


def _bgp_detection_bound_us(timers: StackTimers) -> int:
    return timers.bgp.hold_us


def _bgp_keepalive_period_us(timers: StackTimers) -> int:
    return timers.bgp.keepalive_us


# ----------------------------------------------------------------------
# the builtin registrations
# ----------------------------------------------------------------------
MTP = register_stack(StackDefinition(
    name="mtp",
    display="MR-MTP",
    description="multi-root meshed-tree protocol, the paper's proposal",
    deploy=deploy_mtp_stack,
    detection_bound_us=_mtp_detection_bound_us,
    keepalive_period_us=_mtp_keepalive_period_us,
    render_config=render_mtp_config,
))

BGP = register_stack(StackDefinition(
    name="bgp",
    display="BGP/ECMP",
    description="RFC 7938 eBGP with ECMP multipath, the paper's baseline",
    deploy=deploy_bgp_stack,
    detection_bound_us=_bgp_detection_bound_us,
    keepalive_period_us=_bgp_keepalive_period_us,
    render_config=render_bgp_config,
))

BGP_BFD = register_stack(StackDefinition(
    name="bgp-bfd",
    display="BGP/ECMP/BFD",
    description="the BGP baseline with RFC 5880 async-mode BFD detection",
    deploy=deploy_bgp_stack,
    default_params={"bfd": True},
    detection_bound_us=_bgp_detection_bound_us,
    keepalive_period_us=_bgp_keepalive_period_us,
    render_config=render_bgp_config,
))
