"""Stack plugins: registry-driven protocol deployments.

Importing this package registers the builtin stacks (``mtp``, ``bgp``,
``bgp-bfd``) and the shipped variants (``mtp-spray``,
``bgp-nomultipath``).  The harness, sweep, cache and CLI all select
stacks through :func:`resolve_spec` / :func:`get_stack`; to add a
scenario, call :func:`register_stack` — no harness changes required (see
README, "Writing a stack plugin").
"""

from repro.stacks.base import (
    ConfigCost,
    Deployment,
    StackDefinition,
    StackSpec,
    StackTimers,
    TableStats,
    canonical_params,
)
from repro.stacks.registry import (
    UnknownStackError,
    available_stacks,
    get_stack,
    register_stack,
    resolve_spec,
    unregister_stack,
)
from repro.stacks.builtin import StackKind
from repro.stacks import variants as _variants  # noqa: F401  (registers)

__all__ = [
    "ConfigCost",
    "Deployment",
    "StackDefinition",
    "StackSpec",
    "StackKind",
    "StackTimers",
    "TableStats",
    "UnknownStackError",
    "available_stacks",
    "canonical_params",
    "get_stack",
    "register_stack",
    "resolve_spec",
    "unregister_stack",
]
