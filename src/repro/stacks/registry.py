"""Global stack registry: name -> :class:`StackDefinition`.

Adding a scenario means registering a definition — no harness, sweep,
cache or CLI module changes.  Resolution accepts every spelling callers
use (a registry name, a prepared :class:`StackSpec`, a definition, or a
legacy object exposing ``stack_name`` such as the builtin ``StackKind``
enum) and normalizes to a :class:`StackSpec`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.stacks.base import StackDefinition, StackSpec, StackTimers

_REGISTRY: dict[str, StackDefinition] = {}


class UnknownStackError(KeyError):
    """Lookup of a name nobody registered."""


def register_stack(definition: StackDefinition, *,
                   replace: bool = False) -> StackDefinition:
    """Register ``definition`` under its name; returns it so modules can
    register at import time and keep the handle.

    Duplicate names are rejected (two plugins silently shadowing each
    other would corrupt cache keys); pass ``replace=True`` to override
    deliberately (tests, interactive experimentation).
    """
    name = definition.name
    if not name or name.strip() != name:
        raise ValueError(f"invalid stack name {name!r}")
    if not replace and name in _REGISTRY:
        raise ValueError(
            f"stack {name!r} is already registered; "
            f"pass replace=True to override")
    _REGISTRY[name] = definition
    return definition


def unregister_stack(name: str) -> None:
    """Remove a registration (primarily for test teardown)."""
    if name not in _REGISTRY:
        raise UnknownStackError(
            f"unknown stack {name!r}; available: "
            f"{', '.join(_REGISTRY) or '(none)'}")
    del _REGISTRY[name]


def get_stack(name: str) -> StackDefinition:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownStackError(
            f"unknown stack {name!r}; available: "
            f"{', '.join(available_stacks()) or '(none)'}") from None


def available_stacks() -> tuple[str, ...]:
    """Registered names, in registration order (builtins first)."""
    return tuple(_REGISTRY)


def resolve_spec(stack: Any,
                 timers: Optional[StackTimers] = None) -> StackSpec:
    """Normalize any accepted stack spelling to a :class:`StackSpec`.

    ``timers`` (when given) overrides the spec's bundle — so legacy
    ``f(params, kind, timers=...)`` call shapes keep working unchanged.
    """
    if isinstance(stack, StackSpec):
        return stack if timers is None else stack.with_timers(timers)
    if isinstance(stack, StackDefinition):
        return stack.spec(timers=timers)
    name = stack if isinstance(stack, str) else getattr(stack, "stack_name",
                                                        None)
    if not isinstance(name, str):
        raise TypeError(
            f"cannot resolve a stack from {stack!r}; expected a registry "
            f"name, StackSpec, StackDefinition, or StackKind")
    return get_stack(name).spec(timers=timers)
