"""Stack-plugin substrate: the protocol every deployment implements.

A *stack* is one routable control/data-plane bundle (the paper's MR-MTP,
BGP/ECMP, BGP/ECMP/BFD — or any variant someone registers later).  The
experiment harness never branches on which stack it is running; it talks
to two abstractions only:

* :class:`StackDefinition` — the registered plugin: how to deploy the
  stack onto a built topology, its timer-derived bounds, and (optionally)
  how to render operator configuration.
* :class:`Deployment` — the structural protocol a deployed stack
  satisfies: start, readiness, forwarding-table/update introspection,
  liveness periods, per-node table statistics, config cost, path tracing.

Specs (:class:`StackSpec`) are the picklable, canonical-JSON-able unit
that crosses process boundaries and feeds the result-cache key: registry
name + canonical parameter tuple + timer bundle.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterable,
    Mapping,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

from repro.bfd.session import BfdTimers
from repro.bgp.config import BgpTimers
from repro.core.config import MtpTimers


@dataclass
class StackTimers:
    """Timer bundle; defaults are the paper's section VI.F values."""

    bgp: BgpTimers = field(default_factory=BgpTimers)
    bfd: BfdTimers = field(default_factory=BfdTimers)
    mtp: MtpTimers = field(default_factory=MtpTimers)


@dataclass(frozen=True)
class TableStats:
    """One node's forwarding-table size (Listings 3 and 5)."""

    entries: int
    memory_bytes: int
    rendered: str


@dataclass(frozen=True)
class ConfigCost:
    """Operator-written configuration: line count and artifact count."""

    total_lines: int
    documents: int


@runtime_checkable
class Deployment(Protocol):
    """What the harness requires of a deployed stack.

    Implementations additionally expose ``topo`` (the built topology) and
    ``servers`` (name -> host with a ``udp`` service) as attributes; the
    traffic experiments use both.

    Optionally, a deployment may implement the agent-lifecycle pair
    ``crash_agent(node)`` / ``restart_agent(node, cold=None)`` (the
    builtin MTP and BGP deployments do): ``crash_agent`` kills the
    node's control plane silently while the data plane keeps forwarding
    on the frozen tables, and ``restart_agent`` boots it back — cold
    (forwarding state wiped) or gracefully (stale state retained and
    re-confirmed), defaulting to the stack's configured restart mode.
    The failure injector and scenario compiler probe for the pair with
    ``getattr``; stacks without it simply reject ``agent_crash`` events.
    """

    def start(self) -> None:
        """Kick off every protocol instance (timers, hellos, sessions)."""
        ...

    def ready(self) -> bool:
        """Cold-start convergence predicate: fully converged?"""
        ...

    def forwarding_tables(self) -> dict[str, Any]:
        """name -> table with ``.change_count`` / ``.last_change_time``."""
        ...

    def update_categories(self) -> tuple[str, ...]:
        """Trace categories that count as control-plane update traffic."""
        ...

    def keepalive_period_us(self) -> int:
        """Steady-state liveness period (hello/keepalive interval)."""
        ...

    def detection_bound_us(self) -> int:
        """Upper bound on one-sided failure-detection latency."""
        ...

    def classify_liveness(self, record: Any) -> Optional[str]:
        """Classify one trace record as a liveness transition: one of
        ``"down-detected"`` (a liveness timer declared the peer dead),
        ``"down-admin"`` (local link-down event), ``"up"``
        (adjacency/session established), ``"suppress"`` / ``"reuse"``
        (flap damping quarantined / released the adjacency — liveness-
        enabled stacks only), or None for anything else.  Feeds the
        false-positive / flap / MTTR metrics of the chaos suite."""
        ...

    def table_stats(self, node: str) -> TableStats:
        """Converged forwarding-state size of one node."""
        ...

    def config_cost(self) -> ConfigCost:
        """Configuration an operator writes for this deployment."""
        ...

    def describe_node(self, node: str) -> str:
        """Human-readable converged state of one node (CLI display)."""
        ...

    def trace_fabric_path(self, path: list[str], dst_ip: Any,
                          dst_host: str, flow: Any) -> list[str]:
        """Statically replay hop decisions from ``path[-1]`` (the source
        ToR) to ``dst_host``; raises RuntimeError on dead ends/loops."""
        ...

    def fluid_candidates(self, node: str, dst_tor: str,
                         ingress_port: Optional[str]
                         ) -> tuple[int, bool, tuple[str, ...]]:
        """The multipath candidate set at ``node`` toward rack
        ``dst_tor``, as ``(ecmp_salt, per_packet_spray, egress ports)``
        — the exact ordered set the data plane balances a flow over
        right now, so the flow-level workload evaluator
        (:mod:`repro.workload.engine`) reproduces per-flow path choices
        without forwarding a packet.  An empty port tuple means the
        stack currently has no path (a blackhole)."""
        ...


ParamItems = Union[Mapping[str, Any], Iterable[tuple[str, Any]], None]


def canonical_params(params: ParamItems) -> tuple[tuple[str, Any], ...]:
    """Sort parameters into the canonical (key, value) tuple that cache
    keys and specs carry — order-insensitive, picklable, JSON-able."""
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class StackSpec:
    """One stack selection, fully serialized: registry name, canonical
    deploy parameters, and the timer bundle.  This — never an enum — is
    what task specs pickle and what cache keys derive from."""

    name: str
    params: tuple[tuple[str, Any], ...] = ()
    timers: StackTimers = field(default_factory=StackTimers)

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def with_timers(self, timers: StackTimers) -> "StackSpec":
        return dataclasses.replace(self, timers=timers)


@dataclass(frozen=True)
class StackDefinition:
    """A registered stack plugin.

    ``deploy(topo, timers, **params)`` wires the stack onto a built
    topology and returns a :class:`Deployment`.  The two timer accessors
    map the shared :class:`StackTimers` bundle onto this stack's own
    bounds so pre-deployment code (cache keys, wait budgets) never
    branches per stack.  ``render_config`` (optional) renders the
    operator-facing configuration without converging anything.
    """

    name: str
    display: str
    deploy: Callable[..., Deployment]
    detection_bound_us: Callable[[StackTimers], int]
    keepalive_period_us: Callable[[StackTimers], int]
    description: str = ""
    default_params: Mapping[str, Any] = field(default_factory=dict)
    render_config: Optional[Callable[..., str]] = None

    def spec(self, timers: Optional[StackTimers] = None,
             **overrides: Any) -> StackSpec:
        """A canonical spec for this stack (defaults + overrides)."""
        merged = {**self.default_params, **overrides}
        return StackSpec(name=self.name, params=canonical_params(merged),
                         timers=timers if timers is not None else StackTimers())

    def build(self, topo: Any, spec: StackSpec) -> Deployment:
        """Deploy onto ``topo`` exactly as ``spec`` describes."""
        return self.deploy(topo, spec.timers, **spec.params_dict())
