"""Variant stacks registered purely through the registry.

Nothing here touches the harness: each variant is a registration that
reuses the builtin deploy callables with different canonical parameters.
This is the extension pattern every future "new scenario" PR follows —
drop a module like this one in, import it, done.
"""

from __future__ import annotations

from repro.stacks.base import StackDefinition
from repro.stacks.builtin import (
    _bgp_detection_bound_us,
    _bgp_keepalive_period_us,
    _mtp_detection_bound_us,
    _mtp_keepalive_period_us,
    deploy_bgp_stack,
    deploy_mtp_stack,
    render_bgp_config,
    render_mtp_config,
)
from repro.stacks.registry import register_stack


def _mtp_adaptive_detection_bound_us(timers) -> int:
    # adaptive widening: up to max_scale x the paper's dead interval on
    # a measured-lossy link (clean links keep the 2x-hello bound)
    from repro.liveness import DEFAULT_LIVENESS

    return int(timers.mtp.dead_us * DEFAULT_LIVENESS.max_scale)


MTP_SPRAY = register_stack(StackDefinition(
    name="mtp-spray",
    display="MR-MTP (per-packet spray)",
    description="MR-MTP with round-robin per-packet spraying on the "
                "hashed-up paths instead of flow-sticky ECMP",
    deploy=deploy_mtp_stack,
    default_params={"per_packet_spray": True},
    detection_bound_us=_mtp_detection_bound_us,
    keepalive_period_us=_mtp_keepalive_period_us,
    render_config=render_mtp_config,
))

BGP_NOMULTIPATH = register_stack(StackDefinition(
    name="bgp-nomultipath",
    display="BGP (single path)",
    description="the BGP baseline with ECMP multipath disabled — one "
                "best path per prefix, the pre-RFC7938 ablation",
    deploy=deploy_bgp_stack,
    default_params={"multipath": False},
    detection_bound_us=_bgp_detection_bound_us,
    keepalive_period_us=_bgp_keepalive_period_us,
    render_config=render_bgp_config,
))

MTP_ADAPTIVE = register_stack(StackDefinition(
    name="mtp-adaptive",
    display="MR-MTP (adaptive liveness)",
    description="MR-MTP with the adaptive liveness layer: loss-aware "
                "dead-timer widening, flap damping, and gray-failure "
                "depreference of degraded ports",
    deploy=deploy_mtp_stack,
    default_params={"liveness": True},
    detection_bound_us=_mtp_adaptive_detection_bound_us,
    keepalive_period_us=_mtp_keepalive_period_us,
    render_config=render_mtp_config,
))

BGP_GR = register_stack(StackDefinition(
    name="bgp-gr",
    display="BGP/ECMP/BFD (graceful restart)",
    description="the BGP+BFD stack with RFC 4724 graceful restart: "
                "helpers hold a restarting peer's paths stale under the "
                "restart timer, a restarting speaker keeps its FIB and "
                "re-learns, flushing on End-of-RIB",
    deploy=deploy_bgp_stack,
    default_params={"bfd": True, "graceful_restart": True},
    detection_bound_us=_bgp_detection_bound_us,
    keepalive_period_us=_bgp_keepalive_period_us,
    render_config=render_bgp_config,
))

MTP_GR = register_stack(StackDefinition(
    name="mtp-gr",
    display="MR-MTP (graceful restart)",
    description="MR-MTP with graceful restart: helpers hold a silent "
                "neighbor's tree state stale instead of pruning, and a "
                "restarting agent keeps its VID table while neighbor "
                "re-hellos rebuild and confirm it",
    deploy=deploy_mtp_stack,
    default_params={"graceful_restart": True},
    detection_bound_us=_mtp_detection_bound_us,
    keepalive_period_us=_mtp_keepalive_period_us,
    render_config=render_mtp_config,
))

BGP_BFD_DAMPED = register_stack(StackDefinition(
    name="bgp-bfd-damped",
    display="BGP/ECMP/BFD (damped)",
    description="the BGP+BFD stack with the adaptive liveness layer: "
                "loss-aware BFD detection widening, session flap "
                "damping, and ECMP depreference of degraded next hops",
    deploy=deploy_bgp_stack,
    default_params={"bfd": True, "liveness": True},
    # BGP's hold timer still bounds detection: the widened BFD envelope
    # (8 x 300 ms = 2.4 s) stays under the 3 s hold time
    detection_bound_us=_bgp_detection_bound_us,
    keepalive_period_us=_bgp_keepalive_period_us,
    render_config=render_bgp_config,
))
