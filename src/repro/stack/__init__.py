"""Wire-format substrate: addresses, frames and packets.

Classes here model the packets that cross simulated links, with
*byte-accurate* layer sizes so that the paper's overhead figures (66-byte
BFD packets, 85-byte BGP keepalives, 15-byte MR-MTP hellos at layer 2)
fall out of simple accounting:

===========================  =====
header                       bytes
===========================  =====
Ethernet (no FCS/preamble)     14
IPv4 (no options)              20
UDP                             8
TCP (with timestamp option)   32
===========================  =====
"""

from repro.stack.addresses import MacAddress, Ipv4Address, Ipv4Network, BROADCAST_MAC
from repro.stack.ethernet import (
    EthernetFrame,
    ETHERTYPE_IPV4,
    ETHERTYPE_ARP,
    ETHERTYPE_MTP,
    ETHERNET_HEADER_BYTES,
    ETHERNET_MIN_FRAME_BYTES,
)
from repro.stack.ipv4 import (
    Ipv4Packet,
    IPV4_HEADER_BYTES,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.stack.udp import UdpDatagram, UDP_HEADER_BYTES
from repro.stack.tcp_segment import TcpSegment, TCP_HEADER_BYTES
from repro.stack.arp import ArpMessage, ARP_WIRE_BYTES
from repro.stack.payload import Payload, RawBytes

__all__ = [
    "MacAddress",
    "Ipv4Address",
    "Ipv4Network",
    "BROADCAST_MAC",
    "EthernetFrame",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_ARP",
    "ETHERTYPE_MTP",
    "ETHERNET_HEADER_BYTES",
    "ETHERNET_MIN_FRAME_BYTES",
    "Ipv4Packet",
    "IPV4_HEADER_BYTES",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "UdpDatagram",
    "UDP_HEADER_BYTES",
    "TcpSegment",
    "TCP_HEADER_BYTES",
    "ArpMessage",
    "ARP_WIRE_BYTES",
    "Payload",
    "RawBytes",
]
