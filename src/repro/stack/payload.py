"""Payload protocol.

Every packet body (IPv4 packet inside an Ethernet frame, BGP message
inside a TCP stream, MR-MTP message inside a frame...) implements
``wire_size`` so layer sizes compose by simple addition — the accounting
the paper performs on Wireshark captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@runtime_checkable
class Payload(Protocol):
    """Anything with a layer-2-countable size in bytes."""

    @property
    def wire_size(self) -> int: ...


@dataclass(frozen=True, slots=True)
class RawBytes:
    """Opaque payload of a given size (test traffic, padding)."""

    size: int
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative payload size {self.size}")

    @property
    def wire_size(self) -> int:
        return self.size
