"""IPv4 packets (20-byte header, no options)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.stack.addresses import Ipv4Address
from repro.stack.payload import Payload

IPV4_HEADER_BYTES = 20

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

DEFAULT_TTL = 64


@dataclass(frozen=True)
class Ipv4Packet:
    src: Ipv4Address
    dst: Ipv4Address
    proto: int
    payload: Payload
    ttl: int = DEFAULT_TTL

    def __post_init__(self) -> None:
        if not 0 <= self.proto <= 255:
            raise ValueError(f"bad IP protocol {self.proto}")
        if not 0 <= self.ttl <= 255:
            raise ValueError(f"bad TTL {self.ttl}")

    @property
    def wire_size(self) -> int:
        return IPV4_HEADER_BYTES + self.payload.wire_size

    def decrement_ttl(self) -> "Ipv4Packet":
        """Return a copy with TTL reduced by one (raises if already 0)."""
        if self.ttl == 0:
            raise ValueError("TTL already zero")
        return replace(self, ttl=self.ttl - 1)

    def __str__(self) -> str:
        return (
            f"IPv4[{self.src} -> {self.dst} proto={self.proto} "
            f"ttl={self.ttl} len={self.wire_size}]"
        )
