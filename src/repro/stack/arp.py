"""ARP.

IP next-hops on the BGP data path resolve MACs with classic ARP
request/reply; the paper notes MR-MTP avoids the protocol entirely by
addressing frames to ff:ff:ff:ff:ff:ff on point-to-point links.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.stack.addresses import Ipv4Address, MacAddress

# 28-byte ARP body for IPv4-over-Ethernet.
ARP_WIRE_BYTES = 28


class ArpOp(Enum):
    REQUEST = 1
    REPLY = 2


@dataclass(frozen=True)
class ArpMessage:
    op: ArpOp
    sender_mac: MacAddress
    sender_ip: Ipv4Address
    target_ip: Ipv4Address
    target_mac: Optional[MacAddress] = None  # filled in replies

    @property
    def wire_size(self) -> int:
        return ARP_WIRE_BYTES

    def __str__(self) -> str:
        if self.op is ArpOp.REQUEST:
            return f"ARP[who-has {self.target_ip} tell {self.sender_ip}]"
        return f"ARP[{self.sender_ip} is-at {self.sender_mac}]"
