"""TCP segments.

The 32-byte header matches what a Linux/FRR BGP session puts on the wire
(20-byte base header + 12 bytes of timestamp options on every established-
state segment) — this is what makes the paper's 85-byte BGP keepalive
arithmetic work: 14 (Eth) + 20 (IP) + 32 (TCP) + 19 (BGP) = 85.
SYN segments carry more options (MSS, window scale, SACK-permitted,
timestamps) and are sized separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Flag, auto

from repro.stack.payload import Payload, RawBytes

TCP_HEADER_BYTES = 32        # base 20 + timestamp option 12 (padded)
TCP_SYN_HEADER_BYTES = 40    # base 20 + MSS/WS/SACK/TS options


class TcpFlags(Flag):
    NONE = 0
    SYN = auto()
    ACK = auto()
    FIN = auto()
    RST = auto()
    PSH = auto()


@dataclass(frozen=True)
class TcpSegment:
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: TcpFlags
    payload: Payload = RawBytes(0)
    window: int = 65535

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"bad TCP port {port}")
        if self.seq < 0 or self.ack < 0:
            raise ValueError("negative sequence numbers")

    @property
    def header_size(self) -> int:
        return (
            TCP_SYN_HEADER_BYTES
            if TcpFlags.SYN in self.flags
            else TCP_HEADER_BYTES
        )

    @property
    def wire_size(self) -> int:
        return self.header_size + self.payload.wire_size

    @property
    def data_len(self) -> int:
        return self.payload.wire_size

    @property
    def seq_space(self) -> int:
        """Sequence-space consumed: data bytes plus 1 for SYN and FIN."""
        length = self.data_len
        if TcpFlags.SYN in self.flags:
            length += 1
        if TcpFlags.FIN in self.flags:
            length += 1
        return length

    def __str__(self) -> str:
        names = [f.name for f in TcpFlags if f is not TcpFlags.NONE and f in self.flags]
        return (
            f"TCP[{self.src_port} -> {self.dst_port} "
            f"{'|'.join(names) or '-'} seq={self.seq} ack={self.ack} "
            f"len={self.data_len}]"
        )
