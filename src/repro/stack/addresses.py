"""MAC and IPv4 address value types.

Small immutable value objects with parsing/formatting.  IPv4 addresses are
stored as a 32-bit int so prefix matching is mask arithmetic, which keeps
longest-prefix-match lookups cheap inside the forwarding hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator, Union


@total_ordering
@dataclass(frozen=True)
class MacAddress:
    """48-bit MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise ValueError(f"MAC out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"bad MAC {text!r}")
        value = 0
        for part in parts:
            if len(part) != 2:
                raise ValueError(f"bad MAC {text!r}")
            value = (value << 8) | int(part, 16)
        return cls(value)

    @classmethod
    def from_index(cls, index: int) -> "MacAddress":
        """Locally-administered MAC derived from a dense index; the
        topology builder hands one to each interface."""
        if not 0 <= index < (1 << 40):
            raise ValueError(f"index out of range: {index}")
        return cls((0x02 << 40) | index)

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    def __str__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{o:02x}" for o in octets)

    def __lt__(self, other: "MacAddress") -> bool:
        return self.value < other.value


BROADCAST_MAC = MacAddress((1 << 48) - 1)


@total_ordering
@dataclass(frozen=True)
class Ipv4Address:
    """32-bit IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 32):
            raise ValueError(f"IPv4 out of range: {self.value:#x}")

    @classmethod
    def parse(cls, text: str) -> "Ipv4Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"bad IPv4 {text!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"bad IPv4 {text!r}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def octets(self) -> tuple[int, int, int, int]:
        v = self.value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def __str__(self) -> str:
        return ".".join(str(o) for o in self.octets)

    def __lt__(self, other: "Ipv4Address") -> bool:
        return self.value < other.value

    def __add__(self, offset: int) -> "Ipv4Address":
        return Ipv4Address(self.value + offset)


def _mask(prefix_len: int) -> int:
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"bad prefix length {prefix_len}")
    return ((1 << prefix_len) - 1) << (32 - prefix_len) if prefix_len else 0


@total_ordering
@dataclass(frozen=True)
class Ipv4Network:
    """An IPv4 prefix (network address + prefix length)."""

    address: Ipv4Address
    prefix_len: int

    def __post_init__(self) -> None:
        mask = _mask(self.prefix_len)
        if self.address.value & ~mask & 0xFFFFFFFF:
            raise ValueError(
                f"{self.address}/{self.prefix_len} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "Ipv4Network":
        addr_text, _, len_text = text.partition("/")
        if not len_text:
            raise ValueError(f"missing prefix length in {text!r}")
        return cls(Ipv4Address.parse(addr_text), int(len_text))

    @classmethod
    def of(cls, address: Union[str, Ipv4Address], prefix_len: int) -> "Ipv4Network":
        """Network containing ``address`` with host bits cleared."""
        if isinstance(address, str):
            address = Ipv4Address.parse(address)
        mask = _mask(prefix_len)
        return cls(Ipv4Address(address.value & mask), prefix_len)

    @property
    def mask(self) -> int:
        return _mask(self.prefix_len)

    def contains(self, address: Ipv4Address) -> bool:
        return (address.value & self.mask) == self.address.value

    def host(self, index: int) -> Ipv4Address:
        """The ``index``-th host address in the network (1-based)."""
        size = 1 << (32 - self.prefix_len)
        if not 0 <= index < size:
            raise ValueError(f"host index {index} out of /{self.prefix_len}")
        return Ipv4Address(self.address.value + index)

    def hosts(self) -> Iterator[Ipv4Address]:
        size = 1 << (32 - self.prefix_len)
        first = 1 if self.prefix_len < 31 else 0
        last = size - 1 if self.prefix_len < 31 else size
        for i in range(first, last):
            yield Ipv4Address(self.address.value + i)

    def __str__(self) -> str:
        return f"{self.address}/{self.prefix_len}"

    def __lt__(self, other: "Ipv4Network") -> bool:
        return (self.address.value, self.prefix_len) < (
            other.address.value,
            other.prefix_len,
        )
