"""ICMP messages (echo, destination-unreachable, time-exceeded)."""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

ICMP_HEADER_BYTES = 8


class IcmpType(IntEnum):
    ECHO_REPLY = 0
    DEST_UNREACHABLE = 3
    ECHO_REQUEST = 8
    TIME_EXCEEDED = 11


@dataclass(frozen=True)
class IcmpMessage:
    icmp_type: IcmpType
    identifier: int = 0
    sequence: int = 0
    # error messages quote the offending packet's header bytes
    quoted_bytes: int = 0
    data_bytes: int = 0

    def __post_init__(self) -> None:
        for value in (self.identifier, self.sequence):
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"16-bit field out of range: {value}")
        if self.quoted_bytes < 0 or self.data_bytes < 0:
            raise ValueError("negative length")

    @property
    def wire_size(self) -> int:
        return ICMP_HEADER_BYTES + self.quoted_bytes + self.data_bytes

    @property
    def is_error(self) -> bool:
        return self.icmp_type in (IcmpType.DEST_UNREACHABLE,
                                  IcmpType.TIME_EXCEEDED)

    def __str__(self) -> str:
        if self.icmp_type in (IcmpType.ECHO_REQUEST, IcmpType.ECHO_REPLY):
            return (f"ICMP[{self.icmp_type.name} id={self.identifier} "
                    f"seq={self.sequence}]")
        return f"ICMP[{self.icmp_type.name}]"
