"""Ethernet frames.

Sizes follow Wireshark's convention (what the paper's captures report):
the 14-byte header is counted, the FCS and preamble are not.  MR-MTP uses
ethertype 0x8850 (an unused type, per the paper) and the broadcast
destination MAC on point-to-point links to avoid ARP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stack.addresses import MacAddress
from repro.stack.payload import Payload

ETHERNET_HEADER_BYTES = 14
# Minimum Ethernet payload is 46 bytes -> 60-byte frame before FCS.  The
# paper's Fig. 10 counts the unpadded 1-byte MR-MTP payload; captures on a
# real wire would show padding, so frames can report either size.
ETHERNET_MIN_FRAME_BYTES = 60

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_MTP = 0x8850  # the unused type the paper assigns to MR-MTP


@dataclass(frozen=True, slots=True)
class EthernetFrame:
    dst: MacAddress
    src: MacAddress
    ethertype: int
    payload: Payload

    def __post_init__(self) -> None:
        if not 0 <= self.ethertype <= 0xFFFF:
            raise ValueError(f"bad ethertype {self.ethertype:#x}")

    @property
    def wire_size(self) -> int:
        """Capture-length size: header + payload, no padding/FCS."""
        return ETHERNET_HEADER_BYTES + self.payload.wire_size

    @property
    def padded_wire_size(self) -> int:
        """Size on a physical wire (minimum 60-byte frame)."""
        return max(self.wire_size, ETHERNET_MIN_FRAME_BYTES)

    def __str__(self) -> str:
        return (
            f"Eth[{self.src} -> {self.dst} type={self.ethertype:#06x} "
            f"len={self.wire_size}]"
        )
