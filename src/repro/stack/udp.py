"""UDP datagrams (8-byte header).  BFD control packets ride in these."""

from __future__ import annotations

from dataclasses import dataclass

from repro.stack.payload import Payload

UDP_HEADER_BYTES = 8


@dataclass(frozen=True)
class UdpDatagram:
    src_port: int
    dst_port: int
    payload: Payload

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"bad UDP port {port}")

    @property
    def wire_size(self) -> int:
        return UDP_HEADER_BYTES + self.payload.wire_size

    def __str__(self) -> str:
        return f"UDP[{self.src_port} -> {self.dst_port} len={self.wire_size}]"
