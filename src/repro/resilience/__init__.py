"""Control-plane crash resilience: agent lifecycle + invariant monitor.

The package owns the *judgment* side of crash testing: while
:mod:`repro.harness.failures` drives agent crashes, cold boots and
graceful restarts, the :class:`InvariantMonitor` here watches the live
forwarding state at every route-change epoch and records when the data
plane is actually *wrong* — forwarding loops and oracle-visible
blackholes — turning the chaos suite from "how fast do you detect" into
"is the data plane ever wrong, and for how long".
"""

from repro.resilience.invariants import AnomalyEpisode, InvariantMonitor

__all__ = ["AnomalyEpisode", "InvariantMonitor"]
