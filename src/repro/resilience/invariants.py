"""Online forwarding-invariant monitor: loops and blackholes, timed.

At every route-change epoch the fluid workload engine observes (and at
the fault boundaries the scenario compiler schedules), the monitor walks
the deployed stack's *live* multipath forwarding graph — the exact
candidate sets the data plane balances over, via the same
:meth:`~repro.stacks.base.Deployment.fluid_candidates` hook the engine
and ``pathtrace`` use — and classifies every rack pair:

* **loop** — some ECMP choice sequence from the source ToR can re-enter
  a ``(node, ingress port)`` state it already visited: a packet taking
  those hashes circulates until TTL death;
* **blackhole** — some choice sequence reaches a state that drops
  (no candidate port, a downed egress, an uncabled port, or a dead far
  end) *while the reachability oracle says a valley-free path exists
  over the alive links*.  Dropping traffic the physics genuinely cannot
  deliver is correct behaviour, not an anomaly.

Consecutive checks stitch per-pair anomalies into
:class:`AnomalyEpisode` records with start/duration, so a restart
scenario yields "the fabric looped for 0 us and blackholed ToR1->ToR3
for 212 ms" rather than a boolean.  The monitor is deliberately silent
(no trace records, no RNG draws, no scheduled events of its own): runs
that never see an anomaly keep byte-identical digests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.harness.oracle import alive_fabric_graph, _down_closure, _up_closure

#: anomaly kinds
LOOP = "loop"
BLACKHOLE = "blackhole"


@dataclass
class AnomalyEpisode:
    """One contiguous per-pair anomaly: [start_us, end_us) between the
    check that first saw it and the first check that no longer did (or
    the finalize time, with ``ongoing`` set, if it never cleared)."""

    kind: str            # "loop" | "blackhole"
    src_tor: str
    dst_tor: str
    start_us: int
    end_us: int
    ongoing: bool = False

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us

    def to_payload(self) -> list:
        return [self.kind, self.src_tor, self.dst_tor, self.start_us,
                self.end_us, int(self.ongoing)]


class InvariantMonitor:
    """Forwarding-invariant watcher bound to one deployed fabric.

    Call :meth:`check` whenever forwarding state may have changed (the
    fluid engine calls it from every epoch re-solve; the scenario
    compiler schedules extra checks around fault boundaries) and
    :meth:`finalize` once at measurement end.  Aggregates follow the
    harness's windowed-anomaly convention: counts plus the *longest*
    episode, mirroring ``max_blackhole_us``.
    """

    def __init__(self, topo, deployment) -> None:
        self.topo = topo
        self.deployment = deployment
        self.sim = topo.world.sim
        self.episodes: list[AnomalyEpisode] = []
        self.checks = 0
        self._open: dict[tuple[str, str, str], int] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def _agg(self, kind: str) -> tuple[int, int]:
        count = longest = 0
        for ep in self.episodes:
            if ep.kind == kind:
                count += 1
                longest = max(longest, ep.duration_us)
        return count, longest

    @property
    def loops(self) -> int:
        return self._agg(LOOP)[0]

    @property
    def loop_us(self) -> int:
        return self._agg(LOOP)[1]

    @property
    def blackholes(self) -> int:
        return self._agg(BLACKHOLE)[0]

    @property
    def blackhole_us(self) -> int:
        return self._agg(BLACKHOLE)[1]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Scan the live forwarding graph now; open/close episodes."""
        if self._finalized:
            return
        self.checks += 1
        now = self.sim.now
        current = self._scan()
        for key in current:
            self._open.setdefault(key, now)
        for key in [k for k in self._open if k not in current]:
            start = self._open.pop(key)
            self._record(key, start, now, ongoing=False)

    def finalize(self) -> None:
        """Close every still-open episode at the current time (marked
        ``ongoing``: the anomaly outlived the measurement).  Idempotent;
        episodes and aggregates are stable afterwards."""
        if self._finalized:
            return
        now = self.sim.now
        for key, start in sorted(self._open.items()):
            self._record(key, start, now, ongoing=True)
        self._open.clear()
        self._finalized = True

    def _record(self, key: tuple[str, str, str], start: int, end: int,
                ongoing: bool) -> None:
        kind, src, dst = key
        self.episodes.append(AnomalyEpisode(
            kind=kind, src_tor=src, dst_tor=dst,
            start_us=start, end_us=end, ongoing=ongoing))

    # ------------------------------------------------------------------
    # one scan: every (kind, src, dst) anomaly present right now
    # ------------------------------------------------------------------
    def _scan(self) -> set[tuple[str, str, str]]:
        topo = self.topo
        tors = topo.all_tors()
        graph = alive_fabric_graph(topo)
        up = {t: _up_closure(graph, t) for t in tors if t in graph}
        down = {t: _down_closure(graph, t) for t in tors if t in graph}
        anomalies: set[tuple[str, str, str]] = set()
        for dst in tors:
            can_loop, can_drop = self._walk(dst, tors)
            for src in tors:
                if src == dst:
                    continue
                state = (src, None)
                if state in can_loop:
                    anomalies.add((LOOP, src, dst))
                if state in can_drop and src in up and dst in down \
                        and up[src] & down[dst]:
                    anomalies.add((BLACKHOLE, src, dst))
        return anomalies

    def _walk(self, dst: str, tors: list[str]):
        """Explore the multipath state graph toward ``dst``: states are
        ``(node, ingress iface)``, edges are every live ECMP candidate.
        Returns the state sets that can reach a cycle / a drop."""
        topo = self.topo
        starts = [(src, None) for src in tors if src != dst]
        adj: dict[tuple, list[tuple]] = {}
        preds: dict[tuple, list[tuple]] = {}
        drops: list[tuple] = []
        stack = list(starts)
        seen = set(starts)
        while stack:
            state = stack.pop()
            node, ingress = state
            if node == dst:
                adj[state] = []
                continue
            _, _, ports = self.deployment.fluid_candidates(node, dst,
                                                           ingress)
            succs: list[tuple] = []
            dead_here = not ports
            topo_node = topo.node(node)
            for port in ports:
                iface = topo_node.interfaces[port]
                if not iface.admin_up or iface.link is None:
                    dead_here = True
                    continue
                peer = iface.peer()
                if peer is None or not peer.admin_up:
                    dead_here = True
                    continue
                succs.append((peer.node.name, peer.name))
            if dead_here:
                drops.append(state)
            adj[state] = succs
            for succ in succs:
                preds.setdefault(succ, []).append(state)
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        cycle_states = self._cycle_states(adj)
        return (self._ancestors(cycle_states, preds),
                self._ancestors(drops, preds))

    @staticmethod
    def _cycle_states(adj: dict[tuple, list[tuple]]) -> list[tuple]:
        """States on any directed cycle (Tarjan SCCs, iteratively)."""
        index: dict[tuple, int] = {}
        low: dict[tuple, int] = {}
        on_stack: set[tuple] = set()
        scc_stack: list[tuple] = []
        cycles: list[tuple] = []
        counter = [0]

        for root in adj:
            if root in index:
                continue
            work = [(root, iter(adj.get(root, ())))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            scc_stack.append(root)
            on_stack.add(root)
            while work:
                state, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        scc_stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(adj.get(succ, ()))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[state] = min(low[state], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[state])
                if low[state] == index[state]:
                    component = []
                    while True:
                        member = scc_stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == state:
                            break
                    if len(component) > 1 or any(
                            m in adj.get(m, ()) for m in component):
                        cycles.extend(component)
        return cycles

    @staticmethod
    def _ancestors(targets: list[tuple],
                   preds: dict[tuple, list[tuple]]) -> set[tuple]:
        """Every state that can reach one of ``targets`` (inclusive)."""
        reached = set(targets)
        frontier = list(targets)
        while frontier:
            state = frontier.pop()
            for prev in preds.get(state, ()):
                if prev not in reached:
                    reached.add(prev)
                    frontier.append(prev)
        return reached
