"""Topology-plugin substrate: the protocol every fabric builder implements.

A *topology* is one buildable data-center fabric family (the paper's
folded-Clos, VL2, a recursively-defined DCell — or any family someone
registers later).  The experiment harness never branches on which fabric
it is running; it talks to two abstractions only:

* :class:`TopologyDefinition` — the registered plugin: how to build the
  fabric into a :class:`~repro.net.world.World`, plus its canonical
  default parameters.
* :class:`Topology` — the structural protocol a built fabric satisfies:
  tier/role listings (ToRs, aggregation-role devices, top-tier devices),
  rack addressing and servers, failure-case enumeration (the paper's
  TC1–TC4 analogues), and the symbolic-target hooks the scenario engine
  resolves ``<node>.uplink[j]`` expressions through.

Specs (:class:`TopologySpec`) are the picklable, canonical-JSON-able unit
that crosses process boundaries and feeds the result-cache key: registry
name + canonical parameter tuple — exactly the shape that worked for
:mod:`repro.stacks` in the stack-plugin refactor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Iterable,
    Mapping,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

from repro.net.node import Node
from repro.net.world import World
from repro.stack.addresses import Ipv4Address, Ipv4Network

TIER_SERVER = 0
TIER_TOR = 1
TIER_AGG = 2
TIER_TOP = 3
TIER_SUPER = 4

FIRST_TOR_VID = 11  # first rack subnet is 192.168.11.0/24, as in Fig. 2


class TopologyError(AssertionError):
    """A structural invariant of the built fabric is violated."""


@dataclass(frozen=True)
class FailureCase:
    """One of the paper's interface-failure test points.

    ``node`` is the device whose interface is administratively downed (it
    detects instantly); the peer must rely on protocol timers.  Every
    registered topology enumerates its own TC1–TC4 analogues.
    """

    name: str
    node: str
    interface: str
    peer_node: str
    description: str


ParamItems = Union[Mapping[str, Any], Iterable[tuple[str, Any]], None]


def canonical_params(params: ParamItems) -> tuple[tuple[str, Any], ...]:
    """Sort parameters into the canonical (key, value) tuple that cache
    keys and specs carry — order-insensitive, picklable, JSON-able."""
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class TopologySpec:
    """One fabric selection, fully serialized: registry name + canonical
    build parameters.  This — never a concrete params class — is what
    task specs pickle and what cache keys derive from."""

    name: str
    params: tuple[tuple[str, Any], ...] = ()

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def topology_name(self) -> str:
        """Self-identification, so specs duck-type like legacy params."""
        return self.name


@runtime_checkable
class Topology(Protocol):
    """What the harness requires of a built fabric.

    Implementations additionally expose ``world``, ``servers`` (ToR ->
    hosts), ``rack_subnet``/``rack_port``/``tor_vid_seed`` (per-ToR
    addressing), ``server_gateway`` (host -> ToR-side address) and the
    grouped ``tors``/``aggs``/``tops``/``supers`` listings as attributes;
    deployment and scenario code use all of them.
    """

    def node(self, name: str) -> Node: ...

    def all_tors(self) -> list[str]: ...

    def all_aggs(self) -> list[str]: ...

    def all_tops(self) -> list[str]: ...

    def all_supers(self) -> list[str]: ...

    def routers(self) -> list[str]: ...

    def all_servers(self) -> list[str]: ...

    def first_server_of(self, tor: str) -> str: ...

    def server_address(self, host: str) -> Ipv4Address: ...

    def rack_endpoints(self) -> list[tuple[str, list[str]]]: ...

    def failure_cases(self) -> dict[str, FailureCase]: ...

    def fabric_ports(self, node_name: str, up: bool) -> list[str]: ...

    def validate_structure(self) -> None: ...

    def describe(self) -> str: ...


class BaseTopology:
    """Shared concrete base: a built fabric's nodes, links, addressing
    and failure points.

    Subclasses fill the grouped listings during their build function and
    override :meth:`validate_structure` with family-specific invariants
    and — when the tier-comparison default is wrong for their wiring
    (e.g. same-tier cross-cell links) — :meth:`fabric_ports`.
    """

    #: registry name, for display and error messages (set by subclasses)
    topology_name = "generic"

    def __init__(self, world: World, params: Any) -> None:
        self.world = world
        self.params = params
        # zone -> group (pod/pair/cell) -> list of node names
        self.tors: list[list[list[str]]] = []
        self.aggs: list[list[list[str]]] = []
        # zone -> plane -> list of top names
        self.tops: list[list[list[str]]] = []
        # group -> list of super-spine names
        self.supers: list[list[str]] = []
        self.servers: dict[str, list[str]] = {}       # tor -> hosts
        self.rack_subnet: dict[str, Ipv4Network] = {} # tor -> 192.168.V.0/24
        self.rack_port: dict[str, str] = {}           # tor -> iface name
        self.tor_vid_seed: dict[str, int] = {}        # tor -> third byte V
        self.server_gateway: dict[str, Ipv4Address] = {}  # host -> ToR addr

    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        return self.world.node(name)

    def all_tors(self) -> list[str]:
        return [t for zone in self.tors for pod in zone for t in pod]

    def all_aggs(self) -> list[str]:
        return [a for zone in self.aggs for pod in zone for a in pod]

    def all_tops(self) -> list[str]:
        return [t for zone in self.tops for plane in zone for t in plane]

    def all_supers(self) -> list[str]:
        return [s for group in self.supers for s in group]

    def routers(self) -> list[str]:
        return (self.all_tors() + self.all_aggs() + self.all_tops()
                + self.all_supers())

    def all_servers(self) -> list[str]:
        return [h for hosts in self.servers.values() for h in hosts]

    def first_server_of(self, tor: str) -> str:
        return self.servers[tor][0]

    def rack_endpoints(self) -> list[tuple[str, list[str]]]:
        """(tor, hosts) per rack, in ToR creation order — the endpoint
        enumeration seam the workload synthesizer expands traffic
        matrices over.  Every registered family gets it for free from
        ``servers``; a family with off-rack endpoints would override."""
        return [(tor, list(self.servers.get(tor, ())))
                for tor in self.all_tors()]

    def server_address(self, host: str) -> Ipv4Address:
        node = self.node(host)
        for iface in node.interfaces.values():
            if iface.address is not None:
                return iface.address
        raise ValueError(f"{host} has no address")

    # ------------------------------------------------------------------
    def failure_cases(self) -> dict[str, FailureCase]:
        """The family's TC1..TC4 analogues (subclasses override)."""
        return {}

    def _iface_between(self, node_name: str, peer_name: str) -> str:
        node = self.node(node_name)
        for iface in node.interfaces.values():
            peer = iface.peer()
            if peer is not None and peer.node.name == peer_name:
                return iface.name
        raise ValueError(f"no link between {node_name} and {peer_name}")

    # public spelling of the same lookup, for plugin and scenario code
    iface_between = _iface_between

    # ------------------------------------------------------------------
    def fabric_ports(self, node_name: str, up: bool) -> list[str]:
        """Fabric-facing ports of one node, in creation order — the hook
        behind the scenario engine's ``<node>.uplink[j]`` /
        ``<node>.downlink[j]`` symbolic targets.

        The default is tier comparison (an uplink leads to a strictly
        higher tier), which is right for every strictly-tiered family;
        recursively-defined fabrics with same-tier cross links override
        this to define what "up" (out of the cell) means for them.
        """
        node = self.node(node_name)
        ports = []
        for iface in node.interfaces.values():
            peer = iface.peer()
            if peer is None or peer.node.tier == TIER_SERVER:
                continue
            if (peer.node.tier > node.tier) == up:
                ports.append(iface.name)
        return ports

    # ------------------------------------------------------------------
    def validate_structure(self) -> None:
        """Family-specific wiring invariants; raise
        :class:`TopologyError` on violation (subclasses override)."""

    def describe(self) -> str:
        return (f"{self.topology_name}: {len(self.routers())} routers, "
                f"{len(self.all_servers())} servers, "
                f"{len(self.world.links)} links")


class AddressAllocator:
    """Sequential /31 allocation for fabric p2p links from 172.16.0.0/16."""

    def __init__(self) -> None:
        self._next = 0
        self._base = Ipv4Address.parse("172.16.0.0").value

    def next_pair(self) -> tuple[Ipv4Address, Ipv4Address]:
        base = self._base + 2 * self._next
        self._next += 1
        if base + 1 >= Ipv4Address.parse("172.17.0.0").value:
            raise ValueError("fabric address pool exhausted (172.16/16)")
        return Ipv4Address(base), Ipv4Address(base + 1)


def rack_subnet_for(vid_seed: int) -> Ipv4Network:
    """The paper's rack addressing: 192.168.<VID>.0/24, rolling into
    192.<169+>.x/24 past VID 255 so very large fabrics still get unique
    rack prefixes."""
    if vid_seed < 256:
        return Ipv4Network.parse(f"192.168.{vid_seed % 256}.0/24")
    major = 169 + (vid_seed // 256)
    if major > 255:
        raise ValueError("rack subnet pool exhausted")
    return Ipv4Network.parse(f"192.{major}.{vid_seed % 256}.0/24")


def cable_fabric_link(world: World, alloc: AddressAllocator,
                      lower: str, upper: str,
                      bandwidth_bps: int, propagation_us: int) -> None:
    """Cable ``lower`` to ``upper`` with a fresh /31 pair — the shared
    wiring step every builder uses (downstream-before-upstream interface
    ordering is the caller's responsibility; port numbers matter to
    MR-MTP's VID derivation)."""
    a, b = alloc.next_pair()
    low_if = world.node(lower).add_interface()
    up_if = world.node(upper).add_interface()
    world.cable(low_if, up_if, bandwidth_bps, propagation_us)
    low_if.assign_address(a, 31)
    up_if.assign_address(b, 31)


def provision_racks(topo: BaseTopology, servers_per_rack: int,
                    bandwidth_bps: int, propagation_us: int) -> None:
    """Rack ports and servers on every ToR (highest-numbered ToR ports).

    Each server hangs off its own ToR port; the ToR-side interface of
    server *s* carries gateway address .254-s in the shared rack subnet
    (a routed-rack design, host /32s beyond the first server).  The
    first rack-facing port is the one MR-MTP reads its VID from, so it
    must be created after every fabric port — call this last.
    """
    for tor_name in topo.all_tors():
        tor = topo.world.node(tor_name)
        subnet = topo.rack_subnet[tor_name]
        subnet_size = 1 << (32 - subnet.prefix_len)
        hosts = []
        if servers_per_rack == 0:
            # keep an addressed (uncabled) rack port so VID derivation
            # still works on fabrics built without servers
            rack_if = tor.add_interface()
            rack_if.assign_address(subnet.host(subnet_size - 2),
                                   subnet.prefix_len)
            topo.rack_port[tor_name] = rack_if.name
        for s in range(servers_per_rack):
            host_name = f"H-{tor_name}-{s + 1}"
            host = topo.world.add_node(host_name, tier=TIER_SERVER)
            host_if = host.add_interface()
            tor_if = tor.add_interface()
            topo.world.cable(host_if, tor_if, bandwidth_bps, propagation_us)
            host_if.assign_address(subnet.host(s + 1), subnet.prefix_len)
            tor_if.assign_address(subnet.host(subnet_size - 2 - s),
                                  subnet.prefix_len)
            if s == 0:
                topo.rack_port[tor_name] = tor_if.name
            topo.server_gateway[host_name] = tor_if.address
            hosts.append(host_name)
        topo.servers[tor_name] = hosts


def _coerce_one(name: str, value: Any, default: Any) -> Any:
    """CLI ``-T key=value`` strings to the default's type."""
    if not isinstance(value, str) or isinstance(default, str):
        return value
    try:
        if isinstance(default, bool):
            if value.lower() in ("1", "true", "yes", "on"):
                return True
            if value.lower() in ("0", "false", "no", "off"):
                return False
            raise ValueError(value)
        if isinstance(default, int):
            return int(value)
        if isinstance(default, float):
            return float(value)
    except ValueError:
        raise ValueError(
            f"parameter {name}={value!r} is not a valid "
            f"{type(default).__name__}") from None
    return value


@dataclass(frozen=True)
class TopologyDefinition:
    """A registered topology plugin.

    ``build(world, **params)`` constructs the fabric into ``world`` and
    returns a :class:`Topology`.  ``default_params`` enumerates every
    accepted parameter with its default — the single source the CLI, the
    spec validator and ``repro topology show`` all read.
    """

    name: str
    display: str
    build: Callable[..., Topology]
    description: str = ""
    default_params: Mapping[str, Any] = field(default_factory=dict)

    def spec(self, **overrides: Any) -> TopologySpec:
        """A canonical spec for this topology (defaults + overrides).

        Unknown parameter names are rejected here, up front — a typo'd
        override silently ignored at build time would cache-key a fabric
        that was never built.
        """
        unknown = sorted(set(overrides) - set(self.default_params))
        if unknown:
            raise ValueError(
                f"unknown {self.name} parameter(s) {', '.join(unknown)}; "
                f"accepted: {', '.join(sorted(self.default_params))}")
        merged = {**self.default_params, **overrides}
        return TopologySpec(name=self.name, params=canonical_params(merged))

    def coerce_params(self, raw: Mapping[str, Any]) -> dict[str, Any]:
        """Coerce CLI ``key=value`` strings onto the defaults' types."""
        out = {}
        for key, value in raw.items():
            default = self.default_params.get(key)
            out[key] = (_coerce_one(key, value, default)
                        if default is not None else value)
        return out

    def build_spec(self, spec: TopologySpec,
                   world: Optional[World] = None, seed: int = 0) -> Topology:
        """Build exactly the fabric ``spec`` describes."""
        if world is None:
            world = World(seed=seed)
        return self.build(world=world, **spec.params_dict())
