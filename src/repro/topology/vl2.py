"""VL2 fabric builder (Greenberg et al., SIGCOMM 2009).

VL2 is Clos-*like* but not a folded-Clos: aggregation switches come in
*pairs* that dual-home a set of ToRs, and — the key wiring difference —
every aggregation switch connects to **every** intermediate switch.
Where the paper's folded-Clos restricts aggregation *a* to plane *a*'s
tops, VL2's complete agg-intermediate bipartite is the substrate for
valiant load balancing: any intermediate can bounce any flow, so traffic
is spread across the whole top tier instead of one plane.

Addressing is also distinct in spirit: VL2 separates location addresses
(fabric /31s here) from application addresses (the rack subnets); we
keep the same rack-subnet machinery so MR-MTP's VID derivation has a
first-rack-port to read, which is exactly the assumption this plugin
exists to stress — see EXPERIMENTS.md.

Tier mapping onto the harness protocol: ToRs are tier 1, aggregation
pairs tier 2, intermediates tier 3 (a single "plane" holding all of
them). There is no super-spine tier.
"""

from __future__ import annotations

from typing import Optional

from repro.net.link import DEFAULT_BANDWIDTH_BPS, DEFAULT_PROPAGATION_US
from repro.net.world import World
from repro.topology.base import (
    FIRST_TOR_VID,
    TIER_AGG,
    TIER_SERVER,
    TIER_TOP,
    TIER_TOR,
    AddressAllocator,
    BaseTopology,
    FailureCase,
    TopologyError,
    cable_fabric_link,
    provision_racks,
    rack_subnet_for,
)

__all__ = ["Vl2Topology", "build_vl2", "VL2_DEFAULT_PARAMS"]

#: every accepted build parameter with its default — the registry
#: definition, the CLI and ``repro topology show`` all read this
VL2_DEFAULT_PARAMS = {
    "num_pairs": 2,          # aggregation pairs
    "tors_per_pair": 2,      # ToRs dual-homed to each pair
    "aggs_per_pair": 2,      # width of one aggregation pair
    "ints": 2,               # intermediate switches (all shared)
    "servers_per_rack": 1,
    "bandwidth_bps": DEFAULT_BANDWIDTH_BPS,
    "propagation_us": DEFAULT_PROPAGATION_US,
}


class Vl2Topology(BaseTopology):
    """A built VL2 fabric."""

    topology_name = "vl2"

    def failure_cases(self) -> dict[str, FailureCase]:
        """TC1..TC4 analogues on the first pair's devices.

        TC3/TC4 sit on the agg -> first-intermediate link; in VL2 the
        agg has an alternative path through every other intermediate,
        so re-convergence exercises the full valiant spread.
        """
        tor = self.tors[0][0][0]
        agg = self.aggs[0][0][0]
        mid = self.tops[0][0][0]
        return {
            "TC1": FailureCase("TC1", tor, self._iface_between(tor, agg), agg,
                               "ToR uplink fails at ToR side"),
            "TC2": FailureCase("TC2", agg, self._iface_between(agg, tor), tor,
                               "ToR-agg link fails at agg side"),
            "TC3": FailureCase("TC3", agg, self._iface_between(agg, mid), mid,
                               "agg-intermediate link fails at agg side"),
            "TC4": FailureCase("TC4", mid, self._iface_between(mid, agg), agg,
                               "agg-intermediate link fails at int side"),
        }

    def describe(self) -> str:
        p = dict(self.params)
        return (
            f"VL2: {p['num_pairs']} aggregation pair(s) x "
            f"{p['aggs_per_pair']} wide, {p['tors_per_pair']} ToR(s) per "
            f"pair, {p['ints']} shared intermediate(s) "
            f"(complete agg-intermediate bipartite)\n"
            f"routers: {len(self.routers())}, "
            f"servers: {len(self.all_servers())}, "
            f"links: {len(self.world.links)}"
        )

    def _neighbors_by_tier(self, name: str) -> dict[int, set[str]]:
        result: dict[int, set[str]] = {}
        for iface in self.node(name).interfaces.values():
            peer = iface.peer()
            if peer is None:
                continue
            result.setdefault(peer.node.tier, set()).add(peer.node.name)
        return result

    def validate_structure(self) -> None:
        p = dict(self.params)
        expected = (p["num_pairs"] * (p["tors_per_pair"] + p["aggs_per_pair"])
                    + p["ints"])
        if len(self.routers()) != expected:
            raise TopologyError(
                f"expected {expected} routers, built {len(self.routers())}")

        all_ints = set(self.all_tops())
        all_aggs = set(self.all_aggs())

        # ToRs: dual-homed to exactly their pair's aggs, plus servers
        for pair in range(p["num_pairs"]):
            pair_aggs = set(self.aggs[0][pair])
            for tor in self.tors[0][pair]:
                nbrs = self._neighbors_by_tier(tor)
                if nbrs.get(TIER_AGG, set()) != pair_aggs:
                    raise TopologyError(
                        f"{tor} uplinks {sorted(nbrs.get(TIER_AGG, set()))} "
                        f"!= pair aggs {sorted(pair_aggs)}")
                if len(nbrs.get(TIER_SERVER, set())) != p["servers_per_rack"]:
                    raise TopologyError(f"{tor} server count wrong")

        # aggs: down to their pair's ToRs, up to EVERY intermediate —
        # the complete bipartite that distinguishes VL2 from folded-Clos
        for pair in range(p["num_pairs"]):
            pair_tors = set(self.tors[0][pair])
            for agg in self.aggs[0][pair]:
                nbrs = self._neighbors_by_tier(agg)
                if nbrs.get(TIER_TOR, set()) != pair_tors:
                    raise TopologyError(f"{agg} downlinks wrong")
                if nbrs.get(TIER_TOP, set()) != all_ints:
                    raise TopologyError(
                        f"{agg} must reach every intermediate "
                        f"(valiant spread); got "
                        f"{sorted(nbrs.get(TIER_TOP, set()))}")

        # intermediates: down to every aggregation switch
        for mid in self.all_tops():
            nbrs = self._neighbors_by_tier(mid)
            if nbrs.get(TIER_AGG, set()) != all_aggs:
                raise TopologyError(f"{mid} must reach every agg")


def build_vl2(world: Optional[World] = None, seed: int = 0,
              **params) -> Vl2Topology:
    """Construct a VL2 fabric: pairs, intermediates, racks."""
    merged = {**VL2_DEFAULT_PARAMS, **params}
    for name in ("num_pairs", "tors_per_pair", "aggs_per_pair", "ints"):
        if merged[name] < 1:
            raise ValueError(f"{name} must be >= 1")
    if merged["servers_per_rack"] < 0:
        raise ValueError("servers_per_rack must be >= 0")
    if world is None:
        world = World(seed=seed)
    topo = Vl2Topology(world, tuple(sorted(merged.items())))
    alloc = AddressAllocator()

    # --- create routers ------------------------------------------------
    vid_seed = FIRST_TOR_VID
    zone_tors: list[list[str]] = []
    zone_aggs: list[list[str]] = []
    for pair in range(merged["num_pairs"]):
        pair_tors, pair_aggs = [], []
        for t in range(merged["tors_per_pair"]):
            name = f"VL-{pair + 1}-{t + 1}"
            world.add_node(name, tier=TIER_TOR)
            pair_tors.append(name)
            topo.tor_vid_seed[name] = vid_seed
            topo.rack_subnet[name] = rack_subnet_for(vid_seed)
            vid_seed += 1
        for a in range(merged["aggs_per_pair"]):
            name = f"VA-{pair + 1}-{a + 1}"
            world.add_node(name, tier=TIER_AGG)
            pair_aggs.append(name)
        zone_tors.append(pair_tors)
        zone_aggs.append(pair_aggs)
    topo.tors.append(zone_tors)
    topo.aggs.append(zone_aggs)

    ints = []
    for n in range(merged["ints"]):
        name = f"VI-{n + 1}"
        world.add_node(name, tier=TIER_TOP)
        ints.append(name)
    topo.tops.append([ints])  # one plane holding every intermediate

    # --- cabling (downstream ports before upstream, as MR-MTP needs) ---
    for pair in range(merged["num_pairs"]):
        for t_name in zone_tors[pair]:
            for a_name in zone_aggs[pair]:
                cable_fabric_link(world, alloc, t_name, a_name,
                                  merged["bandwidth_bps"],
                                  merged["propagation_us"])
    # every agg up to every intermediate — no plane restriction
    for pair in range(merged["num_pairs"]):
        for a_name in zone_aggs[pair]:
            for mid in ints:
                cable_fabric_link(world, alloc, a_name, mid,
                                  merged["bandwidth_bps"],
                                  merged["propagation_us"])

    provision_racks(topo, merged["servers_per_rack"],
                    merged["bandwidth_bps"], merged["propagation_us"])
    return topo
