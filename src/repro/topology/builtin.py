"""Built-in topology plugins, registered at import time.

* ``clos`` — the paper's folded-Clos, plugin zero: the fabric every
  golden figure reproduces on.
* ``vl2`` — Clos-like with distinct wiring: aggregation pairs plus a
  complete agg-intermediate bipartite (the valiant-spread substrate).
* ``dcell`` — a recursively-defined DCell/FiConn-style DCN: complete
  graphs of cells (and of groups) joined by same-tier proxy links.

Each registration is a plain :class:`TopologyDefinition`; nothing here
imports harness, scenario or CLI code, so a third registration never
needs those layers touched either.
"""

from __future__ import annotations

from typing import Optional

from repro.net.world import World
from repro.topology.base import TopologyDefinition
from repro.topology.clos import ClosParams, ClosTopology, build_folded_clos
from repro.topology.dcell import DCELL_DEFAULT_PARAMS, build_dcell
from repro.topology.registry import register_topology
from repro.topology.vl2 import VL2_DEFAULT_PARAMS, build_vl2

#: the nine ClosParams fields, defaults included — kept in lockstep with
#: the dataclass by test_registry's round-trip check
CLOS_DEFAULT_PARAMS = {
    f.name: f.default for f in ClosParams.__dataclass_fields__.values()
}


def _build_clos(world: Optional[World] = None, seed: int = 0,
                **params) -> ClosTopology:
    return build_folded_clos(ClosParams(**params), world=world, seed=seed)


CLOS = register_topology(TopologyDefinition(
    name="clos",
    display="folded-Clos",
    build=_build_clos,
    description=(
        "The paper's folded-Clos: PoDs of ToRs + aggregations, plane-"
        "restricted tops, optional multi-zone super-spine tier."
    ),
    default_params=CLOS_DEFAULT_PARAMS,
))

VL2 = register_topology(TopologyDefinition(
    name="vl2",
    display="VL2",
    build=build_vl2,
    description=(
        "VL2 (SIGCOMM 2009): ToRs dual-homed to aggregation pairs, every "
        "aggregation wired to every intermediate (valiant spread)."
    ),
    default_params=VL2_DEFAULT_PARAMS,
))

DCELL = register_topology(TopologyDefinition(
    name="dcell",
    display="recursive DCell-style DCN",
    build=build_dcell,
    description=(
        "Recursively-defined DCN: complete ToR-proxy bipartite cells "
        "joined into complete graphs by same-tier cross links; no top "
        "tier, so strict up/down routing assumptions break here."
    ),
    default_params=DCELL_DEFAULT_PARAMS,
))
