"""Topology plugins: buildable data-center fabric families.

The package is organized like :mod:`repro.stacks`: a
:class:`~repro.topology.base.Topology` protocol plus registry
(``register_topology`` / ``get_topology`` / ``available_topologies``),
with every fabric — including the paper's folded-Clos — shipped as a
registered plugin.  Harness, scenario and CLI layers select fabrics via
:class:`TopologySpec` (registry name + canonical params, the unit cache
keys derive from) and construct them through :func:`build_topology`;
they never import a concrete builder.

Built-ins (see :mod:`repro.topology.builtin`): ``clos`` (plugin zero,
the paper's fabric), ``vl2``, ``dcell``.
"""

from repro.topology.base import (
    FIRST_TOR_VID,
    TIER_AGG,
    TIER_SERVER,
    TIER_SUPER,
    TIER_TOP,
    TIER_TOR,
    BaseTopology,
    FailureCase,
    Topology,
    TopologyDefinition,
    TopologyError,
    TopologySpec,
    canonical_params,
)
from repro.topology.registry import (
    DEFAULT_TOPOLOGY,
    UnknownTopologyError,
    available_topologies,
    build_topology,
    get_topology,
    register_topology,
    resolve_topology_spec,
    unregister_topology,
)
from repro.topology.clos import (
    ClosParams,
    ClosTopology,
    build_folded_clos,
    two_pod_params,
    four_pod_params,
)
from repro.topology.validate import validate_topology

import repro.topology.builtin  # noqa: F401  (registers clos/vl2/dcell)

__all__ = [
    # protocol + spec + registry
    "Topology",
    "TopologySpec",
    "TopologyDefinition",
    "TopologyError",
    "BaseTopology",
    "FailureCase",
    "canonical_params",
    "DEFAULT_TOPOLOGY",
    "UnknownTopologyError",
    "register_topology",
    "unregister_topology",
    "get_topology",
    "available_topologies",
    "resolve_topology_spec",
    "build_topology",
    # tier constants
    "TIER_SERVER", "TIER_TOR", "TIER_AGG", "TIER_TOP", "TIER_SUPER",
    "FIRST_TOR_VID",
    # plugin zero's concrete names (legacy; only repro.topology may
    # import the classes directly — see tests/topology/test_lint.py)
    "ClosParams",
    "ClosTopology",
    "build_folded_clos",
    "two_pod_params",
    "four_pod_params",
    "validate_topology",
]
