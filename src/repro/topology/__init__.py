"""Folded-Clos topology construction.

Builds the paper's 2-PoD and 4-PoD 3-tier test topologies (and larger /
deeper ones for the scalability extension), with the paper's addressing
plan: rack subnets 192.168.<VID>.0/24 shared between each ToR and its
servers, and /31 point-to-point subnets from 172.16.0.0/16 on fabric
links.
"""

from repro.topology.clos import (
    ClosParams,
    ClosTopology,
    FailureCase,
    build_folded_clos,
    two_pod_params,
    four_pod_params,
)
from repro.topology.validate import validate_topology

__all__ = [
    "ClosParams",
    "ClosTopology",
    "FailureCase",
    "build_folded_clos",
    "two_pod_params",
    "four_pod_params",
    "validate_topology",
]
