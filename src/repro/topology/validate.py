"""Topology validation.

The simulator-side analogue of the paper's "scripts to verify the topology
and router configuration": structural checks that the built fabric really
is the intended folded-Clos before any protocol runs on it.
"""

from __future__ import annotations

from repro.topology.clos import (
    ClosTopology,
    TIER_AGG,
    TIER_SERVER,
    TIER_SUPER,
    TIER_TOP,
    TIER_TOR,
)


class TopologyError(AssertionError):
    """A structural invariant of the folded-Clos is violated."""


def _neighbors_by_tier(topo: ClosTopology, name: str) -> dict[int, set[str]]:
    node = topo.node(name)
    result: dict[int, set[str]] = {}
    for iface in node.interfaces.values():
        peer = iface.peer()
        if peer is None:
            continue
        result.setdefault(peer.node.tier, set()).add(peer.node.name)
    return result


def validate_topology(topo: ClosTopology) -> None:
    """Raise :class:`TopologyError` on any structural violation."""
    p = topo.params

    # counts
    expected_routers = p.num_routers
    if len(topo.routers()) != expected_routers:
        raise TopologyError(
            f"expected {expected_routers} routers, built {len(topo.routers())}"
        )

    # ToRs: uplinks to every agg in their pod, plus rack ports
    for z in range(p.zones):
        for pod in range(p.num_pods):
            pod_aggs = set(topo.aggs[z][pod])
            for tor in topo.tors[z][pod]:
                up = _neighbors_by_tier(topo, tor).get(TIER_AGG, set())
                if up != pod_aggs:
                    raise TopologyError(
                        f"{tor} uplinks {sorted(up)} != pod aggs {sorted(pod_aggs)}"
                    )
                servers = _neighbors_by_tier(topo, tor).get(TIER_SERVER, set())
                if len(servers) != p.servers_per_rack:
                    raise TopologyError(
                        f"{tor} has {len(servers)} servers, expected "
                        f"{p.servers_per_rack}"
                    )

    # aggs: down to every ToR in pod, up to every top in their plane
    for z in range(p.zones):
        for pod in range(p.num_pods):
            pod_tors = set(topo.tors[z][pod])
            for a_idx, agg in enumerate(topo.aggs[z][pod]):
                nbrs = _neighbors_by_tier(topo, agg)
                if nbrs.get(TIER_TOR, set()) != pod_tors:
                    raise TopologyError(f"{agg} downlinks wrong")
                plane_tops = set(topo.tops[z][a_idx])
                if nbrs.get(TIER_TOP, set()) != plane_tops:
                    raise TopologyError(
                        f"{agg} uplinks {nbrs.get(TIER_TOP)} != plane "
                        f"{sorted(plane_tops)}"
                    )

    # tops: one agg (the plane's) per pod in their zone
    for z in range(p.zones):
        for plane in range(p.num_planes):
            plane_aggs = {topo.aggs[z][pod][plane] for pod in range(p.num_pods)}
            for top in topo.tops[z][plane]:
                nbrs = _neighbors_by_tier(topo, top)
                if nbrs.get(TIER_AGG, set()) != plane_aggs:
                    raise TopologyError(
                        f"{top} downlinks {nbrs.get(TIER_AGG)} != {plane_aggs}"
                    )
                supers = nbrs.get(TIER_SUPER, set())
                expected_supers = p.supers_per_group if p.zones > 1 else 0
                if len(supers) != expected_supers:
                    raise TopologyError(
                        f"{top} has {len(supers)} super uplinks, expected "
                        f"{expected_supers}"
                    )

    # super-spines: their group's top position in every zone
    group_idx = 0
    for plane in range(p.num_planes):
        for k in range(p.tops_per_plane):
            if p.zones <= 1:
                break
            group = topo.supers[group_idx]
            group_idx += 1
            expected_tops = {topo.tops[z][plane][k] for z in range(p.zones)}
            for sup in group:
                nbrs = _neighbors_by_tier(topo, sup)
                if nbrs.get(TIER_TOP, set()) != expected_tops:
                    raise TopologyError(f"{sup} downlinks wrong")

    # addressing: all fabric interfaces addressed, /31 pairs match
    for link in topo.world.links:
        a, b = link.end_a, link.end_b
        if a.node.tier == TIER_SERVER or b.node.tier == TIER_SERVER:
            continue
        if a.address is None or b.address is None:
            raise TopologyError(f"unaddressed fabric link {link!r}")
        if a.network != b.network:
            raise TopologyError(
                f"link {link!r} endpoints in different subnets "
                f"{a.network} vs {b.network}"
            )

    # rack subnets unique
    subnets = list(topo.rack_subnet.values())
    if len(set(subnets)) != len(subnets):
        raise TopologyError("duplicate rack subnets")

    # rack port recorded for every ToR
    for tor in topo.all_tors():
        if tor not in topo.rack_port:
            raise TopologyError(f"{tor} missing rack port")
