"""Topology validation.

The simulator-side analogue of the paper's "scripts to verify the
topology and router configuration": structural checks that the built
fabric is sound before any protocol runs on it.

Family-specific wiring invariants (the folded-Clos plane/pod checks,
VL2's complete agg-intermediate bipartite, DCell's cross-cell matching)
live on each plugin's :meth:`Topology.validate_structure`; this module
runs those plus the invariants every registered fabric must satisfy —
addressed /31 fabric links, unique rack subnets, a recorded rack port
per ToR, and internally-consistent failure cases.
"""

from __future__ import annotations

from repro.topology.base import TIER_SERVER, Topology, TopologyError

__all__ = ["TopologyError", "validate_topology"]


def validate_topology(topo: Topology) -> None:
    """Raise :class:`TopologyError` on any structural violation."""

    # family-specific wiring invariants first
    topo.validate_structure()

    # addressing: all fabric interfaces addressed, /31 pairs match
    for link in topo.world.links:
        a, b = link.end_a, link.end_b
        if a.node.tier == TIER_SERVER or b.node.tier == TIER_SERVER:
            continue
        if a.address is None or b.address is None:
            raise TopologyError(f"unaddressed fabric link {link!r}")
        if a.network != b.network:
            raise TopologyError(
                f"link {link!r} endpoints in different subnets "
                f"{a.network} vs {b.network}"
            )

    # rack subnets unique
    subnets = list(topo.rack_subnet.values())
    if len(set(subnets)) != len(subnets):
        raise TopologyError("duplicate rack subnets")

    # rack port recorded for every ToR
    for tor in topo.all_tors():
        if tor not in topo.rack_port:
            raise TopologyError(f"{tor} missing rack port")

    # failure cases reference real interfaces on real links
    for case in topo.failure_cases().values():
        node = topo.node(case.node)
        iface = node.interfaces.get(case.interface)
        if iface is None:
            raise TopologyError(
                f"failure case {case.name}: {case.node} has no "
                f"interface {case.interface}"
            )
        peer = iface.peer()
        if peer is None or peer.node.name != case.peer_node:
            raise TopologyError(
                f"failure case {case.name}: {case.node}.{case.interface} "
                f"does not face {case.peer_node}"
            )
