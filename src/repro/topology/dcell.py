"""Recursively-defined DCell/FiConn-style DCN builder.

A *cell* (the level-0 unit) is a complete bipartite of ToRs and proxy
switches.  Level 1 composes cells into a complete graph: every unordered
pair of cells is joined by exactly one **same-tier** proxy-to-proxy
link, with the proxy on each side chosen by a deterministic round-robin
over the cell's proxies (so cross-cell fan-out spreads evenly).  With
``groups > 1`` the same rule recurses once more: groups form a complete
graph, each unordered group pair joined through one proxy per side,
round-robin over the group's proxies.

This family deliberately breaks the assumptions MR-MTP's VID derivation
rests on: there is no top tier (``all_tops()`` is empty), and the links
that carry cross-cell traffic connect *equal* tiers — so an MTP-style
"up/down" tree never covers them.  The harness's ``fabric_ports`` hook
is overridden to define "up" for a proxy as "out of the cell", which is
what keeps ``agg[j].uplink[k]`` symbolic targets meaningful here.  See
EXPERIMENTS.md for what that does to the paper's claims.

Tier mapping: ToRs are tier 1, proxies tier 2 (they fill the ``aggs``
role in the protocol), nothing above.
"""

from __future__ import annotations

from typing import Optional

from repro.net.link import DEFAULT_BANDWIDTH_BPS, DEFAULT_PROPAGATION_US
from repro.net.world import World
from repro.topology.base import (
    FIRST_TOR_VID,
    TIER_AGG,
    TIER_SERVER,
    TIER_TOR,
    AddressAllocator,
    BaseTopology,
    FailureCase,
    TopologyError,
    cable_fabric_link,
    provision_racks,
    rack_subnet_for,
)

__all__ = ["DcellTopology", "build_dcell", "DCELL_DEFAULT_PARAMS"]

DCELL_DEFAULT_PARAMS = {
    "tors_per_cell": 2,
    "proxies_per_cell": 2,
    "cells": 3,             # cells per group, complete graph at level 1
    "groups": 1,            # >1 recurses: complete graph of groups
    "servers_per_rack": 1,
    "bandwidth_bps": DEFAULT_BANDWIDTH_BPS,
    "propagation_us": DEFAULT_PROPAGATION_US,
}


class DcellTopology(BaseTopology):
    """A built recursive-DCN fabric."""

    topology_name = "dcell"

    def __init__(self, world: World, params) -> None:
        super().__init__(world, params)
        #: every same-tier cross link, as ((node, iface), (node, iface)),
        #: in creation order — level-1 links first, then level-2
        self.cross_links: list[tuple[tuple[str, str], tuple[str, str]]] = []

    # ------------------------------------------------------------------
    def fabric_ports(self, node_name: str, up: bool) -> list[str]:
        """"Up" for a proxy means *out of the cell* — its same-tier
        cross links — since there is no higher tier to compare against.
        ToRs and servers keep the tier-comparison meaning."""
        node = self.node(node_name)
        if node.tier != TIER_AGG:
            return super().fabric_ports(node_name, up)
        ports = []
        for iface in node.interfaces.values():
            peer = iface.peer()
            if peer is None or peer.node.tier == TIER_SERVER:
                continue
            if (peer.node.tier == node.tier) == up:
                ports.append(iface.name)
        return ports

    # ------------------------------------------------------------------
    def failure_cases(self) -> dict[str, FailureCase]:
        """TC1/TC2 mirror the paper's ToR-uplink cases inside the first
        cell; TC3/TC4 move the failure onto the first *cross-cell* link,
        the role the agg-top link plays in Clos."""
        tor = self.tors[0][0][0]
        proxy = self.aggs[0][0][0]
        (near_node, near_if), (far_node, far_if) = self.cross_links[0]
        return {
            "TC1": FailureCase("TC1", tor, self._iface_between(tor, proxy),
                               proxy, "ToR uplink fails at ToR side"),
            "TC2": FailureCase("TC2", proxy,
                               self._iface_between(proxy, tor), tor,
                               "ToR-proxy link fails at proxy side"),
            "TC3": FailureCase("TC3", near_node, near_if, far_node,
                               "cross-cell link fails at near side"),
            "TC4": FailureCase("TC4", far_node, far_if, near_node,
                               "cross-cell link fails at far side"),
        }

    def describe(self) -> str:
        p = dict(self.params)
        return (
            f"recursive DCN: {p['groups']} group(s) x {p['cells']} cell(s), "
            f"{p['tors_per_cell']} ToR(s) + {p['proxies_per_cell']} "
            f"proxy(ies) per cell, {len(self.cross_links)} same-tier "
            f"cross link(s), no top tier\n"
            f"routers: {len(self.routers())}, "
            f"servers: {len(self.all_servers())}, "
            f"links: {len(self.world.links)}"
        )

    # ------------------------------------------------------------------
    def _neighbors_by_tier(self, name: str) -> dict[int, set[str]]:
        result: dict[int, set[str]] = {}
        for iface in self.node(name).interfaces.values():
            peer = iface.peer()
            if peer is None:
                continue
            result.setdefault(peer.node.tier, set()).add(peer.node.name)
        return result

    def validate_structure(self) -> None:
        p = dict(self.params)
        expected = (p["groups"] * p["cells"]
                    * (p["tors_per_cell"] + p["proxies_per_cell"]))
        if len(self.routers()) != expected:
            raise TopologyError(
                f"expected {expected} routers, built {len(self.routers())}")
        if self.all_tops() or self.all_supers():
            raise TopologyError("recursive DCN must have no top tier")

        # level 0: complete ToR-proxy bipartite inside every cell
        for g in range(p["groups"]):
            for c in range(p["cells"]):
                cell_proxies = set(self.aggs[g][c])
                for tor in self.tors[g][c]:
                    nbrs = self._neighbors_by_tier(tor)
                    if nbrs.get(TIER_AGG, set()) != cell_proxies:
                        raise TopologyError(
                            f"{tor} must reach every proxy in its cell")
                    if len(nbrs.get(TIER_SERVER, set())) \
                            != p["servers_per_rack"]:
                        raise TopologyError(f"{tor} server count wrong")
                cell_tors = set(self.tors[g][c])
                for proxy in self.aggs[g][c]:
                    nbrs = self._neighbors_by_tier(proxy)
                    if nbrs.get(TIER_TOR, set()) != cell_tors:
                        raise TopologyError(
                            f"{proxy} must reach every ToR in its cell")

        # level 1: exactly one cross link per unordered cell pair,
        # endpoints in the right cells, same tier on both sides
        def owner_cell(node_name: str) -> tuple[int, int]:
            for g in range(p["groups"]):
                for c in range(p["cells"]):
                    if node_name in self.aggs[g][c]:
                        return (g, c)
            raise TopologyError(f"{node_name} is not a registered proxy")

        pair_counts: dict[tuple, int] = {}
        for (a_node, _), (b_node, _) in self.cross_links:
            ga, ca = owner_cell(a_node)
            gb, cb = owner_cell(b_node)
            if (ga, ca) == (gb, cb):
                raise TopologyError(
                    f"cross link {a_node}--{b_node} stays inside one cell")
            key = tuple(sorted([(ga, ca), (gb, cb)]))
            pair_counts[key] = pair_counts.get(key, 0) + 1

        for g in range(p["groups"]):
            for ci in range(p["cells"]):
                for cj in range(ci + 1, p["cells"]):
                    key = ((g, ci), (g, cj))
                    if pair_counts.get(key, 0) != 1:
                        raise TopologyError(
                            f"cells {ci} and {cj} of group {g} need exactly "
                            f"one cross link, have {pair_counts.get(key, 0)}")

        # level 2: one link per unordered group pair
        for gi in range(p["groups"]):
            for gj in range(gi + 1, p["groups"]):
                n = sum(count for (a, b), count in pair_counts.items()
                        if a[0] == gi and b[0] == gj)
                if n != 1:
                    raise TopologyError(
                        f"groups {gi} and {gj} need exactly one cross "
                        f"link, have {n}")


def build_dcell(world: Optional[World] = None, seed: int = 0,
                **params) -> DcellTopology:
    """Construct the recursive DCN: cells, level-1 mesh, level-2 mesh."""
    merged = {**DCELL_DEFAULT_PARAMS, **params}
    for name in ("tors_per_cell", "proxies_per_cell", "cells", "groups"):
        if merged[name] < 1:
            raise ValueError(f"{name} must be >= 1")
    if merged["servers_per_rack"] < 0:
        raise ValueError("servers_per_rack must be >= 0")
    if world is None:
        world = World(seed=seed)
    topo = DcellTopology(world, tuple(sorted(merged.items())))
    alloc = AddressAllocator()

    def group_tag(g: int) -> str:
        return f"G{g + 1}-" if merged["groups"] > 1 else ""

    # --- create routers ------------------------------------------------
    vid_seed = FIRST_TOR_VID
    for g in range(merged["groups"]):
        group_tors: list[list[str]] = []
        group_proxies: list[list[str]] = []
        for c in range(merged["cells"]):
            cell_tors, cell_proxies = [], []
            for t in range(merged["tors_per_cell"]):
                name = f"{group_tag(g)}D-{c + 1}-{t + 1}"
                world.add_node(name, tier=TIER_TOR)
                cell_tors.append(name)
                topo.tor_vid_seed[name] = vid_seed
                topo.rack_subnet[name] = rack_subnet_for(vid_seed)
                vid_seed += 1
            for j in range(merged["proxies_per_cell"]):
                name = f"{group_tag(g)}DP-{c + 1}-{j + 1}"
                world.add_node(name, tier=TIER_AGG)
                cell_proxies.append(name)
            group_tors.append(cell_tors)
            group_proxies.append(cell_proxies)
        topo.tors.append(group_tors)
        topo.aggs.append(group_proxies)

    # --- level 0: complete bipartite inside each cell ------------------
    for g in range(merged["groups"]):
        for c in range(merged["cells"]):
            for t_name in topo.tors[g][c]:
                for p_name in topo.aggs[g][c]:
                    cable_fabric_link(world, alloc, t_name, p_name,
                                      merged["bandwidth_bps"],
                                      merged["propagation_us"])

    # --- cross links: same-tier, round-robin proxy selection -----------
    def cross(lower: str, upper: str) -> None:
        cable_fabric_link(world, alloc, lower, upper,
                          merged["bandwidth_bps"], merged["propagation_us"])
        a_if = topo._iface_between(lower, upper)
        b_if = topo._iface_between(upper, lower)
        topo.cross_links.append(((lower, a_if), (upper, b_if)))

    # level 1: complete graph over the cells of each group
    for g in range(merged["groups"]):
        rr = [0] * merged["cells"]  # per-cell round-robin cursor
        for ci in range(merged["cells"]):
            for cj in range(ci + 1, merged["cells"]):
                pi = topo.aggs[g][ci][rr[ci] % merged["proxies_per_cell"]]
                pj = topo.aggs[g][cj][rr[cj] % merged["proxies_per_cell"]]
                rr[ci] += 1
                rr[cj] += 1
                cross(pi, pj)

    # level 2: the same rule, one recursion up — complete graph over
    # groups, round-robin over each group's flattened proxy list
    if merged["groups"] > 1:
        flat = [[p for cell in topo.aggs[g] for p in cell]
                for g in range(merged["groups"])]
        rr2 = [0] * merged["groups"]
        for gi in range(merged["groups"]):
            for gj in range(gi + 1, merged["groups"]):
                pi = flat[gi][rr2[gi] % len(flat[gi])]
                pj = flat[gj][rr2[gj] % len(flat[gj])]
                rr2[gi] += 1
                rr2[gj] += 1
                cross(pi, pj)

    provision_racks(topo, merged["servers_per_rack"],
                    merged["bandwidth_bps"], merged["propagation_us"])
    return topo
