"""Folded-Clos builder.

Topology model (matching the paper's Figs. 2-3):

* tier 1: ToRs (leaves) ``L-<pod>-<t>``, one rack subnet each;
* tier 2: pod spines (aggregations) ``S-<pod>-<a>``;
* tier 3: top spines ``T-<n>``, arranged in *planes*: plane *a* holds the
  tops reachable from aggregation *a* of every pod (the paper's
  S1_1 -> {S2_1, S2_3} / S1_2 -> {S2_2, S2_4} wiring);
* optional tier 4 (scalability extension, paper section IX): multiple
  *zones* each with their own top layer, stitched by super-spines
  ``U-<g>-<k>``: the top at position *g* of every zone connects to all
  super-spines in group *g*.

Port-number discipline matters to MR-MTP (child VIDs append the parent's
port number), so interfaces are created in a fixed order: downstream
ports first, then upstream ports, then (on ToRs) the rack port — giving
the rack port the highest number, as in the paper's Listing 2 where it is
configured explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.link import DEFAULT_BANDWIDTH_BPS, DEFAULT_PROPAGATION_US
from repro.net.node import Node
from repro.net.world import World
from repro.stack.addresses import Ipv4Address, Ipv4Network

TIER_SERVER = 0
TIER_TOR = 1
TIER_AGG = 2
TIER_TOP = 3
TIER_SUPER = 4

FIRST_TOR_VID = 11  # first rack subnet is 192.168.11.0/24, as in Fig. 2


@dataclass(frozen=True)
class ClosParams:
    """Shape of a folded-Clos fabric."""

    num_pods: int = 2
    tors_per_pod: int = 2
    aggs_per_pod: int = 2
    tops_per_plane: int = 2
    servers_per_rack: int = 1
    zones: int = 1                 # >1 adds the tier-4 super-spine layer
    supers_per_group: int = 2      # width of each super-spine group
    bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS
    propagation_us: int = DEFAULT_PROPAGATION_US

    def __post_init__(self) -> None:
        for name in ("num_pods", "tors_per_pod", "aggs_per_pod",
                     "tops_per_plane", "zones", "supers_per_group"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.servers_per_rack < 0:
            raise ValueError("servers_per_rack must be >= 0")

    @property
    def num_planes(self) -> int:
        return self.aggs_per_pod

    @property
    def num_tiers(self) -> int:
        return 4 if self.zones > 1 else 3

    @property
    def routers_per_zone(self) -> int:
        return (
            self.num_pods * (self.tors_per_pod + self.aggs_per_pod)
            + self.num_planes * self.tops_per_plane
        )

    @property
    def num_routers(self) -> int:
        supers = 0
        if self.zones > 1:
            supers = self.num_planes * self.tops_per_plane * self.supers_per_group
        return self.zones * self.routers_per_zone + supers


def two_pod_params(**overrides) -> ClosParams:
    """The paper's 2-PoD topology: 4 ToR + 4 agg + 4 top = 12 routers."""
    return ClosParams(num_pods=2, **overrides)


def four_pod_params(**overrides) -> ClosParams:
    """The paper's 4-PoD topology: 8 ToR + 8 agg + 4 top = 20 routers."""
    return ClosParams(num_pods=4, **overrides)


@dataclass(frozen=True)
class FailureCase:
    """One of the paper's interface-failure test points.

    ``node`` is the device whose interface is administratively downed (it
    detects instantly); the peer must rely on protocol timers.
    """

    name: str
    node: str
    interface: str
    peer_node: str
    description: str


class ClosTopology:
    """A built fabric: nodes, links, addressing and failure points."""

    def __init__(self, world: World, params: ClosParams) -> None:
        self.world = world
        self.params = params
        # zone -> pod -> list of node names
        self.tors: list[list[list[str]]] = []
        self.aggs: list[list[list[str]]] = []
        # zone -> plane -> list of top names
        self.tops: list[list[list[str]]] = []
        # group -> list of super-spine names
        self.supers: list[list[str]] = []
        self.servers: dict[str, list[str]] = {}       # tor -> hosts
        self.rack_subnet: dict[str, Ipv4Network] = {} # tor -> 192.168.V.0/24
        self.rack_port: dict[str, str] = {}           # tor -> iface name
        self.tor_vid_seed: dict[str, int] = {}        # tor -> third byte V
        self.server_gateway: dict[str, Ipv4Address] = {}  # host -> ToR-side addr

    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        return self.world.node(name)

    def all_tors(self) -> list[str]:
        return [t for zone in self.tors for pod in zone for t in pod]

    def all_aggs(self) -> list[str]:
        return [a for zone in self.aggs for pod in zone for a in pod]

    def all_tops(self) -> list[str]:
        return [t for zone in self.tops for plane in zone for t in plane]

    def all_supers(self) -> list[str]:
        return [s for group in self.supers for s in group]

    def routers(self) -> list[str]:
        return self.all_tors() + self.all_aggs() + self.all_tops() + self.all_supers()

    def all_servers(self) -> list[str]:
        return [h for hosts in self.servers.values() for h in hosts]

    def first_server_of(self, tor: str) -> str:
        return self.servers[tor][0]

    def server_address(self, host: str) -> Ipv4Address:
        node = self.node(host)
        for iface in node.interfaces.values():
            if iface.address is not None:
                return iface.address
        raise ValueError(f"{host} has no address")

    # ------------------------------------------------------------------
    # the paper's four failure test cases (TC1-TC4, Fig. 3)
    # ------------------------------------------------------------------
    def failure_cases(self) -> dict[str, FailureCase]:
        """TC1..TC4 on the canonical first-PoD devices.

        TC1: ToR's uplink to its first agg fails at the ToR side.
        TC2: the same link fails at the agg side.
        TC3: the agg's uplink to its first top fails at the agg side.
        TC4: the same link fails at the top side.
        """
        tor = self.tors[0][0][0]
        agg = self.aggs[0][0][0]
        top = self.tops[0][0][0]
        return {
            "TC1": FailureCase("TC1", tor, self._iface_between(tor, agg), agg,
                               "ToR uplink fails at ToR side"),
            "TC2": FailureCase("TC2", agg, self._iface_between(agg, tor), tor,
                               "ToR-agg link fails at agg side"),
            "TC3": FailureCase("TC3", agg, self._iface_between(agg, top), top,
                               "agg uplink fails at agg side"),
            "TC4": FailureCase("TC4", top, self._iface_between(top, agg), agg,
                               "agg-top link fails at top side"),
        }

    def _iface_between(self, node_name: str, peer_name: str) -> str:
        node = self.node(node_name)
        for iface in node.interfaces.values():
            peer = iface.peer()
            if peer is not None and peer.node.name == peer_name:
                return iface.name
        raise ValueError(f"no link between {node_name} and {peer_name}")

    # ------------------------------------------------------------------
    def describe(self) -> str:
        p = self.params
        lines = [
            f"folded-Clos: {p.zones} zone(s) x {p.num_pods} PoD(s), "
            f"{p.tors_per_pod} ToR + {p.aggs_per_pod} agg per PoD, "
            f"{p.num_planes} plane(s) x {p.tops_per_plane} top(s)"
            + (f", {p.supers_per_group}-wide super groups" if p.zones > 1 else ""),
            f"routers: {len(self.routers())}, servers: {len(self.all_servers())}, "
            f"links: {len(self.world.links)}",
        ]
        return "\n".join(lines)


class _AddressAllocator:
    """Sequential /31 allocation for fabric p2p links from 172.16.0.0/16."""

    def __init__(self) -> None:
        self._next = 0
        self._base = Ipv4Address.parse("172.16.0.0").value

    def next_pair(self) -> tuple[Ipv4Address, Ipv4Address]:
        base = self._base + 2 * self._next
        self._next += 1
        if base + 1 >= Ipv4Address.parse("172.17.0.0").value:
            raise ValueError("fabric address pool exhausted (172.16/16)")
        return Ipv4Address(base), Ipv4Address(base + 1)


def build_folded_clos(
    params: Optional[ClosParams] = None,
    world: Optional[World] = None,
    seed: int = 0,
) -> ClosTopology:
    """Construct the fabric: nodes, cabling, addressing, servers."""
    if params is None:
        params = ClosParams()
    if world is None:
        world = World(seed=seed)
    topo = ClosTopology(world, params)
    alloc = _AddressAllocator()

    def zone_tag(z: int) -> str:
        return f"Z{z + 1}-" if params.zones > 1 else ""

    # --- create routers ------------------------------------------------
    vid_seed = FIRST_TOR_VID
    for z in range(params.zones):
        zone_tors: list[list[str]] = []
        zone_aggs: list[list[str]] = []
        for p in range(params.num_pods):
            pod_tors, pod_aggs = [], []
            for t in range(params.tors_per_pod):
                name = f"{zone_tag(z)}L-{p + 1}-{t + 1}"
                world.add_node(name, tier=TIER_TOR)
                pod_tors.append(name)
                topo.tor_vid_seed[name] = vid_seed
                topo.rack_subnet[name] = Ipv4Network.parse(
                    f"192.168.{vid_seed % 256}.0/24"
                ) if vid_seed < 256 else _wide_rack_subnet(vid_seed)
                vid_seed += 1
            for a in range(params.aggs_per_pod):
                name = f"{zone_tag(z)}S-{p + 1}-{a + 1}"
                world.add_node(name, tier=TIER_AGG)
                pod_aggs.append(name)
            zone_tors.append(pod_tors)
            zone_aggs.append(pod_aggs)
        topo.tors.append(zone_tors)
        topo.aggs.append(zone_aggs)

        zone_tops: list[list[str]] = []
        top_index = 1
        for plane in range(params.num_planes):
            plane_tops = []
            for k in range(params.tops_per_plane):
                name = f"{zone_tag(z)}T-{top_index}"
                top_index += 1
                world.add_node(name, tier=TIER_TOP)
                plane_tops.append(name)
            zone_tops.append(plane_tops)
        topo.tops.append(zone_tops)

    if params.zones > 1:
        for plane in range(params.num_planes):
            for k in range(params.tops_per_plane):
                group = []
                for s in range(params.supers_per_group):
                    name = f"U-{plane + 1}-{k + 1}-{s + 1}"
                    world.add_node(name, tier=TIER_SUPER)
                    group.append(name)
                topo.supers.append(group)

    # --- cabling (downstream interfaces created before upstream) -------
    def cable(lower: str, upper: str) -> None:
        """Cable lower-tier node up to upper-tier node, with addresses.

        The upper node's (downstream) interface is created first in its
        own ordering because uppers are wired pod-by-pod below.
        """
        a, b = alloc.next_pair()
        low_if = world.node(lower).add_interface()
        up_if = world.node(upper).add_interface()
        world.cable(low_if, up_if, params.bandwidth_bps, params.propagation_us)
        low_if.assign_address(a, 31)
        up_if.assign_address(b, 31)

    for z in range(params.zones):
        # agg downstream ports to ToRs (created first on aggs),
        # then ToR upstream ports... ToRs need their uplink ports created
        # in agg order; iterate ToR-major so each ToR's uplinks are
        # eth1..ethA, then aggs gain downlinks in ToR order.
        for p in range(params.num_pods):
            for t_name in topo.tors[z][p]:
                for a_name in topo.aggs[z][p]:
                    cable(t_name, a_name)
        # agg uplinks to their plane's tops
        for p in range(params.num_pods):
            for a_idx, a_name in enumerate(topo.aggs[z][p]):
                for top_name in topo.tops[z][a_idx]:
                    cable(a_name, top_name)

    if params.zones > 1:
        group_idx = 0
        for plane in range(params.num_planes):
            for k in range(params.tops_per_plane):
                group = topo.supers[group_idx]
                group_idx += 1
                for z in range(params.zones):
                    top_name = topo.tops[z][plane][k]
                    for super_name in group:
                        cable(top_name, super_name)

    # --- rack ports and servers (highest-numbered ToR ports) -----------
    # Each server hangs off its own ToR port; the ToR-side interface of
    # server s carries gateway address .254-s in the shared rack subnet
    # (a routed-rack design, host /32s beyond the first server).  The
    # first rack-facing port is the one named in the paper's
    # leavesNetworkPortDict — the interface MR-MTP reads its VID from.
    for tor_name in topo.all_tors():
        tor = world.node(tor_name)
        subnet = topo.rack_subnet[tor_name]
        subnet_size = 1 << (32 - subnet.prefix_len)
        hosts = []
        if params.servers_per_rack == 0:
            # keep an addressed (uncabled) rack port so VID derivation
            # still works on fabrics built without servers
            rack_if = tor.add_interface()
            rack_if.assign_address(subnet.host(subnet_size - 2), subnet.prefix_len)
            topo.rack_port[tor_name] = rack_if.name
        for s in range(params.servers_per_rack):
            host_name = f"H-{tor_name}-{s + 1}"
            host = world.add_node(host_name, tier=TIER_SERVER)
            host_if = host.add_interface()
            tor_if = tor.add_interface()
            world.cable(host_if, tor_if,
                        params.bandwidth_bps, params.propagation_us)
            host_if.assign_address(subnet.host(s + 1), subnet.prefix_len)
            tor_if.assign_address(subnet.host(subnet_size - 2 - s),
                                  subnet.prefix_len)
            if s == 0:
                topo.rack_port[tor_name] = tor_if.name
            topo.server_gateway[host_name] = tor_if.address
            hosts.append(host_name)
        topo.servers[tor_name] = hosts

    return topo


def _wide_rack_subnet(vid_seed: int) -> Ipv4Network:
    """Rack subnets beyond 192.168.255/24 roll into 192.<169+>.x/24 so very
    large fabrics still get unique rack prefixes."""
    major = 169 + (vid_seed // 256)
    if major > 255:
        raise ValueError("rack subnet pool exhausted")
    return Ipv4Network.parse(f"192.{major}.{vid_seed % 256}.0/24")
