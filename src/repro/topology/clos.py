"""Folded-Clos builder — topology plugin zero.

Topology model (matching the paper's Figs. 2-3):

* tier 1: ToRs (leaves) ``L-<pod>-<t>``, one rack subnet each;
* tier 2: pod spines (aggregations) ``S-<pod>-<a>``;
* tier 3: top spines ``T-<n>``, arranged in *planes*: plane *a* holds the
  tops reachable from aggregation *a* of every pod (the paper's
  S1_1 -> {S2_1, S2_3} / S1_2 -> {S2_2, S2_4} wiring);
* optional tier 4 (scalability extension, paper section IX): multiple
  *zones* each with their own top layer, stitched by super-spines
  ``U-<g>-<k>``: the top at position *g* of every zone connects to all
  super-spines in group *g*.

Port-number discipline matters to MR-MTP (child VIDs append the parent's
port number), so interfaces are created in a fixed order: downstream
ports first, then upstream ports, then (on ToRs) the rack port — giving
the rack port the highest number, as in the paper's Listing 2 where it is
configured explicitly.

This module is registered as the ``"clos"`` plugin in
:mod:`repro.topology.builtin`; everything outside :mod:`repro.topology`
reaches it through the registry (``build_topology``, ``TopologySpec``),
never by importing :class:`ClosParams`/:class:`ClosTopology` directly —
enforced by ``tests/topology/test_lint.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.link import DEFAULT_BANDWIDTH_BPS, DEFAULT_PROPAGATION_US
from repro.net.world import World
from repro.topology.base import (
    FIRST_TOR_VID,
    TIER_AGG,
    TIER_SERVER,
    TIER_SUPER,
    TIER_TOP,
    TIER_TOR,
    AddressAllocator,
    BaseTopology,
    FailureCase,
    TopologyError,
    cable_fabric_link,
    provision_racks,
    rack_subnet_for,
)

__all__ = [
    "TIER_SERVER", "TIER_TOR", "TIER_AGG", "TIER_TOP", "TIER_SUPER",
    "FIRST_TOR_VID", "FailureCase",
    "ClosParams", "ClosTopology", "build_folded_clos",
    "two_pod_params", "four_pod_params",
]


@dataclass(frozen=True)
class ClosParams:
    """Shape of a folded-Clos fabric."""

    num_pods: int = 2
    tors_per_pod: int = 2
    aggs_per_pod: int = 2
    tops_per_plane: int = 2
    servers_per_rack: int = 1
    zones: int = 1                 # >1 adds the tier-4 super-spine layer
    supers_per_group: int = 2      # width of each super-spine group
    bandwidth_bps: int = DEFAULT_BANDWIDTH_BPS
    propagation_us: int = DEFAULT_PROPAGATION_US

    def __post_init__(self) -> None:
        for name in ("num_pods", "tors_per_pod", "aggs_per_pod",
                     "tops_per_plane", "zones", "supers_per_group"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.servers_per_rack < 0:
            raise ValueError("servers_per_rack must be >= 0")

    @property
    def topology_name(self) -> str:
        """The registry name this params object resolves to (duck-typed
        by :func:`repro.topology.registry.resolve_topology_spec`)."""
        return "clos"

    @property
    def num_planes(self) -> int:
        return self.aggs_per_pod

    @property
    def num_tiers(self) -> int:
        return 4 if self.zones > 1 else 3

    @property
    def routers_per_zone(self) -> int:
        return (
            self.num_pods * (self.tors_per_pod + self.aggs_per_pod)
            + self.num_planes * self.tops_per_plane
        )

    @property
    def num_routers(self) -> int:
        supers = 0
        if self.zones > 1:
            supers = self.num_planes * self.tops_per_plane * self.supers_per_group
        return self.zones * self.routers_per_zone + supers


def two_pod_params(**overrides) -> ClosParams:
    """The paper's 2-PoD topology: 4 ToR + 4 agg + 4 top = 12 routers."""
    return ClosParams(num_pods=2, **overrides)


def four_pod_params(**overrides) -> ClosParams:
    """The paper's 4-PoD topology: 8 ToR + 8 agg + 4 top = 20 routers."""
    return ClosParams(num_pods=4, **overrides)


class ClosTopology(BaseTopology):
    """A built fabric: nodes, links, addressing and failure points."""

    topology_name = "clos"

    def __init__(self, world: World, params: ClosParams) -> None:
        super().__init__(world, params)

    # ------------------------------------------------------------------
    # the paper's four failure test cases (TC1-TC4, Fig. 3)
    # ------------------------------------------------------------------
    def failure_cases(self) -> dict[str, FailureCase]:
        """TC1..TC4 on the canonical first-PoD devices.

        TC1: ToR's uplink to its first agg fails at the ToR side.
        TC2: the same link fails at the agg side.
        TC3: the agg's uplink to its first top fails at the agg side.
        TC4: the same link fails at the top side.
        """
        tor = self.tors[0][0][0]
        agg = self.aggs[0][0][0]
        top = self.tops[0][0][0]
        return {
            "TC1": FailureCase("TC1", tor, self._iface_between(tor, agg), agg,
                               "ToR uplink fails at ToR side"),
            "TC2": FailureCase("TC2", agg, self._iface_between(agg, tor), tor,
                               "ToR-agg link fails at agg side"),
            "TC3": FailureCase("TC3", agg, self._iface_between(agg, top), top,
                               "agg uplink fails at agg side"),
            "TC4": FailureCase("TC4", top, self._iface_between(top, agg), agg,
                               "agg-top link fails at top side"),
        }

    # ------------------------------------------------------------------
    def describe(self) -> str:
        p = self.params
        lines = [
            f"folded-Clos: {p.zones} zone(s) x {p.num_pods} PoD(s), "
            f"{p.tors_per_pod} ToR + {p.aggs_per_pod} agg per PoD, "
            f"{p.num_planes} plane(s) x {p.tops_per_plane} top(s)"
            + (f", {p.supers_per_group}-wide super groups" if p.zones > 1 else ""),
            f"routers: {len(self.routers())}, servers: {len(self.all_servers())}, "
            f"links: {len(self.world.links)}",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _neighbors_by_tier(self, name: str) -> dict[int, set[str]]:
        node = self.node(name)
        result: dict[int, set[str]] = {}
        for iface in node.interfaces.values():
            peer = iface.peer()
            if peer is None:
                continue
            result.setdefault(peer.node.tier, set()).add(peer.node.name)
        return result

    def validate_structure(self) -> None:
        """The folded-Clos wiring invariants (the simulator-side analogue
        of the paper's topology-verification scripts)."""
        p = self.params

        # counts
        expected_routers = p.num_routers
        if len(self.routers()) != expected_routers:
            raise TopologyError(
                f"expected {expected_routers} routers, built "
                f"{len(self.routers())}"
            )

        # ToRs: uplinks to every agg in their pod, plus rack ports
        for z in range(p.zones):
            for pod in range(p.num_pods):
                pod_aggs = set(self.aggs[z][pod])
                for tor in self.tors[z][pod]:
                    up = self._neighbors_by_tier(tor).get(TIER_AGG, set())
                    if up != pod_aggs:
                        raise TopologyError(
                            f"{tor} uplinks {sorted(up)} != pod aggs "
                            f"{sorted(pod_aggs)}"
                        )
                    servers = self._neighbors_by_tier(tor).get(
                        TIER_SERVER, set())
                    if len(servers) != p.servers_per_rack:
                        raise TopologyError(
                            f"{tor} has {len(servers)} servers, expected "
                            f"{p.servers_per_rack}"
                        )

        # aggs: down to every ToR in pod, up to every top in their plane
        for z in range(p.zones):
            for pod in range(p.num_pods):
                pod_tors = set(self.tors[z][pod])
                for a_idx, agg in enumerate(self.aggs[z][pod]):
                    nbrs = self._neighbors_by_tier(agg)
                    if nbrs.get(TIER_TOR, set()) != pod_tors:
                        raise TopologyError(f"{agg} downlinks wrong")
                    plane_tops = set(self.tops[z][a_idx])
                    if nbrs.get(TIER_TOP, set()) != plane_tops:
                        raise TopologyError(
                            f"{agg} uplinks {nbrs.get(TIER_TOP)} != plane "
                            f"{sorted(plane_tops)}"
                        )

        # tops: one agg (the plane's) per pod in their zone
        for z in range(p.zones):
            for plane in range(p.num_planes):
                plane_aggs = {self.aggs[z][pod][plane]
                              for pod in range(p.num_pods)}
                for top in self.tops[z][plane]:
                    nbrs = self._neighbors_by_tier(top)
                    if nbrs.get(TIER_AGG, set()) != plane_aggs:
                        raise TopologyError(
                            f"{top} downlinks {nbrs.get(TIER_AGG)} != "
                            f"{plane_aggs}"
                        )
                    supers = nbrs.get(TIER_SUPER, set())
                    expected_supers = p.supers_per_group if p.zones > 1 else 0
                    if len(supers) != expected_supers:
                        raise TopologyError(
                            f"{top} has {len(supers)} super uplinks, "
                            f"expected {expected_supers}"
                        )

        # super-spines: their group's top position in every zone
        group_idx = 0
        for plane in range(p.num_planes):
            for k in range(p.tops_per_plane):
                if p.zones <= 1:
                    break
                group = self.supers[group_idx]
                group_idx += 1
                expected_tops = {self.tops[z][plane][k]
                                 for z in range(p.zones)}
                for sup in group:
                    nbrs = self._neighbors_by_tier(sup)
                    if nbrs.get(TIER_TOP, set()) != expected_tops:
                        raise TopologyError(f"{sup} downlinks wrong")


def build_folded_clos(
    params: Optional[ClosParams] = None,
    world: Optional[World] = None,
    seed: int = 0,
) -> ClosTopology:
    """Construct the fabric: nodes, cabling, addressing, servers."""
    if params is None:
        params = ClosParams()
    if world is None:
        world = World(seed=seed)
    topo = ClosTopology(world, params)
    alloc = AddressAllocator()

    def zone_tag(z: int) -> str:
        return f"Z{z + 1}-" if params.zones > 1 else ""

    # --- create routers ------------------------------------------------
    vid_seed = FIRST_TOR_VID
    for z in range(params.zones):
        zone_tors: list[list[str]] = []
        zone_aggs: list[list[str]] = []
        for p in range(params.num_pods):
            pod_tors, pod_aggs = [], []
            for t in range(params.tors_per_pod):
                name = f"{zone_tag(z)}L-{p + 1}-{t + 1}"
                world.add_node(name, tier=TIER_TOR)
                pod_tors.append(name)
                topo.tor_vid_seed[name] = vid_seed
                topo.rack_subnet[name] = rack_subnet_for(vid_seed)
                vid_seed += 1
            for a in range(params.aggs_per_pod):
                name = f"{zone_tag(z)}S-{p + 1}-{a + 1}"
                world.add_node(name, tier=TIER_AGG)
                pod_aggs.append(name)
            zone_tors.append(pod_tors)
            zone_aggs.append(pod_aggs)
        topo.tors.append(zone_tors)
        topo.aggs.append(zone_aggs)

        zone_tops: list[list[str]] = []
        top_index = 1
        for plane in range(params.num_planes):
            plane_tops = []
            for k in range(params.tops_per_plane):
                name = f"{zone_tag(z)}T-{top_index}"
                top_index += 1
                world.add_node(name, tier=TIER_TOP)
                plane_tops.append(name)
            zone_tops.append(plane_tops)
        topo.tops.append(zone_tops)

    if params.zones > 1:
        for plane in range(params.num_planes):
            for k in range(params.tops_per_plane):
                group = []
                for s in range(params.supers_per_group):
                    name = f"U-{plane + 1}-{k + 1}-{s + 1}"
                    world.add_node(name, tier=TIER_SUPER)
                    group.append(name)
                topo.supers.append(group)

    # --- cabling (downstream interfaces created before upstream) -------
    def cable(lower: str, upper: str) -> None:
        """Cable lower-tier node up to upper-tier node, with addresses.

        The upper node's (downstream) interface is created first in its
        own ordering because uppers are wired pod-by-pod below.
        """
        cable_fabric_link(world, alloc, lower, upper,
                          params.bandwidth_bps, params.propagation_us)

    for z in range(params.zones):
        # agg downstream ports to ToRs (created first on aggs),
        # then ToR upstream ports... ToRs need their uplink ports created
        # in agg order; iterate ToR-major so each ToR's uplinks are
        # eth1..ethA, then aggs gain downlinks in ToR order.
        for p in range(params.num_pods):
            for t_name in topo.tors[z][p]:
                for a_name in topo.aggs[z][p]:
                    cable(t_name, a_name)
        # agg uplinks to their plane's tops
        for p in range(params.num_pods):
            for a_idx, a_name in enumerate(topo.aggs[z][p]):
                for top_name in topo.tops[z][a_idx]:
                    cable(a_name, top_name)

    if params.zones > 1:
        group_idx = 0
        for plane in range(params.num_planes):
            for k in range(params.tops_per_plane):
                group = topo.supers[group_idx]
                group_idx += 1
                for z in range(params.zones):
                    top_name = topo.tops[z][plane][k]
                    for super_name in group:
                        cable(top_name, super_name)

    # --- rack ports and servers (highest-numbered ToR ports) -----------
    provision_racks(topo, params.servers_per_rack,
                    params.bandwidth_bps, params.propagation_us)

    return topo
