"""Global topology registry: name -> :class:`TopologyDefinition`.

Adding a fabric family means registering a definition — no harness,
sweep, scenario, cache or CLI module changes.  Resolution accepts every
spelling callers use (a registry name, a prepared :class:`TopologySpec`,
a definition, or a legacy params object exposing ``topology_name`` such
as ``ClosParams``) and normalizes to a :class:`TopologySpec`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.net.world import World
from repro.topology.base import Topology, TopologyDefinition, TopologySpec

_REGISTRY: dict[str, TopologyDefinition] = {}

#: the fabric the paper evaluates — plugin zero, and what a bare
#: ``build_topology()`` call (no selection at all) builds
DEFAULT_TOPOLOGY = "clos"


class UnknownTopologyError(KeyError):
    """Lookup of a name nobody registered."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message


def register_topology(definition: TopologyDefinition, *,
                      replace: bool = False) -> TopologyDefinition:
    """Register ``definition`` under its name; returns it so modules can
    register at import time and keep the handle.

    Duplicate names are rejected (two plugins silently shadowing each
    other would corrupt cache keys); pass ``replace=True`` to override
    deliberately (tests, interactive experimentation).
    """
    name = definition.name
    if not name or name.strip() != name:
        raise ValueError(f"invalid topology name {name!r}")
    if not replace and name in _REGISTRY:
        raise ValueError(
            f"topology {name!r} is already registered; "
            f"pass replace=True to override")
    _REGISTRY[name] = definition
    return definition


def unregister_topology(name: str) -> None:
    """Remove a registration (primarily for test teardown)."""
    if name not in _REGISTRY:
        raise UnknownTopologyError(
            f"unknown topology {name!r}; available: "
            f"{', '.join(_REGISTRY) or '(none)'}")
    del _REGISTRY[name]


def get_topology(name: str) -> TopologyDefinition:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownTopologyError(
            f"unknown topology {name!r}; available: "
            f"{', '.join(available_topologies()) or '(none)'}") from None


def available_topologies() -> tuple[str, ...]:
    """Registered names, in registration order (builtins first)."""
    return tuple(_REGISTRY)


def resolve_topology_spec(topology: Any = None) -> TopologySpec:
    """Normalize any accepted topology spelling to a
    :class:`TopologySpec`.

    ``None`` selects the default fabric with default parameters, so the
    legacy ``build_folded_clos()``-with-no-arguments call shape keeps a
    direct registry equivalent.
    """
    if topology is None:
        return get_topology(DEFAULT_TOPOLOGY).spec()
    if isinstance(topology, TopologySpec):
        return topology
    if isinstance(topology, TopologyDefinition):
        return topology.spec()
    if isinstance(topology, str):
        return get_topology(topology).spec()
    name = getattr(topology, "topology_name", None)
    if isinstance(name, str) and dataclasses.is_dataclass(topology) \
            and not isinstance(topology, type):
        params = dataclasses.asdict(topology)
        return get_topology(name).spec(**params)
    raise TypeError(
        f"cannot resolve a topology from {topology!r}; expected a "
        f"registry name, TopologySpec, TopologyDefinition, or a params "
        f"dataclass with a topology_name attribute")


def build_topology(topology: Any = None,
                   world: Optional[World] = None, seed: int = 0) -> Topology:
    """Resolve ``topology`` and build it — the one entry point every
    harness layer constructs fabrics through."""
    spec = resolve_topology_spec(topology)
    return get_topology(spec.name).build_spec(spec, world=world, seed=seed)
