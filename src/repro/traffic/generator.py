"""Sequence-numbered UDP traffic: sender and receiver analyzer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.engine import Simulator
from repro.sim.units import MILLISECOND
from repro.stack.addresses import Ipv4Address
from repro.iputil.udp_service import UdpService

DEFAULT_TRAFFIC_PORT = 7777


@dataclass(frozen=True)
class SeqPayload:
    """A test packet: sequence number + padding to the requested size."""

    seq: int
    size: int = 100

    def __post_init__(self) -> None:
        if self.size < 8:
            raise ValueError("payload too small to carry a sequence number")

    @property
    def wire_size(self) -> int:
        return self.size


@dataclass
class TrafficReport:
    """The analyzer's verdict (paper section VI.D).

    ``bytes_delivered`` / ``goodput_bps`` make the per-packet analyzer
    directly comparable with the fluid workload engine's byte-level
    accounting (:class:`repro.workload.WorkloadReport`): both express
    delivery as application bytes over the active window."""

    sent: int
    received: int
    duplicated: int
    out_of_order: int
    #: application payload bytes delivered (first copies only; dups
    #: don't count toward goodput)
    bytes_delivered: int = 0
    #: receive window in microseconds (first rx to last rx); 0 when
    #: fewer than two packets arrived
    window_us: int = 0

    @property
    def lost(self) -> int:
        return self.sent - self.received

    @property
    def loss_fraction(self) -> float:
        return self.lost / self.sent if self.sent else 0.0

    @property
    def goodput_bps(self) -> float:
        """Delivered application bits per second over the rx window."""
        if self.window_us <= 0:
            return 0.0
        return self.bytes_delivered * 8 * 1_000_000 / self.window_us

    def __str__(self) -> str:
        return (
            f"sent={self.sent} received={self.received} lost={self.lost} "
            f"dup={self.duplicated} ooo={self.out_of_order} "
            f"bytes={self.bytes_delivered}"
        )


class TrafficSender:
    """Emits ``count`` packets with a fixed inter-packet gap (gap 0 means
    truly back-to-back: the link serializes them at line rate)."""

    def __init__(
        self,
        udp: UdpService,
        dst: Ipv4Address,
        dst_port: int = DEFAULT_TRAFFIC_PORT,
        src_port: int = 40000,
        payload_bytes: int = 100,
        gap_us: int = 1 * MILLISECOND,
    ) -> None:
        self.udp = udp
        self.sim: Simulator = udp.node.sim
        self.dst = dst
        self.dst_port = dst_port
        self.src_port = src_port
        self.payload_bytes = payload_bytes
        self.gap_us = int(gap_us)
        self.sent = 0
        self._stop_at: Optional[int] = None
        self._remaining = 0
        self._handle = None

    def start(self, count: int, at: Optional[int] = None) -> None:
        """Send ``count`` packets starting now (or at absolute time ``at``)."""
        if count <= 0:
            raise ValueError("count must be positive")
        self._remaining = count
        when = self.sim.now if at is None else at
        self._handle = self.sim.schedule_at(when, self._tick)

    def stop(self) -> None:
        self._remaining = 0
        if self._handle is not None:
            self._handle.cancel()

    def _tick(self) -> None:
        if self._remaining <= 0:
            return
        self.udp.send(
            self.dst, self.dst_port, self.src_port,
            SeqPayload(seq=self.sent, size=self.payload_bytes),
        )
        self.sent += 1
        self._remaining -= 1
        if self._remaining > 0:
            self._handle = self.sim.schedule_after(max(self.gap_us, 1), self._tick)


class ReceiverAnalyzer:
    """Binds the traffic port and classifies arriving sequence numbers.

    State is kept *per flow* (source address + source port), so several
    concurrent senders — each numbering from zero, as the paper's tool
    does — are analyzed independently (incast workloads)."""

    def __init__(self, udp: UdpService, port: int = DEFAULT_TRAFFIC_PORT) -> None:
        self.udp = udp
        self.port = port
        # flow key -> (seen seqs, highest in-order seq)
        self._flows: dict[tuple[int, int], set[int]] = {}
        self._highest: dict[tuple[int, int], int] = {}
        self.received = 0
        self.duplicated = 0
        self.out_of_order = 0
        self.bytes_delivered = 0
        self.first_rx_time: Optional[int] = None
        self.last_rx_time: Optional[int] = None
        udp.open(port, self._on_packet)

    def _on_packet(self, payload, src, src_port, iface) -> None:
        if not isinstance(payload, SeqPayload):
            return
        now = self.udp.node.sim.now
        if self.first_rx_time is None:
            self.first_rx_time = now
        self.last_rx_time = now
        flow = (src.value, src_port)
        seen = self._flows.setdefault(flow, set())
        if payload.seq in seen:
            self.duplicated += 1
            return
        seen.add(payload.seq)
        self.received += 1
        self.bytes_delivered += payload.wire_size
        if payload.seq < self._highest.get(flow, -1):
            self.out_of_order += 1
        else:
            self._highest[flow] = payload.seq

    def flow_received(self, src: Ipv4Address, src_port: int) -> int:
        """Distinct sequence numbers seen from one flow — per-sender
        delivery accounting when several bursts share a receiver."""
        return len(self._flows.get((src.value, src_port), ()))

    def report(self, sender: TrafficSender) -> TrafficReport:
        window = 0
        if (self.first_rx_time is not None
                and self.last_rx_time is not None):
            window = self.last_rx_time - self.first_rx_time
        return TrafficReport(
            sent=sender.sent,
            received=self.received,
            duplicated=self.duplicated,
            out_of_order=self.out_of_order,
            bytes_delivered=self.bytes_delivered,
            window_us=window,
        )

    def close(self) -> None:
        self.udp.close(self.port)
