"""Traffic generation and analysis.

Reimplements the paper's custom tool [28]: a sender emitting back-to-back
sequence-numbered packets between two servers, and a receiver-side
analyzer counting received, lost, duplicated and out-of-sequence packets
— the packet-loss instrument of sections V.C and VI.D.
"""

from repro.traffic.generator import (
    SeqPayload,
    TrafficSender,
    ReceiverAnalyzer,
    TrafficReport,
)

__all__ = ["SeqPayload", "TrafficSender", "ReceiverAnalyzer", "TrafficReport"]
