"""Command-line interface: ``python -m repro <command>``.

The CLI wraps the experiment harness for interactive use — the
simulator-era equivalent of the paper's FABRIC automation entry points:

    python -m repro stacks                            # list registered stacks
    python -m repro topology list                     # registered fabrics
    python -m repro topology show vl2 --json          # params + test points
    python -m repro stacks --json                     # machine-readable list
    python -m repro topo     --pods 4                 # build & validate
    python -m repro topo     --topology dcell -T cells=4
    python -m repro converge --stack mtp --pods 2     # converge, show state
    python -m repro fail     --stack bgp-bfd --case TC1
    python -m repro fail     --stack mtp --case TC1 --runs 5 --jobs 4
    python -m repro loss     --stack mtp-spray --case TC2 --direction near
    python -m repro config   --stack bgp --pods 4     # Listing 1/2 output
    python -m repro sweep    --stack mtp --jobs 4     # robustness sweep
    python -m repro scenario list                     # canonical library
    python -m repro scenario show flap-storm          # canonical JSON
    python -m repro scenario run --stack mtp --jobs 4 # run the library
    python -m repro scenario run tc1 drain --stack bgp-bfd --stack mtp
    python -m repro chaos    --jobs 4                 # false-positive suite
    python -m repro chaos    --stack mtp --rate 0 --rate 0.1
    python -m repro load list                         # workload presets
    python -m repro load --workload incast -W flows=50000 --jobs 4
    python -m repro sweep    --stack mtp --workload permutation
    python -m repro pathtrace --stack mtp --scenario gray-uplink

``--stack`` accepts any name in the stack registry (see ``stacks``);
registering a new stack via :func:`repro.stacks.register_stack` makes it
available to every command here without CLI changes.  ``--topology``
does the same for fabrics: any registered topology plugin (see
``topology list``) runs under every command, parameterized with
repeatable ``-T KEY=VALUE`` overrides.  ``--jobs N`` fans
independent runs out over N worker processes (0 = one per core); results
are byte-identical to the serial path (the engine is deterministic per
seed).  Sweeps and batches reuse an on-disk result cache keyed by a
content hash of the task; ``--no-cache`` disables it.
"""

from __future__ import annotations

import argparse
import json
import shlex
import statistics
import sys
import time

from repro.sim.units import SECOND
from repro.topology import (
    UnknownTopologyError,
    available_topologies,
    build_topology,
    get_topology,
    validate_topology,
)
from repro.net.world import World
from repro.stacks import available_stacks, get_stack, resolve_spec
from repro.harness.cache import ResultCache, default_cache_root
from repro.harness.experiments import (
    build_and_converge,
    run_experiment_batch,
    run_failure_experiment,
    run_packet_loss_experiment,
)
from repro.harness.parallel import FanoutInterrupted, FanoutReport
from repro.harness.supervisor import (
    RetryPolicy,
    SupervisorInterrupted,
    SupervisorReport,
)

# exit codes: experiment findings (regressions) and infra failures
# (quarantines) must be distinguishable by the caller — a red sweep
# means the protocol blackholed, a quarantine means the harness did
EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_INFRA = 3
EXIT_INTERRUPTED = 130


def _add_topo_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology", choices=available_topologies(), default="clos",
        help="fabric family to build (see the `topology` command)")
    parser.add_argument(
        "-T", "--topo-param", action="append", default=None,
        metavar="KEY=VALUE", dest="topo_params",
        help="override one topology parameter; repeatable (see "
             "`topology show <name>` for the accepted keys)")
    # legacy folded-Clos shorthands; -T works for every topology
    parser.add_argument("--pods", type=int, default=None,
                        help="clos only: PoDs (alias of -T num_pods=N)")
    parser.add_argument("--tors", type=int, default=None,
                        help="clos only: ToRs per pod")
    parser.add_argument("--aggs", type=int, default=None,
                        help="clos only: aggs per pod")
    parser.add_argument("--tops", type=int, default=None,
                        help="clos only: tops per plane")
    parser.add_argument("--zones", type=int, default=None,
                        help="clos only: >1 adds the super-spine tier")
    parser.add_argument("--seed", type=int, default=0)


def _add_stack_arg(parser: argparse.ArgumentParser) -> None:
    """``--stack`` with choices and help derived from the registry, so
    validation and documentation can never drift from what is runnable."""
    parser.add_argument(
        "--stack", choices=available_stacks(), required=True,
        help="protocol stack to deploy (see the `stacks` command)")


def _jobs_type(value: str) -> int:
    n = int(value)
    if n < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one per core), got {n}")
    return n


def _add_fanout_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_jobs_type, default=1,
                        help="worker processes (0 = one per core)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute instead of reusing cached results")
    parser.add_argument("--cache-dir", default=None,
                        help=f"result cache root (default "
                             f"{default_cache_root()})")


def _add_supervisor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--supervise", action="store_true",
                        help="run tasks under the fault-tolerant "
                             "supervisor: per-task watchdog, seeded "
                             "retry-with-backoff, quarantine")
    parser.add_argument("--task-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task wall-clock deadline; hung workers "
                             "are killed and retried (implies --supervise)")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="attempts per task before quarantine "
                             "(supervised runs)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted campaign: replay "
                             "checkpointed tasks from the result cache, "
                             "run only the rest (requires the cache)")


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", default=None, metavar="NAME|FILE.json",
        help="workload preset name (see `load list`) or a JSON "
             "WorkloadSpec file")
    parser.add_argument(
        "-W", "--workload-param", action="append", default=None,
        metavar="KEY=VALUE", dest="workload_params",
        help="override one workload field (e.g. -W flows=50000); "
             "repeatable")


def _cache_from(args):
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _supervision_from(args):
    """(RetryPolicy, SupervisorReport) when supervision was requested,
    else (None, None) — the plain fan-out path."""
    if not (args.supervise or args.task_deadline is not None):
        return None, None
    policy = RetryPolicy(deadline_s=args.task_deadline,
                         max_attempts=args.max_attempts, seed=args.seed)
    return policy, SupervisorReport()


def _check_resume(args, cache) -> bool:
    """--resume needs the cache; True when the combination is usable."""
    if args.resume and cache is None:
        print("error: --resume replays from the result cache; "
              "drop --no-cache", file=sys.stderr)
        return False
    return True


def _campaign_epilogue(args, report, records) -> int:
    """Shared tail of every campaign command: resume accounting, the
    quarantine table, and the infra exit code (EXIT_OK when nothing was
    quarantined)."""
    from repro.harness.report import render_quarantine_table

    if args.resume:
        print(f"resume: {report.cached}/{report.total} task(s) replayed "
              f"from checkpoint, {report.executed} executed")
    quarantined = [r for r in records if r.state == "quarantined"]
    if quarantined:
        print()
        print(render_quarantine_table(records))
        print(f"\n{len(quarantined)} task(s) quarantined — infra failure, "
              f"not an experiment finding (exit {EXIT_INFRA})",
              file=sys.stderr)
        return EXIT_INFRA
    return EXIT_OK


#: legacy clos flag -> canonical parameter name
_LEGACY_CLOS_FLAGS = {
    "pods": "num_pods",
    "tors": "tors_per_pod",
    "aggs": "aggs_per_pod",
    "tops": "tops_per_plane",
    "zones": "zones",
}


class _UsageError(Exception):
    """Bad CLI input caught in main() -> EXIT_USAGE."""


def _params(args):
    """The selected fabric as a TopologySpec: --topology picks the
    registered family, -T KEY=VALUE overrides its parameters, and the
    legacy --pods/--tors/... shorthands keep working for clos."""
    definition = get_topology(args.topology)
    overrides = {}
    for flag, name in _LEGACY_CLOS_FLAGS.items():
        value = getattr(args, flag, None)
        if value is None:
            continue
        if args.topology != "clos":
            raise _UsageError(
                f"--{flag} is a folded-Clos shorthand; with "
                f"--topology {args.topology} use -T KEY=VALUE "
                f"(see `topology show {args.topology}`)")
        overrides[name] = value
    raw = {}
    for item in getattr(args, "topo_params", None) or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise _UsageError(
                f"-T expects KEY=VALUE, got {item!r}")
        raw[key] = value
    try:
        overrides.update(definition.coerce_params(raw))
        return definition.spec(**overrides)
    except ValueError as exc:
        raise _UsageError(str(exc)) from None


def _workload_from(args):
    """The selected workload as a resolved WorkloadSpec: ``--workload``
    picks a library preset (or reads a ``.json`` spec file), and
    repeatable ``-W KEY=VALUE`` items override its fields."""
    import dataclasses
    import json as _json
    from pathlib import Path

    from repro.workload import WorkloadError, WorkloadSpec, resolve_workload

    name = getattr(args, "workload", None)
    if name is None:
        return None
    try:
        if name.endswith(".json"):
            base = WorkloadSpec.from_payload(
                _json.loads(Path(name).read_text()))
        else:
            base = resolve_workload(name)
        overrides = {}
        fields = {f.name: f for f in dataclasses.fields(WorkloadSpec)}
        for item in getattr(args, "workload_params", None) or []:
            key, sep, value = item.partition("=")
            if not sep or key not in fields:
                raise _UsageError(
                    f"-W expects KEY=VALUE with a WorkloadSpec field, "
                    f"got {item!r} (fields: {', '.join(fields)})")
            kind = fields[key].type
            if kind == "int":
                overrides[key] = int(value)
            elif kind == "float":
                overrides[key] = float(value)
            else:
                overrides[key] = value
        return dataclasses.replace(base, **overrides) if overrides else base
    except (WorkloadError, OSError, ValueError) as exc:
        raise _UsageError(str(exc)) from None


def cmd_stacks(args) -> int:
    if args.json:
        entries = [
            {
                "name": name,
                "display": get_stack(name).display,
                "description": get_stack(name).description,
                "params": dict(sorted(get_stack(name).default_params.items())),
            }
            for name in available_stacks()
        ]
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    for name in available_stacks():
        definition = get_stack(name)
        params = ", ".join(
            f"{k}={v!r}"
            for k, v in sorted(definition.default_params.items()))
        suffix = f"  [{params}]" if params else ""
        print(f"{name:<17} {definition.display:<26} "
              f"{definition.description}{suffix}")
    return 0


def cmd_topology(args) -> int:
    names = args.names or list(available_topologies())
    if args.action == "list" and args.names:
        raise _UsageError("`topology list` takes no names; "
                          "use `topology show <name>`")
    if args.json:
        entries = []
        for name in names:
            definition = get_topology(name)
            entries.append({
                "name": name,
                "display": definition.display,
                "description": definition.description,
                "params": dict(sorted(definition.default_params.items())),
            })
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if args.action == "list":
        for name in names:
            definition = get_topology(name)
            params = ", ".join(
                f"{k}={v!r}"
                for k, v in sorted(definition.default_params.items()))
            suffix = f"  [{params}]" if params else ""
            print(f"{name:<8} {definition.display:<26} "
                  f"{definition.description}{suffix}")
        return 0
    for i, name in enumerate(names):
        definition = get_topology(name)
        if i:
            print()
        print(f"{name} — {definition.display}")
        print(f"  {definition.description}")
        print("  parameters:")
        for key, value in sorted(definition.default_params.items()):
            print(f"    {key} = {value!r}")
        topo = definition.build_spec(definition.spec())
        print("  default build: " + topo.describe().replace("\n", "; "))
        cases = topo.failure_cases()
        if cases:
            print("  failure test points:")
            for case in cases.values():
                print(f"    {case.name}: fail {case.node}:{case.interface} "
                      f"({case.description})")
    return 0


def cmd_topo(args) -> int:
    world = World(seed=args.seed)
    topo = build_topology(_params(args), world=world)
    validate_topology(topo)
    print(topo.describe())
    print("\nfailure test points:")
    for case in topo.failure_cases().values():
        print(f"  {case.name}: fail {case.node}:{case.interface} "
              f"({case.description})")
    print("\nrack subnets:")
    for tor in topo.all_tors():
        print(f"  {tor}: {topo.rack_subnet[tor]} -> ToR VID "
              f"{topo.tor_vid_seed[tor]}")
    return 0


def cmd_converge(args) -> int:
    display = get_stack(args.stack).display
    world, topo, dep = build_and_converge(_params(args), args.stack,
                                          seed=args.seed)
    print(f"{display} converged at t = {world.sim.now / SECOND:.3f} s "
          f"({world.sim.events_processed} events)\n")
    default_show = [topo.aggs[0][0][0]]
    default_show.append(topo.tops[0][0][0] if topo.all_tops()
                        else topo.all_tors()[-1])
    for name in args.show or default_show:
        print(dep.describe_node(name))
        print()
    return 0


def cmd_fail(args) -> int:
    display = get_stack(args.stack).display
    if args.runs <= 1:
        result = run_failure_experiment(_params(args), args.stack, args.case,
                                        seed=args.seed)
        print(f"{display}, {args.case}:")
        print(f"  convergence time : {result.convergence_ms:.2f} ms")
        print(f"  control overhead : {result.control_bytes} B in "
              f"{result.update_count} update messages")
        print(f"  blast radius     : {result.blast_radius} routers "
              f"({', '.join(result.blast_routers)})")
        return 0
    report = FanoutReport()
    results = run_experiment_batch(
        _params(args), args.stack, args.case, n_runs=args.runs,
        base_seed=args.seed, jobs=args.jobs, cache=_cache_from(args),
        report=report,
    )
    print(f"{display}, {args.case}, {args.runs} runs "
          f"({report.describe()}):")
    for r in results:
        print(f"  seed {r.seed:>20d}: conv {r.convergence_ms:9.2f} ms, "
              f"{r.control_bytes} B / {r.update_count} updates, "
              f"blast {r.blast_radius}")
    conv = [r.convergence_ms for r in results]
    print(f"  mean convergence : {statistics.mean(conv):.2f} ms "
          f"(min {min(conv):.2f}, max {max(conv):.2f})")
    return 0


def cmd_sweep(args) -> int:
    from repro.harness.sweep import (
        single_failure_sweep_outcomes,
        summarize,
    )

    policy, sup = _supervision_from(args)
    cache = _cache_from(args)
    if not _check_resume(args, cache):
        return EXIT_USAGE
    report = sup.fanout if sup is not None else FanoutReport()
    t0 = time.perf_counter()
    outcomes = single_failure_sweep_outcomes(
        _params(args), args.stack, seed=args.seed,
        ambient_loss=args.ambient_loss,
        workload=_workload_from(args), jobs=args.jobs,
        cache=cache, report=None if sup is not None else report,
        policy=policy, supervisor=sup,
    )
    elapsed = time.perf_counter() - t0
    results = [o.result for o in outcomes if o is not None]
    describe = sup.describe() if sup is not None else report.describe()
    print(summarize(results))
    print(f"fan-out: {describe}, {elapsed:.2f} s wall clock")
    if args.digests:
        for o in outcomes:
            if o is None:
                continue
            p = o.result.point
            print(f"  {o.digest[:16]}  {p.node}:{p.interface}")
    records = sup.records if sup is not None else []
    infra = _campaign_epilogue(args, report, records)
    if args.report:
        _write_sweep_report(args.report, results, records, describe)
    if infra != EXIT_OK:
        return infra
    bad = [r for r in results if not r.ok]
    return EXIT_FINDINGS if bad else EXIT_OK


def _write_sweep_report(prefix: str, results, records, describe: str) -> None:
    """``--report PREFIX``: the sweep summary plus the quarantine table,
    as PREFIX.txt and PREFIX.html."""
    from pathlib import Path

    from repro.harness.htmlreport import render_report, table_block
    from repro.harness.report import (
        QUARANTINE_COLUMNS,
        quarantine_rows,
        render_quarantine_table,
    )
    from repro.harness.sweep import summarize

    text = summarize(results)
    qtable = render_quarantine_table(records)
    text += "\n\n" + (qtable if qtable else "quarantined tasks: none")
    text += f"\n\nfan-out: {describe}"
    txt_path = Path(prefix + ".txt")
    txt_path.write_text(text + "\n")

    rows = [
        [f"{r.point.node}:{r.point.interface}", r.point.peer,
         r.pairs_checked,
         "OK" if r.ok else f"{len(r.unreachable)} unreachable pair(s)"]
        for r in results
    ]
    blocks = [table_block(
        "single-failure sweep",
        ("failure point", "peer", "pairs checked", "verdict"),
        rows, note=describe)]
    qrows = quarantine_rows(records)
    blocks.append(table_block(
        "quarantined tasks", QUARANTINE_COLUMNS, qrows,
        note="infra failures the supervisor gave up on — the rest of "
             "the sweep completed without them"
        if qrows else "nothing quarantined"))
    html_path = render_report(
        "robustness sweep report",
        "exhaustive single-interface failure sweep with supervisor "
        "quarantine accounting",
        blocks, prefix + ".html")
    print(f"report: {txt_path} and {html_path}")


def cmd_loss(args) -> int:
    display = get_stack(args.stack).display
    result = run_packet_loss_experiment(
        _params(args), args.stack, args.case, direction=args.direction,
        seed=args.seed, rate_pps=args.rate,
    )
    print(f"{display}, {args.case}, sender {args.direction} "
          f"({args.rate} pps, flow src port {result.src_port}):")
    print(f"  sent={result.sent} received={result.received} "
          f"lost={result.lost} dup={result.duplicated} "
          f"ooo={result.out_of_order}")
    return 0


def _load_scenarios(args):
    from pathlib import Path

    from repro.scenario import Scenario, canonical_scenarios, get_scenario

    if args.file:
        scenario = Scenario.from_json(Path(args.file).read_text())
        return [scenario]
    if not args.names:
        return list(canonical_scenarios().values())
    return [get_scenario(name) for name in args.names]


def cmd_scenario(args) -> int:
    from repro.scenario import (
        canonical_scenarios,
        encode_scenario_outcome,
        run_scenario_suite,
    )

    if args.action == "list":
        for name, scenario in canonical_scenarios().items():
            print(f"{name:<16} {len(scenario.events):>2} events  "
                  f"{scenario.description}")
        return 0
    if args.action == "show":
        for scenario in _load_scenarios(args):
            print(json.dumps(scenario.to_payload(), indent=2,
                             sort_keys=True))
        return 0

    scenarios = _load_scenarios(args)
    stacks = args.stack or list(available_stacks())
    policy, sup = _supervision_from(args)
    cache = _cache_from(args)
    if not _check_resume(args, cache):
        return EXIT_USAGE
    report = sup.fanout if sup is not None else FanoutReport()
    t0 = time.perf_counter()
    outcomes = run_scenario_suite(
        _params(args), scenarios, stacks, seed=args.seed, jobs=args.jobs,
        cache=cache, report=None if sup is not None else report,
        policy=policy, supervisor=sup, invariants=args.invariants,
    )
    elapsed = time.perf_counter() - t0
    describe = sup.describe() if sup is not None else report.describe()
    if args.json:
        print(json.dumps({
            "runs": [encode_scenario_outcome(o) for o in outcomes
                     if o is not None],
        }, indent=2, sort_keys=True))
        return _campaign_epilogue(args, report,
                                  sup.records if sup is not None else [])
    for outcome in outcomes:
        if outcome is None:
            continue
        m = outcome.metrics
        line = (f"{m.stack:<16} {m.scenario:<16} "
                f"conv {m.convergence_ms:9.2f} ms, "
                f"{m.control_bytes:>6} B / {m.update_count:>3} updates, "
                f"blast {m.blast_radius}")
        if m.sent:
            line += (f", traffic {m.received}/{m.sent} "
                     f"(blackhole {m.blackhole_us / 1000:.0f} ms)")
        if m.fib_loops or m.fib_blackholes:
            line += (f", anomalies {m.fib_loops} loops / "
                     f"{m.fib_blackholes} blackholes "
                     f"({m.fib_blackhole_us / 1000:.0f} ms)")
        if args.digests:
            line = f"{outcome.digest[:16]}  {line}"
        print(line)
    print(f"{len(outcomes)} scenario runs ({describe}), "
          f"{elapsed:.2f} s wall clock")
    return _campaign_epilogue(args, report,
                              sup.records if sup is not None else [])


def cmd_chaos(args) -> int:
    from repro.harness.chaos import (
        DEFAULT_RATES,
        clean_fabric_violations,
        encode_chaos_outcome,
        false_positive_thresholds,
        run_chaos_suite,
        summarize,
    )

    stacks = args.stack or ["mtp", "bgp-bfd"]
    rates = args.rate if args.rate is not None else list(DEFAULT_RATES)
    policy, sup = _supervision_from(args)
    cache = _cache_from(args)
    if not _check_resume(args, cache):
        return EXIT_USAGE
    report = sup.fanout if sup is not None else FanoutReport()
    t0 = time.perf_counter()
    outcomes = run_chaos_suite(
        _params(args), stacks, rates=rates, seed=args.seed,
        window_ms=args.window_ms, traffic_pps=args.pps,
        traffic_count=args.count, workload=_workload_from(args),
        jobs=args.jobs, cache=cache,
        report=None if sup is not None else report,
        policy=policy, supervisor=sup,
    )
    elapsed = time.perf_counter() - t0
    results = [o.result for o in outcomes if o is not None]
    describe = sup.describe() if sup is not None else report.describe()
    if args.json:
        print(json.dumps({
            "points": [encode_chaos_outcome(o) for o in outcomes
                       if o is not None],
            "thresholds": false_positive_thresholds(results),
        }, indent=2, sort_keys=True))
    else:
        print(summarize(results))
        print(f"\n{len(outcomes)} chaos points ({describe}), "
              f"{elapsed:.2f} s wall clock")
        if args.digests:
            for o in outcomes:
                if o is None:
                    continue
                print(f"  {o.digest[:16]}  {o.result.stack} "
                      f"loss={o.result.loss:.2f}")
    infra = _campaign_epilogue(args, report,
                               sup.records if sup is not None else [])
    if infra != EXIT_OK:
        return infra
    violations = clean_fabric_violations(results)
    for r in violations:
        print(f"error: {r.stack} false-flagged {r.false_positives} times "
              f"on a CLEAN fabric (loss 0.0)", file=sys.stderr)
    if args.require_zero_fp:
        flagged = [r for r in results if r.false_positives > 0]
        for r in flagged:
            print(f"error: {r.stack} reported {r.false_positives} false "
                  f"positives at loss {r.loss:.2f} "
                  f"(--require-zero-fp)", file=sys.stderr)
        if flagged:
            return EXIT_FINDINGS
    return EXIT_FINDINGS if violations else EXIT_OK


def cmd_load(args) -> int:
    from repro.workload import canonical_workloads, run_workload_suite

    if args.action == "list":
        for name, spec in canonical_workloads().items():
            print(f"{name:<12} {spec.matrix:<12} {spec.flows:>9} flows  "
                  f"{spec.description}")
        return 0
    if args.action == "show":
        wl = _workload_from(args)
        specs = [wl] if wl is not None else \
            list(canonical_workloads().values())
        for spec in specs:
            print(json.dumps(spec.to_payload(), indent=2, sort_keys=True))
        return 0

    wl = _workload_from(args)
    workloads = ([wl] if wl is not None
                 else list(canonical_workloads().values()))
    stacks = args.stack or ["mtp", "bgp-bfd"]
    policy, sup = _supervision_from(args)
    cache = _cache_from(args)
    if not _check_resume(args, cache):
        return EXIT_USAGE
    report = sup.fanout if sup is not None else FanoutReport()
    t0 = time.perf_counter()
    outcomes = run_workload_suite(
        _params(args), workloads, stacks, seed=args.seed, jobs=args.jobs,
        cache=cache, report=None if sup is not None else report,
        policy=policy, supervisor=sup,
    )
    elapsed = time.perf_counter() - t0
    bad_conservation = False
    for outcome in outcomes:
        if outcome is None:
            continue
        r = outcome.report
        delivered_frac = (r.delivered_bytes / r.offered_bytes
                          if r.offered_bytes else 1.0)
        line = (f"{r.workload:<12} {r.matrix:<12} "
                f"{r.flows:>9} flows  "
                f"goodput {r.goodput_bps / 1e9:7.3f} Gbps  "
                f"delivered {delivered_frac:6.1%}  "
                f"fct p50 {r.fct_p50_us / 1000:8.2f} ms  "
                f"p99 {r.fct_p99_us / 1000:9.2f} ms  "
                f"blackholed {r.blackholed_flows}")
        if args.digests:
            line = f"{outcome.digest[:16]}  {line}"
        print(line)
        if r.max_conservation_error > 1e-6:
            bad_conservation = True
            print(f"error: {r.workload}: byte conservation violated "
                  f"(error {r.max_conservation_error:.2e})",
                  file=sys.stderr)
    describe = sup.describe() if sup is not None else report.describe()
    print(f"{len(outcomes)} loaded runs ({describe}), "
          f"{elapsed:.2f} s wall clock")
    infra = _campaign_epilogue(args, report,
                               sup.records if sup is not None else [])
    if infra != EXIT_OK:
        return infra
    return EXIT_FINDINGS if bad_conservation else EXIT_OK


def cmd_pathtrace(args) -> int:
    from repro.harness.pathtrace import trace_path
    from repro.harness.report import render_interface_counters

    world, topo, dep = build_and_converge(_params(args), args.stack,
                                          seed=args.seed)
    if args.scenario:
        from repro.scenario import compile_scenario, get_scenario

        scenario = get_scenario(args.scenario)
        metrics = compile_scenario(scenario, world, topo,
                                   dep).execute(args.stack, args.seed)
        print(f"after scenario {scenario.name!r}: "
              f"traffic {metrics.received}/{metrics.sent}, "
              f"false positives {metrics.false_positives}, "
              f"flaps {metrics.flaps}, route churn {metrics.route_churn}\n")
    src = args.src or topo.first_server_of(topo.all_tors()[0])
    dst = args.dst or topo.first_server_of(topo.all_tors()[-1])
    path = trace_path(dep, src, dst, args.src_port)
    print(f"flow {src} -> {dst} (src port {args.src_port}):")
    print("  " + " -> ".join(path) + "\n")
    # both ends of every traversed link, in path order
    interfaces = []
    for here, there in zip(path, path[1:]):
        for iface in topo.node(here).interfaces.values():
            peer = iface.peer()
            if peer is not None and peer.node.name == there:
                interfaces.extend((iface, peer))
                break
    print(render_interface_counters(
        "per-hop interface counters", interfaces,
        note="txd/rxd = frames dropped: admin-down, uncabled, egress "
             "queue overflow (congestion), bad FCS (gray link), "
             "duplicate delivery"))
    return 0


def cmd_config(args) -> int:
    definition = get_stack(args.stack)
    if definition.render_config is None:
        print(f"stack {args.stack!r} does not render configuration",
              file=sys.stderr)
        return 2
    spec = resolve_spec(args.stack)
    world = World(seed=args.seed, trace_enabled=False)
    topo = build_topology(_params(args), world=world)
    print(definition.render_config(topo, timers=spec.timers, node=args.node,
                                   **spec.params_dict()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stacks = sub.add_parser("stacks", help="list registered stack plugins")
    p_stacks.add_argument("--json", action="store_true",
                          help="machine-readable output (name, display, "
                               "description, params)")
    p_stacks.set_defaults(func=cmd_stacks)

    p_topos = sub.add_parser(
        "topology", help="list or show registered topology plugins")
    p_topos.add_argument("action", choices=("list", "show"))
    p_topos.add_argument("names", nargs="*",
                         help="topology names for `show` (default: all)")
    p_topos.add_argument("--json", action="store_true",
                         help="machine-readable output (name, display, "
                              "description, params)")
    p_topos.set_defaults(func=cmd_topology)

    p_topo = sub.add_parser("topo", help="build and validate a fabric")
    _add_topo_args(p_topo)
    p_topo.set_defaults(func=cmd_topo)

    p_conv = sub.add_parser("converge", help="converge a protocol stack")
    _add_topo_args(p_conv)
    _add_stack_arg(p_conv)
    p_conv.add_argument("--show", nargs="*", help="nodes to display")
    p_conv.set_defaults(func=cmd_converge)

    p_fail = sub.add_parser("fail", help="run a failure experiment")
    _add_topo_args(p_fail)
    _add_stack_arg(p_fail)
    p_fail.add_argument("--case", choices=("TC1", "TC2", "TC3", "TC4"),
                        default="TC1")
    p_fail.add_argument("--runs", type=int, default=1,
                        help=">1 runs a multi-seed batch (seeds derived "
                             "from --seed)")
    _add_fanout_args(p_fail)
    p_fail.set_defaults(func=cmd_fail)

    p_sweep = sub.add_parser(
        "sweep", help="exhaustive single-failure robustness sweep")
    _add_topo_args(p_sweep)
    _add_stack_arg(p_sweep)
    p_sweep.add_argument("--digests", action="store_true",
                         help="print each point's run digest")
    p_sweep.add_argument("--ambient-loss", type=float, default=0.0,
                         help="background loss rate on every fabric link "
                              "while each hard failure plays out")
    p_sweep.add_argument("--report", metavar="PREFIX", default=None,
                         help="write PREFIX.txt and PREFIX.html reports "
                              "(sweep summary + quarantine table)")
    _add_workload_args(p_sweep)
    _add_fanout_args(p_sweep)
    _add_supervisor_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_scn = sub.add_parser(
        "scenario", help="run, list or show declarative scenarios")
    p_scn.add_argument("action", choices=("list", "show", "run"))
    p_scn.add_argument("names", nargs="*",
                       help="library scenario names (default: all)")
    p_scn.add_argument("--file", default=None,
                       help="load a scenario from a JSON file instead")
    p_scn.add_argument("--stack", action="append", default=None,
                       choices=available_stacks(), metavar="STACK",
                       help="stack(s) to run on; repeatable "
                            "(default: every registered stack)")
    p_scn.add_argument("--digests", action="store_true",
                       help="print each run's digest")
    p_scn.add_argument("--invariants", action="store_true",
                       help="attach the runtime invariant monitor (FIB "
                            "loop / blackhole episodes) even on "
                            "workload-free runs")
    p_scn.add_argument("--json", action="store_true",
                       help="machine-readable run results (metrics + "
                            "digests), same shape as chaos --json")
    _add_topo_args(p_scn)
    _add_fanout_args(p_scn)
    _add_supervisor_args(p_scn)
    p_scn.set_defaults(func=cmd_scenario)

    p_chaos = sub.add_parser(
        "chaos", help="false-positive chaos suite: loss-rate x stack grid")
    _add_topo_args(p_chaos)
    p_chaos.add_argument("--stack", action="append", default=None,
                         choices=available_stacks(), metavar="STACK",
                         help="stack(s) to stress; repeatable "
                              "(default: mtp and bgp-bfd)")
    p_chaos.add_argument("--rate", action="append", type=float, default=None,
                         metavar="LOSS",
                         help="loss rate(s) to test; repeatable "
                              "(default: 0.0 0.01 0.02 0.05 0.1 0.2 0.3)")
    p_chaos.add_argument("--window-ms", type=int, default=5000,
                         help="quiet observation window per point")
    p_chaos.add_argument("--pps", type=int, default=500,
                         help="goodput probe rate")
    p_chaos.add_argument("--count", type=int, default=1000,
                         help="goodput probe packets (0 disables the probe)")
    p_chaos.add_argument("--digests", action="store_true",
                         help="print each point's run digest")
    p_chaos.add_argument("--json", action="store_true",
                         help="emit machine-readable results (per-point "
                              "payloads incl. suppression/MTTR/"
                              "availability, plus FP thresholds)")
    p_chaos.add_argument("--require-zero-fp", action="store_true",
                         help="exit non-zero if ANY grid point reports a "
                              "false positive (not just the clean-fabric "
                              "guard)")
    _add_workload_args(p_chaos)
    _add_fanout_args(p_chaos)
    _add_supervisor_args(p_chaos)
    p_chaos.set_defaults(func=cmd_chaos)

    p_load = sub.add_parser(
        "load", help="flow-level workload runs: fluid max-min solve of "
                     "realistic traffic matrices on a converged stack")
    p_load.add_argument("action", nargs="?", default="run",
                        choices=("list", "show", "run"))
    p_load.add_argument("--stack", action="append", default=None,
                        choices=available_stacks(), metavar="STACK",
                        help="stack(s) to load; repeatable "
                             "(default: mtp and bgp-bfd)")
    p_load.add_argument("--digests", action="store_true",
                        help="print each run's digest")
    _add_topo_args(p_load)
    _add_workload_args(p_load)
    _add_fanout_args(p_load)
    _add_supervisor_args(p_load)
    p_load.set_defaults(func=cmd_load)

    p_trace = sub.add_parser(
        "pathtrace", help="trace a flow's path and show per-hop counters")
    _add_topo_args(p_trace)
    _add_stack_arg(p_trace)
    p_trace.add_argument("--src", default=None,
                         help="source server (default: first server, "
                              "first ToR)")
    p_trace.add_argument("--dst", default=None,
                         help="destination server (default: first server, "
                              "last ToR)")
    p_trace.add_argument("--src-port", type=int, default=40000)
    p_trace.add_argument("--scenario", default=None,
                         help="run this library scenario first, so the "
                              "counters show its damage")
    p_trace.set_defaults(func=cmd_pathtrace)

    p_loss = sub.add_parser("loss", help="run a packet-loss experiment")
    _add_topo_args(p_loss)
    _add_stack_arg(p_loss)
    p_loss.add_argument("--case", choices=("TC1", "TC2", "TC3", "TC4"),
                        default="TC2")
    p_loss.add_argument("--direction", choices=("near", "far"),
                        default="near")
    p_loss.add_argument("--rate", type=int, default=1000)
    p_loss.set_defaults(func=cmd_loss)

    p_cfg = sub.add_parser("config", help="render Listing 1/2 configuration")
    _add_topo_args(p_cfg)
    _add_stack_arg(p_cfg)
    p_cfg.add_argument("--node", help="router to render (BGP only)")
    p_cfg.set_defaults(func=cmd_config)

    return parser


def _resume_command(argv) -> str:
    """The exact command that picks an interrupted campaign back up."""
    args_list = list(argv) if argv is not None else list(sys.argv[1:])
    if "--resume" not in args_list:
        args_list.append("--resume")
    return shlex.join(["python", "-m", "repro", *args_list])


def main(argv=None) -> int:
    from repro.harness.failures import UnknownTargetError
    from repro.scenario import ScenarioError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ScenarioError, UnknownTargetError, UnknownTopologyError,
            _UsageError) as exc:
        # bad scenario files / symbolic targets / topology selections
        # are user input, not bugs
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except (FanoutInterrupted, SupervisorInterrupted) as exc:
        # completed tasks were checkpointed (when the cache is on) —
        # nothing already computed needs recomputing
        print(f"\ninterrupted: {exc.done}/{exc.total} task(s) finished, "
              f"{exc.salvaged} checkpointed this run; resume with:\n"
              f"  {_resume_command(argv)}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # output piped into `head` etc. — exit quietly like other CLIs
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
