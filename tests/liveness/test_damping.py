"""Flap damper unit tests: penalty arithmetic, hysteresis, reuse ETA,
lazy-decay determinism, and reset-on-repair."""

from __future__ import annotations

from repro.liveness import FlapDamper, LivenessConfig
from repro.sim.units import SECOND

CFG = LivenessConfig()  # penalty 1000, suppress 2000, reuse 750, t1/2 2s


def test_single_flap_does_not_suppress():
    d = FlapDamper(CFG)
    d.record_flap(0)
    assert d.penalty == CFG.flap_penalty
    assert not d.suppressed(0)


def test_rapid_flaps_cross_suppress_threshold():
    d = FlapDamper(CFG)
    d.record_flap(0)
    d.record_flap(10_000)
    d.record_flap(20_000)
    assert d.suppressed(20_000)
    assert d.suppressions == 1


def test_penalty_decays_with_half_life():
    d = FlapDamper(CFG)
    d.record_flap(0)
    assert abs(d.current_penalty(CFG.half_life_us)
               - CFG.flap_penalty / 2) < 1.0
    assert abs(d.current_penalty(2 * CFG.half_life_us)
               - CFG.flap_penalty / 4) < 1.0


def test_hysteresis_holds_until_reuse_threshold():
    """Suppression entered at 2000 is NOT left when the penalty dips
    just below 2000 — only at <= 750 (the hold-down gap)."""
    d = FlapDamper(CFG)
    d.record_flap(0)
    d.record_flap(0)  # penalty 2000: suppressed
    assert d.suppressed(0)
    # one half-life: penalty 1000 — below suppress, above reuse
    assert d.suppressed(CFG.half_life_us)
    # after enough decay the hold-down lifts
    assert not d.suppressed(4 * CFG.half_life_us)


def test_reuse_eta_predicts_release():
    d = FlapDamper(CFG)
    d.record_flap(0)
    d.record_flap(0)
    eta = d.reuse_eta_us(0)
    assert eta > 0
    assert d.suppressed(eta - 10_000)       # just before: still held
    assert not d.suppressed(eta + 10_000)   # just after: released
    assert d.reuse_eta_us(eta + 10_000) == 0


def test_penalty_is_capped():
    d = FlapDamper(CFG)
    for _ in range(100):
        d.record_flap(0)
    assert d.penalty == CFG.max_penalty
    # the cap bounds the worst-case hold-down
    assert d.reuse_eta_us(0) <= 5 * CFG.half_life_us


def test_lazy_decay_is_schedule_independent():
    """Polling suppressed() at different cadences must not change the
    penalty trajectory — decay is a pure function of timestamps."""
    a, b = FlapDamper(CFG), FlapDamper(CFG)
    for d in (a, b):
        d.record_flap(0)
        d.record_flap(50_000)
    for t in range(100_000, 2_000_000, 100_000):
        a.suppressed(t)  # frequent polls
    b.suppressed(1_900_000)  # one late poll
    assert abs(a.current_penalty(2 * SECOND)
               - b.current_penalty(2 * SECOND)) < 1e-6


def test_reset_forgives_everything():
    d = FlapDamper(CFG)
    for _ in range(5):
        d.record_flap(0)
    assert d.suppressed(0)
    d.reset()
    assert d.penalty == 0.0
    assert not d.suppressed(0)
    assert d.reuse_eta_us(0) == 0
