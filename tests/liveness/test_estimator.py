"""Link-quality estimator unit tests: clean streams, implied misses,
duplication, slack periods, Gilbert-Elliott bursts, interrupt vs reset.

Everything here is deterministic by construction — arrival sequences
are hand-built (the Gilbert-Elliott "chain" is a fixed good/bad pattern,
not a sampled one), matching the estimator's own RNG-free contract.
"""

from __future__ import annotations

import pytest

from repro.liveness import LinkQualityEstimator, LivenessConfig

PERIOD = 50_000  # 50 ms hello


def feed(est, times, start=0):
    now = start
    for gap in times:
        now += gap
        est.observe(now)
    return now


def test_clean_stream_measures_zero_loss():
    est = LinkQualityEstimator(PERIOD, LivenessConfig())
    feed(est, [PERIOD] * 40)
    assert est.loss_rate == 0.0
    assert est.jitter_us == 0.0
    assert est.warmed_up


def test_gap_implies_misses():
    """A gap of k periods implies k-1 lost hellos."""
    est = LinkQualityEstimator(PERIOD, LivenessConfig())
    feed(est, [PERIOD] * 10)
    est.observe(10 * PERIOD + 3 * PERIOD)  # 3-period gap: 2 misses
    assert est.implied_misses == 2
    assert est.loss_rate > 0.0


def test_duplicates_never_inflate_loss():
    """A duplicated frame arrives with a zero gap — one period, zero
    misses — so duplication storms cannot make a link look lossy."""
    est = LinkQualityEstimator(PERIOD, LivenessConfig())
    now = feed(est, [PERIOD] * 20)
    for _ in range(50):  # duplicate burst at the same instant
        est.observe(now)
    assert est.implied_misses == 0
    assert est.loss_rate == 0.0


def test_slack_periods_excuse_legal_silence():
    """MR-MTP's keepalive suppression makes a 2-period gap innocent;
    slack_periods=1 keeps it out of the loss estimate while a 3-period
    gap (a real loss run) still registers."""
    excused = LinkQualityEstimator(PERIOD, LivenessConfig(),
                                   slack_periods=1)
    feed(excused, [2 * PERIOD] * 30)
    assert excused.implied_misses == 0
    assert excused.loss_rate == 0.0

    excused.observe(30 * 2 * PERIOD + 3 * PERIOD)
    assert excused.implied_misses == 1

    strict = LinkQualityEstimator(PERIOD, LivenessConfig())
    feed(strict, [2 * PERIOD] * 30)
    assert strict.implied_misses == 29  # first arrival has no gap


def test_max_misses_per_gap_caps_one_observation():
    est = LinkQualityEstimator(PERIOD, LivenessConfig(max_misses_per_gap=16))
    est.observe(0)
    est.observe(1000 * PERIOD)  # an outage, not a loss measurement
    assert est.implied_misses == 16


def test_gilbert_elliott_burst_spikes_ewma_then_decays():
    """A burst-loss pattern (runs of consecutive drops) must spike the
    EWMA view immediately; a long clean tail decays it while the
    lifetime view keeps the link degraded-looking."""
    est = LinkQualityEstimator(PERIOD, LivenessConfig())
    feed(est, [PERIOD] * 20)
    # bad state: three bursts of 3 consecutive losses (gap = 4 periods)
    now = 20 * PERIOD
    for _ in range(3):
        now += 4 * PERIOD
        est.observe(now)
    assert est.ewma_loss > 0.2
    burst_ewma = est.ewma_loss
    # good state: long clean run
    feed(est, [PERIOD] * 60, start=now)
    assert est.ewma_loss < burst_ewma / 4
    assert est.lifetime_loss > 0.05          # the history remains
    assert est.loss_rate >= est.lifetime_loss


def test_jitter_tracks_gap_deviation():
    est = LinkQualityEstimator(PERIOD, LivenessConfig())
    feed(est, [PERIOD + 5_000, PERIOD - 5_000] * 10)
    assert 1_000 < est.jitter_us < 5_000


def test_interrupt_forgets_only_the_last_arrival():
    """After an interrupt (down declaration) the silent span must not be
    folded in as loss, but learned history survives."""
    est = LinkQualityEstimator(PERIOD, LivenessConfig())
    feed(est, [PERIOD] * 10)
    est.observe(10 * PERIOD + 2 * PERIOD)
    misses = est.implied_misses
    est.interrupt()
    est.observe(10**9)  # much later: would imply a huge gap
    assert est.implied_misses == misses
    assert est.arrivals == 12


def test_reset_discards_everything():
    est = LinkQualityEstimator(PERIOD, LivenessConfig())
    feed(est, [3 * PERIOD] * 20)
    assert est.loss_rate > 0.0
    est.reset()
    assert est.arrivals == 0
    assert est.implied_misses == 0
    assert est.loss_rate == 0.0
    assert not est.warmed_up


def test_rejects_bad_construction():
    with pytest.raises(ValueError):
        LinkQualityEstimator(0, LivenessConfig())
    with pytest.raises(ValueError):
        LinkQualityEstimator(PERIOD, LivenessConfig(), slack_periods=-1)
