"""Adaptive-stack integration: the gray-failure acceptance criteria.

* ``mtp-adaptive`` records ZERO liveness false positives at 2-10%
  ambient loss (where baseline ``mtp`` already false-flags at 2%);
* TC1 real-failure detection stays within 2x of baseline MR-MTP;
* clearing an impairment mid-dead-interval resets damping penalty
  state, so a repaired link re-converges without a stale suppression
  window (the regression this layer was built around);
* the adaptive decisions (EWMA decay, timer choices, damping penalties)
  are byte-identical serial vs ``--jobs 2`` — digest equality — and the
  monitor is a pure function of its event sequence (Hypothesis replay).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.chaos import ChaosPointSpec, chaos_specs, run_chaos_point
from repro.harness.experiments import build_and_converge
from repro.harness.failures import FailureInjector
from repro.harness.parallel import assert_fanout_deterministic
from repro.liveness import DEFAULT_LIVENESS, LivenessConfig, NeighborMonitor
from repro.net.impairment import ImpairmentProfile
from repro.scenario.library import get_scenario
from repro.scenario.runner import run_scenario
from repro.sim.units import MILLISECOND
from repro.stacks import resolve_spec
from repro.topology.clos import two_pod_params


def _chaos(stack: str, loss: float, window_ms: int = 3000):
    spec = ChaosPointSpec(params=two_pod_params(),
                          stack=resolve_spec(stack, None), seed=0,
                          loss=loss, window_ms=window_ms,
                          traffic_count=200)
    return run_chaos_point(spec).result


# ----------------------------------------------------------------------
# the headline tradeoff
# ----------------------------------------------------------------------
@pytest.mark.parametrize("loss", [0.02, 0.05, 0.1])
def test_mtp_adaptive_zero_false_positives_on_gray_links(loss):
    """The acceptance criterion: zero false positives at 2-10% ambient
    loss, a regime where the fixed Quick-to-Detect timer false-flags."""
    result = _chaos("mtp-adaptive", loss)
    assert result.false_positives == 0
    assert result.flaps == 0
    assert result.route_churn == 0


def test_baseline_mtp_still_false_flags_at_two_percent():
    """The contrast row: without the liveness layer the 2x50ms dead
    timer fires on ordinary 2% loss (this is the tradeoff the adaptive
    layer exists to fix — if this ever goes green, refresh the
    EXPERIMENTS.md table)."""
    result = _chaos("mtp", 0.02)
    assert result.false_positives > 0


@pytest.mark.parametrize("stack,baseline",
                         [("mtp-adaptive", "mtp"),
                          ("bgp-bfd-damped", "bgp-bfd")])
def test_real_failure_detection_within_2x_of_baseline(stack, baseline):
    """Gray tolerance must not blunt real-failure reaction: TC1 (a hard
    interface down) detects within 2x of the non-adaptive stack."""
    base = run_scenario(get_scenario("tc1"), two_pod_params(), baseline,
                        seed=0)
    adaptive = run_scenario(get_scenario("tc1"), two_pod_params(), stack,
                            seed=0)
    assert 0 < adaptive.detection_us <= 2 * base.detection_us


def test_bgp_bfd_damped_zero_false_positives():
    result = _chaos("bgp-bfd-damped", 0.1)
    assert result.false_positives == 0


# ----------------------------------------------------------------------
# impairment-clear resets damping (the regression)
# ----------------------------------------------------------------------
def test_clearing_impairment_mid_dead_interval_resets_damping():
    """A link with accumulated flap penalty gets REPAIRED while its dead
    timer is mid-flight: the clear event must forgive the penalty (the
    fault is gone) so the adjacency returns to service immediately,
    instead of serving out a stale suppression window."""
    world, topo, deployment = build_and_converge(
        two_pod_params(), resolve_spec("mtp-adaptive", None), seed=0)
    tor = topo.all_tors()[0]
    port = topo.fabric_ports(tor, up=True)[0]
    nbr = deployment.mtp_nodes[tor].neighbors[port]
    assert nbr.monitor is not None

    # a prior flapping episode left the adjacency suppressed
    now = world.sim.now
    for _ in range(3):
        nbr.monitor.record_flap(now)
    assert nbr.monitor.suppressed(now)

    # the link blacks out; clear it mid-dead-interval (before the
    # adaptive floor expires, so the down declaration never fires)
    injector = FailureInjector(world)
    injector.impair_link(tor, port, ImpairmentProfile(loss=1.0),
                         direction="both")
    world.run_for(100 * MILLISECOND)  # < the ~175ms adaptive floor
    assert nbr.up  # still mid-dead-interval
    injector.clear_impairment(tor, port, direction="both")

    # the repair forgave the penalty: no stale hold-down
    assert nbr.monitor.damper.penalty == 0.0
    assert not nbr.monitor.suppressed(world.sim.now)
    world.run_for(500 * MILLISECOND)
    assert nbr.up
    assert nbr.monitor.damper.penalty == 0.0


def test_gray_uplink_recovery_scenario_is_clean_for_adaptive_stacks():
    """The canonical life-cycle scenario: impair, degrade, clear, reuse
    — liveness-enabled stacks ride it out with no false positives."""
    for stack in ("mtp-adaptive", "bgp-bfd-damped"):
        metrics = run_scenario(get_scenario("gray-uplink-recovery"),
                               two_pod_params(), stack, seed=0)
        assert metrics.false_positives == 0
        assert metrics.flaps == 0


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_adaptive_chaos_digests_serial_vs_parallel():
    """Damping decay and adaptive timer choices are pure functions of
    event times, so the chaos digests are byte-identical at --jobs 2."""
    specs = chaos_specs(two_pod_params(),
                        ["mtp-adaptive", "bgp-bfd-damped"],
                        rates=(0.0, 0.1), window_ms=1500,
                        traffic_count=100)
    digests = assert_fanout_deterministic(specs, run_chaos_point,
                                          lambda o: o.digest, jobs=2)
    assert len(set(digests)) == len(specs)


EVENTS = st.lists(
    st.tuples(st.integers(min_value=1, max_value=400_000),
              st.sampled_from(["arrival", "flap", "poll"])),
    min_size=1, max_size=60,
)

FAST_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@FAST_SETTINGS
@given(events=EVENTS)
def test_monitor_decisions_replay_identically(events):
    """The monitor's outputs (interval, suppression, penalty) are a pure
    function of its event sequence — replaying the same schedule on a
    fresh monitor reproduces every decision exactly, the unit-level fact
    behind serial == parallel digest equality."""

    def run():
        mon = NeighborMonitor(DEFAULT_LIVENESS, period_us=50_000,
                              base_detection_us=100_000)
        out = []
        now = 0
        for gap, kind in events:
            now += gap
            if kind == "arrival":
                mon.observe(now)
            elif kind == "flap":
                mon.record_flap(now)
            else:
                mon.suppressed(now)
            out.append((mon.detection_interval_us(),
                        mon.suppressed(now),
                        mon.damper.penalty))
        return out

    first, second = run(), run()
    assert first == second
    for interval, _, _ in first:
        assert 100_000 <= interval <= int(100_000 * DEFAULT_LIVENESS.max_scale)
