"""liveness_stats accounting: suppression windows, MTTR, availability —
fed with a hand-built trace so every number is checkable by eye."""

from __future__ import annotations

from repro.harness.failures import InjectedFailure
from repro.harness.metrics import (
    LIVENESS_ADMIN,
    LIVENESS_DETECTED,
    LIVENESS_REUSE,
    LIVENESS_SUPPRESS,
    LIVENESS_UP,
    liveness_stats,
)
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog


def make_trace(events):
    """events: (time, node, kind, adjacency) -> a trace whose classify
    function maps the category straight back to the kind."""
    sim = Simulator()
    trace = TraceLog(sim)
    for time, node, kind, adj in events:
        sim._now = time
        trace.emit(node, f"k:{kind}", f"{adj} {kind}")
    return trace


def classify(record):
    kind = record.category[2:]
    return kind if kind else None


def test_mttr_and_availability_from_one_recovered_episode():
    trace = make_trace([
        (1_000_000, "L1", LIVENESS_DETECTED, "eth4"),
        (1_400_000, "L1", LIVENESS_UP, "eth4"),
    ])
    fault = [InjectedFailure("L1", "eth4", 900_000, "down"),
             InjectedFailure("L1", "eth4", 1_200_000, "up")]
    stats = liveness_stats(trace, classify, fault, since=0,
                           until=2_000_000, detection_bound_us=500_000)
    assert stats.false_positives == 0     # the fault explains it
    assert stats.recovered == 1
    assert stats.mttr_us == 400_000
    assert stats.downtime_us == 400_000
    assert stats.adjacencies == 1
    assert stats.window_us == 2_000_000
    assert abs(stats.availability - 0.8) < 1e-9


def test_suppression_window_paired_and_closed_at_edge():
    trace = make_trace([
        (100, "L1", LIVENESS_SUPPRESS, "eth4"),
        (600, "L1", LIVENESS_REUSE, "eth4"),
        (700, "L2", LIVENESS_SUPPRESS, "eth2"),  # never released
    ])
    stats = liveness_stats(trace, classify, [], since=0, until=1_000)
    assert stats.suppressions == 2
    assert stats.reuses == 1
    # 500 closed + 300 open-at-edge
    assert stats.suppression_us == 800


def test_unrecovered_down_counts_downtime_but_not_mttr():
    trace = make_trace([
        (200, "L1", LIVENESS_ADMIN, "eth4"),
    ])
    fault = [InjectedFailure("L1", "eth4", 200, "down")]
    stats = liveness_stats(trace, classify, fault, since=0, until=1_000)
    assert stats.recovered == 0
    assert stats.mttr_us == -1
    assert stats.downtime_us == 800
    assert stats.availability < 1.0


def test_distinct_adjacencies_keyed_apart():
    """Two adjacencies down/up concurrently: episodes must pair by
    (node, adjacency), not interleave."""
    trace = make_trace([
        (100, "L1", LIVENESS_DETECTED, "eth4"),
        (200, "L2", LIVENESS_DETECTED, "eth2"),
        (500, "L2", LIVENESS_UP, "eth2"),
        (900, "L1", LIVENESS_UP, "eth4"),
    ])
    fault = [InjectedFailure("L1", "eth4", 50, "down"),
             InjectedFailure("L1", "eth4", 90, "up")]
    stats = liveness_stats(trace, classify, fault, since=0, until=1_000,
                           detection_bound_us=50)
    assert stats.adjacencies == 2
    assert stats.recovered == 2
    assert stats.downtime_us == (900 - 100) + (500 - 200)
    assert stats.mttr_us == ((900 - 100) + (500 - 200)) // 2
    # L2's detection has no explaining fault
    assert stats.false_positives == 1


def test_empty_window_is_fully_available():
    trace = make_trace([])
    stats = liveness_stats(trace, classify, [], since=0, until=1_000)
    assert stats.adjacencies == 0
    assert stats.availability == 1.0
    assert stats.mttr_us == -1
