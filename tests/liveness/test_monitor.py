"""Neighbor-monitor unit tests: the verdict state machine and the
adaptive detection-interval policy (clean floor, cold caution, warm
formula, envelope clamps) — including verdict behaviour under frame
duplication and Gilbert-Elliott loss bursts."""

from __future__ import annotations

from repro.liveness import LivenessConfig, NeighborMonitor, Verdict

PERIOD = 50_000           # 50 ms hello
BASE = 100_000            # 100 ms dead interval (2x hello)


def monitor(**overrides):
    return NeighborMonitor(LivenessConfig(**overrides), period_us=PERIOD,
                           base_detection_us=BASE)


def feed_clean(mon, n, start=0, period=PERIOD):
    now = start
    for _ in range(n):
        now += period
        mon.observe(now)
    return now


# ----------------------------------------------------------------------
# detection interval policy
# ----------------------------------------------------------------------
def test_non_adaptive_returns_base():
    mon = monitor(adaptive_timers=False)
    feed_clean(mon, 40)
    assert mon.detection_interval_us() == BASE


def test_clean_link_keeps_the_deterministic_floor():
    """A measured-clean link sits at the clean_misses floor — wide
    enough to survive the causally-unobservable first losses of a fresh
    gray episode, and independent of history (no drift)."""
    mon = monitor()
    cfg = mon.config
    floor = (cfg.clean_misses + 1) * PERIOD + PERIOD // 2
    assert mon.detection_interval_us() == max(BASE, floor)
    feed_clean(mon, 40)
    assert mon.detection_interval_us() == max(BASE, floor)


def test_cold_and_lossy_applies_cold_scale():
    mon = monitor()
    mon.observe(0)
    mon.observe(4 * PERIOD)  # misses before warm-up
    assert not mon.estimator.warmed_up
    assert mon.detection_interval_us() >= int(BASE * mon.config.cold_scale)


def test_warm_lossy_widens_with_measured_loss():
    """Once warm, the interval covers enough consecutive losses that a
    false declaration needs a run of probability below fp_target."""
    mon = monitor()
    now = feed_clean(mon, 20)
    for _ in range(10):  # sustained loss: every other hello lost
        now += 2 * PERIOD
        mon.observe(now)
    widened = mon.detection_interval_us()
    floor = (mon.config.clean_misses + 1) * PERIOD + PERIOD // 2
    assert widened > floor
    assert widened <= int(BASE * mon.config.max_scale)


def test_ceiling_clamps_extreme_loss():
    mon = monitor()
    now = feed_clean(mon, 20)
    for _ in range(30):
        now += 10 * PERIOD
        mon.observe(now)
    assert mon.detection_interval_us() == int(BASE * mon.config.max_scale)


def test_base_and_period_overrides():
    """BFD renegotiates its interval at bring-up; the overrides rescale
    the policy without rebuilding the monitor."""
    mon = monitor(adaptive_timers=False)
    assert mon.detection_interval_us(base_us=300_000) == 300_000
    mon2 = monitor()
    cfg = mon2.config
    floor = (cfg.clean_misses + 1) * 100_000 + 50_000
    assert mon2.detection_interval_us(base_us=300_000,
                                      period_us=100_000) == \
        max(300_000, floor)


# ----------------------------------------------------------------------
# verdicts
# ----------------------------------------------------------------------
def test_verdict_healthy_degraded_dead_cycle():
    mon = monitor()
    now = feed_clean(mon, 20)
    assert mon.verdict() is Verdict.HEALTHY
    for _ in range(10):
        now += 3 * PERIOD
        mon.observe(now)
    assert mon.degraded
    assert mon.verdict() is Verdict.DEGRADED
    mon.interrupt()
    assert mon.verdict() is Verdict.DEAD
    mon.observe(now + 10 * PERIOD)
    assert mon.alive


def test_duplication_storm_stays_healthy():
    """Duplicated keepalives (gap 0) must not push the verdict to
    degraded — duplication is not loss."""
    mon = monitor()
    now = feed_clean(mon, 20)
    for _ in range(100):
        mon.observe(now)  # same-instant duplicates
    assert mon.verdict() is Verdict.HEALTHY


def test_gilbert_elliott_burst_degrades_then_recovers_slowly():
    """A loss burst flips the verdict to degraded via the EWMA spike;
    a short clean run is NOT enough to clear it (the lifetime view keeps
    the link suspect), which is exactly the hold-down the control plane
    wants before re-preferring a flapping-gray uplink."""
    mon = monitor()
    now = feed_clean(mon, 20)
    for _ in range(4):  # burst: runs of 3 consecutive losses
        now += 4 * PERIOD
        mon.observe(now)
    assert mon.verdict() is Verdict.DEGRADED
    now = feed_clean(mon, 30, start=now)
    assert mon.verdict() is Verdict.DEGRADED  # lifetime view holds
    mon.clear_history()  # only an actual repair clears it
    assert mon.verdict() is Verdict.HEALTHY


def test_clear_history_resets_estimator_and_damper():
    mon = monitor()
    now = feed_clean(mon, 20)
    mon.record_flap(now)
    mon.record_flap(now)
    assert mon.suppressed(now)
    mon.clear_history()
    assert not mon.suppressed(now)
    assert mon.estimator.arrivals == 0
    assert mon.detection_interval_us() == \
        max(BASE, (mon.config.clean_misses + 1) * PERIOD + PERIOD // 2)
