"""Unit tests for the run-digest primitives (repro.harness.digest).

The digests are the foundation of the parallel runner's determinism
guard, so they must be (a) stable for identical inputs, (b) sensitive to
every field of the trace, and (c) independent of process-level hash
randomization.
"""

from __future__ import annotations

from repro.net.world import World
from repro.sim.trace import TraceRecord
from repro.harness.digest import (
    canonical_json,
    payload_digest,
    run_digest,
    stable_seed,
    trace_digest,
)


def _records():
    return [
        TraceRecord(10, "A", "hello.tx", "sent", {"bytes": 64}),
        TraceRecord(20, "B", "hello.rx", "got", {"bytes": 64, "port": "eth1"}),
    ]


def test_trace_digest_deterministic():
    assert trace_digest(_records()) == trace_digest(_records())


def test_trace_digest_sensitive_to_every_field():
    base = trace_digest(_records())
    for mutate in (
        lambda r: TraceRecord(99, r.node, r.category, r.message, r.data),
        lambda r: TraceRecord(r.time, "Z", r.category, r.message, r.data),
        lambda r: TraceRecord(r.time, r.node, "other", r.message, r.data),
        lambda r: TraceRecord(r.time, r.node, r.category, "edited", r.data),
        lambda r: TraceRecord(r.time, r.node, r.category, r.message,
                              {"bytes": 65}),
    ):
        recs = _records()
        recs[0] = mutate(recs[0])
        assert trace_digest(recs) != base


def test_trace_digest_sensitive_to_order():
    recs = _records()
    assert trace_digest(recs) != trace_digest(list(reversed(recs)))


def test_canonical_json_sorts_keys():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json(
        dict([("a", 2), ("b", 1)]))


def test_payload_digest_differs_on_content():
    assert payload_digest({"x": 1}) != payload_digest({"x": 2})


def test_run_digest_combines_trace_and_payload():
    recs = _records()
    d = run_digest(recs, {"metric": 1})
    assert d == run_digest(_records(), {"metric": 1})
    assert d != run_digest(recs, {"metric": 2})
    assert d != run_digest([], {"metric": 1})


def test_world_trace_digest_reproducible():
    """Two identically-seeded worlds running the same schedule produce
    the identical trace digest — the property the fan-out relies on."""

    def build_and_run():
        world = World(seed=3)
        rng = world.rng.stream("test")
        for i in range(20):
            delay = int(rng.uniform(1, 100))
            world.sim.schedule_after(
                delay, world.trace.emit, "N", "tick", f"i={i}", )
        world.run()
        return trace_digest(world.trace)

    assert build_and_run() == build_and_run()


def test_stable_seed_properties():
    s = stable_seed("batch", 0, 1)
    assert s == stable_seed("batch", 0, 1)
    assert s != stable_seed("batch", 0, 2)
    assert s != stable_seed("batch", 1, 1)
    assert 0 <= s < 2 ** 63
