"""Property-based checks on the event engine's ordering guarantees."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=200))
def test_events_fire_in_nondecreasing_time_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append((sim.now, t)))
    sim.run()
    observed = [now for now, _ in fired]
    assert observed == sorted(observed)
    # the clock matches each event's scheduled time
    assert all(now == t for now, t in fired)
    assert len(fired) == len(times)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                          st.booleans()),
                min_size=1, max_size=100))
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    handles = []
    for i, (t, cancel) in enumerate(entries):
        handles.append((sim.schedule_at(t, fired.append, i), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    expected = [i for i, (_, cancel) in enumerate(entries) if not cancel]
    assert sorted(fired) == expected


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=2,
                max_size=50))
def test_same_time_fifo_order(times):
    """Events at equal times fire in scheduling order (stable)."""
    sim = Simulator()
    t = 50
    fired = []
    for i in range(len(times)):
        sim.schedule_at(t, fired.append, i)
    sim.run()
    assert fired == list(range(len(times)))


@given(st.integers(min_value=1, max_value=500),
       st.integers(min_value=1, max_value=50))
def test_chained_timers_accumulate_exactly(period, count):
    sim = Simulator()
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) < count:
            sim.schedule_after(period, tick)

    sim.schedule_after(period, tick)
    sim.run()
    assert fired == [period * (i + 1) for i in range(count)]


# ----------------------------------------------------------------------
# differential: the timer wheel must fire in EXACTLY the binary heap's
# order under arbitrary schedule/cancel/reschedule workloads — this is
# the determinism contract that keeps golden digests byte-identical.
# ----------------------------------------------------------------------
_ops = st.lists(
    st.one_of(
        # (op, delay/time, priority)
        st.tuples(st.just("at"), st.integers(min_value=0, max_value=1 << 34),
                  st.integers(min_value=-2, max_value=2)),
        st.tuples(st.just("after"),
                  st.integers(min_value=0, max_value=1 << 20),
                  st.integers(min_value=-2, max_value=2)),
        st.tuples(st.just("cancel"),
                  st.integers(min_value=0, max_value=200), st.just(0)),
        st.tuples(st.just("reschedule"),
                  st.integers(min_value=0, max_value=1 << 16), st.just(0)),
    ),
    min_size=1, max_size=120,
)


def _run_workload(backend, ops, segments):
    from repro.sim.engine import Simulator as Sim
    sim = Sim(backend=backend)
    fired = []
    handles = []

    def make_cb(tag, todo):
        def cb():
            fired.append((sim.now, tag))
            # nested operations exercise scheduling from callbacks
            for op, value, priority in todo:
                _apply(op, value, priority, tag)
        return cb

    def _apply(op, value, priority, tag):
        if op == "at" and value >= sim.now:
            handles.append(sim.schedule_at(value, make_cb((tag, value), ()),
                                           priority=priority))
        elif op == "after":
            handles.append(sim.schedule_after(
                value, make_cb((tag, "after", value), ()), priority=priority))
        elif op == "cancel" and handles:
            handles[value % len(handles)].cancel()
        elif op == "reschedule" and handles:
            handles[value % len(handles)].cancel()
            handles.append(sim.schedule_after(
                value + 1, make_cb((tag, "re", value), ())))

    # seed phase: the first few ops also become nested payloads
    for i, (op, value, priority) in enumerate(ops):
        nested = tuple(ops[i + 1:i + 3])
        if op in ("at", "after"):
            cb = make_cb(i, nested)
            if op == "at":
                handles.append(sim.schedule_at(value, cb, priority=priority))
            else:
                handles.append(sim.schedule_after(value, cb,
                                                  priority=priority))
        else:
            _apply(op, value, priority, i)

    for until_step, budget in segments:
        sim.run(until=sim.now + until_step, max_events=budget)
    sim.run(max_events=5000)
    return fired, sim.now, sim.events_processed


@given(_ops,
       st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 30),
                          st.integers(min_value=0, max_value=40)),
                min_size=0, max_size=4))
def test_wheel_matches_heap_firing_order(ops, segments):
    heap_result = _run_workload("heap", ops, segments)
    wheel_result = _run_workload("wheel", ops, segments)
    assert wheel_result == heap_result
