"""Property-based checks on the event engine's ordering guarantees."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


@given(st.lists(st.integers(min_value=0, max_value=10_000),
                min_size=1, max_size=200))
def test_events_fire_in_nondecreasing_time_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append((sim.now, t)))
    sim.run()
    observed = [now for now, _ in fired]
    assert observed == sorted(observed)
    # the clock matches each event's scheduled time
    assert all(now == t for now, t in fired)
    assert len(fired) == len(times)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                          st.booleans()),
                min_size=1, max_size=100))
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    handles = []
    for i, (t, cancel) in enumerate(entries):
        handles.append((sim.schedule_at(t, fired.append, i), cancel))
    for handle, cancel in handles:
        if cancel:
            handle.cancel()
    sim.run()
    expected = [i for i, (_, cancel) in enumerate(entries) if not cancel]
    assert sorted(fired) == expected


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=2,
                max_size=50))
def test_same_time_fifo_order(times):
    """Events at equal times fire in scheduling order (stable)."""
    sim = Simulator()
    t = 50
    fired = []
    for i in range(len(times)):
        sim.schedule_at(t, fired.append, i)
    sim.run()
    assert fired == list(range(len(times)))


@given(st.integers(min_value=1, max_value=500),
       st.integers(min_value=1, max_value=50))
def test_chained_timers_accumulate_exactly(period, count):
    sim = Simulator()
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) < count:
            sim.schedule_after(period, tick)

    sim.schedule_after(period, tick)
    sim.run()
    assert fired == [period * (i + 1) for i in range(count)]
