"""Unit tests for the event engine (both scheduler backends)."""

from __future__ import annotations

import pytest

from repro.sim.engine import (
    BACKENDS,
    HEAP_BACKEND,
    WHEEL_BACKEND,
    Simulator,
    SimulationError,
)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


def test_events_fire_in_time_order(backend):
    sim = Simulator(backend)
    fired = []
    sim.schedule_at(30, fired.append, "c")
    sim.schedule_at(10, fired.append, "a")
    sim.schedule_at(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_in_scheduling_order(backend):
    sim = Simulator(backend)
    fired = []
    for tag in range(10):
        sim.schedule_at(5, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_priority_breaks_ties_before_seq(backend):
    sim = Simulator(backend)
    fired = []
    sim.schedule_at(5, fired.append, "late", priority=1)
    sim.schedule_at(5, fired.append, "early", priority=0)
    sim.run()
    assert fired == ["early", "late"]


def test_schedule_after_is_relative(backend):
    sim = Simulator(backend)
    times = []
    sim.schedule_after(10, lambda: times.append(sim.now))
    sim.run()
    assert times == [10]


def test_nested_scheduling_from_callback(backend):
    sim = Simulator(backend)
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule_after(5, inner)

    def inner():
        fired.append(("inner", sim.now))

    sim.schedule_at(10, outer)
    sim.run()
    assert fired == [("outer", 10), ("inner", 15)]


def test_cancel_prevents_firing(backend):
    sim = Simulator(backend)
    fired = []
    handle = sim.schedule_at(10, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.active


def test_cancel_twice_is_safe(backend):
    sim = Simulator(backend)
    handle = sim.schedule_at(10, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_stops_and_advances_clock(backend):
    sim = Simulator(backend)
    fired = []
    sim.schedule_at(10, fired.append, "a")
    sim.schedule_at(100, fired.append, "b")
    sim.run(until=50)
    assert fired == ["a"]
    assert sim.now == 50
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_when_queue_empty(backend):
    sim = Simulator(backend)
    sim.run(until=123)
    assert sim.now == 123


def test_scheduling_in_past_raises(backend):
    sim = Simulator(backend)
    sim.schedule_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_negative_delay_raises(backend):
    sim = Simulator(backend)
    with pytest.raises(SimulationError):
        sim.schedule_after(-1, lambda: None)


def test_max_events_budget(backend):
    sim = Simulator(backend)
    fired = []
    for i in range(10):
        sim.schedule_at(i, fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_on_empty_queue(backend):
    sim = Simulator(backend)
    assert sim.step() is False
    sim.schedule_at(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_call_soon_runs_at_current_time(backend):
    sim = Simulator(backend)
    times = []

    def first():
        sim.call_soon(lambda: times.append(sim.now))

    sim.schedule_at(7, first)
    sim.run()
    assert times == [7]


def test_events_processed_counter(backend):
    sim = Simulator(backend)
    for i in range(5):
        sim.schedule_at(i, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_events_excludes_cancelled(backend):
    sim = Simulator(backend)
    sim.schedule_at(1, lambda: None)
    h = sim.schedule_at(2, lambda: None)
    h.cancel()
    assert sim.pending_events == 1


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
def test_default_backend_is_wheel(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE_BACKEND", raising=False)
    assert Simulator().backend == WHEEL_BACKEND


def test_backend_env_var_selects_heap(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE_BACKEND", HEAP_BACKEND)
    assert Simulator().backend == HEAP_BACKEND
    # an explicit argument still beats the environment
    assert Simulator(WHEEL_BACKEND).backend == WHEEL_BACKEND


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown engine backend"):
        Simulator("fibonacci")


# ----------------------------------------------------------------------
# tombstone cancellation semantics (ported to both backends; the wheel
# must keep the O(1)-flag behaviour of the old heap's handles)
# ----------------------------------------------------------------------
def test_cancel_after_firing_is_safe(backend):
    sim = Simulator(backend)
    fired = []
    handle = sim.schedule_at(5, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    handle.cancel()  # no error, no effect
    handle.cancel()
    assert not handle.active
    sim.run()
    assert fired == ["x"]


def test_cancel_is_constant_time_flag_flip(backend):
    """cancel() must not touch the queue: depth (which counts resident
    tombstones) is unchanged, pending_events (live view) drops."""
    sim = Simulator(backend)
    handles = [sim.schedule_at(1000 + i, lambda: None) for i in range(100)]
    depth_before = sim.queue_depth
    for h in handles:
        h.cancel()
    assert sim.queue_depth == depth_before  # still resident as tombstones
    assert sim.pending_events == 0
    sim.run()
    assert sim.events_processed == 0


def test_cancelled_timer_discarded_without_firing(backend):
    sim = Simulator(backend)
    fired = []
    keep = sim.schedule_at(50, fired.append, "keep")
    kill = sim.schedule_at(50, fired.append, "kill")
    kill.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep.active  # fired events are not retroactively tombstoned
    assert not kill.active


def test_cancel_mid_batch_from_earlier_event(backend):
    """An event can cancel a same-tick later event while the batch is
    being dispatched."""
    sim = Simulator(backend)
    fired = []
    later = sim.schedule_at(10, fired.append, "later")
    sim.schedule_at(10, lambda: later.cancel(), priority=-1)
    sim.run()
    assert fired == []


def test_reschedule_pattern_dead_timer(backend):
    """The keepalive idiom: cancel + re-arm on every tick; only the last
    armed timer may fire."""
    sim = Simulator(backend)
    expired = []
    state = {"handle": None}

    def arm():
        if state["handle"] is not None:
            state["handle"].cancel()
        state["handle"] = sim.schedule_after(300, expired.append, sim.now)

    for t in range(0, 1000, 100):
        sim.schedule_at(t, arm)
    sim.run()
    assert expired == [900]  # only the final arm survived


# ----------------------------------------------------------------------
# wheel-specific shapes
# ----------------------------------------------------------------------
def test_far_horizon_events_fire_in_order(backend):
    """Events beyond the wheel's 2^32-tick horizon take the fallback path
    but must stay in exact (time, priority, seq) order."""
    sim = Simulator(backend)
    fired = []
    sim.schedule_at(1 << 40, fired.append, "far")
    sim.schedule_at((1 << 40) - 1, fired.append, "nearer")
    sim.schedule_at(5, fired.append, "soon")
    sim.run()
    assert fired == ["soon", "nearer", "far"]
    assert sim.now == 1 << 40


def test_until_cut_then_behind_window_schedule(backend):
    """Scheduling between an until-bounded run and the next run must stay
    ordered even when the wheel already advanced past that window."""
    sim = Simulator(backend)
    fired = []
    sim.schedule_at(100_000, fired.append, "a")
    sim.schedule_at(70_000_000, fired.append, "z")
    sim.run(until=60_000_000)
    assert fired == ["a"]
    # now == 60e6; the wheel's coarse windows have advanced.  These land
    # behind/around them and must still fire in time order.
    sim.schedule_at(60_000_001, fired.append, "b")
    sim.schedule_at(65_000_000, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c", "z"]


def test_queue_depth_counts_tombstones_until_discarded(backend):
    sim = Simulator(backend)
    h = [sim.schedule_at(10, lambda: None) for _ in range(10)]
    for handle in h[5:]:
        handle.cancel()
    assert sim.queue_depth == 10
    sim.run()
    assert sim.queue_depth == 0
    assert sim.events_processed == 5


def test_peak_queue_depth_high_water(backend):
    sim = Simulator(backend)
    for i in range(50):
        sim.schedule_at(i, lambda: None)
    sim.run()
    assert sim.peak_queue_depth >= 50
    assert sim.queue_depth == 0


def test_budget_pause_then_same_tick_schedule(backend):
    """Resuming after a max_events cut must preserve ordering for events
    scheduled at the paused tick."""
    sim = Simulator(backend)
    fired = []
    for i in range(4):
        sim.schedule_at(10, fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]
    assert sim.now == 10
    sim.schedule_at(10, fired.append, "late")  # joins the paused tick
    sim.run()
    assert fired == [0, 1, 2, 3, "late"]
