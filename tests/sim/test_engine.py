"""Unit tests for the event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator, SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule_at(30, fired.append, "c")
    sim.schedule_at(10, fired.append, "a")
    sim.schedule_at(20, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule_at(5, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_priority_breaks_ties_before_seq():
    sim = Simulator()
    fired = []
    sim.schedule_at(5, fired.append, "late", priority=1)
    sim.schedule_at(5, fired.append, "early", priority=0)
    sim.run()
    assert fired == ["early", "late"]


def test_schedule_after_is_relative():
    sim = Simulator()
    times = []
    sim.schedule_after(10, lambda: times.append(sim.now))
    sim.run()
    assert times == [10]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule_after(5, inner)

    def inner():
        fired.append(("inner", sim.now))

    sim.schedule_at(10, outer)
    sim.run()
    assert fired == [("outer", 10), ("inner", 15)]


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule_at(10, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.active


def test_cancel_twice_is_safe():
    sim = Simulator()
    handle = sim.schedule_at(10, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule_at(10, fired.append, "a")
    sim.schedule_at(100, fired.append, "b")
    sim.run(until=50)
    assert fired == ["a"]
    assert sim.now == 50
    sim.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_when_queue_empty():
    sim = Simulator()
    sim.run(until=123)
    assert sim.now == 123


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.schedule_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_after(-1, lambda: None)


def test_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule_at(i, fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule_at(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []

    def first():
        sim.call_soon(lambda: times.append(sim.now))

    sim.schedule_at(7, first)
    sim.run()
    assert times == [7]


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule_at(i, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    sim.schedule_at(1, lambda: None)
    h = sim.schedule_at(2, lambda: None)
    h.cancel()
    assert sim.pending_events == 1
