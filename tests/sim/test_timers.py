"""Timer behaviour, including the dead-timer 'kick' idiom."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTimer, Timer


def test_timer_fires_after_interval():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 100, lambda: fired.append(sim.now))
    timer.start()
    sim.run()
    assert fired == [100]


def test_timer_restart_postpones_firing():
    """The dead-timer pattern: each keepalive kicks the timer."""
    sim = Simulator()
    fired = []
    timer = Timer(sim, 100, lambda: fired.append(sim.now))
    timer.start()
    for t in (50, 100, 150):
        sim.schedule_at(t, timer.restart)
    sim.run()
    assert fired == [250]


def test_timer_stop():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 100, lambda: fired.append(sim.now))
    timer.start()
    sim.schedule_at(50, timer.stop)
    sim.run()
    assert fired == []
    assert not timer.running


def test_timer_running_and_expiry_properties():
    sim = Simulator()
    timer = Timer(sim, 100, lambda: None)
    assert not timer.running
    assert timer.expires_at is None
    timer.start()
    assert timer.running
    assert timer.expires_at == 100


def test_timer_interval_override_on_start():
    sim = Simulator()
    fired = []
    timer = Timer(sim, 100, lambda: fired.append(sim.now))
    timer.start(interval=30)
    sim.run()
    assert fired == [30]


def test_timer_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(ValueError):
        Timer(sim, 0, lambda: None)


def test_periodic_timer_fires_repeatedly():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 50, lambda: fired.append(sim.now))
    timer.start()
    sim.run(until=220)
    assert fired == [50, 100, 150, 200]


def test_periodic_timer_stop_from_callback():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 50, lambda: (fired.append(sim.now), timer.stop()))
    timer.start()
    sim.run(until=500)
    assert fired == [50]


def test_periodic_timer_jitter_stays_in_bfd_band():
    """RFC 5880: each period is uniform in [0.75, 1.0] x interval."""
    sim = Simulator()
    rng = RngRegistry(7).stream("jitter")
    fired = []
    timer = PeriodicTimer(sim, 1000, lambda: fired.append(sim.now),
                          jitter=0.25, rng=rng)
    timer.start()
    sim.run(until=100_000)
    gaps = [b - a for a, b in zip(fired, fired[1:])]
    assert gaps, "timer never refired"
    assert all(750 <= g <= 1000 for g in gaps)
    assert len(set(gaps)) > 1, "jitter should vary the period"


def test_periodic_timer_jitter_requires_rng():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 100, lambda: None, jitter=0.5)


def test_periodic_timer_immediate_start():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 50, lambda: fired.append(sim.now))
    timer.start(immediate=True)
    sim.run(until=120)
    assert fired == [0, 50, 100]


def test_periodic_set_interval_takes_effect_next_cycle():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, 50, lambda: fired.append(sim.now))
    timer.start()
    sim.schedule_at(60, timer.set_interval, 100)
    sim.run(until=320)
    assert fired == [50, 100, 200, 300]
