"""RNG registry determinism and trace log querying."""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


def test_same_seed_same_stream():
    a = RngRegistry(5).stream("x").integers(0, 1 << 30, size=10)
    b = RngRegistry(5).stream("x").integers(0, 1 << 30, size=10)
    assert list(a) == list(b)


def test_different_names_are_independent():
    reg = RngRegistry(5)
    a = reg.stream("x").integers(0, 1 << 30, size=10)
    b = reg.stream("y").integers(0, 1 << 30, size=10)
    assert list(a) != list(b)


def test_new_stream_does_not_perturb_existing():
    reg1 = RngRegistry(5)
    s1 = reg1.stream("x")
    first = s1.integers(0, 1 << 30, size=5)

    reg2 = RngRegistry(5)
    reg2.stream("other")  # extra consumer created first
    s2 = reg2.stream("x")
    second = s2.integers(0, 1 << 30, size=5)
    assert list(first) == list(second)


def test_stream_is_cached():
    reg = RngRegistry(0)
    assert reg.stream("a") is reg.stream("a")
    assert "a" in reg


def test_trace_emit_and_select():
    sim = Simulator()
    trace = TraceLog(sim)
    trace.emit("n1", "cat.a", "hello", k=1)
    sim.schedule_at(10, lambda: trace.emit("n2", "cat.b", "world"))
    sim.run()
    assert trace.count("cat.a") == 1
    assert trace.count("cat.b") == 1
    recs = list(trace.select(node="n2"))
    assert len(recs) == 1 and recs[0].time == 10


def test_trace_last_time_and_since():
    sim = Simulator()
    trace = TraceLog(sim)
    for t in (5, 15, 25):
        sim.schedule_at(t, lambda: trace.emit("n", "u", "m"))
    sim.run()
    assert trace.last_time("u") == 25
    assert trace.last_time("u", since=30) is None
    assert trace.count("u", since=10) == 2


def test_trace_listener_receives_live_records():
    sim = Simulator()
    trace = TraceLog(sim, enabled=False)  # listeners work even when not storing
    seen = []
    trace.add_listener(seen.append)
    trace.emit("n", "c", "m")
    assert len(seen) == 1
    assert trace.records == []


def test_trace_record_str_is_readable():
    sim = Simulator()
    trace = TraceLog(sim)
    trace.emit("T-1", "bgp.update", "sent", bytes=93)
    line = str(trace.records[0])
    assert "T-1" in line and "bgp.update" in line and "93" in line
