"""VID algebra: derivation, extension, encoding, loop-freedom."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.vid import (
    ThirdByteDerivation,
    Vid,
    WideDerivation,
    derive_tor_root,
)
from repro.stack.addresses import Ipv4Address, Ipv4Network


class TestVid:
    def test_parse_str_roundtrip(self):
        vid = Vid.parse("11.1.2")
        assert str(vid) == "11.1.2"
        assert vid.root == 11
        assert vid.depth == 3

    def test_extend_appends_port(self):
        """The paper's rule: child VID = parent VID + arrival port."""
        assert str(Vid.root_of(11).extend(1)) == "11.1"
        assert str(Vid.parse("11.1").extend(2)) == "11.1.2"

    def test_parent(self):
        assert Vid.parse("11.1.2").parent() == Vid.parse("11.1")
        with pytest.raises(ValueError):
            Vid.root_of(11).parent()

    def test_is_extension_of(self):
        assert Vid.parse("11.1.2").is_extension_of(Vid.parse("11.1"))
        assert Vid.parse("11.1").is_extension_of(Vid.parse("11.1"))
        assert not Vid.parse("11.2.1").is_extension_of(Vid.parse("11.1"))
        assert not Vid.parse("12.1").is_extension_of(Vid.parse("11")), \
            "different roots never extend each other"

    def test_vid_encodes_its_own_path(self):
        """A VID *is* the path from the root: components after the first
        are the parent port numbers in tier order (paper section III.B)."""
        vid = Vid.root_of(11).extend(1).extend(2)
        assert vid.parts == (11, 1, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            Vid(())
        with pytest.raises(ValueError):
            Vid((0,))
        with pytest.raises(ValueError):
            Vid((70000,))
        with pytest.raises(ValueError):
            Vid.root_of(11).extend(0)

    def test_encode_decode_small(self):
        vid = Vid.parse("11.1.2")
        blob = vid.encode()
        assert len(blob) == vid.wire_size == 4
        decoded, offset = Vid.decode(blob)
        assert decoded == vid and offset == len(blob)

    def test_encode_decode_wide_component(self):
        vid = Vid((300, 1))
        blob = vid.encode()
        assert len(blob) == vid.wire_size == 1 + 3 + 1
        decoded, _ = Vid.decode(blob)
        assert decoded == vid

    def test_decode_sequence(self):
        vids = [Vid.parse("11.1"), Vid.parse("12.2.1")]
        blob = b"".join(v.encode() for v in vids)
        first, offset = Vid.decode(blob)
        second, end = Vid.decode(blob, offset)
        assert [first, second] == vids and end == len(blob)

    def test_ordering(self):
        assert Vid.parse("11.1") < Vid.parse("11.2")
        assert Vid.parse("11") < Vid.parse("11.1")

    @given(st.lists(st.integers(min_value=1, max_value=65535),
                    min_size=1, max_size=6))
    def test_encode_roundtrip_property(self, parts):
        vid = Vid(tuple(parts))
        decoded, offset = Vid.decode(vid.encode())
        assert decoded == vid and offset == vid.wire_size

    @given(st.lists(st.integers(min_value=1, max_value=64),
                    min_size=1, max_size=8))
    def test_extension_chain_is_loop_free(self, ports):
        """Following extensions never revisits a VID — the paper's
        inherent loop-avoidance."""
        vid = Vid.root_of(11)
        seen = {vid}
        for port in ports:
            vid = vid.extend(port)
            assert vid not in seen
            seen.add(vid)


class TestDerivation:
    def test_third_byte_from_subnet(self):
        net = Ipv4Network.parse("192.168.11.0/24")
        assert derive_tor_root(net) == 11

    def test_third_byte_from_address(self):
        d = ThirdByteDerivation()
        assert d.root_for_address(Ipv4Address.parse("192.168.14.1")) == 14

    def test_src_and_dst_derive_consistently(self):
        """The forwarding trick of section III.D: any address in the rack
        derives the rack's ToR VID."""
        d = ThirdByteDerivation()
        net = Ipv4Network.parse("192.168.23.0/24")
        assert all(
            d.root_for_address(host) == d.root_for_subnet(net)
            for host in list(net.hosts())[:5]
        )

    def test_wide_derivation_matches_third_byte_in_192_168(self):
        d = WideDerivation()
        assert d.root_for_subnet(Ipv4Network.parse("192.168.11.0/24")) == 11

    def test_wide_derivation_extends_beyond_256_racks(self):
        d = WideDerivation()
        a = d.root_for_subnet(Ipv4Network.parse("192.169.0.0/24"))
        b = d.root_for_subnet(Ipv4Network.parse("192.169.1.0/24"))
        assert a != b
        assert a > 255  # outside the third-byte namespace

    def test_wide_derivation_address_subnet_consistent(self):
        d = WideDerivation()
        assert (d.root_for_address(Ipv4Address.parse("192.169.5.7"))
                == d.root_for_subnet(Ipv4Network.parse("192.169.5.0/24")))
