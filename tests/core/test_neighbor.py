"""Quick-to-Detect / Slow-to-Accept liveness machine."""

from __future__ import annotations

from repro.core.config import MtpTimers
from repro.core.neighbor import NeighborState, PortNeighbor
from repro.sim.engine import Simulator
from repro.sim.units import MILLISECOND

TIMERS = MtpTimers()  # hello 50 ms, dead 100 ms, accept after 3


def machine(sim):
    events = []
    nbr = PortNeighbor(
        sim, "eth1", TIMERS,
        on_up=lambda n: events.append((sim.now, "up")),
        on_down=lambda n, reason: events.append((sim.now, "down", reason)),
    )
    return nbr, events


def test_initial_discovery_is_immediate():
    """Bring-up is not dampened: the first tiered hello accepts."""
    sim = Simulator()
    nbr, events = machine(sim)
    sim.schedule_at(10, nbr.saw_frame, 2)
    sim.run(until=20)
    assert nbr.up
    assert events == [(10, "up")]


def test_discovery_requires_tier():
    """A keepalive (no tier) from an unknown neighbor cannot accept."""
    sim = Simulator()
    nbr, events = machine(sim)
    sim.schedule_at(10, nbr.saw_frame)  # tier unknown
    sim.run(until=20)
    assert not nbr.up


def test_quick_to_detect_one_missed_hello():
    """Dead timer = 2x hello: silence for 100 ms declares the neighbor
    down — one missed 50 ms hello, not the classical three."""
    sim = Simulator()
    nbr, events = machine(sim)
    last_hello = 0
    for t in range(0, 201, 50):
        sim.schedule_at(t, nbr.saw_frame, 2)
        last_hello = t
    sim.run(until=1_000_000)
    downs = [e for e in events if e[1] == "down"]
    assert downs == [(last_hello + TIMERS.dead_us, "down", "dead-timer")]


def test_any_frame_resets_dead_timer():
    sim = Simulator()
    nbr, events = machine(sim)
    sim.schedule_at(0, nbr.saw_frame, 2)
    # non-hello traffic (no tier) keeps the neighbor alive
    for t in range(40, 400, 40):
        sim.schedule_at(t, nbr.saw_frame)
    sim.run(until=1_000_000)
    downs = [e for e in events if e[1] == "down"]
    assert downs and downs[0][0] == 360 + TIMERS.dead_us


def test_slow_to_accept_requires_three_consecutive_hellos():
    sim = Simulator()
    nbr, events = machine(sim)
    sim.schedule_at(0, nbr.saw_frame, 2)
    sim.run(until=300 * MILLISECOND)  # dead timer fires at 100 ms
    assert nbr.state is NeighborState.DEAD
    base = 400 * MILLISECOND
    for i in range(3):
        sim.schedule_at(base + i * 50 * MILLISECOND, nbr.saw_frame, 2)
    sim.run(until=base + 90 * MILLISECOND)
    assert not nbr.up, "two hellos must not re-accept"
    sim.run(until=base + 200 * MILLISECOND)
    ups = [e for e in events if e[1] == "up"]
    assert len(ups) == 2
    assert ups[1][0] == base + 2 * 50 * MILLISECOND


def test_slow_to_accept_dampens_flapping():
    """Hellos separated by more than the dead interval never accumulate
    three consecutive — a toggling interface stays down."""
    sim = Simulator()
    nbr, events = machine(sim)
    sim.schedule_at(0, nbr.saw_frame, 2)
    sim.run(until=300 * MILLISECOND)
    assert nbr.state is NeighborState.DEAD
    # hellos every 150 ms (> dead 100 ms): consecutive count keeps resetting
    for i in range(10):
        sim.schedule_at(400_000 + i * 150_000, nbr.saw_frame, 2)
    sim.run(until=3_000_000)
    assert len([e for e in events if e[1] == "up"]) == 1  # only the initial


def test_local_port_down_declares_immediately():
    sim = Simulator()
    nbr, events = machine(sim)
    sim.schedule_at(0, nbr.saw_frame, 2)
    sim.schedule_at(10_000, nbr.local_port_down)
    sim.run(until=20_000)
    assert events[-1] == (10_000, "down", "local-port-down")
    assert nbr.times_died == 1


def test_probation_decays_back_to_dead():
    sim = Simulator()
    nbr, events = machine(sim)
    sim.schedule_at(0, nbr.saw_frame, 2)
    sim.run(until=300 * MILLISECOND)
    nbr.saw_frame(2)  # one hello -> probation
    assert nbr.state is NeighborState.PROBATION
    sim.run(until=sim.now + 200 * MILLISECOND)  # silence again
    assert nbr.state is NeighborState.DEAD
