"""VID table semantics: acquisition, pruning, marks, accounting."""

from __future__ import annotations

from repro.core.tables import VidTable
from repro.core.vid import Vid


def v(text):
    return Vid.parse(text)


def test_add_and_ports_for_root():
    table = VidTable()
    assert table.add("eth1", v("11.1"))
    assert table.add("eth2", v("12.1"))
    assert table.ports_for_root(11) == ["eth1"]
    assert table.ports_for_root(12) == ["eth2"]
    assert table.ports_for_root(99) == []


def test_add_duplicate_is_noop():
    table = VidTable()
    table.add("eth1", v("11.1"))
    count = table.change_count
    assert not table.add("eth1", v("11.1"))
    assert table.change_count == count


def test_multiple_ports_same_root():
    """A top spine in a multi-ToR pod reaches a root via one port, but a
    root can appear on several ports in wider topologies."""
    table = VidTable()
    table.add("eth1", v("11.1.1"))
    table.add("eth2", v("11.2.1"))
    assert table.ports_for_root(11) == ["eth1", "eth2"]


def test_prune_port_removes_everything_on_it():
    table = VidTable()
    table.add("eth1", v("11.1"))
    table.add("eth1", v("12.1"))
    table.add("eth2", v("11.2"))
    pruned = table.prune_port("eth1")
    assert [str(x) for x in pruned] == ["11.1", "12.1"]
    assert table.ports_for_root(11) == ["eth2"]
    assert table.prune_port("eth1") == []


def test_prune_extensions_is_subtree_scoped():
    """An UPDATE_LOST for 11.1 prunes 11.1.* but not 11.2.* or 12.*."""
    table = VidTable()
    table.add("eth1", v("11.1.1"))
    table.add("eth1", v("11.2.1"))
    table.add("eth1", v("12.1.1"))
    doomed = table.prune_extensions("eth1", [v("11.1")])
    assert [str(x) for x in doomed] == ["11.1.1"]
    assert sorted(str(x) for x in table.all_vids()) == ["11.2.1", "12.1.1"]


def test_prune_extensions_no_match_no_change():
    table = VidTable()
    table.add("eth1", v("11.1.1"))
    count = table.change_count
    assert table.prune_extensions("eth1", [v("13.1")]) == []
    assert table.change_count == count


def test_marks_lifecycle():
    table = VidTable()
    assert table.mark_unreachable("eth3", [11, 12]) == [11, 12]
    assert table.mark_unreachable("eth3", [11]) == []  # already marked
    assert table.is_marked("eth3", 11)
    assert not table.is_marked("eth4", 11)
    assert table.clear_marks("eth3", [11]) == [11]
    assert not table.is_marked("eth3", 11)
    assert table.is_marked("eth3", 12)
    assert table.clear_marks("eth3") == [12]


def test_change_counting_for_blast_radius():
    table = VidTable()
    c0 = table.change_count
    table.add("eth1", v("11.1"))
    table.mark_unreachable("eth2", [13])
    table.clear_marks("eth2", [13])
    assert table.change_count == c0 + 3
    # no-ops do not count
    table.clear_marks("eth2", [13])
    assert table.change_count == c0 + 3


def test_roots_and_entry_count():
    table = VidTable()
    table.add("eth1", v("11.1"))
    table.add("eth1", v("12.1"))
    table.add("eth2", v("13.1"))
    assert table.roots() == {11, 12, 13}
    assert table.roots_on("eth1") == {11, 12}
    assert table.entry_count() == 3


def test_render_matches_listing5_shape():
    table = VidTable()
    table.add("eth2", v("37.1.1"))
    table.add("eth2", v("38.1.1"))
    table.add("eth4", v("39.1.1"))
    text = table.render()
    assert "eth2   37.1.1, 38.1.1" in text
    assert "eth4   39.1.1" in text


def test_memory_bytes_scales():
    table = VidTable()
    table.add("eth1", v("11.1"))
    one = table.memory_bytes()
    table.add("eth1", v("11.1.2"))
    assert table.memory_bytes() > one


def test_change_timestamps():
    from repro.sim.engine import Simulator

    sim = Simulator()
    table = VidTable(sim=sim)
    sim.schedule_at(777, lambda: table.add("eth1", v("11.1")))
    sim.run()
    assert table.last_change_time == 777


class TestDefaultMarks:
    def test_default_mark_blocks_all_but_exceptions(self):
        table = VidTable()
        assert table.set_default_mark("eth3", {11, 12})
        assert not table.is_marked("eth3", 11)
        assert not table.is_marked("eth3", 12)
        assert table.is_marked("eth3", 13)
        assert table.is_marked("eth3", 99)
        assert not table.is_marked("eth4", 13)

    def test_explicit_mark_overrides_exception(self):
        table = VidTable()
        table.set_default_mark("eth3", {11})
        table.mark_unreachable("eth3", [11])
        assert table.is_marked("eth3", 11)

    def test_set_same_mark_is_noop(self):
        table = VidTable()
        table.set_default_mark("eth3", {11})
        count = table.change_count
        assert not table.set_default_mark("eth3", {11})
        assert table.change_count == count
        assert table.set_default_mark("eth3", {11, 12})
        assert table.change_count == count + 1

    def test_clear_default_mark(self):
        table = VidTable()
        table.set_default_mark("eth3", set())
        assert table.has_default_mark("eth3")
        assert table.clear_default_mark("eth3")
        assert not table.clear_default_mark("eth3")
        assert not table.is_marked("eth3", 13)

    def test_render_shows_default_marks(self):
        table = VidTable()
        table.set_default_mark("eth3", {11, 12})
        table.set_default_mark("eth4", set())
        text = table.render()
        assert "eth3   default-unreachable (except 11, 12)" in text
        assert "eth4   default-unreachable" in text

    def test_exceptions_accessor(self):
        table = VidTable()
        assert table.default_exceptions("eth3") is None
        table.set_default_mark("eth3", {11})
        assert table.default_exceptions("eth3") == {11}
