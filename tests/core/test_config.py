"""MR-MTP configuration (the Listing 2 JSON) and timer validation."""

from __future__ import annotations

import json

import pytest

from repro.core.config import MtpGlobalConfig, MtpNodeConfig, MtpTimers
from repro.topology.clos import build_folded_clos, four_pod_params, two_pod_params


class TestTimers:
    def test_defaults_match_paper(self):
        t = MtpTimers()
        assert t.hello_us == 50_000
        assert t.dead_us == 100_000
        assert t.accept_hellos == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MtpTimers(hello_us=0)
        with pytest.raises(ValueError):
            MtpTimers(hello_us=100_000, dead_us=50_000)
        with pytest.raises(ValueError):
            MtpTimers(accept_hellos=0)
        with pytest.raises(ValueError):
            MtpTimers(jitter=1.5)


class TestNodeConfig:
    def test_tor_requires_rack_interface(self):
        with pytest.raises(ValueError):
            MtpNodeConfig("L-1-1", tier=1)
        cfg = MtpNodeConfig("L-1-1", tier=1, rack_interface="eth3")
        assert cfg.rack_interface == "eth3"

    def test_spine_needs_only_tier(self):
        cfg = MtpNodeConfig("T-1", tier=3)
        assert cfg.rack_interface is None

    def test_servers_rejected(self):
        with pytest.raises(ValueError):
            MtpNodeConfig("H-1", tier=0)


class TestGlobalConfig:
    def test_from_topology_covers_all_routers(self):
        topo = build_folded_clos(two_pod_params())
        config = MtpGlobalConfig.from_topology(topo)
        assert set(config.nodes) == set(topo.routers())
        for tor in topo.all_tors():
            assert config.for_node(tor).rack_interface == topo.rack_port[tor]

    def test_render_json_listing2_fields(self):
        topo = build_folded_clos(four_pod_params())
        doc = json.loads(MtpGlobalConfig.from_topology(topo).render_json())
        topology = doc["topology"]
        assert sorted(topology["leaves"]) == topology["leaves"]
        assert len(topology["leaves"]) == 8
        assert set(topology["leavesNetworkPortDict"]) == set(topology["leaves"])
        spines = topology["tiers"]
        assert all(name not in topology["leaves"] for name in spines)

    def test_config_lines_count_scales_with_leaves_only(self):
        small = MtpGlobalConfig.from_topology(
            build_folded_clos(two_pod_params()))
        large = MtpGlobalConfig.from_topology(
            build_folded_clos(four_pod_params()))
        delta = len(large.config_lines()) - len(small.config_lines())
        # 4 extra leaves (x2 lines each: list entry + dict entry) plus
        # 4 extra spine-tier entries
        assert 8 <= delta <= 16
