"""MR-MTP message wire sizes — the arithmetic behind Figs. 6 and 10."""

from __future__ import annotations

import pytest

from repro.core.messages import (
    MtpAccept,
    MtpAdvertise,
    MtpData,
    MtpFullHello,
    MtpJoin,
    MtpKeepalive,
    MtpOffer,
    MtpRestored,
    MtpUnreachable,
    MtpUpdateLost,
)
from repro.core.vid import Vid
from repro.stack.addresses import Ipv4Address
from repro.stack.ipv4 import Ipv4Packet, PROTO_UDP
from repro.stack.payload import RawBytes


def test_keepalive_is_one_byte():
    assert MtpKeepalive().wire_size == 1
    assert MtpKeepalive().type_code == 0x06  # the paper's Data: 06


def test_full_hello_is_three_bytes():
    # tier byte plus the restart-generation byte (DESIGN §15)
    assert MtpFullHello(tier=3).wire_size == 3
    assert MtpFullHello(tier=3).gen == 0
    assert MtpFullHello(tier=3, gen=7).wire_size == 3


def test_vid_list_message_sizes():
    one = MtpAdvertise(vids=(Vid.parse("11"),))
    assert one.wire_size == 2 + 2  # type + count + (len + 1 part)
    two = MtpAdvertise(vids=(Vid.parse("11.1"), Vid.parse("12.1")))
    assert two.wire_size == 2 + 3 + 3


def test_update_lost_matches_fig6_arithmetic():
    """S1_1's TC1 cascade: one UPDATE_LOST of '11.1' = 5 B payload,
    19 B on the wire; seven messages land at the paper's ~120 B."""
    lost = MtpUpdateLost(vids=(Vid.parse("11.1"),))
    assert lost.wire_size == 5
    assert 14 + lost.wire_size == 19
    unreachable = MtpUnreachable(roots=(11,))
    assert 14 + unreachable.wire_size == 17
    total = 1 * 19 + 6 * 17  # 1 LOST + 6 UNREACHABLE frames
    assert abs(total - 120) <= 5


def test_root_list_sizes_with_wide_roots():
    assert MtpUnreachable(roots=(11,)).wire_size == 3
    assert MtpUnreachable(roots=(11, 12)).wire_size == 4
    assert MtpRestored(roots=(300,)).wire_size == 5  # escape-coded root


def test_empty_lists_rejected():
    with pytest.raises(ValueError):
        MtpAdvertise(vids=())
    with pytest.raises(ValueError):
        MtpUnreachable(roots=())


def test_data_header_is_five_bytes_for_small_roots():
    packet = Ipv4Packet(Ipv4Address.parse("192.168.11.1"),
                        Ipv4Address.parse("192.168.14.1"),
                        PROTO_UDP, RawBytes(100))
    data = MtpData(src_root=11, dst_root=14, packet=packet)
    assert data.header_size == 5
    assert data.wire_size == 5 + packet.wire_size


def test_data_encapsulation_overhead_is_tiny_vs_vxlan():
    """The MR-MTP header replaces a 50-byte VXLAN+outer-IP+UDP stack
    with 5 bytes — the section IX overhead discussion."""
    packet = Ipv4Packet(Ipv4Address.parse("192.168.11.1"),
                        Ipv4Address.parse("192.168.14.1"),
                        PROTO_UDP, RawBytes(1000))
    data = MtpData(11, 14, packet)
    assert data.wire_size - packet.wire_size == 5


def test_all_message_types_distinct():
    codes = [cls.type_code for cls in
             (MtpKeepalive, MtpFullHello, MtpAdvertise, MtpJoin, MtpOffer,
              MtpAccept, MtpUpdateLost, MtpUnreachable, MtpRestored, MtpData)]
    assert len(set(codes)) == len(codes)
