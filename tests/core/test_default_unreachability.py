"""The default-unreachability extension (DESIGN.md §6) at protocol level."""

from __future__ import annotations

import pytest

from repro.harness.experiments import StackKind, build_and_converge
from repro.harness.failures import FailureInjector
from repro.harness.pathtrace import trace_path
from repro.sim.units import MILLISECOND, SECOND
from repro.topology.clos import ClosParams, two_pod_params


def agg_without_uplinks(seed=29):
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.MTP,
                                          seed=seed)
    agg = topo.aggs[0][0][0]
    injector = FailureInjector(world)
    for top in topo.tops[0][0]:
        injector.cut_link(agg, top)
    world.run_for(2 * SECOND)
    return world, topo, dep, agg


def test_tors_learn_the_exception_set():
    world, topo, dep, agg = agg_without_uplinks()
    for tor_name in topo.tors[0][0]:
        tor = dep.mtp_nodes[tor_name]
        assert tor.table.has_default_mark("eth1")
        assert tor.table.default_exceptions("eth1") == {11, 12}
        # intra-pod roots stay usable via the crippled agg
        assert not tor.table.is_marked("eth1", 11)
        assert not tor.table.is_marked("eth1", 12)
        # inter-pod roots are blocked on that uplink
        assert tor.table.is_marked("eth1", 13)
        assert tor.table.is_marked("eth1", 14)


def test_interpod_flows_avoid_the_crippled_agg():
    world, topo, dep, agg = agg_without_uplinks()
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[0][1][0])
    for port in range(40000, 40032):
        path = trace_path(dep, src, dst, src_port=port)
        assert agg not in path, path


def test_intrapod_flows_may_still_use_it():
    world, topo, dep, agg = agg_without_uplinks()
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[0][0][1])
    used = set()
    for port in range(40000, 40032):
        path = trace_path(dep, src, dst, src_port=port)
        used.add(path[2])  # the agg the flow hashed onto
    assert agg in used, "intra-pod traffic should still use the agg"


def test_no_data_blackholed_after_convergence():
    world, topo, dep, agg = agg_without_uplinks()
    from repro.traffic.generator import ReceiverAnalyzer, TrafficSender

    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[0][1][1])
    analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
    # many flows: with the extension none may hash into the dead end
    senders = []
    for i in range(8):
        s = TrafficSender(dep.servers[src].udp, topo.server_address(dst),
                          src_port=43000 + i, gap_us=5000)
        s.start(count=100)
        senders.append(s)
    world.run_for(2 * SECOND)
    assert analyzer.received == sum(s.sent for s in senders)


def test_blackhole_exists_without_the_extension():
    """Regression oracle for the gap itself: with the default updates
    suppressed, some flows keep hashing into the crippled agg and die —
    demonstrating why the extension is needed."""
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.MTP,
                                          seed=29)
    agg = topo.aggs[0][0][0]
    # sabotage: disable the extension on the agg
    dep.mtp_nodes[agg]._recompute_default_state = lambda: None
    injector = FailureInjector(world)
    for top in topo.tops[0][0]:
        injector.cut_link(agg, top)
    world.run_for(2 * SECOND)
    src = topo.first_server_of(topo.tors[0][0][0])
    dst = topo.first_server_of(topo.tors[0][1][1])
    dead_ends = 0
    for port in range(40000, 40032):
        try:
            trace_path(dep, src, dst, src_port=port)
        except RuntimeError:
            dead_ends += 1
    assert dead_ends > 0, "without the extension some flows must blackhole"


def test_update_counts_stay_small():
    """The extension's cost: a handful of extra messages, not a storm."""
    world, topo, dep = build_and_converge(two_pod_params(), StackKind.MTP,
                                          seed=29)
    agg = topo.aggs[0][0][0]
    t0 = world.sim.now
    injector = FailureInjector(world)
    for top in topo.tops[0][0]:
        injector.cut_link(agg, top)
    world.run_for(2 * SECOND)
    updates = [r for r in world.trace.select(category="mtp.update.tx",
                                             since=t0)]
    # prunes at the two tops + their unreachables + the agg's default
    # advertisements to its two ToRs: well under 20 messages total
    assert 0 < len(updates) <= 20
