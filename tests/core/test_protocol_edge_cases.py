"""MR-MTP edge cases: partial root loss, node restart, wide pods."""

from __future__ import annotations

import pytest

from repro.harness.convergence import converge_from_cold
from repro.harness.deploy import deploy_mtp
from repro.harness.failures import FailureInjector
from repro.net.world import World
from repro.sim.units import MILLISECOND, SECOND
from repro.topology.clos import ClosParams, build_folded_clos


def build(params, seed=19):
    world = World(seed=seed)
    topo = build_folded_clos(params, world=world)
    dep = deploy_mtp(topo)
    dep.start()
    converge_from_cold(world, dep, dep.trees_complete)
    return world, topo, dep


class TestPartialLoss:
    def test_agg_losing_one_tor_keeps_serving_the_others(self):
        """A 3-ToR pod: the agg loses ToR 1 only; roots 12 and 13 stay
        in its table and no UNREACHABLE is sent for them."""
        params = ClosParams(num_pods=2, tors_per_pod=3)
        world, topo, dep = build(params)
        agg = topo.aggs[0][0][0]
        agg_mtp = dep.mtp_nodes[agg]
        assert agg_mtp.table.roots() == {11, 12, 13}
        # fail the agg's port to ToR 1
        case = topo.failure_cases()["TC2"]
        topo.node(case.node).interfaces[case.interface].set_admin(False)
        world.run_for(500 * MILLISECOND)
        assert agg_mtp.table.roots() == {12, 13}
        # remote ToRs marked exactly root 11, nothing else
        remote = dep.mtp_nodes[topo.tors[0][1][0]]
        assert remote.table.marks_on("eth1") == {11}

    def test_tops_prune_only_the_lost_subtree(self):
        params = ClosParams(num_pods=2, tors_per_pod=3)
        world, topo, dep = build(params)
        top = dep.mtp_nodes[topo.tops[0][0][0]]
        before = set(top.table.all_vids())
        case = topo.failure_cases()["TC2"]
        topo.node(case.node).interfaces[case.interface].set_admin(False)
        world.run_for(500 * MILLISECOND)
        after = set(top.table.all_vids())
        gone = before - after
        assert len(gone) == 1
        assert next(iter(gone)).root == 11


class TestRestart:
    def test_agg_node_restart_rebuilds_its_state(self):
        """Kill a whole agg, bring it back: Slow-to-Accept gates the
        re-acceptance, then the trees regrow through it."""
        params = ClosParams(num_pods=2)
        world, topo, dep = build(params)
        agg = topo.aggs[0][0][0]
        injector = FailureInjector(world)
        injector.fail_node(agg)
        world.run_for(SECOND)
        agg_mtp = dep.mtp_nodes[agg]
        assert agg_mtp.table.entry_count() == 0  # everything pruned
        # plane-1 tops lost the pod-1 roots via this agg
        top = dep.mtp_nodes[topo.tops[0][0][0]]
        assert {11, 12} - top.table.roots() == {11, 12}
        injector.restore_node(agg)
        world.run_for(3 * SECOND)
        assert dep.trees_complete()
        assert agg_mtp.table.roots() == {11, 12}
        assert top.table.roots() == {11, 12, 13, 14}

    def test_marks_cleared_after_restart(self):
        params = ClosParams(num_pods=2)
        world, topo, dep = build(params)
        agg = topo.aggs[0][0][0]
        injector = FailureInjector(world)
        injector.fail_node(agg)
        world.run_for(SECOND)
        other_agg = dep.mtp_nodes[topo.aggs[0][1][0]]
        marked = {p for p in other_agg.neighbors
                  if other_agg.table.marks_on(p)}
        assert marked, "pod-2 plane-1 agg must have marked its up ports"
        injector.restore_node(agg)
        world.run_for(3 * SECOND)
        assert all(not other_agg.table.marks_on(p)
                   for p in other_agg.neighbors)


class TestWidePods:
    def test_three_aggs_three_planes(self):
        """aggs_per_pod=3 yields three planes; ToRs get three uplinks and
        hand out three child VIDs."""
        params = ClosParams(num_pods=2, aggs_per_pod=3, tops_per_plane=2)
        world, topo, dep = build(params)
        tor = dep.mtp_nodes[topo.tors[0][0][0]]
        assert len(tor.up_ports()) == 3
        # each agg holds one child VID per pod ToR, with its own port suffix
        suffixes = set()
        for a_idx, agg in enumerate(topo.aggs[0][0]):
            vids = dep.mtp_nodes[agg].table.all_vids()
            assert {v.root for v in vids} == {11, 12}
            suffixes.update(v.parts[1] for v in vids)
        assert suffixes == {1, 2, 3}

    def test_failure_in_wide_pod_leaves_two_planes(self):
        params = ClosParams(num_pods=2, aggs_per_pod=3)
        world, topo, dep = build(params)
        case = topo.failure_cases()["TC2"]
        topo.node(case.node).interfaces[case.interface].set_admin(False)
        world.run_for(500 * MILLISECOND)
        # the remote ToR still reaches root 11 via two unmarked uplinks
        remote = dep.mtp_nodes[topo.tors[0][1][0]]
        unmarked = [p for p in remote.up_ports()
                    if not remote.table.is_marked(p, 11)]
        assert len(unmarked) == 2
        from repro.harness.pathtrace import trace_path

        src = topo.first_server_of(topo.tors[0][1][0])
        dst = topo.first_server_of(topo.tors[0][0][0])
        for port in range(40000, 40008):
            path = trace_path(dep, src, dst, src_port=port)
            # the agg whose downlink died cannot be on any delivering path
            assert case.node not in path, path
