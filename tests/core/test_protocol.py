"""MR-MTP on the paper's 2-PoD fabric: tree construction, failure
updates, keepalive suppression, data plane."""

from __future__ import annotations

import pytest

from repro.core.vid import Vid
from repro.harness.convergence import converge_from_cold
from repro.harness.deploy import deploy_mtp
from repro.net.world import World
from repro.sim.units import MILLISECOND, SECOND
from repro.topology.clos import build_folded_clos, two_pod_params


@pytest.fixture
def fabric():
    world = World(seed=3)
    topo = build_folded_clos(two_pod_params(), world=world)
    dep = deploy_mtp(topo)
    dep.start()
    converge_from_cold(world, dep, dep.trees_complete)
    return world, topo, dep


def test_tor_vids_derive_from_rack_subnets(fabric):
    world, topo, dep = fabric
    roots = [dep.mtp_nodes[t].own_root for t in topo.all_tors()]
    assert roots == [11, 12, 13, 14]


def test_aggs_acquire_one_vid_per_pod_tor(fabric):
    """S1_1 holds 11.1 and 12.1 — extensions of both its ToRs' roots by
    the ToR port facing it (paper Fig. 2)."""
    world, topo, dep = fabric
    agg1 = dep.mtp_nodes[topo.aggs[0][0][0]]
    assert sorted(str(v) for v in agg1.table.all_vids()) == ["11.1", "12.1"]
    agg2 = dep.mtp_nodes[topo.aggs[0][0][1]]
    assert sorted(str(v) for v in agg2.table.all_vids()) == ["11.2", "12.2"]


def test_tops_mesh_all_four_trees(fabric):
    """Every top holds one VID per ToR — the meshed-tree invariant."""
    world, topo, dep = fabric
    for top in topo.all_tops():
        assert dep.mtp_nodes[top].table.roots() == {11, 12, 13, 14}
        assert dep.mtp_nodes[top].table.entry_count() == 4


def test_vid_components_are_parent_ports(fabric):
    world, topo, dep = fabric
    top = dep.mtp_nodes[topo.tops[0][0][0]]
    for vid in top.table.all_vids():
        assert vid.depth == 3  # root.torport.aggport
        # the agg's top-facing ports are 3 and 4 (after 2 ToR ports)
        assert vid.parts[1] in (1, 2)
        assert vid.parts[2] in (3, 4)


def test_no_spurious_vids_at_tors(fabric):
    """ToRs are roots: they acquire no VIDs from anyone."""
    world, topo, dep = fabric
    for tor in topo.all_tors():
        assert dep.mtp_nodes[tor].table.entry_count() == 0


def test_keepalive_suppression_under_control_traffic(fabric):
    """Any MR-MTP message doubles as a keepalive, so the explicit 1-byte
    hello only fires on silent links (paper sections IV.B, VII.F)."""
    world, topo, dep = fabric
    tor = dep.mtp_nodes[topo.tors[0][0][0]]
    sent_before = tor.counters.keepalives_sent
    world.run_for(1 * SECOND)
    sent_quiet = tor.counters.keepalives_sent - sent_before
    # idle fabric: ~20 hellos/s per uplink port (50 ms interval, 2 ports)
    assert 30 <= sent_quiet <= 45


def test_neighbors_stay_up_on_idle_fabric(fabric):
    world, topo, dep = fabric
    world.run_for(3 * SECOND)
    for name, mtp in dep.mtp_nodes.items():
        for nbr in mtp.neighbors.values():
            assert nbr.up, f"{name}:{nbr.port} flapped on an idle fabric"


class TestFailure:
    def test_downstream_port_death_prunes_and_propagates(self, fabric):
        world, topo, dep = fabric
        tor = topo.tors[0][0][0]       # L-1-1, root 11
        agg = topo.aggs[0][0][0]       # S-1-1
        case = topo.failure_cases()["TC2"]  # fail at the agg side
        topo.node(case.node).interfaces[case.interface].set_admin(False)
        world.run_for(500 * MILLISECOND)
        agg_mtp = dep.mtp_nodes[agg]
        assert 11 not in agg_mtp.table.roots()
        # plane-1 tops pruned their 11.* entries
        for top in topo.tops[0][0]:
            assert 11 not in dep.mtp_nodes[top].table.roots()
        # plane-2 tops unaffected
        for top in topo.tops[0][1]:
            assert 11 in dep.mtp_nodes[top].table.roots()
        # remote ToRs marked the unusable uplink for root 11
        for pod, tor_idx in ((1, 0), (1, 1)):
            remote = dep.mtp_nodes[topo.tors[0][pod][tor_idx]]
            assert remote.table.is_marked("eth1", 11)
            assert not remote.table.is_marked("eth2", 11)

    def test_remote_side_detects_via_dead_timer(self, fabric):
        world, topo, dep = fabric
        case = topo.failure_cases()["TC1"]  # fail at the ToR side
        t0 = world.sim.now
        topo.node(case.node).interfaces[case.interface].set_admin(False)
        world.run_for(500 * MILLISECOND)
        # S-1-1 (remote end) pruned root 11 only after its dead timer
        prunes = [r for r in world.trace.select(category="mtp.neighbor",
                                                node=case.peer_node, since=t0)
                  if "down" in r.message]
        assert prunes
        latency = prunes[0].time - t0
        assert 50 * MILLISECOND <= latency <= 100 * MILLISECOND + 5000

    def test_update_only_prunes_no_recomputation(self, fabric):
        """Receivers of UPDATE messages never touch unrelated entries."""
        world, topo, dep = fabric
        case = topo.failure_cases()["TC2"]
        top = dep.mtp_nodes[topo.tops[0][0][0]]
        before = {str(v) for v in top.table.all_vids()}
        topo.node(case.node).interfaces[case.interface].set_admin(False)
        world.run_for(500 * MILLISECOND)
        after = {str(v) for v in top.table.all_vids()}
        assert before - after == {"11.1.3"} if "11.1.3" in before else before - after
        assert len(before - after) == 1  # exactly the lost subtree

    def test_unreachable_updates_stop_at_reachable_nodes(self, fabric):
        """TC4: only the plane's other aggs mark; ToRs never hear of it."""
        world, topo, dep = fabric
        case = topo.failure_cases()["TC4"]
        topo.node(case.node).interfaces[case.interface].set_admin(False)
        world.run_for(500 * MILLISECOND)
        # S-2-1 (pod-2 plane-1 agg) marked its port to T-1
        other_agg = dep.mtp_nodes[topo.aggs[0][1][0]]
        marked_ports = [p for p in other_agg.neighbors
                        if other_agg.table.marks_on(p)]
        assert len(marked_ports) == 1
        # no ToR marked anything: S-2-1 still reaches pod 1 via T-2
        for tor in topo.all_tors():
            tor_mtp = dep.mtp_nodes[tor]
            assert all(not tor_mtp.table.marks_on(p)
                       for p in tor_mtp.neighbors)

    def test_recovery_restores_tree_and_clears_marks(self, fabric):
        world, topo, dep = fabric
        case = topo.failure_cases()["TC2"]
        iface = topo.node(case.node).interfaces[case.interface]
        iface.set_admin(False)
        world.run_for(500 * MILLISECOND)
        iface.set_admin(True)
        world.run_for(2 * SECOND)
        # tree re-formed
        assert dep.trees_complete()
        agg = dep.mtp_nodes[topo.aggs[0][0][0]]
        assert 11 in agg.table.roots()
        # remote ToR marks cleared by RESTORED updates
        for pod, tor_idx in ((1, 0), (1, 1)):
            remote = dep.mtp_nodes[topo.tors[0][pod][tor_idx]]
            assert not remote.table.is_marked("eth1", 11)

    def test_slow_to_accept_dampens_flapping_interface(self, fabric):
        """A fast-toggling interface must not be re-accepted between
        flaps (the Slow-to-Accept ablation's base behaviour)."""
        world, topo, dep = fabric
        case = topo.failure_cases()["TC2"]
        iface = topo.node(case.node).interfaces[case.interface]
        t0 = world.sim.now
        # 120 ms down (exceeds the 100 ms dead timer: every flap kills) /
        # 60 ms up (admits at most two hellos: Slow-to-Accept never
        # reaches its three-consecutive threshold)
        for i in range(8):
            world.sim.schedule_at(t0 + i * 180_000, iface.set_admin, False)
            world.sim.schedule_at(t0 + i * 180_000 + 120_000,
                                  iface.set_admin, True)
        last_toggle = t0 + 7 * 180_000 + 120_000
        world.run(until=last_toggle + 2 * SECOND)
        # no re-acceptance while the interface was still flapping...
        flap_ups = [r for r in world.trace.select(
                        category="mtp.neighbor", since=t0, until=last_toggle)
                    if "up (tier" in r.message
                    and r.node in (topo.tors[0][0][0], topo.aggs[0][0][0])]
        assert flap_ups == [], "flapping link must stay dampened"
        # ...but recovery happens once it settles
        assert dep.mtp_nodes[topo.tors[0][0][0]].neighbors["eth1"].up
        assert dep.mtp_nodes[topo.aggs[0][0][0]].neighbors["eth1"].up


class TestDataPlane:
    def test_server_to_server_delivery(self, fabric):
        world, topo, dep = fabric
        from repro.traffic.generator import ReceiverAnalyzer, TrafficSender

        src = topo.first_server_of(topo.tors[0][0][0])
        dst = topo.first_server_of(topo.tors[0][1][1])
        sender = TrafficSender(dep.servers[src].udp,
                               topo.server_address(dst), gap_us=1000)
        analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
        sender.start(count=100)
        world.run_for(2 * SECOND)
        report = analyzer.report(sender)
        assert report.lost == 0 and report.received == 100

    def test_same_rack_traffic_bypasses_fabric(self, fabric):
        world, topo, dep = fabric
        tor = topo.tors[0][0][0]
        mtp = dep.mtp_nodes[tor]
        sent_before = mtp.counters.data_sent
        # servers_per_rack=1, so use ToR-local address as the peer
        from repro.traffic.generator import TrafficSender

        src = topo.first_server_of(tor)
        gw = topo.server_gateway[src]
        # send to the gateway address itself: same subnet, no encap
        sender = TrafficSender(dep.servers[src].udp, gw, gap_us=1000)
        sender.start(count=5)
        world.run_for(1 * SECOND)
        assert mtp.counters.data_sent == sent_before

    def test_data_counts_as_keepalive(self, fabric):
        """Steady data flow suppresses explicit hellos on its links."""
        world, topo, dep = fabric
        from repro.traffic.generator import ReceiverAnalyzer, TrafficSender

        src_tor = topo.tors[0][0][0]
        dst_tor = topo.tors[0][1][1]
        src = topo.first_server_of(src_tor)
        dst = topo.first_server_of(dst_tor)
        analyzer = ReceiverAnalyzer(dep.servers[dst].udp)
        sender = TrafficSender(dep.servers[src].udp,
                               topo.server_address(dst), gap_us=10_000)
        tor_mtp = dep.mtp_nodes[src_tor]
        world.run_for(1 * SECOND)
        idle_rate = tor_mtp.counters.keepalives_sent
        tor_mtp.counters.keepalives_sent = 0
        sender.start(count=200)  # 100 pkts/s for 2 s on one uplink
        world.run_for(2 * SECOND)
        busy = tor_mtp.counters.keepalives_sent
        # the loaded uplink sends (almost) no explicit keepalives;
        # the idle uplink continues at ~20/s
        assert busy < idle_rate * 2 * 0.8
