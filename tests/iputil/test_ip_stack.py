"""IP stack: ARP, local delivery, forwarding, UDP."""

from __future__ import annotations

from repro.iputil.stack import IpStack
from repro.iputil.udp_service import UdpService
from repro.routing.table import NextHop, Route
from repro.stack.addresses import Ipv4Address, Ipv4Network
from repro.stack.payload import RawBytes
from repro.net.world import World

from tests.conftest import make_ip_pair


def ip(text):
    return Ipv4Address.parse(text)


def test_udp_end_to_end_with_arp(world):
    a, b, sa, sb = make_ip_pair(world)
    ua, ub = UdpService(sa), UdpService(sb)
    got = []
    ub.open(5000, lambda payload, src, sport, iface: got.append((payload, str(src), sport)))
    ua.send(ip("10.0.0.2"), 5000, 4000, RawBytes(100, tag="hi"))
    world.run()
    assert len(got) == 1
    payload, src, sport = got[0]
    assert payload.tag == "hi" and src == "10.0.0.1" and sport == 4000


def test_arp_resolves_once_then_caches(world):
    a, b, sa, sb = make_ip_pair(world)
    ua, ub = UdpService(sa), UdpService(sb)
    got = []
    ub.open(5000, lambda payload, *rest: got.append(payload))
    for _ in range(3):
        ua.send(ip("10.0.0.2"), 5000, 4000, RawBytes(10))
    world.run()
    assert len(got) == 3
    # only one ARP request should have gone out (first send triggers it)
    arp_frames = [1 for i in range(1)]  # placeholder to assert via counters
    # rely on counters: 3 data frames + 1 arp request from A
    assert a.interfaces["eth1"].counters.tx_frames == 4


def test_arp_failure_drops_queued_packets(world):
    a, b, sa, sb = make_ip_pair(world)
    ua = UdpService(sa)
    b.interfaces["eth1"].set_admin(False)  # peer cannot answer ARP
    ua.send(ip("10.0.0.2"), 5000, 4000, RawBytes(10))
    world.run()
    assert sa.counters.dropped_arp_fail == 1


def test_no_route_drop(world):
    a, b, sa, sb = make_ip_pair(world)
    ua = UdpService(sa)
    ua.send(ip("99.99.99.99"), 1, 1, RawBytes(1))
    world.run()
    assert sa.counters.dropped_no_route >= 1


def test_forwarding_through_a_router():
    world = World(seed=1)
    # A -- R -- B on two /24s
    a = world.add_node("A")
    r = world.add_node("R")
    b = world.add_node("B")
    l1 = world.connect(a, r)
    l2 = world.connect(r, b)
    l1.end_a.assign_address(ip("10.0.1.1"), 24)
    l1.end_b.assign_address(ip("10.0.1.254"), 24)
    l2.end_a.assign_address(ip("10.0.2.254"), 24)
    l2.end_b.assign_address(ip("10.0.2.1"), 24)
    sa = IpStack(a, forwarding=False)
    sr = IpStack(r, forwarding=True)
    sb = IpStack(b, forwarding=False)
    for s in (sa, sr, sb):
        s.install_connected_routes()
    # default routes on the hosts
    sa.table.install(Route(Ipv4Network.parse("0.0.0.0/0"),
                           (NextHop("eth1", ip("10.0.1.254")),), proto="static"))
    sb.table.install(Route(Ipv4Network.parse("0.0.0.0/0"),
                           (NextHop("eth1", ip("10.0.2.254")),), proto="static"))
    ua, ub = UdpService(sa), UdpService(sb)
    got = []
    ub.open(7, lambda payload, src, sport, iface: got.append(str(src)))
    ua.send(ip("10.0.2.1"), 7, 7, RawBytes(64))
    world.run()
    assert got == ["10.0.1.1"]
    assert sr.counters.forwarded == 1


def test_host_does_not_forward():
    world = World(seed=1)
    a = world.add_node("A")
    h = world.add_node("H")
    b = world.add_node("B")
    l1 = world.connect(a, h)
    l2 = world.connect(h, b)
    l1.end_a.assign_address(ip("10.0.1.1"), 24)
    l1.end_b.assign_address(ip("10.0.1.2"), 24)
    l2.end_a.assign_address(ip("10.0.2.1"), 24)
    l2.end_b.assign_address(ip("10.0.2.2"), 24)
    sa = IpStack(a, forwarding=False)
    sh = IpStack(h, forwarding=False)  # host in the middle
    sb = IpStack(b, forwarding=False)
    for s in (sa, sh, sb):
        s.install_connected_routes()
    sa.table.install(Route(Ipv4Network.parse("10.0.2.0/24"),
                           (NextHop("eth1", ip("10.0.1.2")),)))
    ua = UdpService(sa)
    ub = UdpService(sb)
    got = []
    ub.open(7, lambda *args: got.append(1))
    ua.send(ip("10.0.2.2"), 7, 7, RawBytes(8))
    world.run()
    assert got == []
    assert sh.counters.forwarded == 0


def test_ttl_expiry_in_forwarding_loop():
    """Two routers with default routes at each other: packet dies by TTL."""
    world = World(seed=1)
    r1 = world.add_node("R1")
    r2 = world.add_node("R2")
    link = world.connect(r1, r2)
    link.end_a.assign_address(ip("10.0.0.1"), 24)
    link.end_b.assign_address(ip("10.0.0.2"), 24)
    s1 = IpStack(r1)
    s2 = IpStack(r2)
    s1.install_connected_routes()
    s2.install_connected_routes()
    s1.table.install(Route(Ipv4Network.parse("0.0.0.0/0"),
                           (NextHop("eth1", ip("10.0.0.2")),)))
    s2.table.install(Route(Ipv4Network.parse("0.0.0.0/0"),
                           (NextHop("eth1", ip("10.0.0.1")),)))
    u1 = UdpService(s1)
    u1.send(ip("42.0.0.1"), 1, 1, RawBytes(1), ttl=16)
    world.run(max_events=10_000)
    assert s1.counters.dropped_ttl + s2.counters.dropped_ttl == 1


def test_udp_port_demux_and_close(world):
    a, b, sa, sb = make_ip_pair(world)
    ua, ub = UdpService(sa), UdpService(sb)
    got_a, got_b = [], []
    ub.open(100, lambda *args: got_a.append(1))
    ub.open(200, lambda *args: got_b.append(1))
    ua.send(ip("10.0.0.2"), 100, 1, RawBytes(1))
    ua.send(ip("10.0.0.2"), 200, 1, RawBytes(1))
    ua.send(ip("10.0.0.2"), 300, 1, RawBytes(1))  # unbound port: silently dropped
    world.run()
    assert (len(got_a), len(got_b)) == (1, 1)
    ub.close(100)
    ua.send(ip("10.0.0.2"), 100, 1, RawBytes(1))
    world.run()
    assert len(got_a) == 1
