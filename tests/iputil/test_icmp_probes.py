"""ICMP echo/errors and the ping/traceroute utilities."""

from __future__ import annotations

import pytest

from repro.harness.experiments import StackKind, build_and_converge
from repro.iputil.probes import Pinger, Traceroute
from repro.sim.units import SECOND
from repro.stack.addresses import Ipv4Address
from repro.stack.icmp import IcmpMessage, IcmpType
from repro.topology.clos import two_pod_params

from tests.conftest import make_ip_pair


def ip(text):
    return Ipv4Address.parse(text)


class TestIcmpBasics:
    def test_echo_request_gets_reply(self, world):
        a, b, sa, sb = make_ip_pair(world)
        replies = []
        sa.add_icmp_listener(lambda m, src: replies.append((m, str(src))))
        sa.send_echo_request(ip("10.0.0.2"), identifier=7, sequence=1)
        world.run()
        assert len(replies) == 1
        message, src = replies[0]
        assert message.icmp_type is IcmpType.ECHO_REPLY
        assert message.identifier == 7 and message.sequence == 1
        assert src == "10.0.0.2"

    def test_echo_sizes(self):
        req = IcmpMessage(IcmpType.ECHO_REQUEST, data_bytes=56)
        assert req.wire_size == 64  # the classic 64-byte ping payload

    def test_validation(self):
        with pytest.raises(ValueError):
            IcmpMessage(IcmpType.ECHO_REQUEST, identifier=70000)

    def test_ping_utility(self, world):
        a, b, sa, sb = make_ip_pair(world)
        done = []
        pinger = Pinger(sa, ip("10.0.0.2"), count=5, on_done=done.append)
        pinger.start()
        world.run(until=3 * SECOND)
        assert done
        result = done[0]
        assert result.sent == 5 and result.received == 5
        assert result.lost == 0
        assert all(rtt > 0 for rtt in result.rtts_us)
        assert result.min_rtt_us <= result.avg_rtt_us

    def test_ping_counts_losses(self, world):
        a, b, sa, sb = make_ip_pair(world)
        done = []
        pinger = Pinger(sa, ip("10.0.0.2"), count=5, interval_us=100_000,
                        on_done=done.append)
        pinger.start()
        # kill the peer halfway through
        world.sim.schedule_at(250_000, b.interfaces["eth1"].set_admin, False)
        world.run(until=5 * SECOND)
        assert done and 0 < done[0].received < 5


class TestFabricProbes:
    @pytest.fixture(scope="class")
    def bgp_fabric(self):
        return build_and_converge(two_pod_params(), StackKind.BGP, seed=31)

    @pytest.fixture(scope="class")
    def mtp_fabric(self):
        return build_and_converge(two_pod_params(), StackKind.MTP, seed=31)

    def test_ping_across_bgp_fabric(self, bgp_fabric):
        world, topo, dep = bgp_fabric
        src = topo.first_server_of(topo.tors[0][0][0])
        dst_ip = topo.server_address(topo.first_server_of(topo.tors[0][1][1]))
        done = []
        Pinger(dep.servers[src].stack, dst_ip, count=3,
               on_done=done.append).start()
        world.run_for(3 * SECOND)
        assert done and done[0].received == 3

    def test_traceroute_bgp_shows_every_router_hop(self, bgp_fabric):
        """server -> ToR -> agg -> top -> agg -> ToR -> server: five
        routers answer TIME_EXCEEDED, the destination answers the echo."""
        world, topo, dep = bgp_fabric
        src = topo.first_server_of(topo.tors[0][0][0])
        dst_ip = topo.server_address(topo.first_server_of(topo.tors[0][1][1]))
        done = []
        trace = Traceroute(dep.servers[src].stack, dst_ip,
                           on_done=done.append)
        trace.start()
        world.run_for(10 * SECOND)
        assert done
        hops = done[0]
        assert hops[-1].reached
        assert len(hops) == 6  # 5 routers + destination
        assert all(h.address is not None for h in hops)
        text = trace.render()
        assert "[destination]" in text

    def test_traceroute_mtp_fabric_is_one_ip_hop(self, mtp_fabric):
        """MR-MTP transit never touches the inner TTL (the encapsulated
        fabric behaves like the paper's VXLAN overlay): the destination
        answers the very first probe."""
        world, topo, dep = mtp_fabric
        src = topo.first_server_of(topo.tors[0][0][0])
        dst_ip = topo.server_address(topo.first_server_of(topo.tors[0][1][1]))
        done = []
        Traceroute(dep.servers[src].stack, dst_ip,
                   on_done=done.append).start()
        world.run_for(10 * SECOND)
        assert done
        hops = done[0]
        assert hops[-1].reached
        assert len(hops) == 1

    def test_ping_across_mtp_fabric(self, mtp_fabric):
        world, topo, dep = mtp_fabric
        src = topo.first_server_of(topo.tors[0][0][0])
        dst_ip = topo.server_address(topo.first_server_of(topo.tors[0][1][1]))
        done = []
        Pinger(dep.servers[src].stack, dst_ip, count=3,
               on_done=done.append).start()
        world.run_for(3 * SECOND)
        assert done and done[0].received == 3
