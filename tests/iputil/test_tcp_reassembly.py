"""TCP receive-path details: out-of-order reassembly, duplicates."""

from __future__ import annotations

import pytest

from repro.iputil.tcp import TcpConnection, TcpService, TcpState, INITIAL_SEQ
from repro.stack.addresses import Ipv4Address
from repro.stack.payload import RawBytes
from repro.stack.tcp_segment import TcpFlags, TcpSegment

from tests.conftest import make_ip_pair


def ip(text):
    return Ipv4Address.parse(text)


def established_pair(world):
    a, b, sa, sb = make_ip_pair(world)
    ta, tb = TcpService(sa), TcpService(sb)
    server_conns = []
    received = []

    def on_accept(conn):
        server_conns.append(conn)
        conn.on_receive = received.append

    tb.listen(179, on_accept)
    conn = ta.connect(ip("10.0.0.2"), 179)
    world.run(until=1_000_000)
    assert conn.established and server_conns[0].established
    return conn, server_conns[0], received


def seg(local: TcpConnection, seq, payload, flags=TcpFlags.ACK | TcpFlags.PSH):
    """Build a segment as if sent by the peer of ``local``."""
    return TcpSegment(
        src_port=local.remote_port, dst_port=local.local_port,
        seq=seq, ack=local.snd_nxt, flags=flags, payload=payload,
    )


def test_out_of_order_segments_reassemble_in_order(world):
    client, server, received = established_pair(world)
    base = server.rcv_nxt
    s1 = seg(server, base, RawBytes(10, tag="first"))
    s2 = seg(server, base + 10, RawBytes(10, tag="second"))
    s3 = seg(server, base + 20, RawBytes(10, tag="third"))
    # deliver 3, 1, 2
    server.handle_segment(s3)
    assert received == []  # buffered, not delivered
    server.handle_segment(s1)
    assert [p.tag for p in received] == ["first"]
    server.handle_segment(s2)
    assert [p.tag for p in received] == ["first", "second", "third"]
    assert server.rcv_nxt == base + 30


def test_duplicate_segment_reacked_not_redelivered(world):
    client, server, received = established_pair(world)
    base = server.rcv_nxt
    s1 = seg(server, base, RawBytes(10, tag="only"))
    server.handle_segment(s1)
    sent_before = server.segments_sent
    server.handle_segment(s1)  # duplicate
    assert [p.tag for p in received] == ["only"]
    assert server.segments_sent == sent_before + 1  # a pure re-ACK


def test_ack_prunes_retransmit_queue(world):
    client, server, received = established_pair(world)
    client.send(RawBytes(10))
    client.send(RawBytes(10))
    assert len(client._unacked) == 2
    world.run_for(1_000_000)
    assert client._unacked == []
    assert not client._rto_timer.running


def test_rst_mid_stream_closes_immediately(world):
    client, server, received = established_pair(world)
    closed = []
    server.on_close = closed.append
    rst = seg(server, server.rcv_nxt, RawBytes(0), flags=TcpFlags.RST)
    server.handle_segment(rst)
    assert server.state is TcpState.CLOSED
    assert closed == ["reset-by-peer"]


def test_seq_numbers_count_payload_bytes(world):
    client, server, received = established_pair(world)
    start = client.snd_nxt
    client.send(RawBytes(100))
    assert client.snd_nxt == start + 100
    client.send(RawBytes(1))
    assert client.snd_nxt == start + 101
