"""TCP: handshake, ordered delivery, retransmission, teardown, RST."""

from __future__ import annotations

import pytest

from repro.iputil.stack import IpStack
from repro.iputil.tcp import TcpService, TcpState, MSS
from repro.stack.addresses import Ipv4Address
from repro.stack.payload import RawBytes
from repro.net.world import World
from repro.sim.units import SECOND

from tests.conftest import make_ip_pair


def ip(text):
    return Ipv4Address.parse(text)


def tcp_pair(world):
    a, b, sa, sb = make_ip_pair(world)
    return a, b, TcpService(sa), TcpService(sb)


def test_handshake_establishes_both_ends(world):
    a, b, ta, tb = tcp_pair(world)
    accepted = []
    tb.listen(179, accepted.append)
    conn = ta.connect(ip("10.0.0.2"), 179)
    world.run()
    assert conn.state is TcpState.ESTABLISHED
    assert len(accepted) == 1
    assert accepted[0].state is TcpState.ESTABLISHED


def test_message_per_segment_delivery_in_order(world):
    a, b, ta, tb = tcp_pair(world)
    received = []
    def on_accept(conn):
        conn.on_receive = received.append
    tb.listen(179, on_accept)
    conn = ta.connect(ip("10.0.0.2"), 179)
    conn.on_established = lambda: [conn.send(RawBytes(10 + i, tag=f"m{i}"))
                                   for i in range(5)]
    world.run()
    assert [p.tag for p in received] == ["m0", "m1", "m2", "m3", "m4"]
    assert [p.wire_size for p in received] == [10, 11, 12, 13, 14]


def test_bidirectional_traffic(world):
    a, b, ta, tb = tcp_pair(world)
    got_at_a, got_at_b = [], []
    def on_accept(conn):
        conn.on_receive = lambda p: (got_at_b.append(p.tag), conn.send(RawBytes(5, tag="pong")))
    tb.listen(179, on_accept)
    conn = ta.connect(ip("10.0.0.2"), 179)
    conn.on_receive = lambda p: got_at_a.append(p.tag)
    conn.on_established = lambda: conn.send(RawBytes(5, tag="ping"))
    world.run()
    assert got_at_b == ["ping"] and got_at_a == ["pong"]


def test_send_before_established_raises(world):
    a, b, ta, tb = tcp_pair(world)
    tb.listen(179, lambda c: None)
    conn = ta.connect(ip("10.0.0.2"), 179)
    with pytest.raises(RuntimeError):
        conn.send(RawBytes(1))


def test_oversize_send_rejected(world):
    a, b, ta, tb = tcp_pair(world)
    tb.listen(179, lambda c: None)
    conn = ta.connect(ip("10.0.0.2"), 179)
    world.run()
    with pytest.raises(ValueError):
        conn.send(RawBytes(MSS + 1))


def test_retransmission_recovers_from_outage(world):
    """Down the receiver's interface briefly: segment retransmits and the
    stream survives once the interface returns (Slow path: ARP re-resolution
    not needed since cache is warm)."""
    a, b, ta, tb = tcp_pair(world)
    received = []
    def on_accept(conn):
        conn.on_receive = received.append
    tb.listen(179, on_accept)
    conn = ta.connect(ip("10.0.0.2"), 179)
    world.run(until=SECOND)
    assert conn.established
    # black-hole b's side for 300 ms
    b.interfaces["eth1"].set_admin(False)
    world.sim.schedule_after(300_000, b.interfaces["eth1"].set_admin, True)
    conn.send(RawBytes(42, tag="survives"))
    world.run(until=5 * SECOND)
    assert [p.tag for p in received] == ["survives"]
    assert conn.segments_retransmitted >= 1


def test_retransmit_limit_aborts_connection(world):
    a, b, ta, tb = tcp_pair(world)
    closed = []
    tb.listen(179, lambda c: None)
    conn = ta.connect(ip("10.0.0.2"), 179)
    world.run(until=SECOND)
    assert conn.established
    conn.on_close = closed.append
    b.interfaces["eth1"].set_admin(False)  # permanent black hole
    conn.send(RawBytes(1))
    world.run(until=60 * SECOND)
    assert conn.state is TcpState.CLOSED
    assert closed == ["retransmit-timeout"]


def test_graceful_close_fin_handshake(world):
    a, b, ta, tb = tcp_pair(world)
    server_conns = []
    def on_accept(conn):
        server_conns.append(conn)
        conn.on_close = lambda reason: conn.close()  # close when peer closes
    tb.listen(179, on_accept)
    conn = ta.connect(ip("10.0.0.2"), 179)
    world.run(until=SECOND)
    conn.close()
    world.run(until=10 * SECOND)
    assert conn.state in (TcpState.TIME_WAIT, TcpState.CLOSED)
    assert server_conns[0].state is TcpState.CLOSED


def test_rst_on_connect_to_closed_port(world):
    a, b, ta, tb = tcp_pair(world)
    closed = []
    conn = ta.connect(ip("10.0.0.2"), 9999)  # nothing listening
    conn.on_close = closed.append
    world.run(until=SECOND)
    assert conn.state is TcpState.CLOSED
    assert closed == ["reset-by-peer"]


def test_abort_sends_rst_to_peer(world):
    a, b, ta, tb = tcp_pair(world)
    server = []
    closed = []
    def on_accept(conn):
        server.append(conn)
        conn.on_close = closed.append
    tb.listen(179, on_accept)
    conn = ta.connect(ip("10.0.0.2"), 179)
    world.run(until=SECOND)
    conn.abort("local-teardown")
    world.run(until=2 * SECOND)
    assert server[0].state is TcpState.CLOSED
    assert closed == ["reset-by-peer"]


def test_duplicate_listen_rejected(world):
    a, b, ta, tb = tcp_pair(world)
    tb.listen(179, lambda c: None)
    with pytest.raises(ValueError):
        tb.listen(179, lambda c: None)


def test_pure_acks_are_66_bytes_on_the_wire(world):
    """Every data segment triggers a 66-byte pure ACK — the TCP overhead
    the paper attributes to BGP keepalive traffic."""
    from repro.net.capture import Capture
    from repro.stack.ipv4 import Ipv4Packet
    from repro.stack.tcp_segment import TcpSegment

    a, b, ta, tb = tcp_pair(world)

    def is_pure_ack(frame):
        pkt = frame.payload
        return (isinstance(pkt, Ipv4Packet)
                and isinstance(pkt.payload, TcpSegment)
                and pkt.payload.data_len == 0
                and pkt.payload.seq_space == 0)

    cap = Capture(frame_filter=is_pure_ack)
    cap.attach(b.interfaces.values())
    def on_accept(conn):
        conn.on_receive = lambda p: None
    tb.listen(179, on_accept)
    conn = ta.connect(ip("10.0.0.2"), 179)
    conn.on_established = lambda: conn.send(RawBytes(19))
    world.run(until=SECOND)
    tx_acks = [r for r in cap.records if r.direction.value == "tx"]
    assert tx_acks, "expected at least one pure ACK from the receiver"
    assert all(r.wire_size == 66 for r in tx_acks)
