"""The gray-failure layer: per-direction impairments on a Link.

Covers profile validation / presets / payload round-trip, each effect in
isolation (loss, Gilbert-Elliott bursts, corruption, duplication,
jitter-driven reordering), direction asymmetry, determinism of the
dedicated RNG stream, and the equal-timestamp delivery tiebreak.
"""

from __future__ import annotations

import pytest

from repro.net.impairment import (
    PRESETS,
    ImpairmentProfile,
    LinkImpairment,
    resolve_profile,
    rng_stream_name,
)
from repro.net.world import World
from repro.stack.addresses import BROADCAST_MAC
from repro.stack.ethernet import ETHERTYPE_MTP, EthernetFrame
from repro.stack.payload import RawBytes


def frame(tag: str = "", size: int = 100) -> EthernetFrame:
    return EthernetFrame(BROADCAST_MAC, BROADCAST_MAC, ETHERTYPE_MTP,
                         RawBytes(size, tag))


@pytest.fixture
def pair(world):
    a = world.add_node("A", tier=1)
    b = world.add_node("B", tier=1)
    link = world.connect(a, b)
    return world, link


def impair(world, link, sender, **fields):
    profile = resolve_profile(**fields) if fields else PRESETS["lossy"]
    rng = world.rng.stream(rng_stream_name(sender.full_name))
    return link.set_impairment(sender, profile, rng)


def blast(world, link, n=400):
    """Send n frames A->B, spaced so nothing ever queues."""
    sender = link.end_a
    for i in range(n):
        world.sim.schedule_at(world.sim.now + 1 + i * 1000,
                              sender.send, frame(str(i)))
    world.run()


# ----------------------------------------------------------------------
# profile validation
# ----------------------------------------------------------------------
def test_profile_rejects_out_of_range_probability():
    with pytest.raises(ValueError):
        ImpairmentProfile(loss=1.5)
    with pytest.raises(ValueError):
        ImpairmentProfile(corrupt=-0.1)


def test_profile_rejects_bad_jitter():
    with pytest.raises(ValueError):
        ImpairmentProfile(jitter_us=-1)
    with pytest.raises(ValueError):
        ImpairmentProfile(jitter_us=1.5)  # type: ignore[arg-type]


def test_profile_rejects_absorbing_bad_state():
    with pytest.raises(ValueError):
        ImpairmentProfile(ge_p=0.1, ge_r=0.0)


def test_resolve_profile_rejects_noop_and_unknowns():
    with pytest.raises(ValueError):
        resolve_profile()  # all defaults = no-op
    with pytest.raises(ValueError):
        resolve_profile("no-such-preset")
    with pytest.raises(ValueError):
        resolve_profile(loss=0.1, sparkle=3)


def test_resolve_profile_preset_with_override():
    profile = resolve_profile("gray", loss=0.3)
    assert profile.loss == 0.3
    assert profile.corrupt == PRESETS["gray"].corrupt


def test_profile_payload_round_trip():
    profile = resolve_profile(loss=0.1, jitter_us=50, ge_p=0.05, ge_r=0.5)
    payload = profile.to_payload()
    assert payload == {"loss": 0.1, "jitter_us": 50,
                       "ge_p": 0.05, "ge_r": 0.5}
    assert ImpairmentProfile.from_payload(payload) == profile
    with pytest.raises(ValueError):
        ImpairmentProfile.from_payload({"loss": 0.1, "bogus": 1})


def test_all_presets_are_valid_and_not_noop():
    for name, profile in PRESETS.items():
        assert not profile.is_noop, name
        assert ImpairmentProfile.from_payload(
            profile.to_payload()) == profile


# ----------------------------------------------------------------------
# effects on the wire
# ----------------------------------------------------------------------
def test_independent_loss_drops_frames(pair):
    world, link = pair
    state = impair(world, link, link.end_a, loss=0.25)
    blast(world, link, 400)
    assert link.end_a.counters.tx_frames == 400  # sender saw them all go
    lost = link.frames_lost_impaired
    assert lost == state.lost > 0
    assert link.end_b.counters.rx_frames == 400 - lost
    # roughly the configured rate (binomial, wide tolerance)
    assert 0.12 < lost / 400 < 0.40


def test_corruption_dropped_at_receiver_with_counter(pair):
    world, link = pair
    impair(world, link, link.end_a, corrupt=0.3)
    delivered = []
    link.end_b.node.register_handler(ETHERTYPE_MTP,
                                     lambda i, f: delivered.append(f))
    blast(world, link, 200)
    c = link.end_b.counters
    assert c.rx_dropped_corrupt == link.frames_corrupted > 0
    assert c.rx_frames == 200 - c.rx_dropped_corrupt == len(delivered)


def test_duplication_counts_and_redelivers(pair):
    world, link = pair
    impair(world, link, link.end_a, duplicate=0.3)
    delivered = []
    link.end_b.node.register_handler(ETHERTYPE_MTP,
                                     lambda i, f: delivered.append(f))
    blast(world, link, 200)
    c = link.end_b.counters
    assert c.rx_duplicate == link.frames_duplicated > 0
    assert c.rx_frames == 200 + c.rx_duplicate == len(delivered)


def test_gilbert_elliott_bursts(pair):
    world, link = pair
    state = impair(world, link, link.end_a, ge_p=0.05, ge_r=0.2,
                   ge_loss_bad=1.0)
    n = 1000
    blast(world, link, n)
    lost = state.lost
    assert 0 < lost < n
    # stationary loss rate of this chain is p/(p+r) = 0.2; assert a wide
    # envelope around it (burstiness makes the variance large)
    assert 0.08 < lost / n < 0.40


def test_jitter_reorders_back_to_back_frames(pair):
    world, link = pair
    impair(world, link, link.end_a, jitter_us=500)
    order = []
    link.end_b.node.register_handler(
        ETHERTYPE_MTP, lambda i, f: order.append(int(f.payload.tag)))
    # back-to-back: 1 us apart at the source, jitter up to 500 us
    for i in range(50):
        world.sim.schedule_at(1 + i, link.end_a.send, frame(str(i)))
    world.run()
    assert sorted(order) == list(range(50))  # nothing lost
    assert order != sorted(order)            # but reordered


def test_direction_asymmetry_gray_failure(pair):
    world, link = pair
    # impair only B->A; A->B stays clean
    impair(world, link, link.end_b, loss=0.5)
    for i in range(100):
        world.sim.schedule_at(1 + i * 1000, link.end_a.send, frame())
        world.sim.schedule_at(1 + i * 1000, link.end_b.send, frame())
    world.run()
    assert link.end_b.counters.rx_frames == 100       # clean direction
    assert link.end_a.counters.rx_frames < 100        # gray direction
    assert link.frames_lost_impaired > 0


def test_clear_impairment_restores_clean_delivery(pair):
    world, link = pair
    impair(world, link, link.end_a, loss=1.0)
    blast(world, link, 10)
    assert link.end_b.counters.rx_frames == 0
    link.clear_impairment(link.end_a)
    assert link.impairment(link.end_a) is None
    blast(world, link, 10)
    assert link.end_b.counters.rx_frames == 10


def test_set_impairment_rejects_foreign_interface(pair):
    world, link = pair
    other = world.add_node("C", tier=1).add_interface("eth9")
    with pytest.raises(ValueError):
        link.set_impairment(other, PRESETS["lossy"],
                            world.rng.stream("impair:test"))


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def run_once(seed: int) -> tuple[int, int, int, list[int]]:
    world = World(seed=seed)
    a = world.add_node("A", tier=1)
    b = world.add_node("B", tier=1)
    link = world.connect(a, b)
    profile = resolve_profile(loss=0.1, corrupt=0.1, duplicate=0.1,
                              jitter_us=300)
    sender = link.end_a
    link.set_impairment(sender, profile,
                        world.rng.stream(rng_stream_name(sender.full_name)))
    order: list[int] = []
    b.register_handler(ETHERTYPE_MTP,
                       lambda i, f: order.append(int(f.payload.tag)))
    for i in range(200):
        world.sim.schedule_at(1 + i * 3, sender.send, frame(str(i)))
    world.run()
    c = link.end_b.counters
    return (link.frames_lost_impaired, c.rx_dropped_corrupt,
            c.rx_duplicate, order)


def test_same_seed_same_fate_and_order():
    assert run_once(3) == run_once(3)


def test_different_seed_different_fate():
    assert run_once(3) != run_once(4)


def test_decision_stream_is_profile_stable():
    """The per-direction stream only draws for enabled knobs, so two
    states with the same profile and seed produce identical decisions."""
    s1 = LinkImpairment(ImpairmentProfile(loss=0.5),
                        World(seed=5).rng.stream("impair:one"))
    s2 = LinkImpairment(ImpairmentProfile(loss=0.5),
                        World(seed=5).rng.stream("impair:one"))
    assert [s1.decide().lost for _ in range(100)] == \
        [s2.decide().lost for _ in range(100)]


def test_equal_timestamp_deliveries_follow_transmit_order(pair):
    """Satellite fix: impaired arrivals carry an explicit monotone
    priority, so a duplicate landing on the same microsecond as its
    original always delivers second — transmit order, not heap order."""
    world, link = pair
    impair(world, link, link.end_a, duplicate=1.0)
    seen = []
    link.end_b.node.register_handler(
        ETHERTYPE_MTP, lambda i, f: seen.append(i.counters.rx_duplicate))
    blast(world, link, 5)
    # each original (dup counter unchanged) precedes its duplicate
    assert seen == [0, 1, 1, 2, 2, 3, 3, 4, 4, 5]
