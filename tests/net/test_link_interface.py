"""Link/interface semantics, incl. the asymmetric admin-down behaviour."""

from __future__ import annotations

import pytest

from repro.net.world import World
from repro.stack.addresses import BROADCAST_MAC
from repro.stack.ethernet import EthernetFrame, ETHERTYPE_MTP
from repro.stack.payload import RawBytes


def frame(src_iface, size=100):
    return EthernetFrame(BROADCAST_MAC, src_iface.mac, ETHERTYPE_MTP, RawBytes(size))


def build_pair(world):
    a = world.add_node("A")
    b = world.add_node("B")
    link = world.connect(a, b)
    return a, b, link


def test_frame_delivery(world):
    a, b, link = build_pair(world)
    got = []
    b.register_handler(ETHERTYPE_MTP, lambda iface, f: got.append((world.sim.now, f)))
    ia = a.interfaces["eth1"]
    assert ia.send(frame(ia))
    world.run()
    assert len(got) == 1
    t, f = got[0]
    assert t > 0  # serialization + propagation
    assert f.wire_size == 114


def test_back_to_back_frames_serialize_sequentially(world):
    a, b, link = build_pair(world)
    times = []
    b.register_handler(ETHERTYPE_MTP, lambda iface, f: times.append(world.sim.now))
    ia = a.interfaces["eth1"]
    for _ in range(3):
        ia.send(frame(ia, size=1486))  # 1500-byte frames
    world.run()
    assert len(times) == 3
    gaps = [t2 - t1 for t1, t2 in zip(times, times[1:])]
    ser = link.serialization_us(frame(ia, size=1486))
    assert gaps == [ser, ser]


def test_send_on_admin_down_interface_fails(world):
    a, b, link = build_pair(world)
    ia = a.interfaces["eth1"]
    ia.set_admin(False)
    assert not ia.send(frame(ia))
    assert ia.counters.tx_dropped_down == 1


def test_frame_arriving_at_downed_interface_is_dropped(world):
    a, b, link = build_pair(world)
    got = []
    b.register_handler(ETHERTYPE_MTP, lambda iface, f: got.append(f))
    ia = a.interfaces["eth1"]
    ib = b.interfaces["eth1"]
    ib.set_admin(False)
    ia.send(frame(ia))
    world.run()
    assert got == []
    assert ib.counters.rx_dropped_down == 1


def test_admin_down_notifies_local_node_immediately(world):
    """The paper's key failure semantic: same-side instant detection."""
    a, b, link = build_pair(world)
    down_events = []
    a.on_interface_down(lambda iface: down_events.append((world.sim.now, iface.name)))
    b.on_interface_down(lambda iface: down_events.append(("REMOTE", iface.name)))
    a.interfaces["eth1"].set_admin(False)
    assert down_events == [(0, "eth1")]  # local yes, remote never
    world.run()
    assert len(down_events) == 1


def test_admin_up_notifies_local_node(world):
    a, b, link = build_pair(world)
    ups = []
    a.on_interface_up(lambda iface: ups.append(iface.name))
    ia = a.interfaces["eth1"]
    ia.set_admin(False)
    ia.set_admin(True)
    assert ups == ["eth1"]


def test_set_admin_idempotent(world):
    a, b, link = build_pair(world)
    events = []
    a.on_interface_down(lambda iface: events.append("down"))
    ia = a.interfaces["eth1"]
    ia.set_admin(False)
    ia.set_admin(False)
    assert events == ["down"]


def test_counters_track_tx_rx(world):
    a, b, link = build_pair(world)
    b.register_handler(ETHERTYPE_MTP, lambda iface, f: None)
    ia = a.interfaces["eth1"]
    ib = b.interfaces["eth1"]
    ia.send(frame(ia, size=100))
    world.run()
    assert ia.counters.tx_frames == 1
    assert ia.counters.tx_bytes == 114
    assert ib.counters.rx_frames == 1
    assert ib.counters.rx_bytes == 114


def test_cannot_double_cable(world):
    a, b, link = build_pair(world)
    c = world.add_node("C")
    with pytest.raises(ValueError):
        world.cable(a.interfaces["eth1"], c.add_interface())


def test_world_find_link(world):
    a, b, link = build_pair(world)
    assert world.find_link("A", "B") is link
    assert world.find_link("B", "A") is link
    assert world.find_link("A", "C") is None


def test_port_numbers_are_one_based_sequential(world):
    a = world.add_node("A")
    i1 = a.add_interface()
    i2 = a.add_interface()
    assert (i1.port_number, i2.port_number) == (1, 2)
    assert (i1.name, i2.name) == ("eth1", "eth2")


def test_duplicate_node_name_rejected(world):
    world.add_node("X")
    with pytest.raises(ValueError):
        world.add_node("X")
