"""World container behaviour."""

from __future__ import annotations

import pytest

from repro.net.world import World


def test_connect_creates_interfaces_both_sides(world):
    a = world.add_node("A", tier=1)
    b = world.add_node("B", tier=2)
    link = world.connect(a, b)
    assert link.end_a.node is a and link.end_b.node is b
    assert a.interfaces and b.interfaces


def test_all_interfaces(world):
    a = world.add_node("A")
    b = world.add_node("B")
    world.connect(a, b)
    world.connect(a, b)
    assert len(world.all_interfaces()) == 4


def test_run_for_advances_clock(world):
    world.run_for(1234)
    assert world.sim.now == 1234
    world.run_for(1)
    assert world.sim.now == 1235


def test_trace_disabled_worlds_store_nothing():
    world = World(seed=0, trace_enabled=False)
    node = world.add_node("A")
    node.log("cat", "message")
    assert world.trace.records == []


def test_seed_isolation():
    """Two worlds with the same seed produce identical rng streams;
    different seeds differ."""
    a = World(seed=5).rng.stream("x").integers(0, 1 << 30, size=5)
    b = World(seed=5).rng.stream("x").integers(0, 1 << 30, size=5)
    c = World(seed=6).rng.stream("x").integers(0, 1 << 30, size=5)
    assert list(a) == list(b)
    assert list(a) != list(c)


def test_node_lookup(world):
    node = world.add_node("X")
    assert world.node("X") is node
    with pytest.raises(KeyError):
        world.node("missing")
