"""Frame dissection (the Wireshark-view substitute for Figs. 9/10)."""

from __future__ import annotations

from repro.bfd.messages import BfdControlPacket, BfdState
from repro.bgp.messages import BgpKeepalive, BgpOpen, BgpUpdate, PathAttributes
from repro.core.messages import (
    MtpAdvertise,
    MtpData,
    MtpKeepalive,
    MtpUnreachable,
)
from repro.core.vid import Vid
from repro.net.capture import Capture, CaptureRecord, Direction
from repro.net.dissect import dissect, dissect_capture
from repro.stack.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.stack.ethernet import ETHERTYPE_IPV4, ETHERTYPE_MTP, EthernetFrame
from repro.stack.ipv4 import Ipv4Packet, PROTO_TCP, PROTO_UDP
from repro.stack.payload import RawBytes
from repro.stack.tcp_segment import TcpFlags, TcpSegment
from repro.stack.udp import UdpDatagram

MAC = MacAddress.from_index(9)
IP_A = Ipv4Address.parse("172.16.0.0")
IP_B = Ipv4Address.parse("172.16.0.1")


def eth(ethertype, payload):
    return EthernetFrame(BROADCAST_MAC, MAC, ethertype, payload)


def test_mtp_keepalive_renders_like_fig10():
    text = dissect(eth(ETHERTYPE_MTP, MtpKeepalive()))
    assert "Broadcast" in text
    assert "Unknown (0x8850)" in text
    assert "Data: 06" in text
    assert "[Length: 1]" in text


def test_bfd_renders_like_fig9():
    packet = BfdControlPacket(BfdState.UP, 3, 7, 9, 100_000, 100_000)
    frame = eth(ETHERTYPE_IPV4, Ipv4Packet(
        IP_A, IP_B, PROTO_UDP, UdpDatagram(49152, 3784, packet), ttl=255))
    text = dissect(frame)
    assert "BFD Control message" in text
    assert "State: UP" in text
    assert "Detect Time Multiplier: 3" in text
    assert "My Discriminator: 0x00000007" in text
    assert "Frame length: 66 bytes" in text


def test_bgp_keepalive_renders():
    seg = TcpSegment(179, 50000, seq=1, ack=1,
                     flags=TcpFlags.ACK | TcpFlags.PSH, payload=BgpKeepalive())
    text = dissect(eth(ETHERTYPE_IPV4, Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg)))
    assert "KEEPALIVE Message" in text
    assert "Frame length: 85 bytes" in text


def test_bgp_update_renders_routes():
    from repro.stack.addresses import Ipv4Network

    update = BgpUpdate(
        withdrawn=(Ipv4Network.parse("192.168.11.0/24"),),
        nlri=(Ipv4Network.parse("192.168.12.0/24"),),
        attributes=PathAttributes(as_path=(64513, 65001), next_hop=IP_A),
    )
    seg = TcpSegment(179, 50000, seq=1, ack=1, flags=TcpFlags.ACK,
                     payload=update)
    text = dissect(eth(ETHERTYPE_IPV4, Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg)))
    assert "UPDATE Message" in text
    assert "Withdrawn route: 192.168.11.0/24" in text
    assert "NLRI: 192.168.12.0/24" in text
    assert "AS_PATH [64513, 65001]" in text


def test_bgp_open_renders():
    seg = TcpSegment(179, 50000, seq=1, ack=1, flags=TcpFlags.ACK,
                     payload=BgpOpen(64512, 3, IP_A))
    text = dissect(eth(ETHERTYPE_IPV4, Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg)))
    assert "OPEN Message" in text and "My AS: 64512" in text


def test_mtp_control_messages_render():
    adv = dissect(eth(ETHERTYPE_MTP, MtpAdvertise(vids=(Vid.parse("11.1"),))))
    assert "Advertise" in adv and "11.1" in adv
    unre = dissect(eth(ETHERTYPE_MTP, MtpUnreachable(roots=(11, 12))))
    assert "unreachable" in unre and "11, 12" in unre


def test_mtp_data_renders_inner_packet():
    inner = Ipv4Packet(Ipv4Address.parse("192.168.11.1"),
                       Ipv4Address.parse("192.168.14.1"),
                       PROTO_UDP, UdpDatagram(40000, 7777, RawBytes(100)))
    text = dissect(eth(ETHERTYPE_MTP, MtpData(11, 14, inner)))
    assert "Source ToR VID: 11" in text
    assert "Destination ToR VID: 14" in text
    assert "192.168.14.1" in text


def test_dissect_capture_summarizes(world):
    cap = Capture()
    a = world.add_node("A")
    b = world.add_node("B")
    link = world.connect(a, b)
    cap.attach((link.end_a,))
    link.end_a.send(eth(ETHERTYPE_MTP, MtpKeepalive()))
    world.run()
    text = dissect_capture(cap.records)
    assert "A:eth1" in text and "[tx]" in text and "len=15" in text


def test_dissect_capture_limit(world):
    cap = Capture()
    a = world.add_node("A")
    b = world.add_node("B")
    link = world.connect(a, b)
    cap.attach((link.end_a,))
    for _ in range(30):
        link.end_a.send(eth(ETHERTYPE_MTP, MtpKeepalive()))
    world.run()
    text = dissect_capture(cap.records, limit=5)
    assert "..." in text
    assert text.count("\n") == 5
