"""Finite egress queues: tail drop under overload."""

from __future__ import annotations

import pytest

from repro.net.world import World
from repro.sim.units import SECOND
from repro.stack.addresses import BROADCAST_MAC, Ipv4Address
from repro.stack.ethernet import EthernetFrame, ETHERTYPE_MTP
from repro.stack.payload import RawBytes


def frame(iface, size=1486):
    return EthernetFrame(BROADCAST_MAC, iface.mac, ETHERTYPE_MTP,
                         RawBytes(size))


def slow_pair(world, queue_bytes=10_000, bandwidth=1_000_000):
    a = world.add_node("A")
    b = world.add_node("B")
    link = world.cable(a.add_interface(), b.add_interface(),
                       bandwidth_bps=bandwidth)
    link.queue_bytes = queue_bytes
    return a, b, link


def test_burst_beyond_queue_is_tail_dropped(world):
    a, b, link = slow_pair(world)  # 1 Mb/s, 10 kB queue
    got = []
    b.register_handler(ETHERTYPE_MTP, lambda iface, f: got.append(f))
    ia = a.interfaces["eth1"]
    sent = sum(1 for _ in range(50) if ia.send(frame(ia)))
    world.run()
    assert sent < 50
    assert link.frames_dropped_queue == 50 - sent
    assert ia.counters.tx_dropped_queue == 50 - sent
    assert len(got) == sent
    # roughly queue/frame-size frames fit (plus the one serializing)
    assert 5 <= sent <= 9


def test_queue_drains_over_time(world):
    a, b, link = slow_pair(world)
    ia = a.interfaces["eth1"]
    b.register_handler(ETHERTYPE_MTP, lambda iface, f: None)
    for _ in range(6):
        assert ia.send(frame(ia))
    # wait for the queue to drain, then the next burst fits again
    world.run_for(2 * SECOND)
    assert link.queue_backlog_bytes(ia) == 0
    assert ia.send(frame(ia))


def test_infinite_queue_option(world):
    a = world.add_node("A")
    b = world.add_node("B")
    link = world.cable(a.add_interface(), b.add_interface(),
                       bandwidth_bps=1_000_000)
    link.queue_bytes = None
    ia = a.interfaces["eth1"]
    b.register_handler(ETHERTYPE_MTP, lambda iface, f: None)
    assert all(ia.send(frame(ia)) for _ in range(500))
    assert link.frames_dropped_queue == 0


def test_backlog_accounting(world):
    a, b, link = slow_pair(world, queue_bytes=100_000)
    ia = a.interfaces["eth1"]
    assert link.queue_backlog_bytes(ia) == 0
    for _ in range(10):
        ia.send(frame(ia))
    # ~10 x 1500 B queued minus what has serialized (nothing yet at t=0)
    assert link.queue_backlog_bytes(ia) == pytest.approx(15_000, rel=0.1)


def test_incast_congestion_drops_at_bottleneck():
    """Two senders at line rate into one receiver: the shared egress
    queue overflows — congestion loss, orthogonal to failure loss."""
    from repro.iputil.stack import IpStack
    from repro.iputil.udp_service import UdpService
    from repro.routing.table import NextHop, Route
    from repro.stack.addresses import Ipv4Network
    from repro.traffic.generator import ReceiverAnalyzer, TrafficSender

    world = World(seed=2)
    ip = Ipv4Address.parse
    senders = [world.add_node(f"S{i}") for i in range(2)]
    router = world.add_node("R")
    sink = world.add_node("C")
    for i, s in enumerate(senders):
        link = world.cable(s.add_interface(), router.add_interface(),
                           bandwidth_bps=10_000_000)
        link.end_a.assign_address(ip(f"10.0.{i}.1"), 24)
        link.end_b.assign_address(ip(f"10.0.{i}.254"), 24)
    bottleneck = world.cable(router.add_interface(), sink.add_interface(),
                             bandwidth_bps=10_000_000)
    bottleneck.queue_bytes = 20_000
    bottleneck.end_a.assign_address(ip("10.0.9.254"), 24)
    bottleneck.end_b.assign_address(ip("10.0.9.1"), 24)

    stacks = {}
    for node in (*senders, router, sink):
        stack = IpStack(node, forwarding=(node is router))
        stack.install_connected_routes()
        stacks[node.name] = stack
    for i, s in enumerate(senders):
        stacks[s.name].table.install(Route(
            Ipv4Network.parse("0.0.0.0/0"),
            (NextHop("eth1", ip(f"10.0.{i}.254")),)))
    stacks["C"].table.install(Route(
        Ipv4Network.parse("0.0.0.0/0"), (NextHop("eth1", ip("10.0.9.254")),)))

    udps = {name: UdpService(stack) for name, stack in stacks.items()}
    analyzer = ReceiverAnalyzer(udps["C"])
    # each sender offers ~8 Mb/s of 1000-byte packets -> 16 Mb/s into a
    # 10 Mb/s bottleneck
    # coprime gaps + staggered starts avoid deterministic phase lock
    # (identical cadences make one flow systematically hit a full queue)
    gens = []
    for i, s in enumerate(senders):
        gen = TrafficSender(udps[s.name], ip("10.0.9.1"),
                            src_port=41000 + i, payload_bytes=1000,
                            gap_us=997 + 14 * i)
        gen.start(count=2000, at=world.sim.now + 137 * i)
        gens.append(gen)
    world.run(until=5 * SECOND)
    total_sent = sum(g.sent for g in gens)
    assert total_sent == 4000
    assert bottleneck.frames_dropped_queue > 0
    assert analyzer.received < total_sent
    # the line still delivered at capacity (~10 of the ~16.7 Mb/s offered)
    assert analyzer.received > total_sent * 0.5


def test_traffic_burst_scenario_tail_drop_accounting():
    """End-to-end congestion accounting through the scenario engine: a
    traffic_burst overdriving a throttled rack downlink must show up,
    frame for frame, in ``frames_dropped_queue``, the egress interface's
    ``tx_dropped_queue``, and the scenario's measured loss."""
    from repro.harness.experiments import build_and_converge
    from repro.scenario import Scenario, ScenarioEvent, compile_scenario
    from repro.topology.clos import two_pod_params

    world, topo, dep = build_and_converge(two_pod_params(), "mtp", seed=0)
    # throttle the destination rack's server downlink: every burst
    # packet funnels through it, so drops are deterministic in count
    dst = topo.first_server_of(topo.all_tors()[0])
    tor_iface = topo.node(dst).interfaces["eth1"].peer()
    link = tor_iface.link
    link.bandwidth_bps = 1_000_000
    link.queue_bytes = 2_000

    scenario = Scenario(
        name="burst-drop",
        description="overdrive a 1 Mb/s downlink with ~2.3 Mb/s",
        settle=100, quiet_ms=200, max_wait_ms=30_000,
        events=(ScenarioEvent(op="traffic_burst", at_ms=0,
                              src="server:tor[3]", dst="server:tor[0]",
                              rate_pps=2000, count=1000, src_port=40000),),
    )
    metrics = compile_scenario(scenario, world, topo, dep).execute("mtp", 0)

    assert metrics.sent == 1000
    drops = link.frames_dropped_queue
    assert drops > 0
    assert tor_iface.counters.tx_dropped_queue == drops
    # congestion is the only loss source: sent - received == queue drops
    assert metrics.lost == drops
    assert metrics.received == 1000 - drops
