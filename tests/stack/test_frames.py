"""Wire-size arithmetic: the numbers the paper reads off Wireshark."""

from __future__ import annotations

import pytest

from repro.stack.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.stack.arp import ArpMessage, ArpOp
from repro.stack.ethernet import (
    ETHERNET_MIN_FRAME_BYTES,
    ETHERTYPE_IPV4,
    ETHERTYPE_MTP,
    EthernetFrame,
)
from repro.stack.ipv4 import Ipv4Packet, PROTO_TCP, PROTO_UDP
from repro.stack.payload import RawBytes
from repro.stack.tcp_segment import TcpFlags, TcpSegment
from repro.stack.udp import UdpDatagram

MAC_A = MacAddress.from_index(1)
MAC_B = MacAddress.from_index(2)
IP_A = Ipv4Address.parse("10.0.0.1")
IP_B = Ipv4Address.parse("10.0.0.2")


def test_udp_over_ip_over_ethernet_composes():
    """14 + 20 + 8 + payload."""
    dgram = UdpDatagram(3784, 3784, RawBytes(24))
    pkt = Ipv4Packet(IP_A, IP_B, PROTO_UDP, dgram)
    frame = EthernetFrame(MAC_B, MAC_A, ETHERTYPE_IPV4, pkt)
    assert dgram.wire_size == 32
    assert pkt.wire_size == 52
    assert frame.wire_size == 66  # the paper's BFD control packet size


def test_bgp_keepalive_is_85_bytes_at_l2():
    """14 + 20 + 32 + 19 = 85 (paper section VII.F)."""
    seg = TcpSegment(179, 50000, seq=1, ack=1, flags=TcpFlags.ACK | TcpFlags.PSH,
                     payload=RawBytes(19))
    pkt = Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg)
    frame = EthernetFrame(MAC_B, MAC_A, ETHERTYPE_IPV4, pkt)
    assert frame.wire_size == 85


def test_mtp_keepalive_is_15_bytes_unpadded():
    """14 + 1 (paper Fig. 10: 1-byte payload, value 0x06)."""
    frame = EthernetFrame(BROADCAST_MAC, MAC_A, ETHERTYPE_MTP, RawBytes(1))
    assert frame.wire_size == 15
    assert frame.padded_wire_size == ETHERNET_MIN_FRAME_BYTES


def test_pure_tcp_ack_is_66_bytes():
    seg = TcpSegment(179, 50000, seq=1, ack=1, flags=TcpFlags.ACK)
    pkt = Ipv4Packet(IP_A, IP_B, PROTO_TCP, seg)
    frame = EthernetFrame(MAC_B, MAC_A, ETHERTYPE_IPV4, pkt)
    assert frame.wire_size == 66


def test_syn_carries_full_option_set():
    syn = TcpSegment(50000, 179, seq=0, ack=0, flags=TcpFlags.SYN)
    assert syn.header_size == 40
    assert syn.seq_space == 1


def test_fin_consumes_sequence_space():
    fin = TcpSegment(1, 2, seq=10, ack=0, flags=TcpFlags.FIN | TcpFlags.ACK)
    assert fin.seq_space == 1
    data = TcpSegment(1, 2, seq=10, ack=0, flags=TcpFlags.ACK, payload=RawBytes(100))
    assert data.seq_space == 100


def test_arp_wire_size():
    msg = ArpMessage(ArpOp.REQUEST, MAC_A, IP_A, IP_B)
    assert msg.wire_size == 28
    frame = EthernetFrame(BROADCAST_MAC, MAC_A, 0x0806, msg)
    assert frame.wire_size == 42


def test_ttl_decrement():
    pkt = Ipv4Packet(IP_A, IP_B, PROTO_UDP, RawBytes(0), ttl=2)
    pkt2 = pkt.decrement_ttl()
    assert pkt2.ttl == 1 and pkt.ttl == 2
    with pytest.raises(ValueError):
        pkt2.decrement_ttl().decrement_ttl()


def test_invalid_fields_rejected():
    with pytest.raises(ValueError):
        EthernetFrame(MAC_A, MAC_B, 0x10000, RawBytes(0))
    with pytest.raises(ValueError):
        UdpDatagram(70000, 1, RawBytes(0))
    with pytest.raises(ValueError):
        Ipv4Packet(IP_A, IP_B, 300, RawBytes(0))
    with pytest.raises(ValueError):
        RawBytes(-1)
