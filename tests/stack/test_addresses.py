"""Address value types, including hypothesis round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.stack.addresses import (
    BROADCAST_MAC,
    Ipv4Address,
    Ipv4Network,
    MacAddress,
)


class TestMac:
    def test_parse_format_roundtrip(self):
        mac = MacAddress.parse("6a:4a:d1:8d:cd:8b")
        assert str(mac) == "6a:4a:d1:8d:cd:8b"

    def test_broadcast(self):
        assert str(BROADCAST_MAC) == "ff:ff:ff:ff:ff:ff"
        assert BROADCAST_MAC.is_broadcast

    def test_from_index_is_locally_administered(self):
        mac = MacAddress.from_index(1)
        assert (mac.value >> 40) & 0x02

    def test_from_index_unique(self):
        macs = {MacAddress.from_index(i) for i in range(100)}
        assert len(macs) == 100

    def test_bad_parse(self):
        with pytest.raises(ValueError):
            MacAddress.parse("not-a-mac")

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_str_parse_roundtrip(self, value):
        mac = MacAddress(value)
        assert MacAddress.parse(str(mac)) == mac


class TestIpv4:
    def test_parse_format_roundtrip(self):
        ip = Ipv4Address.parse("192.168.11.1")
        assert str(ip) == "192.168.11.1"
        assert ip.octets == (192, 168, 11, 1)

    def test_ordering(self):
        assert Ipv4Address.parse("10.0.0.1") < Ipv4Address.parse("10.0.0.2")

    def test_add_offset(self):
        assert str(Ipv4Address.parse("10.0.0.1") + 5) == "10.0.0.6"

    def test_bad_parse(self):
        with pytest.raises(ValueError):
            Ipv4Address.parse("256.0.0.1")
        with pytest.raises(ValueError):
            Ipv4Address.parse("1.2.3")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_str_parse_roundtrip(self, value):
        ip = Ipv4Address(value)
        assert Ipv4Address.parse(str(ip)) == ip


class TestNetwork:
    def test_parse_and_contains(self):
        net = Ipv4Network.parse("192.168.11.0/24")
        assert net.contains(Ipv4Address.parse("192.168.11.1"))
        assert not net.contains(Ipv4Address.parse("192.168.12.1"))

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Network.parse("192.168.11.1/24")

    def test_of_clears_host_bits(self):
        net = Ipv4Network.of("192.168.11.77", 24)
        assert str(net) == "192.168.11.0/24"

    def test_host_indexing(self):
        net = Ipv4Network.parse("10.1.0.0/24")
        assert str(net.host(1)) == "10.1.0.1"
        with pytest.raises(ValueError):
            net.host(300)

    def test_hosts_iteration_p2p(self):
        net = Ipv4Network.parse("172.16.0.0/31")
        assert [str(h) for h in net.hosts()] == ["172.16.0.0", "172.16.0.1"]

    def test_hosts_iteration_excludes_network_broadcast(self):
        net = Ipv4Network.parse("10.0.0.0/30")
        assert [str(h) for h in net.hosts()] == ["10.0.0.1", "10.0.0.2"]

    def test_zero_prefix(self):
        default = Ipv4Network.parse("0.0.0.0/0")
        assert default.contains(Ipv4Address.parse("200.1.2.3"))

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_of_always_contains_seed_address(self, value, plen):
        ip = Ipv4Address(value)
        net = Ipv4Network.of(ip, plen)
        assert net.contains(ip)
