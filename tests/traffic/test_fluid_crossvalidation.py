"""Cross-validation: the fluid engine's drop model against the
per-packet TrafficSender on a plain two-host link.

The fluid evaluator never sends frames — it predicts delivery from
link impairments (``_expected_loss``) and max-min rates.  These tests
hold that prediction to what the per-packet data path actually
measures, on the simplest fabric there is: two hosts, one link."""

from __future__ import annotations

import numpy as np
import pytest

from repro.iputil.udp_service import UdpService
from repro.net.impairment import ImpairmentProfile
from repro.sim.units import SECOND
from repro.stack.addresses import Ipv4Address
from repro.traffic.generator import ReceiverAnalyzer, TrafficSender
from repro.workload.engine import _expected_loss
from repro.workload.fluid import FluidProblem, max_min_rates

from tests.conftest import make_ip_pair

DST = Ipv4Address.parse("10.0.0.2")


def test_expected_loss_composition():
    """The stationary drop model composes independent loss, corrupt
    and the Gilbert-Elliott chain's bad-state fraction."""

    class FakeImpairment:
        def __init__(self, profile):
            self.profile = profile

    assert _expected_loss(None) == 0.0
    assert _expected_loss(
        FakeImpairment(ImpairmentProfile(loss=0.25))) == pytest.approx(0.25)
    assert _expected_loss(
        FakeImpairment(ImpairmentProfile(loss=0.1, corrupt=0.1))
    ) == pytest.approx(1.0 - 0.9 * 0.9)
    # GE chain: pi_bad = p / (p + r); drop = pi_bad * loss_bad
    assert _expected_loss(
        FakeImpairment(ImpairmentProfile(ge_p=0.01, ge_r=0.04,
                                         ge_loss_bad=0.5))
    ) == pytest.approx(0.2 * 0.5)


def test_fluid_prediction_matches_per_packet_measurement(world):
    """Fluid says: one flow alone on one link runs at line rate and
    delivers a (1 - loss) fraction.  The per-packet sender must agree
    within sampling noise."""
    a, b, sa, sb = make_ip_pair(world)
    ua, ub = UdpService(sa), UdpService(sb)
    sender = TrafficSender(ua, DST, gap_us=100)
    analyzer = ReceiverAnalyzer(ub)

    # prime ARP on a clean link so address resolution cannot be lost
    sender.start(count=1)
    world.run(until=10_000)

    link = a.interfaces["eth1"].link
    profile = ImpairmentProfile(loss=0.25)
    link.set_impairment(link.end_a, profile,
                        world.rng.stream("crossvalidation-impair"))

    sender2 = TrafficSender(ua, DST, gap_us=100, src_port=41000)
    sender2.start(count=4000)
    world.run(until=2 * SECOND)
    report = analyzer.report(sender2)
    assert report.sent == 4000

    predicted_loss = _expected_loss(link.impairment(link.end_a))
    assert predicted_loss == pytest.approx(0.25)
    # binomial noise at n=4000: sigma ~ 0.0068, allow ~4 sigma
    assert abs(report.loss_fraction - predicted_loss) < 0.03

    # goodput polish: first-copy bytes over the rx window (the analyzer
    # aggregates across flows, priming packet included)
    assert report.bytes_delivered == report.received * 100
    assert report.goodput_bps > 0

    # the fluid solver side: one flow, one link -> the whole capacity
    capacity = link.bandwidth_bps / 8.0
    prob = FluidProblem(
        capacity=np.array([capacity]),
        flow_links=np.array([0], dtype=np.int64),
        flow_ptr=np.array([0, 1], dtype=np.int64))
    rate = max_min_rates(prob)
    assert rate[0] == pytest.approx(capacity)
    # delivered fraction the fluid settlement would book
    fluid_delivered_fraction = 1.0 - predicted_loss
    measured_fraction = report.received / report.sent
    assert abs(measured_fraction - fluid_delivered_fraction) < 0.03
