"""Traffic generator and receiver analyzer."""

from __future__ import annotations

import pytest

from repro.iputil.udp_service import UdpService
from repro.sim.units import SECOND
from repro.stack.addresses import Ipv4Address
from repro.traffic.generator import (
    ReceiverAnalyzer,
    SeqPayload,
    TrafficReport,
    TrafficSender,
)

from tests.conftest import make_ip_pair


def ip(text):
    return Ipv4Address.parse(text)


def pair(world):
    a, b, sa, sb = make_ip_pair(world)
    return a, b, UdpService(sa), UdpService(sb)


def test_lossless_delivery_counts(world):
    a, b, ua, ub = pair(world)
    sender = TrafficSender(ua, ip("10.0.0.2"), gap_us=100)
    analyzer = ReceiverAnalyzer(ub)
    sender.start(count=500)
    world.run(until=2 * SECOND)
    report = analyzer.report(sender)
    assert report.sent == 500
    assert report.lost == 0
    assert report.duplicated == 0
    assert report.out_of_order == 0
    assert report.loss_fraction == 0.0


def test_loss_detected_during_outage(world):
    a, b, ua, ub = pair(world)
    sender = TrafficSender(ua, ip("10.0.0.2"), gap_us=1000)
    analyzer = ReceiverAnalyzer(ub)
    sender.start(count=1000)  # 1 s of traffic at 1000 pps
    world.sim.schedule_at(200_000, b.interfaces["eth1"].set_admin, False)
    world.sim.schedule_at(500_000, b.interfaces["eth1"].set_admin, True)
    world.run(until=3 * SECOND)
    report = analyzer.report(sender)
    assert 250 <= report.lost <= 350  # the 300 ms hole


def test_back_to_back_zero_gap(world):
    """gap 0: packets serialize at line rate without loss."""
    a, b, ua, ub = pair(world)
    sender = TrafficSender(ua, ip("10.0.0.2"), gap_us=0, payload_bytes=1000)
    analyzer = ReceiverAnalyzer(ub)
    sender.start(count=200)
    world.run(until=1 * SECOND)
    assert analyzer.report(sender).lost == 0


def test_duplicate_detection(world):
    a, b, ua, ub = pair(world)
    analyzer = ReceiverAnalyzer(ub)
    for seq in (0, 1, 1, 2, 2, 2):
        ua.send(ip("10.0.0.2"), 7777, 40000, SeqPayload(seq=seq))
    world.run()
    assert analyzer.received == 3
    assert analyzer.duplicated == 3


def test_out_of_order_detection(world):
    a, b, ua, ub = pair(world)
    analyzer = ReceiverAnalyzer(ub)
    for seq in (0, 2, 1, 5, 3):
        ua.send(ip("10.0.0.2"), 7777, 40000, SeqPayload(seq=seq))
    world.run()
    assert analyzer.out_of_order == 2  # 1 (after 2) and 3 (after 5)


def test_first_last_rx_times(world):
    a, b, ua, ub = pair(world)
    sender = TrafficSender(ua, ip("10.0.0.2"), gap_us=1000)
    analyzer = ReceiverAnalyzer(ub)
    sender.start(count=10, at=50_000)
    world.run(until=1 * SECOND)
    assert analyzer.first_rx_time >= 50_000
    # first packet also pays the ARP round-trip, so the span is a bit
    # under the nominal 9 gaps
    assert analyzer.last_rx_time >= analyzer.first_rx_time + 8 * 1000


def test_sender_stop(world):
    a, b, ua, ub = pair(world)
    sender = TrafficSender(ua, ip("10.0.0.2"), gap_us=1000)
    analyzer = ReceiverAnalyzer(ub)
    sender.start(count=1000)
    world.sim.schedule_at(100_500, sender.stop)
    world.run(until=1 * SECOND)
    assert sender.sent <= 102


def test_validation():
    with pytest.raises(ValueError):
        SeqPayload(seq=0, size=4)
    report = TrafficReport(sent=0, received=0, duplicated=0, out_of_order=0)
    assert report.loss_fraction == 0.0
